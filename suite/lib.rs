//! Workspace-level glue crate.
//!
//! This crate exists to host the repository-root `tests/` (cross-crate
//! integration tests) and `examples/` directories, plus the crash-point
//! [`torture`] harness behind the `tdb-torture` binary. It re-exports the
//! public facade so examples can simply `use tdb_suite as tdb;` if they
//! wish.
pub use tdb;

pub mod torture;
