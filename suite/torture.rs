//! Exhaustive crash-point torture harness for the log-structured recovery
//! path.
//!
//! The harness runs a scripted multi-transaction workload against the full
//! stack (collection store → object store → chunk store) through a
//! [`FaultStore`], in three phases:
//!
//! 1. **Enumerate** — one fault-free replay with tracing on records every
//!    write and sync boundary the workload crosses.
//! 2. **Sweep** — for every recorded boundary, re-run the workload from
//!    scratch and crash there (each write boundary twice: torn at half the
//!    bytes, and with all bytes landed but unacknowledged; each sync
//!    boundary once, with the sync swallowed). Recovery from the surviving
//!    bytes must succeed and yield a state the oracle admits: everything a
//!    durably-acknowledged commit wrote is present, nothing from
//!    unexecuted steps is, and the state is an exact prefix of the script
//!    (no torn or merged transactions).
//! 3. **Tamper** — at each crash point, three deterministic post-crash
//!    attacks (bit-flip, block-swap, segment rollback/replay) are applied
//!    to clones of the surviving bytes. Each must either be *detected* at
//!    recovery/read time or be provably *harmless* (the mutated bytes were
//!    already-discarded garbage, so recovery still lands in an admissible
//!    state). An inadmissible recovered state is a **silent corruption**
//!    and fails the run.
//!
//! Everything is deterministic given [`TortureConfig::seed`]: the workload
//! script, the boundary enumeration, and every tamper pick. The driver
//! asserts that the sweep visited exactly the enumerated boundary count —
//! if the workload's storage footprint changes, the sweep scales with it
//! rather than silently thinning out.

use rand::{RngCore, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;
use tdb::platform::{
    apply_tamper, CrashSchedule, FaultEvent, FaultPlan, FaultStore, MemSecretStore, MemStore,
    OneWayCounter, TamperMode, VolatileCounter,
};
use tdb::{
    impl_persistent_boilerplate, ChunkStoreConfig, ClassRegistry, Database, DatabaseConfig,
    Durability, ErrorKind, ExtractorRegistry, IndexKind, IndexSpec, Key, Persistent, PickleError,
    Pickler, TdbError, Unpickler,
};

const CLASS_CELL: u32 = 0x70B7_0001;

struct Cell {
    id: u64,
    val: i64,
}

impl Persistent for Cell {
    impl_persistent_boilerplate!(CLASS_CELL);
    fn pickle(&self, w: &mut Pickler) {
        w.u64(self.id);
        w.i64(self.val);
    }
}

fn unpickle_cell(r: &mut Unpickler) -> Result<Box<dyn Persistent>, PickleError> {
    Ok(Box::new(Cell {
        id: r.u64()?,
        val: r.i64()?,
    }))
}

fn registries() -> (ClassRegistry, ExtractorRegistry) {
    let mut classes = ClassRegistry::new();
    classes.register(CLASS_CELL, "Cell", unpickle_cell);
    let mut extractors = ExtractorRegistry::new();
    extractors.register("cell.id", |o| {
        tdb::extractor_typed::<Cell>(o, |c| Key::U64(c.id))
    });
    (classes, extractors)
}

fn specs() -> [IndexSpec; 1] {
    [IndexSpec::new("by-id", "cell.id", true, IndexKind::Hash)]
}

/// Size and seed of the torture run.
#[derive(Clone, Debug)]
pub struct TortureConfig {
    /// Cells inserted by the (fault-free) setup transaction.
    pub cells: u64,
    /// Scripted workload transactions swept for crash points.
    pub steps: u64,
    /// Master seed; fixes the script and every tamper pick.
    pub seed: u64,
    /// Chunk-store shards. At 1 (the default) the oracle demands an exact
    /// script prefix; at 2+ the script adds cross-shard transfers and the
    /// oracle relaxes to per-cell admissible windows plus all-or-nothing
    /// atomicity (see [`admissible_at`]).
    pub shards: usize,
    /// Print one line per crash point.
    pub verbose: bool,
}

impl Default for TortureConfig {
    fn default() -> Self {
        TortureConfig {
            cells: 4,
            steps: 10,
            seed: 7,
            shards: 1,
            verbose: false,
        }
    }
}

/// What one scripted transaction does. Derived deterministically from the
/// seed; `durable` mixes §3.2.2 durable and nondurable commits so crash
/// points fall in both regimes, and `maintain` steps run an explicit
/// checkpoint + cleaning pass afterwards so the sweep also enumerates
/// crash points inside maintenance: victim selection's settling anchor,
/// every relocation slice, the closing checkpoint, and the frees.
#[derive(Clone, Debug)]
struct Step {
    insert: Option<u64>,
    bump: Option<(u64, i64)>,
    /// Balanced transfer `a += d, b -= d` in one transaction — the
    /// cross-shard workload for sharded runs (consecutive cell ids land on
    /// different shards under round-robin chunk routing).
    transfer: Option<(u64, u64, i64)>,
    durable: bool,
    maintain: bool,
}

/// Oracle state: cell id → value.
type State = BTreeMap<u64, i64>;

fn script(cfg: &TortureConfig) -> Vec<Step> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
    (1..=cfg.steps)
        .map(|i| {
            let r = rng.next_u64();
            let maintain = i % 5 == 0;
            let durable = r % 3 != 0;
            if i % 4 == 0 {
                Step {
                    insert: Some(1_000 + i),
                    bump: None,
                    transfer: None,
                    durable,
                    maintain,
                }
            } else if cfg.shards >= 2 && i % 3 != 0 {
                // Adjacent cells have consecutive chunk ids, which
                // round-robin routing places on different shards: every
                // transfer is a cross-shard commit at 2 shards.
                let a = r % cfg.cells;
                let b = (a + 1) % cfg.cells;
                Step {
                    insert: None,
                    bump: None,
                    transfer: Some((a, b, (r % 97) as i64 + 1)),
                    durable,
                    maintain,
                }
            } else {
                Step {
                    insert: None,
                    bump: Some((r % cfg.cells, (r % 97) as i64 + 1)),
                    transfer: None,
                    durable,
                    maintain,
                }
            }
        })
        .collect()
}

/// Oracle snapshots: `states[0]` is the post-setup state, `states[i]` the
/// state after step `i` (1-based).
fn oracle_states(cfg: &TortureConfig, steps: &[Step]) -> Vec<State> {
    let mut state: State = (0..cfg.cells).map(|id| (id, 0)).collect();
    let mut states = vec![state.clone()];
    for s in steps {
        if let Some(id) = s.insert {
            state.insert(id, id as i64);
        }
        if let Some((id, delta)) = s.bump {
            *state.get_mut(&id).expect("bump target exists") += delta;
        }
        if let Some((a, b, delta)) = s.transfer {
            *state.get_mut(&a).expect("transfer source exists") += delta;
            *state.get_mut(&b).expect("transfer target exists") -= delta;
        }
        states.push(state.clone());
    }
    states
}

/// Everything one workload instance needs to run and then be inspected.
struct Rig {
    mem: MemStore,
    counter: VolatileCounter,
    secret: MemSecretStore,
    plan: FaultPlan,
    db: Database,
}

fn db_config(shards: usize) -> DatabaseConfig {
    let mut chunk = ChunkStoreConfig::small_for_tests();
    chunk.shards = shards;
    DatabaseConfig {
        chunk,
        ..Default::default()
    }
}

impl Rig {
    /// Create a database and run the fault-free setup transaction, with
    /// tracing on from the first byte (tamper picks need the full write
    /// history). Returns the rig plus the setup-phase trace.
    fn new(cfg: &TortureConfig) -> (Rig, Vec<FaultEvent>) {
        let mem = MemStore::new();
        let counter = VolatileCounter::new();
        let secret = MemSecretStore::from_label("torture");
        let plan = FaultPlan::unlimited();
        plan.set_tracing(true);
        let (classes, extractors) = registries();
        let db = Database::create(
            Arc::new(FaultStore::new(mem.clone(), plan.clone())),
            &secret,
            Arc::new(counter.clone()),
            classes,
            extractors,
            db_config(cfg.shards),
        )
        .expect("fault-free create");
        let t = db.begin();
        let c = t
            .create_collection("cells", &specs())
            .expect("create collection");
        for id in 0..cfg.cells {
            c.insert(Box::new(Cell { id, val: 0 }))
                .expect("setup insert");
        }
        drop(c);
        t.commit(Durability::Durable).expect("setup commit");
        let setup_trace = plan.take_trace();
        (
            Rig {
                mem,
                counter,
                secret,
                plan,
                db,
            },
            setup_trace,
        )
    }
}

/// Execute one scripted step; any error means the simulated crash fired.
fn run_step(db: &Database, step: &Step) -> Result<(), String> {
    let t = db.begin();
    let body = (|| -> Result<(), String> {
        let c = t.write_collection("cells").map_err(|e| e.to_string())?;
        if let Some(id) = step.insert {
            c.insert(Box::new(Cell { id, val: id as i64 }))
                .map_err(|e| e.to_string())?;
        }
        if let Some((id, delta)) = step.bump {
            let mut it = c.exact("by-id", &Key::U64(id)).map_err(|e| e.to_string())?;
            {
                let cell = it.write::<Cell>().map_err(|e| e.to_string())?;
                cell.get_mut().val += delta;
            }
            it.close().map_err(|e| e.to_string())?;
        }
        if let Some((a, b, delta)) = step.transfer {
            for (id, d) in [(a, delta), (b, -delta)] {
                let mut it = c.exact("by-id", &Key::U64(id)).map_err(|e| e.to_string())?;
                {
                    let cell = it.write::<Cell>().map_err(|e| e.to_string())?;
                    cell.get_mut().val += d;
                }
                it.close().map_err(|e| e.to_string())?;
            }
        }
        Ok(())
    })();
    body?;
    t.commit(Durability::from(step.durable))
        .map_err(|e| e.to_string())
}

/// How far the workload got before the crash fired.
struct RunResult {
    /// Highest step index (1-based) whose *durable* commit was
    /// acknowledged; 0 if none beyond setup.
    last_durable_acked: usize,
    /// Step index the crash surfaced in (1-based); `steps + 1` if the
    /// whole script completed.
    crashed_step: usize,
}

fn run_script(db: &Database, steps: &[Step]) -> RunResult {
    let mut last_durable_acked = 0;
    for (i, step) in steps.iter().enumerate() {
        match run_step(db, step) {
            Ok(()) => {
                if step.durable {
                    last_durable_acked = i + 1;
                }
                if step.maintain {
                    // Maintenance mutates no data, but an acknowledged
                    // checkpoint is a durable event: it hardens every
                    // commit so far, including nondurable ones, so the
                    // oracle's durable frontier advances to this step. A
                    // crash inside the checkpoint or the cleaning pass
                    // surfaces here like any other crash; the admissible
                    // range still covers this step inclusively (its
                    // maintenance may have hardened state before dying).
                    let chunks = db.chunk_store();
                    if chunks.checkpoint().is_err() {
                        return RunResult {
                            last_durable_acked,
                            crashed_step: i + 1,
                        };
                    }
                    last_durable_acked = i + 1;
                    if chunks.clean().is_err() {
                        return RunResult {
                            last_durable_acked,
                            crashed_step: i + 1,
                        };
                    }
                }
            }
            Err(_) => {
                return RunResult {
                    last_durable_acked,
                    crashed_step: i + 1,
                };
            }
        }
    }
    RunResult {
        last_durable_acked,
        crashed_step: steps.len() + 1,
    }
}

/// Read the full recovered state back (every readable cell). A read-side
/// tamper detection surfaces as `Err` carrying the layer error, so callers
/// can classify it by [`tdb::ErrorKind`].
fn read_state(db: &Database) -> Result<State, TdbError> {
    let t = db.begin();
    let c = t.read_collection("cells")?;
    let mut state = State::new();
    let mut it = c.scan("by-id")?;
    while !it.end() {
        let cell = it.read::<Cell>()?;
        state.insert(cell.get().id, cell.get().val);
        drop(cell);
        it.next();
    }
    it.close()?;
    Ok(state)
}

/// Whether `state` is admissible given `window`, the oracle states
/// `states[lo..]` from the durable frontier (step `lo`) through the
/// crashed step (oldest first). Returns `Ok(Some(i))` for an exact match
/// with `window[i]`, `Ok(None)` for a relaxed-only match, `Err(why)` for
/// an inadmissible state.
///
/// With one shard the recovered state must be an **exact script prefix**:
/// one of the window states, nothing torn or merged. With 2+ shards each
/// shard replays its own log to its own frontier (a checkpoint on one
/// shard hardens lazy commits the others lost), so the exact-prefix demand
/// is unsound; the oracle relaxes to what the sharded store does
/// guarantee:
///
/// * **per-cell windows** — every cell's recovered value appears for that
///   cell in some window state, cells present at the durable frontier are
///   present, and no cell exists that the window never contains;
/// * **all-or-nothing transfers** — for every transfer step in the
///   window, the positions its two cells' recovered values can occupy in
///   the window must agree on whether the transfer applied. A torn
///   transfer (one leg applied, the other lost) pins one cell before the
///   step and the other at-or-after it, and is rejected.
fn admissible_at(
    cfg: &TortureConfig,
    steps: &[Step],
    lo: usize,
    window: &[State],
    state: &State,
) -> Result<Option<usize>, String> {
    if let Some(at) = window.iter().position(|s| s == state) {
        return Ok(Some(at));
    }
    if cfg.shards == 1 {
        return Err("state matches no admissible script prefix".into());
    }
    let frontier = window.first().expect("window is never empty");
    for id in frontier.keys() {
        if !state.contains_key(id) {
            return Err(format!(
                "cell {id} present at the durable frontier is missing"
            ));
        }
    }
    for (id, val) in state {
        if !window.iter().any(|s| s.get(id) == Some(val)) {
            return Err(format!(
                "cell {id} recovered as {val}, which no admissible state contains"
            ));
        }
    }
    for (t, step) in steps.iter().enumerate().map(|(i, s)| (i + 1, s)) {
        let Some((a, b, _)) = step.transfer else {
            continue;
        };
        if t <= lo {
            continue; // durably applied before the window
        }
        let wt = t - lo;
        if wt >= window.len() {
            break; // never executed; later steps are out of the window too
        }
        // Window positions each cell's recovered value can occupy, split
        // at the transfer: positions < wt exclude it, >= wt include it.
        let spans = |id: u64| -> (bool, bool) {
            let mut pre = false;
            let mut post = false;
            for (j, s) in window.iter().enumerate() {
                if s.get(&id) == state.get(&id) {
                    if j < wt {
                        pre = true;
                    } else {
                        post = true;
                    }
                }
            }
            (pre, post)
        };
        let (a_pre, a_post) = spans(a);
        let (b_pre, b_post) = spans(b);
        if !((a_pre && b_pre) || (a_post && b_post)) {
            return Err(format!(
                "transfer atomicity violated at step {t}: cells {a} and {b} disagree \
                 on whether the transfer applied"
            ));
        }
    }
    Ok(None)
}

/// One swept crash point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrashPoint {
    /// Schedule armed for this run (indices relative to end of setup).
    pub schedule: CrashSchedule,
    /// Stable label for reports.
    pub label: String,
}

/// Outcome counters for the whole sweep. `PartialEq` so a determinism
/// check can compare two full runs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TortureReport {
    /// Write boundaries recorded by the enumeration replay.
    pub write_boundaries: u64,
    /// Sync boundaries recorded by the enumeration replay.
    pub sync_boundaries: u64,
    /// Crash points actually swept (must equal `2 * write_boundaries +
    /// sync_boundaries`).
    pub crash_points_swept: u64,
    /// Pure-crash recoveries that succeeded with an admissible state.
    pub recoveries_ok: u64,
    /// Recoveries that landed exactly on the durable frontier (the newest
    /// admissible state).
    pub recovered_at_frontier: u64,
    /// Proof spot checks passed: after each pure-crash recovery, one
    /// proof-carrying read (keyed lookup + chunk inclusion) must verify
    /// against the recovered store's trust anchor. Must equal
    /// `crash_points_swept`.
    pub proof_checks: u64,
    /// Tampers whose mutation did not survive the pick (nothing changed).
    pub tampers_skipped: u64,
    /// Tampers injected (bytes actually changed).
    pub tampers_injected: u64,
    /// Injected tampers rejected at recovery or read time.
    pub tampers_detected: u64,
    /// Detected tampers broken down by the stable [`ErrorKind`] the
    /// rejection surfaced as (key is the kind's `Debug` name). Every
    /// detection must classify as a security kind — `Tamper`, `Replay` or
    /// `Io` — never as a usage or not-found error.
    pub tampers_detected_by_kind: BTreeMap<String, u64>,
    /// Injected tampers recovery absorbed while still producing an
    /// admissible state (the mutation only touched discarded bytes).
    pub tampers_harmless: u64,
    /// Injected tampers that produced an inadmissible state — must be 0.
    pub silent_corruptions: u64,
    /// Human-readable descriptions of every silent corruption.
    pub failures: Vec<String>,
}

/// Enumerate the workload's crash points: one fault-free replay with
/// tracing on. Returns the sweep schedule.
fn enumerate_boundaries(cfg: &TortureConfig, steps: &[Step]) -> (u64, u64, Vec<CrashPoint>) {
    let (rig, _setup) = Rig::new(cfg);
    // Reset operation counters so schedule indices are relative to the end
    // of setup, without disturbing tracing.
    rig.plan.rearm_with(CrashSchedule::Never);
    let result = run_script(&rig.db, steps);
    assert_eq!(
        result.crashed_step,
        steps.len() + 1,
        "enumeration replay must run fault-free"
    );
    let trace = rig.plan.take_trace();
    let writes = trace
        .iter()
        .filter(|e| matches!(e, FaultEvent::Write(_)))
        .count() as u64;
    let syncs = trace
        .iter()
        .filter(|e| matches!(e, FaultEvent::Sync { .. }))
        .count() as u64;
    let mut points = Vec::new();
    for k in 0..writes {
        points.push(CrashPoint {
            schedule: CrashSchedule::OnWrite {
                index: k,
                cut_num: 1,
                cut_den: 2,
            },
            label: format!("write#{k}@1/2"),
        });
        points.push(CrashPoint {
            schedule: CrashSchedule::OnWrite {
                index: k,
                cut_num: 1,
                cut_den: 1,
            },
            label: format!("write#{k}@full"),
        });
    }
    for j in 0..syncs {
        points.push(CrashPoint {
            schedule: CrashSchedule::OnSync { index: j },
            label: format!("sync#{j}"),
        });
    }
    (writes, syncs, points)
}

/// A fresh one-way counter holding `value` (clones of the workload's
/// counter share state, which post-crash experiments must not pollute).
fn counter_at(value: u64) -> VolatileCounter {
    let c = VolatileCounter::new();
    for _ in 0..value {
        c.increment().expect("volatile counter increment");
    }
    c
}

/// Run the full torture sweep. Panics (with context) on any violated
/// invariant so test harnesses fail loudly; returns the report otherwise.
pub fn run_torture(cfg: &TortureConfig) -> TortureReport {
    run_torture_with_obs(cfg).0
}

/// [`run_torture`], additionally returning the merged observability
/// snapshot of every workload rig and every pure-crash recovery — commit
/// phase spans from the sweeps plus `recovery.*` timings from each re-open.
/// (Tamper-attack opens are excluded: their timings describe sabotaged
/// inputs.) Kept out of [`TortureReport`] so the report stays `Eq` for the
/// determinism double-run check.
pub fn run_torture_with_obs(cfg: &TortureConfig) -> (TortureReport, tdb::obs::RegistrySnapshot) {
    assert!(
        cfg.cells > 0,
        "torture workload needs at least one cell (--cells)"
    );
    assert!(
        cfg.shards == 1 || cfg.cells >= 2,
        "sharded torture transfers need at least two cells (--cells)"
    );
    let steps = script(cfg);
    let states = oracle_states(cfg, &steps);
    let (writes, syncs, points) = enumerate_boundaries(cfg, &steps);
    // Torture runs few commits and wants full phase attribution for the
    // telemetry report, so disable hot-path sampling.
    tdb::obs::set_phase_sample_every(1);
    let mut obs = tdb::obs::RegistrySnapshot::default();
    let mut report = TortureReport {
        write_boundaries: writes,
        sync_boundaries: syncs,
        ..Default::default()
    };

    for (pi, point) in points.iter().enumerate() {
        let (rig, setup_trace) = Rig::new(cfg);
        rig.plan.rearm_with(point.schedule.clone());
        let run = run_script(&rig.db, &steps);
        assert!(
            rig.plan.has_crashed(),
            "{}: schedule never fired — enumeration and sweep disagree",
            point.label
        );
        let mut full_trace = setup_trace;
        full_trace.extend(rig.plan.take_trace());
        // The crash-time hardware counter value; recovery experiments below
        // each get their own copy so one run's benign counter repair cannot
        // leak into the next.
        let hw = rig.counter.read().expect("counter read");
        // Admissible recovered states: any script prefix from the last
        // durably-acknowledged step through the step the crash surfaced in,
        // *inclusive* — the crashed step's commit may have fully landed
        // before the power went out (its acknowledgement, not its data, is
        // what was lost). Nondurable steps inside the range are admissible
        // only because an automatic checkpoint may have hardened them;
        // losing them is equally legal.
        let admissible = &states[run.last_durable_acked..(run.crashed_step + 1).min(states.len())];

        // ---- pure crash: recovery must succeed and land admissibly -----
        let pristine = rig.mem.deep_clone();
        let recovered = {
            let (classes, extractors) = registries();
            Database::open(
                Arc::new(pristine),
                &rig.secret,
                Arc::new(counter_at(hw)),
                classes,
                extractors,
                db_config(cfg.shards),
            )
        };
        let db = match recovered {
            Ok(db) => db,
            Err(e) => panic!("{}: pure-crash recovery failed: {e}", point.label),
        };
        let state = read_state(&db)
            .unwrap_or_else(|e| panic!("{}: pure-crash read-back failed: {e}", point.label));
        let at = match admissible_at(cfg, &steps, run.last_durable_acked, admissible, &state) {
            Ok(at) => at,
            Err(why) => panic!(
                "{}: SILENT CORRUPTION on pure crash — {why} \
                 (durable frontier {} .. crashed step {})\n\
                 recovered: {state:?}\nadmissible: {admissible:?}",
                point.label, run.last_durable_acked, run.crashed_step
            ),
        };
        report.recoveries_ok += 1;
        if at == Some(admissible.len() - 1) {
            report.recovered_at_frontier += 1;
        }
        let chunks = db.chunk_store();
        for (shard, rr) in chunks.recovery_reports().into_iter().enumerate() {
            let rr = rr.expect("opened store carries a recovery report per shard");
            assert_eq!(
                rr.last_seq - rr.base_seq,
                rr.commits_replayed,
                "{}: shard {shard} recovery report inconsistent: {rr:?}",
                point.label
            );
        }
        // Proof spot check: the recovered store must still mint proofs a
        // standalone verifier accepts — crash recovery (and any cleaner
        // work it triggered) must not disturb the trust layer.
        {
            let verifier =
                tdb::proof::Verifier::new(chunks.trust_anchor().expect("recovered trust anchor"));
            let r = db.collections().begin_read();
            let c = r.read_collection("cells").expect("cells collection");
            let hit = c
                .exact_proven("by-id", &Key::U64(0))
                .expect("proven lookup after recovery");
            assert_eq!(
                hit.entries.len(),
                1,
                "{}: setup cell 0 missing after recovery",
                point.label
            );
            let ids = verifier.verify_keyed(&hit.proof).unwrap_or_else(|e| {
                panic!("{}: keyed proof rejected after recovery: {e}", point.label)
            });
            assert_eq!(ids, vec![hit.entries[0].1 .0]);
            let proven = r
                .object_reader()
                .read_proven_bytes(hit.entries[0].1)
                .expect("proven read after recovery");
            let bytes = proven.value.clone().expect("cell 0 bytes");
            let proof = proven.prove().expect("prove after recovery");
            verifier
                .verify_chunk(&proof, Some(&bytes))
                .unwrap_or_else(|e| {
                    panic!(
                        "{}: inclusion proof rejected after recovery: {e}",
                        point.label
                    )
                });
            report.proof_checks += 1;
        }
        obs.merge(&db.obs().snapshot());
        drop(db);
        obs.merge(&rig.db.obs().snapshot());

        // ---- post-crash tampers ---------------------------------------
        let mut rng =
            rand::rngs::StdRng::seed_from_u64(cfg.seed ^ (pi as u64).wrapping_mul(0x9E37_79B9));
        let modes = [
            TamperMode::BitFlip {
                pick: rng.next_u64(),
            },
            TamperMode::BlockSwap {
                pick_a: rng.next_u64(),
                pick_b: rng.next_u64(),
                block: 32,
            },
            TamperMode::Rollback {
                pick: rng.next_u64(),
            },
        ];
        for mode in &modes {
            let victim = rig.mem.deep_clone();
            let receipt = apply_tamper(&victim, &full_trace, mode)
                .unwrap_or_else(|e| panic!("{}: tamper application failed: {e}", point.label));
            let Some(receipt) = receipt else {
                report.tampers_skipped += 1;
                continue;
            };
            if !receipt.changed {
                report.tampers_skipped += 1;
                continue;
            }
            report.tampers_injected += 1;
            let (classes, extractors) = registries();
            let outcome = Database::open(
                Arc::new(victim),
                &rig.secret,
                Arc::new(counter_at(hw)),
                classes,
                extractors,
                db_config(cfg.shards),
            );
            let verdict = match outcome {
                Err(e) => Ok(e.kind()),
                Ok(db) => match read_state(&db) {
                    Err(e) => Ok(e.kind()),
                    Ok(state) => {
                        if admissible_at(cfg, &steps, run.last_durable_acked, admissible, &state)
                            .is_ok()
                        {
                            Err(true) // absorbed, but harmless
                        } else {
                            Err(false) // silent corruption
                        }
                    }
                },
            };
            match verdict {
                Ok(kind) => {
                    assert!(
                        matches!(kind, ErrorKind::Tamper | ErrorKind::Replay | ErrorKind::Io),
                        "{}: tamper rejection surfaced as {kind:?}, not a security kind \
                         ({})",
                        point.label,
                        receipt.description
                    );
                    report.tampers_detected += 1;
                    *report
                        .tampers_detected_by_kind
                        .entry(format!("{kind:?}"))
                        .or_insert(0) += 1;
                }
                Err(true) => report.tampers_harmless += 1,
                Err(false) => {
                    report.silent_corruptions += 1;
                    report.failures.push(format!(
                        "{}: SILENT CORRUPTION — {} absorbed into an inadmissible state",
                        point.label, receipt.description
                    ));
                }
            }
        }
        if cfg.verbose {
            println!(
                "crash {:>4}/{} {:<16} durable-frontier={} crashed-step={}",
                pi + 1,
                points.len(),
                point.label,
                run.last_durable_acked,
                run.crashed_step
            );
        }
        report.crash_points_swept += 1;
    }

    assert_eq!(
        report.crash_points_swept,
        2 * report.write_boundaries + report.sync_boundaries,
        "sweep must cover every enumerated boundary"
    );
    assert_eq!(
        report.proof_checks, report.crash_points_swept,
        "every crash point must pass its post-recovery proof spot check"
    );
    assert_eq!(
        report.silent_corruptions,
        0,
        "torture sweep found silent corruptions:\n{}",
        report.failures.join("\n")
    );
    assert_eq!(
        report.tampers_detected_by_kind.values().sum::<u64>(),
        report.tampers_detected,
        "per-kind detection counts must cover every detection"
    );
    assert_eq!(
        report.tampers_injected,
        report.tampers_detected + report.tampers_harmless,
        "every injected tamper must be classified"
    );
    (report, obs)
}
