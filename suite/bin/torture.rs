//! `tdb-torture` — exhaustive crash-point torture run against the full
//! stack. See `suite/torture.rs` for the harness itself.
//!
//! ```text
//! tdb-torture [--cells N] [--steps N] [--seed N] [--quiet]
//! ```
//!
//! Exits nonzero (panics) if any crash point recovers to an inadmissible
//! state or any injected tamper goes undetected without being harmless.

use tdb_suite::torture::{run_torture, TortureConfig};

fn main() {
    let mut cfg = TortureConfig {
        cells: 6,
        steps: 16,
        seed: 7,
        verbose: true,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |name: &str| -> u64 {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} needs a numeric argument"))
        };
        match arg.as_str() {
            "--cells" => cfg.cells = num("--cells"),
            "--steps" => cfg.steps = num("--steps"),
            "--seed" => cfg.seed = num("--seed"),
            "--quiet" => cfg.verbose = false,
            "--help" | "-h" => {
                println!("usage: tdb-torture [--cells N] [--steps N] [--seed N] [--quiet]");
                return;
            }
            other => panic!("unknown argument {other:?} (try --help)"),
        }
    }

    let report = run_torture(&cfg);
    println!();
    println!("torture sweep complete (seed {})", cfg.seed);
    println!("  write boundaries     {:>6}", report.write_boundaries);
    println!("  sync boundaries      {:>6}", report.sync_boundaries);
    println!("  crash points swept   {:>6}", report.crash_points_swept);
    println!("  recoveries ok        {:>6}", report.recoveries_ok);
    println!("  … at durable frontier{:>6}", report.recovered_at_frontier);
    println!("  tampers injected     {:>6}", report.tampers_injected);
    println!("  … detected           {:>6}", report.tampers_detected);
    println!("  … harmless           {:>6}", report.tampers_harmless);
    println!("  … skipped (no-op)    {:>6}", report.tampers_skipped);
    println!("  silent corruptions   {:>6}", report.silent_corruptions);
}
