//! `tdb-torture` — exhaustive crash-point torture run against the full
//! stack. See `suite/torture.rs` for the harness itself.
//!
//! ```text
//! tdb-torture [--cells N] [--steps N] [--seed N] [--shards N] [--quiet]
//! ```
//!
//! Exits nonzero (panics) if any crash point recovers to an inadmissible
//! state or any injected tamper goes undetected without being harmless.

use tdb::obs::Json;
use tdb_bench::telemetry::{
    bench_doc, counters_json, histograms_json, latency_ms_json, push_result, write_bench_json,
};
use tdb_suite::torture::{run_torture_with_obs, TortureConfig};

fn main() {
    let mut cfg = TortureConfig {
        cells: 6,
        steps: 16,
        seed: 7,
        shards: 1,
        verbose: true,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |name: &str| -> u64 {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} needs a numeric argument"))
        };
        match arg.as_str() {
            "--cells" => cfg.cells = num("--cells"),
            "--steps" => cfg.steps = num("--steps"),
            "--seed" => cfg.seed = num("--seed"),
            "--shards" => cfg.shards = num("--shards") as usize,
            "--quiet" => cfg.verbose = false,
            "--help" | "-h" => {
                println!(
                    "usage: tdb-torture [--cells N] [--steps N] [--seed N] [--shards N] [--quiet]"
                );
                return;
            }
            other => panic!("unknown argument {other:?} (try --help)"),
        }
    }

    let (report, obs) = run_torture_with_obs(&cfg);
    println!();
    println!("torture sweep complete (seed {})", cfg.seed);
    println!("  write boundaries     {:>6}", report.write_boundaries);
    println!("  sync boundaries      {:>6}", report.sync_boundaries);
    println!("  crash points swept   {:>6}", report.crash_points_swept);
    println!("  recoveries ok        {:>6}", report.recoveries_ok);
    println!("  … at durable frontier{:>6}", report.recovered_at_frontier);
    println!("  proof spot checks    {:>6}", report.proof_checks);
    println!("  tampers injected     {:>6}", report.tampers_injected);
    println!("  … detected           {:>6}", report.tampers_detected);
    for (kind, n) in &report.tampers_detected_by_kind {
        println!("    … as {:<12}    {:>6}", kind, n);
    }
    println!("  … harmless           {:>6}", report.tampers_harmless);
    println!("  … skipped (no-op)    {:>6}", report.tampers_skipped);
    println!("  silent corruptions   {:>6}", report.silent_corruptions);

    let mut config = Json::obj();
    config.push("cells", cfg.cells);
    config.push("steps", cfg.steps);
    config.push("seed", cfg.seed);
    config.push("shards", cfg.shards as u64);
    let mut doc = bench_doc("torture", config);
    let mut row = Json::obj();
    row.push("system", "TDB");
    row.push("crash_points_swept", report.crash_points_swept);
    row.push("recoveries_ok", report.recoveries_ok);
    row.push("proof_checks", report.proof_checks);
    row.push("tampers_injected", report.tampers_injected);
    row.push("tampers_detected", report.tampers_detected);
    let mut by_kind = Json::obj();
    for (kind, n) in &report.tampers_detected_by_kind {
        by_kind.push(kind, *n);
    }
    row.push("tampers_detected_by_kind", by_kind);
    row.push("silent_corruptions", report.silent_corruptions);
    if let Some(commit) = obs.histograms.get("commit.total") {
        row.push("latency_ms", latency_ms_json(commit));
    }
    row.push("phases_ns", histograms_json(&obs, "commit."));
    row.push("recovery_ns", histograms_json(&obs, "recovery."));
    row.push("counters", counters_json(&obs));
    push_result(&mut doc, row);
    write_bench_json("torture", &doc).expect("write bench json");
}
