//! An e-book reader's ledger with full + incremental backups and a
//! device-migration restore — the backup store of paper §2 end to end,
//! including what happens when the archive is corrupted in transit.
//!
//! ```sh
//! cargo run --example backup_restore
//! ```

use std::ops::Bound;
use std::sync::Arc;
use tdb::platform::{ArchivalStore, MemArchive, MemSecretStore, MemStore, VolatileCounter};
use tdb::{
    impl_persistent_boilerplate, ClassRegistry, Database, DatabaseConfig, Db, Durability,
    ExtractorRegistry, IndexKind, IndexSpec, Key, Options, Persistent, PickleError, Pickler,
    Unpickler,
};

const CLASS_BOOK: u32 = 0xB00C_0001;

struct BookLedger {
    title: String,
    pages_read: i64,
}

impl Persistent for BookLedger {
    impl_persistent_boilerplate!(CLASS_BOOK);
    fn pickle(&self, w: &mut Pickler) {
        w.string(&self.title);
        w.i64(self.pages_read);
    }
}

fn unpickle_book(r: &mut Unpickler) -> Result<Box<dyn Persistent>, PickleError> {
    Ok(Box::new(BookLedger {
        title: r.string()?,
        pages_read: r.i64()?,
    }))
}

fn registries() -> (ClassRegistry, ExtractorRegistry) {
    let mut classes = ClassRegistry::new();
    classes.register(CLASS_BOOK, "BookLedger", unpickle_book);
    let mut extractors = ExtractorRegistry::new();
    extractors.register("book.title", |o| {
        tdb::extractor_typed::<BookLedger>(o, |b| Key::str(b.title.clone()))
    });
    // A functional index on a *derived* value — progress bucket — which
    // offset-based ISAM indexes cannot express (paper §5.1.1).
    extractors.register("book.progress", |o| {
        tdb::extractor_typed::<BookLedger>(o, |b| Key::I64(b.pages_read / 100))
    });
    (classes, extractors)
}

fn new_device(label: &str) -> (Db, MemSecretStore) {
    let secret = MemSecretStore::from_label(label);
    let (classes, extractors) = registries();
    let db = Db::open(
        Options::in_memory()
            .with_substrates(
                Arc::new(MemStore::new()),
                secret.clone(),
                Arc::new(VolatileCounter::new()),
            )
            .classes(classes)
            .extractors(extractors),
    )
    .unwrap();
    (db, secret)
}

/// Restore the archive's latest chain onto a brand-new (empty) device.
fn restore_device(archive: &dyn ArchivalStore, label: &str) -> Result<Database, tdb::TdbError> {
    let secret = MemSecretStore::from_label(label);
    let (classes, extractors) = registries();
    Database::restore_latest_from(
        archive,
        Arc::new(MemStore::new()),
        &secret,
        Arc::new(VolatileCounter::new()),
        classes,
        extractors,
        DatabaseConfig::default(),
    )
}

fn main() {
    // Same platform secret on both devices (provisioned by the DRM
    // authority); separate one-way counters and storage.
    let (db, secret) = new_device("reader-family-secret");

    let t = db.begin();
    let books = t
        .create_collection(
            "books",
            &[
                IndexSpec::new("by-title", "book.title", true, IndexKind::BTree),
                IndexSpec::new("by-progress", "book.progress", false, IndexKind::BTree),
            ],
        )
        .unwrap();
    for (title, pages) in [
        ("Anathem", 250),
        ("Permutation City", 40),
        ("The Dispossessed", 0),
    ] {
        books
            .insert(Box::new(BookLedger {
                title: title.into(),
                pages_read: pages,
            }))
            .unwrap();
    }
    drop(books);
    t.commit(Durability::Durable).unwrap();

    // Nightly full backup to the archival store.
    let archive = Arc::new(MemArchive::new());
    let mut mgr = db.backup_manager(archive.clone(), &secret).unwrap();
    let full = mgr
        .backup_full(db.chunk_store().unsharded("backup_full").unwrap())
        .unwrap();
    println!(
        "full backup:        {full} ({} bytes)",
        archive.len_of(&full).unwrap()
    );

    // Read a few pages, take a small incremental.
    let t = db.begin();
    let books = t.write_collection("books").unwrap();
    let mut it = books
        .exact("by-title", &Key::str("Permutation City"))
        .unwrap();
    {
        let b = it.write::<BookLedger>().unwrap();
        b.get_mut().pages_read += 120;
    }
    it.close().unwrap();
    drop(books);
    t.commit(Durability::Durable).unwrap();
    let incr = mgr
        .backup_incremental(db.chunk_store().unsharded("backup_incremental").unwrap())
        .unwrap();
    println!(
        "incremental backup: {incr} ({} bytes — snapshot-diff pruned)",
        archive.len_of(&incr).unwrap()
    );

    // The reader is dropped in a lake. Restore onto a new device.
    let replacement = restore_device(&*archive, "reader-family-secret").unwrap();
    // Verify through a snapshot-isolated read transaction (layer API — the
    // restore handed back a `Database`).
    let r = replacement.collections().begin_read();
    let books = r.read_collection("books").unwrap();
    let ids = books
        .exact("by-title", &Key::str("Permutation City"))
        .unwrap();
    let pages = books
        .get::<BookLedger, _>(ids[0], |b| b.pages_read)
        .unwrap();
    println!("restored ledger:    Permutation City at page {pages}");
    assert_eq!(pages, 160);

    // Range query on the derived-progress index: books with 100+ pages read.
    print!("well underway:     ");
    for (_key, oid) in books
        .range(
            "by-progress",
            Bound::Included(&Key::I64(1)),
            Bound::Unbounded,
        )
        .unwrap()
    {
        let title = books
            .get::<BookLedger, _>(oid, |b| b.title.clone())
            .unwrap();
        print!(" {title:?}");
    }
    println!();
    r.finish();

    // A corrupted backup never restores, and never half-restores.
    archive.corrupt(&full, 50, 4).unwrap();
    match restore_device(&*archive, "reader-family-secret") {
        Err(e) => println!("corrupted archive rejected: {e}"),
        Ok(_) => unreachable!("corruption must be detected"),
    }
}
