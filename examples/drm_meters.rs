//! The paper's motivating DRM scenario (§1): enforce contracts like
//! "pay-per-view", "free after first ten paid views", and a prepaid
//! account balance — all state that has monetary value and must survive
//! crashes, resist tampering, and stay secret on the consumer's device.
//!
//! ```sh
//! cargo run --example drm_meters
//! ```

use tdb::{
    impl_persistent_boilerplate, ClassRegistry, CollectionError, Db, Durability, ExtractorRegistry,
    IndexKind, IndexSpec, Key, Options, Persistent, PickleError, Pickler, TdbError, Unpickler,
};

// --- Schema ----------------------------------------------------------------

const CLASS_CONTRACT: u32 = 0xD4A0_0001;
const CLASS_WALLET: u32 = 0xD4A0_0002;

/// Contract kinds from the paper's introduction.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Terms {
    PayPerView { cents: i64 },
    FreeAfterPaidViews { cents: i64, free_after: i64 },
}

struct Contract {
    content_id: u64,
    terms: Terms,
    views: i64,
}

impl Persistent for Contract {
    impl_persistent_boilerplate!(CLASS_CONTRACT);
    fn pickle(&self, w: &mut Pickler) {
        w.u64(self.content_id);
        match self.terms {
            Terms::PayPerView { cents } => {
                w.u8(0);
                w.i64(cents);
            }
            Terms::FreeAfterPaidViews { cents, free_after } => {
                w.u8(1);
                w.i64(cents);
                w.i64(free_after);
            }
        }
        w.i64(self.views);
    }
}

fn unpickle_contract(r: &mut Unpickler) -> Result<Box<dyn Persistent>, PickleError> {
    let content_id = r.u64()?;
    let terms = match r.u8()? {
        0 => Terms::PayPerView { cents: r.i64()? },
        1 => Terms::FreeAfterPaidViews {
            cents: r.i64()?,
            free_after: r.i64()?,
        },
        t => return Err(PickleError(format!("bad terms tag {t}"))),
    };
    Ok(Box::new(Contract {
        content_id,
        terms,
        views: r.i64()?,
    }))
}

struct Wallet {
    owner: String,
    balance_cents: i64,
}

impl Persistent for Wallet {
    impl_persistent_boilerplate!(CLASS_WALLET);
    fn pickle(&self, w: &mut Pickler) {
        w.string(&self.owner);
        w.i64(self.balance_cents);
    }
}

fn unpickle_wallet(r: &mut Unpickler) -> Result<Box<dyn Persistent>, PickleError> {
    Ok(Box::new(Wallet {
        owner: r.string()?,
        balance_cents: r.i64()?,
    }))
}

// --- The consumption operation ---------------------------------------------

/// One "view" of a piece of content: look up the contract, decide the
/// price, debit the wallet, bump the meter — atomically. Insufficient
/// funds abort the whole transaction.
fn view(db: &Db, content_id: u64) -> Result<i64, String> {
    let t = db.begin();
    let price = {
        let contracts = t.write_collection("contracts").map_err(|e| e.to_string())?;
        let mut it = contracts
            .exact("by-content", &Key::U64(content_id))
            .map_err(|e| e.to_string())?;
        if it.end() {
            return Err(format!("no contract for content {content_id}"));
        }
        let price = {
            let c = it.write::<Contract>().map_err(|e| e.to_string())?;
            let mut c = c.get_mut();
            let price = match c.terms {
                Terms::PayPerView { cents } => cents,
                Terms::FreeAfterPaidViews { cents, free_after } => {
                    if c.views >= free_after {
                        0
                    } else {
                        cents
                    }
                }
            };
            c.views += 1;
            price
        };
        it.close().map_err(|e| e.to_string())?;
        price
    };

    if price > 0 {
        let wallet_id = t.root("wallet").expect("wallet registered");
        let wallets = t.write_collection("wallets").map_err(|e| e.to_string())?;
        let mut it = wallets.scan("by-owner").map_err(|e| e.to_string())?;
        let mut debited = false;
        while !it.end() {
            if it.current() == Some(wallet_id) {
                let w = it.write::<Wallet>().map_err(|e| e.to_string())?;
                let mut w = w.get_mut();
                if w.balance_cents < price {
                    drop(w);
                    drop(it);
                    drop(wallets);
                    t.abort(); // monetary state: all-or-nothing
                    return Err("insufficient funds".into());
                }
                w.balance_cents -= price;
                debited = true;
            }
            it.next();
        }
        it.close().map_err(|e| e.to_string())?;
        assert!(debited);
    }
    t.commit(Durability::Durable).map_err(|e| e.to_string())?;
    Ok(price)
}

fn main() {
    let mut classes = ClassRegistry::new();
    classes.register(CLASS_CONTRACT, "Contract", unpickle_contract);
    classes.register(CLASS_WALLET, "Wallet", unpickle_wallet);
    let mut extractors = ExtractorRegistry::new();
    extractors.register("contract.content", |o| {
        tdb::extractor_typed::<Contract>(o, |c| Key::U64(c.content_id))
    });
    extractors.register("wallet.owner", |o| {
        tdb::extractor_typed::<Wallet>(o, |w| Key::str(w.owner.clone()))
    });

    let db = Db::open(
        Options::in_memory()
            .secret_label("drm-device-0001")
            .classes(classes)
            .extractors(extractors),
    )
    .unwrap();

    // Provision the device: two contracts and a $1.00 wallet.
    let t = db.begin();
    let contracts = t
        .create_collection(
            "contracts",
            &[IndexSpec::new(
                "by-content",
                "contract.content",
                true,
                IndexKind::Hash,
            )],
        )
        .unwrap();
    contracts
        .insert(Box::new(Contract {
            content_id: 1,
            terms: Terms::PayPerView { cents: 25 },
            views: 0,
        }))
        .unwrap();
    contracts
        .insert(Box::new(Contract {
            content_id: 2,
            terms: Terms::FreeAfterPaidViews {
                cents: 30,
                free_after: 2,
            },
            views: 0,
        }))
        .unwrap();
    drop(contracts);
    let wallets = t
        .create_collection(
            "wallets",
            &[IndexSpec::new(
                "by-owner",
                "wallet.owner",
                true,
                IndexKind::BTree,
            )],
        )
        .unwrap();
    let wallet_id = wallets
        .insert(Box::new(Wallet {
            owner: "alice".into(),
            balance_cents: 100,
        }))
        .unwrap();
    drop(wallets);
    t.set_root("wallet", wallet_id).unwrap();
    t.commit(Durability::Durable).unwrap();

    // Consume.
    println!(
        "movie #1 (pay-per-view 25c): paid {}c",
        view(&db, 1).unwrap()
    );
    println!(
        "song  #2 (30c, free after 2): paid {}c",
        view(&db, 2).unwrap()
    );
    println!(
        "song  #2 again:               paid {}c",
        view(&db, 2).unwrap()
    );
    println!(
        "song  #2 third time:          paid {}c (now free)",
        view(&db, 2).unwrap()
    );

    // Balance is now 100 - 25 - 30 - 30 = 15, which cannot cover another
    // 25c movie: the transaction must abort, leaving meter AND wallet
    // untouched.
    match view(&db, 1) {
        Err(e) => println!("movie #1 with 15c left: rejected ({e}) — transaction aborted"),
        Ok(_) => unreachable!(),
    }

    // The abort left the meter untouched as well: monetary invariants
    // hold. A snapshot-isolated read transaction verifies this without
    // taking a single lock.
    let wallets = db.collection::<&str, Wallet>("wallets");
    let contracts = db.collection::<u64, Contract>("contracts");
    let r = db.begin_read();
    let balance = wallets
        .get(&r, "by-owner", "alice", |w| w.balance_cents)
        .unwrap()
        .expect("alice's wallet exists");
    println!("final balance: {balance}c");
    assert_eq!(balance, 15);
    let views = contracts
        .get(&r, "by-content", 1, |c| c.views)
        .unwrap()
        .expect("contract 1 exists");
    assert_eq!(views, 1, "aborted view must not count");
    println!("movie #1 recorded views: {views}");
    r.finish();

    // Type errors are caught, not silently mangled (paper §4.1).
    let t = db.begin();
    let contracts = t.read_collection("contracts").unwrap();
    let it = contracts.exact("by-content", &Key::U64(1)).unwrap();
    match it.read::<Wallet>() {
        Err(CollectionError::Object(e)) => println!("wrong-type deref rejected: {e}"),
        other => panic!("expected TypeMismatch, got {:?}", other.map(|_| ())),
    }
    let _ = TdbError::Collection(CollectionError::IteratorConflict); // facade error type in scope
}
