//! Quickstart: create a TDB database on disk, store typed objects in an
//! indexed collection, reopen it, and watch tamper detection fire.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::sync::Arc;
use tdb::platform::{DirStore, FileCounter, FileSecretStore, MemStore, UntrustedStore};
use tdb::{
    impl_persistent_boilerplate, ClassRegistry, Database, DatabaseConfig, ExtractorRegistry,
    IndexKind, IndexSpec, Key, Persistent, PickleError, Pickler, Unpickler,
};

// --- 1. Define a persistent class (the paper's Fig. 4 `Meter`). -----------

const CLASS_METER: u32 = 0x4D45_0001;

struct Meter {
    content_id: u64,
    view_count: i64,
}

impl Persistent for Meter {
    impl_persistent_boilerplate!(CLASS_METER);
    fn pickle(&self, w: &mut Pickler) {
        w.u64(self.content_id);
        w.i64(self.view_count);
    }
}

fn unpickle_meter(r: &mut Unpickler) -> Result<Box<dyn Persistent>, PickleError> {
    Ok(Box::new(Meter {
        content_id: r.u64()?,
        view_count: r.i64()?,
    }))
}

fn registries() -> (ClassRegistry, ExtractorRegistry) {
    let mut classes = ClassRegistry::new();
    classes.register(CLASS_METER, "Meter", unpickle_meter);
    let mut extractors = ExtractorRegistry::new();
    extractors.register("meter.content", |obj| {
        tdb::extractor_typed::<Meter>(obj, |m| Key::U64(m.content_id))
    });
    (classes, extractors)
}

fn main() {
    // --- 2. Platform substrates: a directory as the untrusted store, a
    // file-backed secret and one-way counter (exactly how the paper's own
    // evaluation emulated the counter, §7.2).
    let dir = tempfile::tempdir().expect("tempdir");
    println!("database lives in {:?}", dir.path());
    let untrusted = Arc::new(DirStore::new(dir.path().join("db")).unwrap());
    let secret = FileSecretStore::open_or_init(dir.path().join("secret"), [42u8; 32]).unwrap();
    let counter = Arc::new(FileCounter::open(dir.path().join("counter")).unwrap());

    // --- 3. Create the database and a collection with a unique hash index.
    let (classes, extractors) = registries();
    let db = Database::create(
        untrusted.clone(),
        &secret,
        counter.clone(),
        classes,
        extractors,
        DatabaseConfig::default(),
    )
    .unwrap();

    let t = db.begin();
    let meters = t
        .create_collection(
            "meters",
            &[IndexSpec::new(
                "by-content",
                "meter.content",
                true,
                IndexKind::Hash,
            )],
        )
        .unwrap();
    for content_id in 1..=5u64 {
        meters
            .insert(Box::new(Meter {
                content_id,
                view_count: 0,
            }))
            .unwrap();
    }
    drop(meters);
    t.commit(true).unwrap();
    println!("created 5 meters");

    // --- 4. A consumer views content #3: find by key, update through the
    // iterator (the only writable path — see paper §5.2.2), commit durably.
    let t = db.begin();
    let meters = t.write_collection("meters").unwrap();
    let mut it = meters.exact("by-content", &Key::U64(3)).unwrap();
    {
        let m = it.write::<Meter>().unwrap();
        m.get_mut().view_count += 1;
    }
    it.close().unwrap();
    drop(meters);
    t.commit(true).unwrap();
    println!("content #3 viewed once");

    // --- 5. Reopen (recovery + tamper validation) and read it back.
    drop(db);
    let (classes, extractors) = registries();
    let db = Database::open(
        untrusted,
        &secret,
        counter.clone(),
        classes,
        extractors,
        DatabaseConfig::default(),
    )
    .unwrap();
    let t = db.begin();
    let meters = t.read_collection("meters").unwrap();
    let it = meters.exact("by-content", &Key::U64(3)).unwrap();
    let m = it.read::<Meter>().unwrap();
    println!(
        "after reopen: content #3 has {} view(s)",
        m.get().view_count
    );
    assert_eq!(m.get().view_count, 1);
    drop(m);
    it.close().unwrap();
    drop(meters);
    t.commit(false).unwrap();
    drop(db);

    // --- 6. The attacker's turn: flip one byte of the stored log and try
    // to open the database again. (Using an in-memory copy here so the
    // demo is self-contained; `MemStore::corrupt` is the attacker
    // primitive the test-suite uses throughout.)
    let evil = MemStore::new();
    for name in
        tdb::platform::UntrustedStore::list(&DirStore::new(dir.path().join("db")).unwrap()).unwrap()
    {
        let src = DirStore::new(dir.path().join("db")).unwrap();
        let f = src.open(&name, false).unwrap();
        let len = f.len().unwrap() as usize;
        let mut buf = vec![0u8; len];
        f.read_at(0, &mut buf).unwrap();
        evil.open(&name, true).unwrap().write_at(0, &buf).unwrap();
    }
    evil.corrupt("seg.000000", 100, 64).unwrap();
    let (classes, extractors) = registries();
    let tamper_result = Database::open(
        Arc::new(evil),
        &secret,
        counter,
        classes,
        extractors,
        DatabaseConfig::default(),
    )
    .map_err(|e| e.to_string())
    .and_then(|db| {
        // If the flipped bytes hit a dead log region, the open succeeds —
        // but reading every meter must then trip the Merkle check.
        let t = db.begin();
        let meters = t.read_collection("meters").map_err(|e| e.to_string())?;
        for id in 1..=5u64 {
            let it = meters
                .exact("by-content", &Key::U64(id))
                .map_err(|e| e.to_string())?;
            let _ = it.read::<Meter>().map_err(|e| e.to_string())?;
        }
        Ok(())
    });
    match tamper_result {
        Err(e) => println!("tampered copy rejected: {e}"),
        Ok(()) => unreachable!("tampering must be detected"),
    }
}
