//! Quickstart: create a TDB database on disk, store typed objects in an
//! indexed collection, read it through a snapshot-isolated read
//! transaction, reopen it, and watch tamper detection fire.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::sync::Arc;
use tdb::platform::{DirStore, MemStore, UntrustedStore};
use tdb::{
    impl_persistent_boilerplate, ClassRegistry, Db, Durability, ExtractorRegistry, IndexKind,
    IndexSpec, Key, Options, Persistent, PickleError, Pickler, Unpickler,
};

// --- 1. Define a persistent class (the paper's Fig. 4 `Meter`). -----------

const CLASS_METER: u32 = 0x4D45_0001;

struct Meter {
    content_id: u64,
    view_count: i64,
}

impl Persistent for Meter {
    impl_persistent_boilerplate!(CLASS_METER);
    fn pickle(&self, w: &mut Pickler) {
        w.u64(self.content_id);
        w.i64(self.view_count);
    }
}

fn unpickle_meter(r: &mut Unpickler) -> Result<Box<dyn Persistent>, PickleError> {
    Ok(Box::new(Meter {
        content_id: r.u64()?,
        view_count: r.i64()?,
    }))
}

fn registries() -> (ClassRegistry, ExtractorRegistry) {
    let mut classes = ClassRegistry::new();
    classes.register(CLASS_METER, "Meter", unpickle_meter);
    let mut extractors = ExtractorRegistry::new();
    extractors.register("meter.content", |obj| {
        tdb::extractor_typed::<Meter>(obj, |m| Key::U64(m.content_id))
    });
    (classes, extractors)
}

fn options(dir: &std::path::Path) -> Options {
    let (classes, extractors) = registries();
    Options::in_memory()
        .at_dir(dir)
        .classes(classes)
        .extractors(extractors)
}

fn main() {
    // --- 2. Open (creating) a directory-backed database: the log, the
    // platform secret, and the one-way counter all live under `dir`
    // (exactly how the paper's own evaluation emulated the counter, §7.2).
    let tmp = tempfile::tempdir().expect("tempdir");
    let dir = tmp.path().join("db");
    println!("database lives in {dir:?}");
    let db = Db::open(options(&dir)).unwrap();

    // --- 3. Create a collection with a unique hash index and fill it.
    let meters = db.collection::<u64, Meter>("meters");
    let t = db.begin();
    meters
        .ensure(
            &t,
            &[IndexSpec::new(
                "by-content",
                "meter.content",
                true,
                IndexKind::Hash,
            )],
        )
        .unwrap();
    for content_id in 1..=5u64 {
        meters
            .insert(
                &t,
                Meter {
                    content_id,
                    view_count: 0,
                },
            )
            .unwrap();
    }
    t.commit(Durability::Durable).unwrap();
    println!("created 5 meters");

    // --- 4. A consumer views content #3: typed in-place update through a
    // writable insensitive iterator, committed durably.
    let t = db.begin();
    let updated = meters
        .update(&t, "by-content", 3, |m| m.view_count += 1)
        .unwrap();
    assert_eq!(updated, 1);
    t.commit(Durability::Durable).unwrap();
    println!("content #3 viewed once");

    // --- 5. Snapshot-isolated read: zero locks, stable against concurrent
    // writers and the log cleaner.
    let r = db.begin_read();
    let views = meters
        .get(&r, "by-content", 3, |m| m.view_count)
        .unwrap()
        .expect("meter 3 exists");
    println!("snapshot read: content #3 has {views} view(s)");
    assert_eq!(views, 1);
    assert_eq!(meters.len(&r).unwrap(), 5);
    r.finish();

    // --- 6. Reopen (recovery + tamper validation) and read it back.
    drop(db);
    let db = Db::open(options(&dir)).unwrap();
    let r = db.begin_read();
    assert_eq!(
        meters.get(&r, "by-content", 3, |m| m.view_count).unwrap(),
        Some(1)
    );
    println!("after reopen: content #3 still has 1 view");
    r.finish();
    drop(db);

    // --- 7. The attacker's turn: flip one byte of the stored log and try
    // to open the database again. (Using an in-memory copy here so the
    // demo is self-contained; `MemStore::corrupt` is the attacker
    // primitive the test-suite uses throughout.)
    let evil = MemStore::new();
    for name in tdb::platform::UntrustedStore::list(&DirStore::new(&dir).unwrap()).unwrap() {
        let src = DirStore::new(&dir).unwrap();
        let f = src.open(&name, false).unwrap();
        let len = f.len().unwrap() as usize;
        let mut buf = vec![0u8; len];
        f.read_at(0, &mut buf).unwrap();
        evil.open(&name, true).unwrap().write_at(0, &buf).unwrap();
    }
    evil.corrupt("seg.000000", 100, 64).unwrap();
    // Same secret + counter files, but the tampered in-memory log copy.
    let secret =
        tdb::platform::FileSecretStore::open_or_init(dir.join("secret.key"), [0u8; 32]).unwrap();
    let counter = Arc::new(tdb::platform::FileCounter::open(dir.join("counter")).unwrap());
    let (classes, extractors) = registries();
    let tamper_result = Db::open(
        Options::in_memory()
            .with_substrates(Arc::new(evil), secret, counter)
            .classes(classes)
            .extractors(extractors),
    )
    .map_err(|e| e.to_string())
    .and_then(|db| {
        // If the flipped bytes hit a dead log region, the open succeeds —
        // but reading every meter must then trip the Merkle check.
        let meters = db.collection::<u64, Meter>("meters");
        let r = db.begin_read();
        for id in 1..=5u64 {
            meters
                .get(&r, "by-content", id, |m| m.view_count)
                .map_err(|e| e.to_string())?;
        }
        Ok(())
    });
    match tamper_result {
        Err(e) => println!("tampered copy rejected: {e}"),
        Ok(()) => unreachable!("tampering must be detected"),
    }
}
