//! The paper's signature attack (§3): "The consumer can, for example, save
//! a copy of the database, purchase some goods, then replay the saved copy
//! in an attempt to erase any record of purchasing the goods. The chunk
//! store does, however, detect tampering, including such replay attacks."
//!
//! This example mounts that exact attack — and shows why it only works if
//! the hardware one-way counter can be rolled back too.
//!
//! ```sh
//! cargo run --example replay_attack
//! ```

use std::sync::Arc;
use tdb::platform::{MemSecretStore, MemStore, OneWayCounter, TamperableCounter, VolatileCounter};
use tdb::{
    impl_persistent_boilerplate, ChunkStoreError, ClassRegistry, Db, Durability, ErrorKind,
    ExtractorRegistry, IndexKind, IndexSpec, Key, Options, Persistent, PickleError, Pickler,
    TdbError, Unpickler,
};

const CLASS_BALANCE: u32 = 0xBA1A_0001;

struct Prepaid {
    account: u64,
    cents: i64,
}

impl Persistent for Prepaid {
    impl_persistent_boilerplate!(CLASS_BALANCE);
    fn pickle(&self, w: &mut Pickler) {
        w.u64(self.account);
        w.i64(self.cents);
    }
}

fn unpickle(r: &mut Unpickler) -> Result<Box<dyn Persistent>, PickleError> {
    Ok(Box::new(Prepaid {
        account: r.u64()?,
        cents: r.i64()?,
    }))
}

fn registries() -> (ClassRegistry, ExtractorRegistry) {
    let mut classes = ClassRegistry::new();
    classes.register(CLASS_BALANCE, "Prepaid", unpickle);
    let mut extractors = ExtractorRegistry::new();
    extractors.register("prepaid.account", |o| {
        tdb::extractor_typed::<Prepaid>(o, |p| Key::U64(p.account))
    });
    (classes, extractors)
}

fn spend(db: &Db, cents: i64) {
    let t = db.begin();
    let c = t.write_collection("prepaid").unwrap();
    let mut it = c.exact("by-account", &Key::U64(1)).unwrap();
    {
        let p = it.write::<Prepaid>().unwrap();
        p.get_mut().cents -= cents;
    }
    it.close().unwrap();
    drop(c);
    t.commit(Durability::Durable).unwrap();
}

fn balance(db: &Db) -> i64 {
    // Snapshot-isolated read: no locks, no commit needed.
    let r = db.begin_read();
    db.collection::<u64, Prepaid>("prepaid")
        .get(&r, "by-account", 1, |p| p.cents)
        .unwrap()
        .expect("account 1 exists")
}

fn main() {
    let mem = MemStore::new();
    let secret = MemSecretStore::from_label("set-top-box");
    let counter = VolatileCounter::new();
    let (classes, extractors) = registries();
    let db = Db::open(
        Options::in_memory()
            .with_substrates(
                Arc::new(mem.clone()),
                secret.clone(),
                Arc::new(counter.clone()),
            )
            .classes(classes)
            .extractors(extractors),
    )
    .unwrap();

    let t = db.begin();
    let c = t
        .create_collection(
            "prepaid",
            &[IndexSpec::new(
                "by-account",
                "prepaid.account",
                true,
                IndexKind::Hash,
            )],
        )
        .unwrap();
    c.insert(Box::new(Prepaid {
        account: 1,
        cents: 500,
    }))
    .unwrap();
    drop(c);
    t.commit(Durability::Durable).unwrap();
    println!("balance: {}c", balance(&db));

    // The consumer images the storage while the balance is full...
    let saved = mem.deep_clone();
    println!("(consumer secretly images the flash card)");

    // ...then buys three movies.
    spend(&db, 150);
    spend(&db, 150);
    spend(&db, 150);
    println!("after three purchases: {}c", balance(&db));
    drop(db);

    // ...and replays the saved image to get the money back.
    mem.restore_from(&saved);
    println!("(consumer writes the old image back)");
    let (classes, extractors) = registries();
    match Db::open(
        Options::in_memory()
            .with_substrates(
                Arc::new(mem.clone()),
                secret.clone(),
                Arc::new(counter.clone()),
            )
            .classes(classes)
            .extractors(extractors),
    ) {
        Err(
            e @ TdbError::Chunk(ChunkStoreError::ReplayDetected {
                anchor_counter,
                hardware_counter,
            }),
        ) => {
            // The stable classification survives every layer of wrapping.
            assert_eq!(e.kind(), ErrorKind::Replay);
            println!(
                "replay detected: the image claims counter {anchor_counter}, the hardware says {hardware_counter}"
            );
        }
        other => panic!("expected replay detection, got {:?}", other.map(|_| ())),
    }

    // Control experiment: with a (hypothetical) resettable counter the
    // attack succeeds — the whole defense rests on the one-way property.
    let mem = MemStore::new();
    let evil_counter = TamperableCounter::new();
    let (classes, extractors) = registries();
    let db = Db::open(
        Options::in_memory()
            .with_substrates(
                Arc::new(mem.clone()),
                secret.clone(),
                Arc::new(evil_counter.clone()),
            )
            .classes(classes)
            .extractors(extractors),
    )
    .unwrap();
    let t = db.begin();
    let c = t
        .create_collection(
            "prepaid",
            &[IndexSpec::new(
                "by-account",
                "prepaid.account",
                true,
                IndexKind::Hash,
            )],
        )
        .unwrap();
    c.insert(Box::new(Prepaid {
        account: 1,
        cents: 500,
    }))
    .unwrap();
    drop(c);
    t.commit(Durability::Durable).unwrap();
    let saved = mem.deep_clone();
    let counter_at_save = evil_counter.read().unwrap();
    spend(&db, 450);
    drop(db);
    mem.restore_from(&saved);
    evil_counter.set(counter_at_save); // the hardware violation
    let (classes, extractors) = registries();
    let db = Db::open(
        Options::in_memory()
            .with_substrates(Arc::new(mem), secret.clone(), Arc::new(evil_counter))
            .classes(classes)
            .extractors(extractors),
    )
    .unwrap();
    println!(
        "with a rolled-back counter the replay sadly works: balance {}c — \
         which is exactly why the counter must be one-way hardware",
        balance(&db)
    );
}
