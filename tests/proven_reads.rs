//! End-to-end proof-carrying reads through the `tdb` facade: every
//! successful read can produce an inclusion proof, every failed lookup a
//! non-membership proof, and a standalone [`tdb::proof::Verifier`] — built
//! from nothing but the database's trust anchor — accepts the honest
//! proofs and rejects tampered ones.

use std::ops::Bound;
use tdb::proof::{ProofError, Verifier};
use tdb::{
    impl_persistent_boilerplate, Db, Durability, IndexKind, IndexSpec, Key, ObjectId, Options,
    Persistent, PickleError, Pickler, SecurityMode, Unpickler,
};

const CLASS_METER: u32 = 0x1234_0001;

struct Meter {
    id: u64,
    count: i64,
}

impl Persistent for Meter {
    impl_persistent_boilerplate!(CLASS_METER);
    fn pickle(&self, w: &mut Pickler) {
        w.u64(self.id);
        w.i64(self.count);
    }
}

fn unpickle_meter(r: &mut Unpickler) -> Result<Box<dyn Persistent>, PickleError> {
    Ok(Box::new(Meter {
        id: r.u64()?,
        count: r.i64()?,
    }))
}

fn options() -> Options {
    Options::in_memory()
        .register_class(CLASS_METER, "Meter", unpickle_meter)
        .register_extractor("meter.id", |o| {
            tdb::extractor_typed::<Meter>(o, |m| Key::U64(m.id))
        })
        .register_extractor("meter.count", |o| {
            tdb::extractor_typed::<Meter>(o, |m| Key::I64(m.count))
        })
}

fn specs() -> [IndexSpec; 2] {
    [
        IndexSpec::new("by-id", "meter.id", true, IndexKind::Hash),
        IndexSpec::new("by-count", "meter.count", false, IndexKind::BTree),
    ]
}

/// Create the database, a `meters` collection with `n` members, and return
/// the db plus the object ids in insertion order (meter `i` has count `i`).
fn seeded(options: Options, n: u64) -> (Db, Vec<ObjectId>) {
    let db = Db::open(options).unwrap();
    let t = db.begin();
    let c = t.create_collection("meters", &specs()).unwrap();
    let mut ids = Vec::new();
    for id in 0..n {
        ids.push(
            c.insert(Box::new(Meter {
                id,
                count: id as i64,
            }))
            .unwrap(),
        );
    }
    drop(c);
    t.commit(Durability::Durable).unwrap();
    (db, ids)
}

#[test]
fn object_reads_prove_inclusion_and_absence() {
    let (db, ids) = seeded(options(), 8);
    let verifier = Verifier::new(db.trust_anchor().unwrap());

    let r = db.begin_read_proven().unwrap();
    let reader = r.object_reader();

    // Typed proven read: the value decodes, and the same chunk's raw form
    // carries the bytes the proof binds.
    let proven = reader
        .read_proven::<Meter, _>(ids[3], |m| (m.id, m.count))
        .unwrap();
    assert_eq!(proven.value, Some((3, 3)));
    let raw = reader.read_proven_bytes(ids[3]).unwrap();
    let bytes = raw.value.clone().expect("member exists");
    verifier
        .verify_chunk(&proven.prove().unwrap(), Some(&bytes))
        .unwrap();
    verifier
        .verify_chunk(&raw.prove().unwrap(), Some(&bytes))
        .unwrap();

    // A failed read proves absence: `None` plus a verifiable
    // non-membership proof, not an error.
    let miss = reader
        .read_proven_bytes(ObjectId(ids.last().unwrap().0 + 500))
        .unwrap();
    assert!(miss.value.is_none());
    verifier.verify_chunk(&miss.prove().unwrap(), None).unwrap();
}

#[test]
fn proofs_pinned_at_snapshot_survive_later_commits() {
    let (db, ids) = seeded(options(), 4);
    // The anchor a client holds at pin time: proofs from this snapshot
    // must keep verifying against it no matter what commits later.
    let verifier = Verifier::new(db.trust_anchor().unwrap());

    let r = db.begin_read_proven().unwrap();
    let proven = r.object_reader().read_proven_bytes(ids[1]).unwrap();
    let bytes = proven.value.clone().unwrap();

    // Overwrite the very object (and more) after the snapshot pin.
    for round in 0..5 {
        let t = db.begin();
        let c = t.write_collection("meters").unwrap();
        let mut it = c.exact("by-id", &Key::U64(1)).unwrap();
        {
            let m = it.write::<Meter>().unwrap();
            m.get_mut().count += 10 + round;
        }
        it.close().unwrap();
        drop(c);
        t.commit(Durability::Durable).unwrap();
    }

    // Deferred prove() after the churn: still the pinned bytes, still
    // verifiable.
    let proof = proven.prove().unwrap();
    verifier.verify_chunk(&proof, Some(&bytes)).unwrap();

    // A *fresh* read sees the new value and proves it against the fresh
    // anchor.
    let fresh_verifier = Verifier::new(db.trust_anchor().unwrap());
    let r2 = db.begin_read_proven().unwrap();
    let fresh = r2.object_reader().read_proven_bytes(ids[1]).unwrap();
    let fresh_bytes = fresh.value.clone().unwrap();
    assert_ne!(fresh_bytes, bytes, "object was overwritten");
    fresh_verifier
        .verify_chunk(&fresh.prove().unwrap(), Some(&fresh_bytes))
        .unwrap();
}

#[test]
fn tampered_proofs_and_values_are_rejected() {
    let (db, ids) = seeded(options(), 4);
    let verifier = Verifier::new(db.trust_anchor().unwrap());

    let r = db.begin_read_proven().unwrap();
    let proven = r.object_reader().read_proven_bytes(ids[2]).unwrap();
    let bytes = proven.value.clone().unwrap();
    let proof = proven.prove().unwrap();

    // Substituted value bytes.
    let mut forged = bytes.clone();
    forged[0] ^= 1;
    assert!(matches!(
        verifier.verify_chunk(&proof, Some(&forged)),
        Err(ProofError::Tamper(_))
    ));

    // Flipped byte anywhere in the encoded proof: decode failure or a
    // security rejection — never acceptance.
    let encoded = tdb::proof::wire::encode_chunk_proof(&proof);
    for pos in 0..encoded.len() {
        let mut bent = encoded.clone();
        bent[pos] ^= 0x01;
        match tdb::proof::wire::decode_chunk_proof(&bent) {
            Err(_) => {}
            Ok(decoded) => {
                verifier
                    .verify_chunk(&decoded, Some(&bytes))
                    .expect_err("flipped proof byte must not verify");
            }
        }
    }

    // A replayed (stale-anchor) proof: a client whose trusted counter has
    // advanced past the attestation rejects it as a replay.
    let mut anchor = db.trust_anchor().unwrap();
    anchor.counter_value = proof.attestation.counter_value + 1;
    assert!(matches!(
        Verifier::new(anchor).verify_chunk(&proof, Some(&bytes)),
        Err(ProofError::Replay { .. })
    ));
}

#[test]
fn collection_lookups_prove_membership_and_non_membership() {
    let (db, ids) = seeded(options(), 10);
    let verifier = Verifier::new(db.trust_anchor().unwrap());

    let r = db.begin_read_proven().unwrap();
    let c = r.read_collection("meters").unwrap();

    // Exact hit on the hash index: the verifier returns exactly the
    // matching ids.
    let hit = c.exact_proven("by-id", &Key::U64(6)).unwrap();
    assert_eq!(hit.entries.len(), 1);
    assert_eq!(hit.entries[0].1, ids[6]);
    let verified = verifier.verify_keyed(&hit.proof).unwrap();
    assert_eq!(verified, vec![ids[6].0]);

    // Exact miss: provably empty.
    let miss = c.exact_proven("by-id", &Key::U64(999)).unwrap();
    assert!(miss.entries.is_empty());
    assert_eq!(
        verifier.verify_keyed(&miss.proof).unwrap(),
        Vec::<u64>::new()
    );

    // Range over the B-tree index, every Bound form.
    let cases: [(Bound<Key>, Bound<Key>, Vec<i64>); 4] = [
        (
            Bound::Included(Key::I64(3)),
            Bound::Included(Key::I64(5)),
            vec![3, 4, 5],
        ),
        (
            Bound::Excluded(Key::I64(3)),
            Bound::Excluded(Key::I64(6)),
            vec![4, 5],
        ),
        (Bound::Unbounded, Bound::Excluded(Key::I64(2)), vec![0, 1]),
        (Bound::Included(Key::I64(8)), Bound::Unbounded, vec![8, 9]),
    ];
    for (min, max, expect) in cases {
        let got = c
            .range_proven("by-count", min.as_ref(), max.as_ref())
            .unwrap();
        let keys: Vec<i64> = got
            .entries
            .iter()
            .map(|(k, _)| match k {
                Key::I64(v) => *v,
                other => panic!("unexpected key {other:?}"),
            })
            .collect();
        assert_eq!(keys, expect, "range {min:?}..{max:?}");
        let verified = verifier.verify_keyed(&got.proof).unwrap();
        let expect_ids: Vec<u64> = expect.iter().map(|i| ids[*i as usize].0).collect();
        assert_eq!(verified, expect_ids);
    }

    // An empty range is provably empty too.
    let empty = c
        .range_proven(
            "by-count",
            Bound::Included(&Key::I64(100)),
            Bound::Unbounded,
        )
        .unwrap();
    assert!(empty.entries.is_empty());
    assert_eq!(
        verifier.verify_keyed(&empty.proof).unwrap(),
        Vec::<u64>::new()
    );

    // A tampered keyed proof is rejected: claim one extra id.
    let mut forged = hit.proof;
    forged.total += 1;
    assert!(matches!(
        verifier.verify_keyed(&forged),
        Err(ProofError::Tamper(_))
    ));
}

#[test]
fn sharded_store_proofs_splice_through_the_root_of_roots() {
    let (db, ids) = seeded(options().shards(3), 9);
    let verifier = Verifier::new(db.trust_anchor().unwrap());

    let r = db.begin_read_proven().unwrap();
    for (i, oid) in ids.iter().enumerate() {
        let proven = r.object_reader().read_proven_bytes(*oid).unwrap();
        let bytes = proven.value.clone().unwrap();
        let proof = proven.prove().unwrap();
        assert!(
            proof.shard.is_some(),
            "sharded proof carries an epoch record"
        );
        verifier
            .verify_chunk(&proof, Some(&bytes))
            .unwrap_or_else(|e| panic!("meter {i}: {e:?}"));
    }

    // Keyed proofs attest under the root-of-roots key on a sharded store.
    let c = r.read_collection("meters").unwrap();
    let hit = c.exact_proven("by-id", &Key::U64(4)).unwrap();
    assert_eq!(verifier.verify_keyed(&hit.proof).unwrap(), vec![ids[4].0]);
}

#[test]
fn proven_reads_require_full_security() {
    let (db, _) = seeded(options().security(SecurityMode::Off), 2);
    let err = match db.begin_read_proven() {
        Err(e) => e.to_string(),
        Ok(_) => panic!("SecurityMode::Off must not hand out proven readers"),
    };
    assert!(
        err.contains("SecurityMode::Full"),
        "error should name the required mode: {err}"
    );
    // Plain reads still work, of course.
    let r = db.begin_read();
    let c = r.read_collection("meters").unwrap();
    assert_eq!(c.len().unwrap(), 2);
}
