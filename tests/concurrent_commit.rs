//! Concurrent commit integration tests: N-thread TPC-B-style transfers
//! through the full stack, group-commit durability under crash injection,
//! and the failure-isolation guarantees of per-transaction write batches
//! (a failed commit discards only its own staged writes).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;
use tdb::platform::{
    FaultPlan, FaultStore, MemSecretStore, MemStore, UntrustedStore, VolatileCounter,
};
use tdb::Durability;
use tdb::{
    impl_persistent_boilerplate, ClassRegistry, Database, DatabaseConfig, ExtractorRegistry,
    IndexKind, IndexSpec, Key, Persistent, PickleError, Pickler, Unpickler,
};

const CLASS_ACCOUNT: u32 = 0xACC7_0001;

struct Account {
    id: u64,
    balance: i64,
    hits: i64,
    /// Padding so tests can make a transaction's staged bytes arbitrarily
    /// large (e.g. to span log segments); empty in normal use.
    pad: Vec<u8>,
}

impl Account {
    fn new(id: u64) -> Self {
        Account {
            id,
            balance: 0,
            hits: 0,
            pad: Vec::new(),
        }
    }
}

impl Persistent for Account {
    impl_persistent_boilerplate!(CLASS_ACCOUNT);
    fn pickle(&self, w: &mut Pickler) {
        w.u64(self.id);
        w.i64(self.balance);
        w.i64(self.hits);
        w.bytes(&self.pad);
    }
}

fn unpickle_account(r: &mut Unpickler) -> Result<Box<dyn Persistent>, PickleError> {
    Ok(Box::new(Account {
        id: r.u64()?,
        balance: r.i64()?,
        hits: r.i64()?,
        pad: r.bytes()?.to_vec(),
    }))
}

fn registries() -> (ClassRegistry, ExtractorRegistry) {
    let mut classes = ClassRegistry::new();
    classes.register(CLASS_ACCOUNT, "Account", unpickle_account);
    let mut extractors = ExtractorRegistry::new();
    extractors.register("account.id", |o| {
        tdb::extractor_typed::<Account>(o, |a| Key::U64(a.id))
    });
    (classes, extractors)
}

fn specs() -> [IndexSpec; 1] {
    [IndexSpec::new("by-id", "account.id", true, IndexKind::Hash)]
}

fn make_db(store: Arc<dyn UntrustedStore>, cfg: DatabaseConfig) -> Database {
    let secret = MemSecretStore::from_label("concurrent-commit");
    let (classes, extractors) = registries();
    Database::create(
        store,
        &secret,
        Arc::new(VolatileCounter::new()),
        classes,
        extractors,
        cfg,
    )
    .unwrap()
}

fn create_accounts(db: &Database, n: u64) {
    let t = db.begin();
    let c = t.create_collection("accounts", &specs()).unwrap();
    for id in 0..n {
        c.insert(Box::new(Account::new(id))).unwrap();
    }
    drop(c);
    t.commit(Durability::Durable).unwrap();
}

/// One TPC-B-style transfer: move one unit from `from` to `to`, bumping
/// the source's hit count, all in a single durable transaction. Accounts
/// are always locked in id order so concurrent transfers cannot deadlock.
fn transfer(db: &Database, from: u64, to: u64) -> Result<(), String> {
    let t = db.begin();
    let result = (|| -> Result<(), String> {
        let c = t.write_collection("accounts").map_err(|e| e.to_string())?;
        for id in [from.min(to), from.max(to)] {
            let mut it = c.exact("by-id", &Key::U64(id)).map_err(|e| e.to_string())?;
            {
                let a = it.write::<Account>().map_err(|e| e.to_string())?;
                let mut a = a.get_mut();
                if id == from {
                    a.balance -= 1;
                    a.hits += 1;
                } else {
                    a.balance += 1;
                }
            }
            it.close().map_err(|e| e.to_string())?;
        }
        Ok(())
    })();
    match result {
        Ok(()) => t.commit(Durability::Durable).map_err(|e| e.to_string()),
        Err(e) => {
            t.abort();
            Err(e)
        }
    }
}

/// Read back every account; returns (count, balance sum, hits sum, and the
/// per-account (balance, hits) map).
fn scan_accounts(db: &Database) -> (usize, i64, i64, Vec<(i64, i64)>) {
    let t = db.begin();
    let c = t.read_collection("accounts").unwrap();
    let mut it = c.scan("by-id").unwrap();
    let mut seen = 0;
    let mut balance = 0i64;
    let mut hits = 0i64;
    let mut per = Vec::new();
    while !it.end() {
        let a = it.read::<Account>().unwrap();
        let (id, b, h) = {
            let acc = a.get();
            (acc.id, acc.balance, acc.hits)
        };
        balance += b;
        hits += h;
        per.push((id, b, h));
        drop(a);
        seen += 1;
        it.next();
    }
    it.close().unwrap();
    drop(c);
    t.commit(Durability::Lazy).unwrap();
    per.sort_by_key(|(id, _, _)| *id);
    (
        seen,
        balance,
        hits,
        per.into_iter().map(|(_, b, h)| (b, h)).collect(),
    )
}

/// Tentpole behaviour: concurrent durable transfers on one database must
/// preserve the balance-sum invariant and lose no acknowledged update, and
/// the group-commit coordinator must actually form groups (the
/// `commit.group_size` histogram is populated).
#[test]
fn threaded_transfers_preserve_balance_and_lose_no_updates() {
    const ACCOUNTS: u64 = 32;
    const THREADS: u64 = 4;
    const TRANSFERS: u64 = 250;

    let db = make_db(
        Arc::new(MemStore::new()),
        DatabaseConfig::without_security(),
    );
    create_accounts(&db, ACCOUNTS);

    // Expected per-account state, updated only after a commit is
    // acknowledged — any divergence from the database is a lost update.
    let expected: Vec<(AtomicI64, AtomicI64)> = (0..ACCOUNTS)
        .map(|_| (AtomicI64::new(0), AtomicI64::new(0)))
        .collect();

    std::thread::scope(|s| {
        for tid in 0..THREADS {
            let db = &db;
            let expected = &expected;
            s.spawn(move || {
                let mut rng = 0x9E37_79B9u64.wrapping_mul(tid + 1) | 1;
                let mut step = |m: u64| {
                    rng = rng
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (rng >> 33) % m
                };
                for _ in 0..TRANSFERS {
                    loop {
                        let from = step(ACCOUNTS);
                        let to = (from + 1 + step(ACCOUNTS - 1)) % ACCOUNTS;
                        if transfer(db, from, to).is_ok() {
                            expected[from as usize].0.fetch_sub(1, Ordering::Relaxed);
                            expected[from as usize].1.fetch_add(1, Ordering::Relaxed);
                            expected[to as usize].0.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                    }
                }
            });
        }
    });

    let (seen, balance_sum, hits_sum, per) = scan_accounts(&db);
    assert_eq!(seen, ACCOUNTS as usize);
    assert_eq!(balance_sum, 0, "transfers must conserve the balance sum");
    assert_eq!(hits_sum, (THREADS * TRANSFERS) as i64);
    for (id, (b, h)) in per.iter().enumerate() {
        assert_eq!(
            (*b, *h),
            (
                expected[id].0.load(Ordering::Relaxed),
                expected[id].1.load(Ordering::Relaxed)
            ),
            "account {id}: committed state diverged from acknowledged updates"
        );
    }

    let snap = db.obs().snapshot();
    let group = snap
        .histograms
        .get("commit.group_size")
        .expect("group-commit rounds must record commit.group_size");
    assert!(group.count() > 0, "no group-commit round was recorded");
}

/// Crash injection mid-run: cut the store's write budget while four
/// threads are committing in groups, so the crash lands at arbitrary
/// points inside group commits (between a group's append and its sync, or
/// mid-anchor). Recovery must succeed, conserve the balance sum, and keep
/// every acknowledged transfer.
#[test]
fn crash_mid_group_commit_recovers_cleanly() {
    const ACCOUNTS: u64 = 16;
    const THREADS: u64 = 4;

    for budget in [2_000u64, 8_000, 30_000] {
        let mem = MemStore::new();
        let counter = VolatileCounter::new();
        let secret = MemSecretStore::from_label("crash-group");
        let plan = FaultPlan::unlimited();
        let (classes, extractors) = registries();
        let acked = AtomicU64::new(0);
        {
            let db = Database::create(
                Arc::new(FaultStore::new(mem.clone(), plan.clone())),
                &secret,
                Arc::new(counter.clone()),
                classes,
                extractors,
                DatabaseConfig::default(),
            )
            .unwrap();
            create_accounts(&db, ACCOUNTS);

            plan.rearm(budget);
            std::thread::scope(|s| {
                for tid in 0..THREADS {
                    let db = &db;
                    let acked = &acked;
                    s.spawn(move || {
                        for round in 0..200u64 {
                            let from = (tid * 7 + round) % ACCOUNTS;
                            let to = (from + 1 + tid) % ACCOUNTS;
                            match transfer(db, from, to) {
                                Ok(()) => {
                                    acked.fetch_add(1, Ordering::Relaxed);
                                }
                                // First store fault = the crash; stop like
                                // a process that lost its disk.
                                Err(_) => break,
                            }
                        }
                    });
                }
            });
        }

        // Recover from the surviving bytes with a fresh "process".
        let (classes, extractors) = registries();
        let db = Database::open(
            Arc::new(mem),
            &secret,
            Arc::new(counter),
            classes,
            extractors,
            DatabaseConfig::default(),
        )
        .unwrap_or_else(|e| panic!("budget {budget}: recovery failed: {e}"));
        let (seen, balance_sum, hits_sum, _) = scan_accounts(&db);
        assert_eq!(
            seen, ACCOUNTS as usize,
            "budget {budget}: membership damaged"
        );
        assert_eq!(
            balance_sum, 0,
            "budget {budget}: a transfer was torn across the crash"
        );
        // Acknowledged durable commits are a prefix-closed subset of what
        // recovery replays; un-acked commits from the torn group may also
        // have landed (anchor written, ack lost) — never fewer.
        let acked = acked.load(Ordering::Relaxed) as i64;
        assert!(
            hits_sum >= acked,
            "budget {budget}: {hits_sum} transfers recovered but {acked} were acknowledged"
        );
    }
}

/// Regression (chunk layer): a commit that fails in the middle of its
/// append — the store dies while the append is rolling to a fresh log
/// segment, before the commit record exists — must discard only the
/// failing batch's staged writes. A batch staged concurrently is
/// untouched, commits once the store is back, and survives reopen.
#[test]
fn failed_commit_discards_only_its_own_batch() {
    use chunk_store::{ChunkStore, ChunkStoreConfig};

    let mem = MemStore::new();
    let counter = VolatileCounter::new();
    let secret = MemSecretStore::from_label("batch-isolation");
    let plan = FaultPlan::unlimited();
    let alpha;
    {
        let store = ChunkStore::create(
            Arc::new(FaultStore::new(mem.clone(), plan.clone())),
            &secret,
            Arc::new(counter.clone()),
            ChunkStoreConfig::small_for_tests(),
        )
        .unwrap();

        let mut a = store.begin_batch();
        alpha = a.allocate_chunk_id().unwrap();
        a.write(alpha, b"alpha survives").unwrap();

        // b stages more than a 4 KiB segment's worth, so its append must
        // roll to a new segment — which writes through to the (dead) store
        // and fails before b's commit record is ever appended.
        let mut b = store.begin_batch();
        let mut beta_ids = Vec::new();
        for _ in 0..8 {
            let id = b.allocate_chunk_id().unwrap();
            b.write(id, &[0xBB; 1000]).unwrap();
            beta_ids.push(id);
        }
        plan.rearm(0);
        assert!(store.commit_batch(b, Durability::Durable).is_err());
        plan.rearm(u64::MAX);

        // a's staged write is untouched by b's failure and commits fine.
        assert_eq!(a.read(alpha).unwrap(), b"alpha survives");
        store.commit_batch(a, Durability::Durable).unwrap();
        assert_eq!(store.read(alpha).unwrap(), b"alpha survives");
        for id in beta_ids {
            assert!(
                store.read(id).is_err(),
                "failed batch's chunk {id:?} must not exist"
            );
        }
    }

    // And it is durable: a fresh open replays a's commit, not b's.
    let store = ChunkStore::open(
        Arc::new(mem),
        &secret,
        Arc::new(counter),
        ChunkStoreConfig::small_for_tests(),
    )
    .unwrap();
    assert_eq!(store.read(alpha).unwrap(), b"alpha survives");
}

/// Regression (object/collection layer): two interleaved transactions on
/// one database; the one whose commit fails before the commit point (the
/// store dies while its oversized append rolls log segments) must roll
/// back fully — cache included — without disturbing the other
/// transaction's staged writes or leaving its locks behind.
#[test]
fn interleaved_txn_failure_leaves_other_txn_intact() {
    let mem = MemStore::new();
    let plan = FaultPlan::unlimited();
    let mut cfg = DatabaseConfig::without_security();
    cfg.chunk = chunk_store::ChunkStoreConfig::small_for_tests();
    cfg.chunk.security = tdb::SecurityMode::Off;
    let db = make_db(Arc::new(FaultStore::new(mem, plan.clone())), cfg);
    const N: u64 = 12;
    create_accounts(&db, N);

    let bump = |t: &tdb::CTransaction, id: u64, delta: i64, pad: usize| -> Result<(), String> {
        let c = t.write_collection("accounts").map_err(|e| e.to_string())?;
        let mut it = c.exact("by-id", &Key::U64(id)).map_err(|e| e.to_string())?;
        {
            let a = it.write::<Account>().map_err(|e| e.to_string())?;
            let mut a = a.get_mut();
            a.balance += delta;
            a.pad = vec![0xBB; pad];
        }
        it.close().map_err(|e| e.to_string())?;
        Ok(())
    };

    let t1 = db.begin();
    bump(&t1, 0, 10, 0).unwrap();
    // t2 stages several padded accounts — more than one 4 KiB log segment —
    // so its commit's append must roll segments and dies mid-append, before
    // its commit record exists.
    let t2 = db.begin();
    for id in 2..N {
        bump(&t2, id, 99, 800).unwrap();
    }
    plan.rearm(0);
    assert!(t2.commit(Durability::Durable).is_err());
    plan.rearm(u64::MAX);
    // t1 is interleaved but must be immune.
    t1.commit(Durability::Durable).unwrap();

    let (_, balance_sum, _, per) = scan_accounts(&db);
    assert_eq!(per[0].0, 10, "t1's committed update must survive");
    for (id, (balance, _)) in per.iter().enumerate().skip(2) {
        assert_eq!(*balance, 0, "t2's failed update to {id} must roll back");
    }
    assert_eq!(balance_sum, 10);

    // t2's locks were released by the failed commit: its accounts are
    // immediately writable again, and the rollback reached the cache (the
    // re-read above saw 0, not t2's in-flight 99).
    let t3 = db.begin();
    bump(&t3, 2, 1, 0).unwrap();
    t3.commit(Durability::Durable).unwrap();
    let (_, _, _, per) = scan_accounts(&db);
    assert_eq!(per[2].0, 1);
}

/// Under real concurrency, a lock that times out because its holder is
/// merely slow is classified as contention — not deadlock.
#[test]
fn slow_holder_timeout_classified_as_contention() {
    let mut cfg = DatabaseConfig::without_security();
    cfg.object.lock_timeout = Duration::from_millis(100);
    let db = make_db(Arc::new(MemStore::new()), cfg);
    create_accounts(&db, 2);

    let holding = Barrier::new(2);
    std::thread::scope(|s| {
        s.spawn(|| {
            let t = db.begin();
            let c = t.write_collection("accounts").unwrap();
            let mut it = c.exact("by-id", &Key::U64(0)).unwrap();
            let _guard = it.write::<Account>().unwrap();
            holding.wait();
            // Hold the exclusive lock well past the victim's timeout.
            std::thread::sleep(Duration::from_millis(400));
            drop(_guard);
            it.close().unwrap();
            drop(c);
            t.abort();
        });
        s.spawn(|| {
            holding.wait();
            let err = transfer(&db, 0, 1).unwrap_err();
            assert!(err.contains("lock"), "expected a lock timeout, got: {err}");
        });
    });

    let snap = db.obs().snapshot();
    let counters = &snap.counters;
    assert_eq!(counters.get("lock.timeouts_contention").copied(), Some(1));
    assert_eq!(
        counters.get("lock.timeouts_deadlock").copied().unwrap_or(0),
        0,
        "a slow holder is not a deadlock"
    );
}

/// Two transactions acquiring the same pair of objects in opposite order
/// form a genuine cycle; the timed-out victim must be classified as a
/// deadlock (the wait-for graph is walked across lock shards).
#[test]
fn crossed_acquisition_timeout_classified_as_deadlock() {
    let mut cfg = DatabaseConfig::without_security();
    cfg.object.lock_timeout = Duration::from_millis(150);
    let db = make_db(Arc::new(MemStore::new()), cfg);
    create_accounts(&db, 2);

    let crossed = Barrier::new(2);
    let failures = AtomicU64::new(0);
    std::thread::scope(|s| {
        for (first, second) in [(0u64, 1u64), (1, 0)] {
            let db = &db;
            let crossed = &crossed;
            let failures = &failures;
            s.spawn(move || {
                let t = db.begin();
                let c = t.write_collection("accounts").unwrap();
                let mut it = c.exact("by-id", &Key::U64(first)).unwrap();
                {
                    let a = it.write::<Account>().unwrap();
                    a.get_mut().balance += 1;
                }
                it.close().unwrap();
                crossed.wait(); // both now hold one lock each
                let mut it = c.exact("by-id", &Key::U64(second)).unwrap();
                match it.write::<Account>() {
                    Ok(a) => {
                        a.get_mut().balance -= 1;
                        drop(a);
                        it.close().unwrap();
                        drop(c);
                        t.commit(Durability::Durable).unwrap();
                    }
                    Err(_) => {
                        failures.fetch_add(1, Ordering::Relaxed);
                        it.close().ok();
                        drop(c);
                        t.abort(); // releases its lock, unblocking the peer
                    }
                }
            });
        }
    });

    assert!(
        failures.load(Ordering::Relaxed) >= 1,
        "the cycle must break"
    );
    let snap = db.obs().snapshot();
    assert!(
        snap.counters
            .get("lock.timeouts_deadlock")
            .copied()
            .unwrap_or(0)
            >= 1,
        "a real cycle must be classified as deadlock, counters: {:?}",
        snap.counters
    );
}

/// Stress the background maintenance thread: concurrent durable transfers
/// on a fixed-size log small enough that the cleaner must run continuously
/// (growth disabled, watermarks tight), while a reader thread opens
/// chunk-level snapshots mid-pass and walks them — the concurrent version
/// of the deterministic mid-pass TOCTOU test. Committers may stall on the
/// backpressure path but must never fail; snapshot reads must never trip
/// tamper detection (a freed pinned segment would); and the final state
/// must show no lost update.
#[test]
fn transfers_survive_forced_background_cleaning() {
    use tdb::{ChunkId, ChunkStoreConfig, ChunkStoreError};

    const ACCOUNTS: u64 = 16;
    const THREADS: u64 = 4;
    const TRANSFERS: u64 = 150;

    let mut cfg = DatabaseConfig::without_security();
    cfg.chunk = ChunkStoreConfig {
        segment_size: 8 * 1024,
        map_fanout: 8,
        checkpoint_threshold: 16 * 1024,
        cleaner_batch: 4,
        initial_segments: 12,
        allow_growth: false,
        background_maintenance: true,
        clean_low_free: 2,
        clean_high_free: 4,
        maintenance_slice_chunks: 4,
        ..ChunkStoreConfig::default()
    };
    cfg.chunk.security = tdb::SecurityMode::Off;
    let db = make_db(Arc::new(MemStore::new()), cfg);
    create_accounts(&db, ACCOUNTS);

    let expected: Vec<(AtomicI64, AtomicI64)> = (0..ACCOUNTS)
        .map(|_| (AtomicI64::new(0), AtomicI64::new(0)))
        .collect();
    let done = AtomicU64::new(0);

    std::thread::scope(|s| {
        for tid in 0..THREADS {
            let db = &db;
            let expected = &expected;
            let done = &done;
            s.spawn(move || {
                let mut rng = 0xD1B5_4A32u64.wrapping_mul(tid + 1) | 1;
                let mut step = |m: u64| {
                    rng = rng
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (rng >> 33) % m
                };
                for _ in 0..TRANSFERS {
                    let mut attempts = 0;
                    loop {
                        attempts += 1;
                        assert!(
                            attempts < 200,
                            "transfer could not commit under cleaning pressure"
                        );
                        let from = step(ACCOUNTS);
                        let to = (from + 1 + step(ACCOUNTS - 1)) % ACCOUNTS;
                        if transfer(db, from, to).is_ok() {
                            expected[from as usize].0.fetch_sub(1, Ordering::Relaxed);
                            expected[from as usize].1.fetch_add(1, Ordering::Relaxed);
                            expected[to as usize].0.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                    }
                }
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        // Snapshot reader: repeatedly pin a chunk-level snapshot (likely
        // mid-cleaning-pass) and walk a dense id prefix through it. Ids
        // missing from the snapshot are fine; tamper or replay reports are
        // exactly the freed-pinned-segment corruption this guards against.
        let db = &db;
        let done = &done;
        s.spawn(move || {
            let chunks = db.chunk_store();
            while done.load(Ordering::Relaxed) < THREADS {
                let snap = chunks.snapshot();
                for id in 0..64u64 {
                    match chunks.read_at_snapshot(&snap, ChunkId(id)) {
                        Ok(_) => {}
                        Err(ChunkStoreError::TamperDetected(m)) => {
                            panic!("snapshot read hit tamper detection: {m}")
                        }
                        Err(ChunkStoreError::ReplayDetected { .. }) => {
                            panic!("snapshot read hit replay detection")
                        }
                        Err(_) => {} // unallocated / unwritten ids
                    }
                }
                drop(snap);
                std::thread::sleep(Duration::from_millis(1));
            }
        });
    });

    let stats = db.chunk_store().stats();
    assert!(
        stats.cleaner_passes > 0,
        "the workload must have forced cleaning: {stats:?}"
    );
    let (seen, balance_sum, hits_sum, per) = scan_accounts(&db);
    assert_eq!(seen, ACCOUNTS as usize);
    assert_eq!(balance_sum, 0, "transfers must conserve the balance sum");
    assert_eq!(hits_sum, (THREADS * TRANSFERS) as i64);
    for (id, (b, h)) in per.iter().enumerate() {
        assert_eq!(
            (*b, *h),
            (
                expected[id].0.load(Ordering::Relaxed),
                expected[id].1.load(Ordering::Relaxed)
            ),
            "account {id} diverged (lost update)"
        );
    }
}
