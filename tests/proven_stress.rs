//! Stress: proof-carrying readers racing writers and forced log cleaning.
//!
//! Readers continuously extract and verify inclusion proofs (and keyed
//! index proofs) while two writers commit transfers and a maintenance
//! thread forces checkpoint + cleaning passes, so segments relocate under
//! the open snapshots the whole time. Every proof must verify against an
//! anchor captured before the snapshot pin — relocation must never change
//! what a proof says — and a flipped byte anywhere in an encoded proof
//! must surface as a security error (`Tamper`/`Replay`), never as
//! acceptance. Run with `--release` in CI.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use tdb::proof::{wire, Verifier};
use tdb::{
    impl_persistent_boilerplate, ChunkStoreError, Db, Durability, ErrorKind, IndexKind, IndexSpec,
    Key, Options, Persistent, PickleError, Pickler, Unpickler,
};

const CLASS_ACCOUNT: u32 = 0xACC7_0003;
const ACCOUNTS: i64 = 8;
const INITIAL: i64 = 1_000;

struct Account {
    id: i64,
    balance: i64,
}

impl Persistent for Account {
    impl_persistent_boilerplate!(CLASS_ACCOUNT);
    fn pickle(&self, w: &mut Pickler) {
        w.i64(self.id);
        w.i64(self.balance);
    }
}

fn unpickle_account(r: &mut Unpickler) -> Result<Box<dyn Persistent>, PickleError> {
    Ok(Box::new(Account {
        id: r.i64()?,
        balance: r.i64()?,
    }))
}

fn open_db() -> Db {
    // Tiny segments force the cleaner to actually relocate live chunks
    // under the open snapshots.
    Db::open(
        Options::in_memory()
            .secret_label("proven-stress")
            .chunk_config(tdb::ChunkStoreConfig::small_for_tests())
            .register_class(CLASS_ACCOUNT, "Account", unpickle_account)
            .register_extractor("acct.id", |o| {
                tdb::extractor_typed::<Account>(o, |a| Key::I64(a.id))
            }),
    )
    .unwrap()
}

#[test]
fn proofs_hold_under_writers_and_forced_cleaning() {
    let db = open_db();
    let accounts = db.collection::<i64, Account>("accounts");

    let t = db.begin();
    accounts
        .ensure(
            &t,
            &[IndexSpec::new("by-id", "acct.id", true, IndexKind::BTree)],
        )
        .unwrap();
    for id in 0..ACCOUNTS {
        accounts
            .insert(
                &t,
                Account {
                    id,
                    balance: INITIAL,
                },
            )
            .unwrap();
    }
    t.commit(Durability::Durable).unwrap();

    let writers = 2;
    let readers = 3;
    let transfers_per_writer: u64 = if cfg!(debug_assertions) { 100 } else { 400 };

    let stop = Arc::new(AtomicBool::new(false));
    let proofs_verified = Arc::new(AtomicU64::new(0));
    let start = Arc::new(Barrier::new(writers + readers + 2));
    let mut handles = Vec::new();

    // Writers: transfers between accounts; the exact values do not matter
    // here, only that chunks keep getting rewritten and counters advance.
    for w in 0..writers {
        let db = db.clone();
        let accounts = accounts.clone();
        let start = start.clone();
        handles.push(std::thread::spawn(move || {
            start.wait();
            let mut state = 0xB5AD_4ECEu64.wrapping_add(w as u64);
            let mut rand = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let mut done: u64 = 0;
            while done < transfers_per_writer {
                let from = (rand() % ACCOUNTS as u64) as i64;
                let to = (rand() % ACCOUNTS as u64) as i64;
                if from == to {
                    continue;
                }
                let amount = (rand() % 50) as i64 + 1;
                let t = db.begin();
                let moved = (|| -> Result<bool, tdb::TdbError> {
                    let a = accounts.update(&t, "by-id", from, |acc| acc.balance -= amount)?;
                    let b = accounts.update(&t, "by-id", to, |acc| acc.balance += amount)?;
                    Ok(a == 1 && b == 1)
                })();
                match moved {
                    Ok(true) => {
                        let durability = Durability::from(done.is_multiple_of(2));
                        if t.commit(durability).is_ok() {
                            done += 1;
                        }
                    }
                    Ok(false) => t.abort(),
                    Err(e) if e.is_retryable() => t.abort(),
                    Err(e) => panic!("writer failed: {e}"),
                }
            }
        }));
    }

    // Readers: the full client flow each iteration — capture an anchor,
    // pin a snapshot, read with a proof, verify; then bend one byte and
    // demand a security rejection.
    for reader in 0..readers {
        let db = db.clone();
        let stop = stop.clone();
        let start = start.clone();
        let verified = proofs_verified.clone();
        handles.push(std::thread::spawn(move || {
            start.wait();
            let mut iter: u64 = 0;
            while !stop.load(Ordering::Relaxed) {
                // Anchor first: its counter value can only be <= the
                // snapshot's, so freshness never falsely trips.
                let verifier = Verifier::new(db.trust_anchor().unwrap());
                let r = db.begin_read_proven().unwrap();
                let coll = r.read_collection("accounts").unwrap();

                // Inclusion proof for one account's chunk.
                let probe = ((iter + reader as u64) % ACCOUNTS as u64) as i64;
                let hit = coll.exact_proven("by-id", &Key::I64(probe)).unwrap();
                assert_eq!(hit.entries.len(), 1, "account {probe} must exist");
                let ids = verifier.verify_keyed(&hit.proof).unwrap();
                assert_eq!(ids, vec![hit.entries[0].1 .0]);

                let oid = hit.entries[0].1;
                let proven = r.object_reader().read_proven_bytes(oid).unwrap();
                let bytes = proven.value.clone().expect("member chunk present");
                let proof = proven.prove().unwrap();
                verifier.verify_chunk(&proof, Some(&bytes)).unwrap();

                // Flip one byte of the encoded proof (position varies per
                // iteration): decode failure or a security rejection.
                let encoded = wire::encode_chunk_proof(&proof);
                let pos = (iter as usize * 7 + reader) % encoded.len();
                let mut bent = encoded.clone();
                bent[pos] ^= 0x01;
                if let Ok(decoded) = wire::decode_chunk_proof(&bent) {
                    let err = verifier
                        .verify_chunk(&decoded, Some(&bytes))
                        .expect_err("flipped proof byte must not verify");
                    let kind = ChunkStoreError::from(err).kind();
                    assert!(
                        matches!(kind, ErrorKind::Tamper | ErrorKind::Replay),
                        "flipped byte at {pos} must be a security error, got {kind:?}"
                    );
                }

                // Flipping the value instead must also be caught.
                let mut forged = bytes.clone();
                let vpos = iter as usize % forged.len();
                forged[vpos] ^= 0x01;
                let err = verifier
                    .verify_chunk(&proof, Some(&forged))
                    .expect_err("substituted value must not verify");
                assert_eq!(ChunkStoreError::from(err).kind(), ErrorKind::Tamper);

                r.finish();
                verified.fetch_add(1, Ordering::Relaxed);
                iter += 1;
            }
        }));
    }

    // Maintenance: force checkpoint + cleaning passes the whole time.
    {
        let db = db.clone();
        let stop = stop.clone();
        let start = start.clone();
        handles.push(std::thread::spawn(move || {
            start.wait();
            while !stop.load(Ordering::Relaxed) {
                let _ = db.checkpoint();
                let _ = db.clean();
                std::thread::yield_now();
            }
        }));
    }

    start.wait();
    let mut handles = handles.into_iter();
    for _ in 0..writers {
        handles.next().unwrap().join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }

    assert!(
        proofs_verified.load(Ordering::Relaxed) > 0,
        "readers never completed a proof check"
    );

    // The proof machinery observed the traffic.
    let obs = db.obs().snapshot();
    assert!(obs.counters["proof.proven_reads"] > 0);
    assert!(obs.counters["proof.minted"] > 0);
    assert!(obs.counters["proof.keyed_minted"] > 0);
}
