//! Flight-recorder / watchdog / diagnostics integration tests:
//!
//! * an injected commit stall must make the watchdog (polled by the
//!   background maintenance thread) write a diagnostic dump that names the
//!   stalled thread, carries its trace timeline, and shows the maintenance
//!   thread's own last event;
//! * `Database::diagnostics` must capture registered store state on demand
//!   and `diagnostics_to_dir` must persist a parseable dump;
//! * a looped stall storm on a fixed-size log (growth disabled, watermarks
//!   tight) must always make progress — the regression test for the lost
//!   stall wakeup that could hang `transfers_survive_forced_background_
//!   cleaning` on single-CPU machines.
//!
//! The watchdog, trace gate, and diag dir are process globals, so the tests
//! that touch them serialize on one mutex.

use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};
use tdb::obs;
use tdb::platform::{MemSecretStore, MemStore, VolatileCounter};
use tdb::{ChunkStore, ChunkStoreConfig, Durability, SecurityMode};

/// Serializes tests that mutate process-global observability state
/// (trace gate, watchdog threshold, diag dir, dump limiter).
fn global_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

fn mem_store(cfg: ChunkStoreConfig) -> ChunkStore {
    ChunkStore::create(
        Arc::new(MemStore::new()),
        &MemSecretStore::from_label("flight-recorder"),
        Arc::new(VolatileCounter::new()),
        cfg,
    )
    .unwrap()
}

fn u64_of(v: &obs::Json, key: &str) -> u64 {
    v.get(key).and_then(|j| j.as_u64()).unwrap_or(0)
}

fn str_of<'a>(v: &'a obs::Json, key: &str) -> &'a str {
    v.get(key).and_then(|j| j.as_str()).unwrap_or("")
}

/// All dumps currently in `dir`, parsed.
fn read_dumps(dir: &std::path::Path) -> Vec<obs::Json> {
    let mut out = Vec::new();
    if let Ok(rd) = std::fs::read_dir(dir) {
        let mut paths: Vec<_> = rd.flatten().map(|e| e.path()).collect();
        paths.sort();
        for p in paths {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if !(name.starts_with("tdb-diag-") && name.ends_with(".json")) {
                continue;
            }
            let text = std::fs::read_to_string(&p).unwrap();
            out.push(obs::Json::parse(&text).expect("dump must be valid JSON"));
        }
    }
    out
}

/// Hold an in-flight commit op past the watchdog threshold while a store's
/// maintenance thread is polling: a dump must appear in `TDB_DIAG_DIR`
/// containing the stalled thread's timeline and the maintenance thread's
/// last event (the `watchdog.dump` it emits while collecting).
#[test]
fn injected_commit_stall_produces_diagnostic_dump() {
    let _g = global_lock();
    const STALLED_XID: u64 = 0xFEED_4242;

    let dir = tempfile::tempdir().unwrap();
    obs::trace::set_trace_enabled(true);
    obs::diag::set_diag_dir(Some(dir.path().to_path_buf()));
    obs::watchdog::set_threshold_ms(200);
    obs::watchdog::reset_dump_limiter();

    // Background maintenance on: its thread is the watchdog poller.
    let st = mem_store(ChunkStoreConfig {
        security: SecurityMode::Off,
        background_maintenance: true,
        ..ChunkStoreConfig::default()
    });

    // A little real traffic so the ring holds commit events too.
    for _ in 0..4 {
        let id = st.allocate_chunk_id().unwrap();
        st.write(id, &[0xAB; 256]).unwrap();
        st.commit(Durability::Durable).unwrap();
    }

    let my_tid = obs::trace::trace_tid() as u64;
    {
        // The injected stall: a commit op that stays in flight well past
        // the 200 ms threshold. The guard keeps it registered; the mark
        // gives this thread a recognizable last trace event.
        let _op = obs::watchdog::op_begin(obs::watchdog::OpKind::Commit, STALLED_XID);
        obs::trace::emit(
            obs::TraceLayer::App,
            obs::TraceKind::Mark,
            STALLED_XID,
            7,
            7,
        );

        // Wait (well past threshold + poll interval) for a dump that
        // records our injected op.
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            let found = read_dumps(dir.path()).into_iter().any(|d| {
                d.get("stalled_ops")
                    .and_then(|j| j.as_arr())
                    .unwrap_or(&[])
                    .iter()
                    .any(|op| u64_of(op, "xid") == STALLED_XID)
            });
            if found {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "watchdog never dumped the injected stall"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    let dump = read_dumps(dir.path())
        .into_iter()
        .find(|d| {
            d.get("stalled_ops")
                .and_then(|j| j.as_arr())
                .unwrap_or(&[])
                .iter()
                .any(|op| u64_of(op, "xid") == STALLED_XID)
        })
        .unwrap();

    // Document shape.
    assert_eq!(str_of(&dump, "schema"), obs::diag::DIAG_SCHEMA);
    assert!(str_of(&dump, "reason").contains("watchdog"), "{dump:?}");
    let stalled = dump.get("stalled_ops").and_then(|j| j.as_arr()).unwrap();
    let op = stalled
        .iter()
        .find(|op| u64_of(op, "xid") == STALLED_XID)
        .unwrap();
    assert_eq!(str_of(op, "kind"), "commit");
    assert_eq!(
        u64_of(op, "tid"),
        my_tid,
        "stall attributed to wrong thread"
    );
    let age_ms = op.get("age_ms").and_then(|j| j.as_f64()).unwrap_or(0.0);
    assert!(age_ms >= 200.0, "{op:?}");

    // Registered store state made it into the dump.
    let provs = dump.get("providers").and_then(|j| j.as_obj()).unwrap();
    assert!(
        provs.iter().any(
            |(_, state)| state.get("commit_seq").is_some() || state.get("store_lock").is_some()
        ),
        "no chunk-store provider state in dump"
    );

    // The trace section holds the stalled thread's timeline (our mark) and
    // the maintenance thread's last event (the watchdog.dump it emitted on
    // a different thread while collecting this very dump).
    let trace = dump.get("trace").expect("dump carries a trace section");
    let events = trace.get("events").and_then(|j| j.as_arr()).unwrap();
    let mine: Vec<_> = events
        .iter()
        .filter(|e| u64_of(e, "tid") == my_tid)
        .collect();
    assert!(
        mine.iter()
            .any(|e| str_of(e, "kind") == "mark" && u64_of(e, "xid") == STALLED_XID),
        "stalled thread's timeline missing from dump"
    );
    let wd: Vec<_> = events
        .iter()
        .filter(|e| str_of(e, "kind") == "watchdog.dump")
        .collect();
    assert!(
        !wd.is_empty(),
        "maintenance thread's watchdog.dump event missing"
    );
    assert!(
        wd.iter().all(|e| u64_of(e, "tid") != my_tid),
        "watchdog.dump must come from the maintenance thread, not the stalled one"
    );

    // Guard dropped above: the op must clear and the watchdog go quiet.
    assert!(obs::watchdog::stalled_ops(1)
        .iter()
        .all(|s| s.xid != STALLED_XID));

    st.close();
    obs::diag::set_diag_dir(None);
    obs::watchdog::set_threshold_ms(60_000);
    obs::trace::set_trace_enabled(false);
}

/// `Database::diagnostics` captures provider state on demand;
/// `diagnostics_to_dir` writes a dump that parses and carries the same
/// schema the watchdog uses (so `tdb-doctor` reads both).
#[test]
fn manual_diagnostics_capture_store_state() {
    let _g = global_lock();

    let dir = tempfile::tempdir().unwrap();
    obs::diag::set_diag_dir(Some(dir.path().to_path_buf()));

    let db = tdb::Database::create(
        Arc::new(MemStore::new()),
        &MemSecretStore::from_label("diag-test"),
        Arc::new(VolatileCounter::new()),
        tdb::ClassRegistry::new(),
        tdb::ExtractorRegistry::new(),
        tdb::DatabaseConfig::without_security(),
    )
    .unwrap();

    let dump = db.diagnostics("unit-test");
    assert_eq!(str_of(&dump, "schema"), obs::diag::DIAG_SCHEMA);
    assert_eq!(str_of(&dump, "reason"), "unit-test");
    let provs = dump.get("providers").and_then(|j| j.as_obj()).unwrap();
    assert!(!provs.is_empty(), "database registered no diag providers");
    let (_, state) = provs
        .iter()
        .find(|(_, s)| s.get("commit_seq").is_some())
        .expect("no provider reported store state");
    // The store is idle, so the try_locks inside the provider must have
    // succeeded and reported real sequence numbers.
    assert!(state.get("durable_seq").is_some());
    assert!(state.get("maintenance").is_some());

    let path = db.diagnostics_to_dir("unit-test").unwrap().unwrap();
    let reread = obs::Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(str_of(&reread, "schema"), obs::diag::DIAG_SCHEMA);
    assert!(path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap()
        .contains("manual"));

    obs::diag::set_diag_dir(None);
}

/// Regression for the lost stall wakeup: committers on a fixed-size log
/// (growth disabled) that constantly overrun the free watermarks must make
/// progress round after round. Before the epoch-based stall protocol, a
/// committer could check the free count, miss the cleaner's notification
/// in the gap, and sleep through every segment free — serializing the
/// whole test behind multi-second condvar timeouts on single-CPU machines
/// (and, at worst, giving up with a spurious out-of-space).
#[test]
fn stall_storm_forced_cleaning_makes_progress() {
    const THREADS: usize = 3;
    const IDS_PER_THREAD: usize = 3;
    const COMMITS: usize = 30;
    const ROUNDS: usize = 3;

    for round in 0..ROUNDS {
        let st = mem_store(ChunkStoreConfig {
            security: SecurityMode::Off,
            segment_size: 8 * 1024,
            map_fanout: 8,
            checkpoint_threshold: 16 * 1024,
            cleaner_batch: 4,
            initial_segments: 16,
            allow_growth: false,
            background_maintenance: true,
            clean_low_free: 2,
            clean_high_free: 4,
            maintenance_slice_chunks: 4,
            ..ChunkStoreConfig::default()
        });

        let ids: Vec<_> = (0..THREADS * IDS_PER_THREAD)
            .map(|_| st.allocate_chunk_id().unwrap())
            .collect();
        for &id in &ids {
            st.write(id, &[0u8; 64]).unwrap();
        }
        st.commit(Durability::Durable).unwrap();

        std::thread::scope(|s| {
            for t in 0..THREADS {
                let st = &st;
                let mine = &ids[t * IDS_PER_THREAD..(t + 1) * IDS_PER_THREAD];
                s.spawn(move || {
                    let payload = vec![t as u8; 700];
                    for i in 0..COMMITS {
                        // Overwrite all of this thread's chunks in one
                        // durable batch; retry on transient out-of-space
                        // (the stall path gave up), rebuilding the batch.
                        let mut attempts = 0;
                        loop {
                            let mut b = st.begin_batch();
                            let staged = mine.iter().try_for_each(|&id| b.write(id, &payload));
                            let r = staged.and_then(|()| st.commit_batch(b, Durability::Durable));
                            match r {
                                Ok(()) => break,
                                Err(e) if e.kind() == tdb::ErrorKind::OutOfSpace => {
                                    attempts += 1;
                                    assert!(
                                        attempts < 300,
                                        "thread {t} commit {i} stuck after {attempts} retries: {e}"
                                    );
                                    std::thread::sleep(Duration::from_millis(2));
                                }
                                Err(e) => panic!("thread {t} commit {i}: {e}"),
                            }
                        }
                    }
                });
            }
        });

        let stats = st.stats();
        assert!(
            stats.cleaner_passes > 0,
            "round {round}: log never cleaned — storm config too loose \
             (passes {}, stalls {})",
            stats.cleaner_passes,
            stats.maintenance_stalls,
        );
        // Every chunk readable with its final contents.
        for (k, &id) in ids.iter().enumerate() {
            let data = st.read(id).unwrap();
            assert_eq!(data.len(), 700, "round {round}: chunk {k} lost");
            assert_eq!(data[0], (k / IDS_PER_THREAD) as u8);
        }
        st.close();
    }
}
