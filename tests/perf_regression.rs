//! Opt-in commit-path perf-regression guard.
//!
//! Replays the checked-in `tests/baselines/BENCH_fig10_tpcb.json`
//! baseline's TDB configuration in-process and fails if the live
//! `commit.total` mean regresses by more than 25% against the baseline
//! row. The threshold is deliberately loose — it is a tripwire for
//! "someone put real work back on the commit path", not a
//! microbenchmark. The baseline is a representative
//! `SCALE=0.02 TXNS=6000 fig10_tpcb` emission promoted out of the
//! (gitignored) `results/` directory; regenerate it deliberately when
//! the commit path legitimately changes speed.
//!
//! `#[ignore]`d because wall-clock comparisons against a checked-in
//! number only mean something from a release build on a quiet machine
//! (CI exposes it as an opt-in job):
//!
//! ```sh
//! cargo test --release --test perf_regression -- --ignored --nocapture
//! ```

use std::sync::Arc;

use tdb::obs::Json;
use tdb::{ChunkStoreConfig, DatabaseConfig, SecurityMode};
use tdb_platform::MemStore;
use tpcb::{run_benchmark, TdbDriver, TpcbConfig};

/// How much slower than the recorded baseline the live mean may be.
const ALLOWED_REGRESSION: f64 = 1.25;

fn baseline_path() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/baselines/BENCH_fig10_tpcb.json")
}

/// `results[] → system == name → phases_ns["commit.total"]` of the
/// checked-in baseline document: (count, sum_ns).
fn baseline_commit_total(doc: &Json, name: &str) -> (u64, u64) {
    let field = |o: &[(String, Json)], k: &str| -> Json {
        o.iter()
            .find(|(n, _)| n == k)
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| panic!("baseline row missing `{k}`"))
    };
    let results = doc
        .as_obj()
        .map(|o| field(o, "results"))
        .expect("baseline top level is an object");
    let row = results
        .as_arr()
        .expect("results is an array")
        .iter()
        .find(|r| {
            r.as_obj()
                .and_then(|o| {
                    o.iter()
                        .find(|(n, _)| n == "system")
                        .map(|(_, v)| v.clone())
                })
                .and_then(|v| v.as_str().map(|s| s == name))
                .unwrap_or(false)
        })
        .unwrap_or_else(|| panic!("baseline has no `{name}` row"))
        .clone();
    let phases = row
        .as_obj()
        .map(|o| field(o, "phases_ns"))
        .expect("row is an object");
    let total = phases
        .as_obj()
        .map(|o| field(o, "commit.total"))
        .expect("phases_ns is an object");
    let get = |k: &str| {
        total
            .as_obj()
            .map(|o| field(o, k))
            .and_then(|v| v.as_u64())
            .unwrap_or_else(|| panic!("commit.total.{k} missing or not an integer"))
    };
    (get("count"), get("sum"))
}

#[test]
#[ignore = "benchmark: run --release on a quiet machine against the checked-in baseline"]
fn commit_total_mean_within_25_percent_of_baseline() {
    let text = std::fs::read_to_string(baseline_path()).expect("checked-in baseline JSON");
    let doc = Json::parse(&text).expect("baseline parses");
    let (count, sum) = baseline_commit_total(&doc, "TDB");
    assert!(count > 0, "baseline commit.total has no samples");
    let baseline_mean_ns = sum as f64 / count as f64;

    // Mirror the baseline's TDB row: security off, 60% max utilization,
    // in-memory store, single writer thread. The run size matches the
    // smoke-bench invocation that regenerates the baseline. Best-of-3
    // runs, like the instrumentation overhead guard: the baseline is one
    // recorded run, so the live side takes its quietest window too —
    // otherwise scheduler noise alone can exceed the 25% budget.
    tdb_obs::set_enabled(true);
    let cfg = TpcbConfig {
        scale: 0.02,
        transactions: 6000,
        seed: 0x7DB,
        threads: 1,
    };
    let live_mean_ns = (0..3)
        .map(|_| {
            let chunk = ChunkStoreConfig {
                security: SecurityMode::Off,
                max_utilization: 0.60,
                ..ChunkStoreConfig::default()
            };
            let db_cfg = DatabaseConfig {
                chunk,
                ..DatabaseConfig::default()
            };
            let mut driver = TdbDriver::new(Arc::new(MemStore::new()), db_cfg);
            run_benchmark(&mut driver, &cfg);
            let measured = driver.measured_obs();
            let live = measured
                .histograms
                .get("commit.total")
                .expect("live run recorded commit.total")
                .clone();
            assert!(live.count() > 0, "live run has no commit.total samples");
            live.sum as f64 / live.count() as f64
        })
        .fold(f64::INFINITY, f64::min);

    let ratio = live_mean_ns / baseline_mean_ns;
    println!(
        "commit.total mean: baseline {:.1}µs, live {:.1}µs ({:.2}x)",
        baseline_mean_ns / 1e3,
        live_mean_ns / 1e3,
        ratio
    );
    assert!(
        ratio <= ALLOWED_REGRESSION,
        "commit.total mean regressed {ratio:.2}x over the checked-in baseline \
         ({:.1}µs -> {:.1}µs); either fix the regression or regenerate \
         tests/baselines/BENCH_fig10_tpcb.json deliberately",
        baseline_mean_ns / 1e3,
        live_mean_ns / 1e3,
    );
}
