//! Acceptance tests for the crash-point torture harness (`suite/torture.rs`,
//! also exposed as the `tdb-torture` binary).

use tdb_suite::torture::{run_torture, TortureConfig};

fn small() -> TortureConfig {
    TortureConfig {
        cells: 4,
        steps: 6,
        seed: 11,
        shards: 1,
        verbose: false,
    }
}

fn small_sharded() -> TortureConfig {
    TortureConfig {
        shards: 2,
        ..small()
    }
}

#[test]
fn sweep_covers_every_boundary_with_no_silent_corruption() {
    let report = run_torture(&small());
    // Every recorded boundary is swept: each write twice (torn at 1/2,
    // complete-but-unacknowledged), each sync once.
    assert_eq!(
        report.crash_points_swept,
        2 * report.write_boundaries + report.sync_boundaries
    );
    assert!(report.write_boundaries > 0 && report.sync_boundaries > 0);
    // Every pure crash recovered to an admissible state.
    assert_eq!(report.recoveries_ok, report.crash_points_swept);
    // Some crash points land exactly on the durable frontier (otherwise
    // the workload never exercises commit-then-crash) and some fall back
    // to an older prefix (otherwise torn tails are never discarded).
    assert!(report.recovered_at_frontier > 0);
    assert!(report.recovered_at_frontier < report.recoveries_ok);
    // Tampering: plenty injected, all classified, none silently absorbed
    // into a wrong state.
    assert!(report.tampers_injected >= report.crash_points_swept);
    assert_eq!(
        report.tampers_injected,
        report.tampers_detected + report.tampers_harmless
    );
    assert!(report.tampers_detected > 0);
    assert_eq!(report.silent_corruptions, 0);
    assert!(report.failures.is_empty());
}

#[test]
fn sweep_is_deterministic_for_a_fixed_seed() {
    // Two full runs from the same seed must agree on every counter: the
    // boundary enumeration, each crash outcome, and each tamper verdict.
    let a = run_torture(&small());
    let b = run_torture(&small());
    assert_eq!(a, b);
}

#[test]
fn different_seeds_change_the_tamper_picks_not_the_guarantees() {
    let mut cfg = small();
    cfg.seed = 12;
    let report = run_torture(&cfg);
    assert_eq!(report.silent_corruptions, 0);
    assert_eq!(report.recoveries_ok, report.crash_points_swept);
}

#[test]
fn cross_shard_sweep_has_no_silent_corruption() {
    // Two shards: the script mixes cross-shard transfers (two-phase
    // commits with a coordination record on the anchor shard) with
    // single-shard bumps and inserts. Every crash point must recover to a
    // state the relaxed oracle admits — per-shard durable frontiers,
    // all-or-nothing transfers — and every injected tamper must be
    // detected or provably harmless.
    let report = run_torture(&small_sharded());
    assert_eq!(
        report.crash_points_swept,
        2 * report.write_boundaries + report.sync_boundaries
    );
    assert!(report.write_boundaries > 0 && report.sync_boundaries > 0);
    assert_eq!(report.recoveries_ok, report.crash_points_swept);
    assert!(report.tampers_injected > 0);
    assert_eq!(
        report.tampers_injected,
        report.tampers_detected + report.tampers_harmless
    );
    assert!(report.tampers_detected > 0);
    assert_eq!(report.silent_corruptions, 0);
    assert!(report.failures.is_empty());
}

#[test]
fn cross_shard_sweep_is_deterministic_for_a_fixed_seed() {
    let a = run_torture(&small_sharded());
    let b = run_torture(&small_sharded());
    assert_eq!(a, b);
}
