//! Cross-crate integration tests: the whole TDB stack (platform → crypto →
//! chunk → object → collection → backup) exercised together, including
//! crash injection through every layer and on-disk (DirStore) operation.

use std::sync::Arc;
use tdb::platform::{
    DirStore, FaultPlan, FaultStore, FileCounter, FileSecretStore, MemArchive, MemSecretStore,
    MemStore, VolatileCounter,
};
use tdb::Durability;
use tdb::{
    impl_persistent_boilerplate, ClassRegistry, Database, DatabaseConfig, ExtractorRegistry,
    IndexKind, IndexSpec, Key, Persistent, PickleError, Pickler, Unpickler,
};

const CLASS_METER: u32 = 0x1234_0001;

struct Meter {
    id: u64,
    count: i64,
}

impl Persistent for Meter {
    impl_persistent_boilerplate!(CLASS_METER);
    fn pickle(&self, w: &mut Pickler) {
        w.u64(self.id);
        w.i64(self.count);
    }
}

fn unpickle_meter(r: &mut Unpickler) -> Result<Box<dyn Persistent>, PickleError> {
    Ok(Box::new(Meter {
        id: r.u64()?,
        count: r.i64()?,
    }))
}

fn registries() -> (ClassRegistry, ExtractorRegistry) {
    let mut classes = ClassRegistry::new();
    classes.register(CLASS_METER, "Meter", unpickle_meter);
    let mut extractors = ExtractorRegistry::new();
    extractors.register("meter.id", |o| {
        tdb::extractor_typed::<Meter>(o, |m| Key::U64(m.id))
    });
    extractors.register("meter.count", |o| {
        tdb::extractor_typed::<Meter>(o, |m| Key::I64(m.count))
    });
    (classes, extractors)
}

fn specs() -> [IndexSpec; 2] {
    [
        IndexSpec::new("by-id", "meter.id", true, IndexKind::Hash),
        IndexSpec::new("by-count", "meter.count", false, IndexKind::BTree),
    ]
}

fn bump(db: &Database, id: u64, delta: i64) {
    let t = db.begin();
    let c = t.write_collection("meters").unwrap();
    let mut it = c.exact("by-id", &Key::U64(id)).unwrap();
    {
        let m = it.write::<Meter>().unwrap();
        m.get_mut().count += delta;
    }
    it.close().unwrap();
    drop(c);
    t.commit(Durability::Durable).unwrap();
}

fn count_of(db: &Database, id: u64) -> i64 {
    let t = db.begin();
    let c = t.read_collection("meters").unwrap();
    let it = c.exact("by-id", &Key::U64(id)).unwrap();
    let m = it.read::<Meter>().unwrap();
    let n = m.get().count;
    drop(m);
    it.close().unwrap();
    drop(c);
    t.commit(Durability::Lazy).unwrap();
    n
}

#[test]
fn full_stack_on_real_files() {
    let dir = tempfile::tempdir().unwrap();
    let secret = FileSecretStore::open_or_init(dir.path().join("secret"), [9u8; 32]).unwrap();
    let counter = Arc::new(FileCounter::open(dir.path().join("counter")).unwrap());
    let (classes, extractors) = registries();
    {
        let db = Database::create(
            Arc::new(DirStore::new(dir.path().join("db")).unwrap()),
            &secret,
            counter.clone(),
            classes,
            extractors,
            DatabaseConfig::default(),
        )
        .unwrap();
        let t = db.begin();
        let c = t.create_collection("meters", &specs()).unwrap();
        for id in 0..100 {
            c.insert(Box::new(Meter { id, count: 0 })).unwrap();
        }
        drop(c);
        t.commit(Durability::Durable).unwrap();
        for round in 0..10 {
            bump(&db, round % 100, 1);
        }
        db.checkpoint().unwrap();
    }
    // Fresh process: reopen from disk with a fresh FileCounter handle.
    let counter = Arc::new(FileCounter::open(dir.path().join("counter")).unwrap());
    let (classes, extractors) = registries();
    let db = Database::open(
        Arc::new(DirStore::new(dir.path().join("db")).unwrap()),
        &secret,
        counter,
        classes,
        extractors,
        DatabaseConfig::default(),
    )
    .unwrap();
    // Rounds 0..10 bumped ids 0..10 once each.
    for id in 0..10 {
        assert_eq!(count_of(&db, id), 1, "meter {id}");
    }
    assert_eq!(count_of(&db, 50), 0);
}

#[test]
fn crash_at_every_layer_boundary_preserves_invariants() {
    // Drive the full stack through a fault-injected store and crash at a
    // spread of byte budgets; after recovery the database must be
    // consistent: every meter readable, every index entry pointing at a
    // live object, total count = committed increments.
    for budget in [50u64, 500, 2_000, 8_000, 20_000] {
        let mem = MemStore::new();
        let counter = VolatileCounter::new();
        let secret = MemSecretStore::from_label("crash-stack");
        let plan = FaultPlan::unlimited();
        let (classes, extractors) = registries();
        let committed = {
            let db = Database::create(
                Arc::new(FaultStore::new(mem.clone(), plan.clone())),
                &secret,
                Arc::new(counter.clone()),
                classes,
                extractors,
                DatabaseConfig::default(),
            )
            .unwrap();
            let t = db.begin();
            let c = t.create_collection("meters", &specs()).unwrap();
            for id in 0..20 {
                c.insert(Box::new(Meter { id, count: 0 })).unwrap();
            }
            drop(c);
            t.commit(Durability::Durable).unwrap();

            plan.rearm(budget);
            let mut committed = 0i64;
            for round in 0..200u64 {
                let id = round % 20;
                let t = db.begin();
                let result = (|| -> Result<(), String> {
                    let c = t.write_collection("meters").map_err(|e| e.to_string())?;
                    let mut it = c.exact("by-id", &Key::U64(id)).map_err(|e| e.to_string())?;
                    {
                        let m = it.write::<Meter>().map_err(|e| e.to_string())?;
                        m.get_mut().count += 1;
                    }
                    it.close().map_err(|e| e.to_string())?;
                    Ok(())
                })();
                if result.is_err() {
                    break;
                }
                match t.commit(Durability::Durable) {
                    Ok(()) => committed += 1,
                    Err(_) => break,
                }
            }
            committed
        };

        // Recover from the surviving bytes.
        let (classes, extractors) = registries();
        let db = Database::open(
            Arc::new(mem),
            &secret,
            Arc::new(counter),
            classes,
            extractors,
            DatabaseConfig::default(),
        )
        .unwrap();
        let t = db.begin();
        let c = t.read_collection("meters").unwrap();
        let mut total = 0i64;
        let mut seen = 0;
        let mut it = c.scan("by-id").unwrap();
        while !it.end() {
            let m = it.read::<Meter>().unwrap();
            total += m.get().count;
            drop(m);
            seen += 1;
            it.next();
        }
        it.close().unwrap();
        assert_eq!(seen, 20, "budget {budget}: collection membership damaged");
        // The last acknowledged commit may or may not have fully landed
        // before the crash tore the *next* one; recovery may legitimately
        // hold one more than acknowledged (commit acked after anchor
        // write) — never less.
        assert!(
            total == committed || total == committed + 1,
            "budget {budget}: {total} increments recovered, {committed} acknowledged"
        );
        // The B-tree index over counts is coherent with the objects.
        assert_eq!(c.index_entry_count("by-count").unwrap(), 20);
    }
}

#[test]
fn backup_cycle_through_facade() {
    let mem = MemStore::new();
    let secret = MemSecretStore::from_label("backup-stack");
    let (classes, extractors) = registries();
    let db = Database::create(
        Arc::new(mem),
        &secret,
        Arc::new(VolatileCounter::new()),
        classes,
        extractors,
        DatabaseConfig::default(),
    )
    .unwrap();
    let t = db.begin();
    let c = t.create_collection("meters", &specs()).unwrap();
    for id in 0..50 {
        c.insert(Box::new(Meter {
            id,
            count: id as i64,
        }))
        .unwrap();
    }
    drop(c);
    t.commit(Durability::Durable).unwrap();

    let archive = Arc::new(MemArchive::new());
    let mut mgr = db.backup_manager(archive.clone(), &secret).unwrap();
    mgr.backup_full(db.chunk_store().unsharded("backup_full").unwrap())
        .unwrap();
    bump(&db, 7, 100);
    mgr.backup_incremental(db.chunk_store().unsharded("backup_incremental").unwrap())
        .unwrap();
    bump(&db, 8, 100);
    mgr.backup_incremental(db.chunk_store().unsharded("backup_incremental").unwrap())
        .unwrap();

    let (classes, extractors) = registries();
    let restored = Database::restore_latest_from(
        &*archive,
        Arc::new(MemStore::new()),
        &secret,
        Arc::new(VolatileCounter::new()),
        classes,
        extractors,
        DatabaseConfig::default(),
    )
    .unwrap();
    assert_eq!(count_of(&restored, 7), 107);
    assert_eq!(count_of(&restored, 8), 108);
    assert_eq!(count_of(&restored, 9), 9);
    // The restored database is fully operational.
    bump(&restored, 9, 1);
    assert_eq!(count_of(&restored, 9), 10);
    // Indexes restored too: range query over counts.
    let t = restored.begin();
    let c = t.read_collection("meters").unwrap();
    let it = c
        .range(
            "by-count",
            std::ops::Bound::Included(&Key::I64(100)),
            std::ops::Bound::Unbounded,
        )
        .unwrap();
    assert_eq!(it.result_len(), 2); // meters 7 (107) and 8 (108)
    it.close().unwrap();
}

#[test]
fn mixed_object_and_collection_access() {
    // The object store and collection store share one transaction space:
    // roots registered through CTransaction, typed objects navigated via
    // the object store, collections on top — all atomically.
    let mem = MemStore::new();
    let secret = MemSecretStore::from_label("mixed");
    let (classes, extractors) = registries();
    let db = Database::create(
        Arc::new(mem),
        &secret,
        Arc::new(VolatileCounter::new()),
        classes,
        extractors,
        DatabaseConfig::default(),
    )
    .unwrap();

    // Collection + a root pointing at a distinguished meter.
    let special = {
        let t = db.begin();
        let c = t.create_collection("meters", &specs()).unwrap();
        let special = c.insert(Box::new(Meter { id: 999, count: -5 })).unwrap();
        drop(c);
        t.set_root("special-meter", special).unwrap();
        t.commit(Durability::Durable).unwrap();
        special
    };

    // Navigate from the root through the *object store* API.
    let os = db.object_store();
    let t = os.begin();
    assert_eq!(t.root("special-meter"), Some(special));
    let m = t.open_readonly::<Meter>(special).unwrap();
    assert_eq!(m.get().count, -5);
    drop(m);
    t.commit(Durability::Lazy).unwrap();
}
