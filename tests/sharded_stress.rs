//! Stress + tamper regressions for the sharded chunk store.
//!
//! The stress half races writer transactions doing **cross-shard**
//! transfers against snapshot readers and forced per-shard cleaning on a
//! 2-shard database, with a money-conservation oracle: every reader
//! snapshot must see the initial total exactly, so a torn two-phase commit
//! (one shard's leg applied, the other's missing) is immediately visible.
//! Run with `--release` in CI.
//!
//! The tamper half attacks the sharding trust structure directly: swapping
//! two shards' committed segments, corrupting both root-of-roots slots,
//! and rolling the whole image back under an advanced one-way counter must
//! each surface as a *security* error kind — never as wrong data.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use tdb::platform::{MemSecretStore, MemStore, UntrustedStore, VolatileCounter};
use tdb::{
    impl_persistent_boilerplate, Db, Durability, ErrorKind, IndexKind, IndexSpec, Key, Options,
    Persistent, PickleError, Pickler, TdbError, Unpickler,
};

const CLASS_ACCOUNT: u32 = 0xACC7_0003;
const ACCOUNTS: i64 = 8;
const INITIAL: i64 = 1_000;
const SHARDS: usize = 2;

struct Account {
    id: i64,
    balance: i64,
}

impl Persistent for Account {
    impl_persistent_boilerplate!(CLASS_ACCOUNT);
    fn pickle(&self, w: &mut Pickler) {
        w.i64(self.id);
        w.i64(self.balance);
    }
}

fn unpickle_account(r: &mut Unpickler) -> Result<Box<dyn Persistent>, PickleError> {
    Ok(Box::new(Account {
        id: r.i64()?,
        balance: r.i64()?,
    }))
}

fn options_on(mem: &MemStore, counter: &VolatileCounter, label: &str) -> Options {
    // Tiny segments force the cleaners to actually relocate live chunks on
    // both shards while the workload runs.
    Options::in_memory()
        .with_substrates(
            Arc::new(mem.clone()),
            MemSecretStore::from_label(label),
            Arc::new(counter.clone()),
        )
        .chunk_config(tdb::ChunkStoreConfig::small_for_tests())
        .shards(SHARDS)
        .register_class(CLASS_ACCOUNT, "Account", unpickle_account)
        .register_extractor("acct.id", |o| {
            tdb::extractor_typed::<Account>(o, |a| Key::I64(a.id))
        })
}

fn seed_accounts(db: &Db) {
    let accounts = db.collection::<i64, Account>("accounts");
    let t = db.begin();
    accounts
        .ensure(
            &t,
            &[IndexSpec::new("by-id", "acct.id", true, IndexKind::BTree)],
        )
        .unwrap();
    for id in 0..ACCOUNTS {
        accounts
            .insert(
                &t,
                Account {
                    id,
                    balance: INITIAL,
                },
            )
            .unwrap();
    }
    t.commit(Durability::Durable).unwrap();
}

/// Cross-shard transfers vs. snapshot readers vs. forced cleaning on both
/// shards. Readers conserve money on every snapshot; the final durable
/// state conserves it too.
#[test]
fn cross_shard_transfers_conserve_money_under_cleaning() {
    let mem = MemStore::new();
    let counter = VolatileCounter::new();
    let db = Db::open(options_on(&mem, &counter, "sharded-stress")).unwrap();
    assert_eq!(db.chunk_store().shards(), SHARDS);
    seed_accounts(&db);
    let accounts = db.collection::<i64, Account>("accounts");

    let writers = 2;
    let readers = 3;
    let transfers_per_writer: u64 = if cfg!(debug_assertions) { 120 } else { 500 };

    let stop = Arc::new(AtomicBool::new(false));
    let snapshots_checked = Arc::new(AtomicU64::new(0));
    let start = Arc::new(Barrier::new(writers + readers + 2));
    let mut handles = Vec::new();

    // Writers: transfers between *adjacent* account ids. Chunk ids are
    // handed out round-robin across shards, so adjacent objects live on
    // different shards and nearly every transfer is a two-phase
    // cross-shard commit (mixed durable/lazy — lazy upgrades internally).
    for w in 0..writers {
        let db = db.clone();
        let accounts = accounts.clone();
        let start = start.clone();
        handles.push(std::thread::spawn(move || {
            start.wait();
            let mut state = 0x9E37_79B9u64.wrapping_add(w as u64);
            let mut rand = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let mut done: u64 = 0;
            while done < transfers_per_writer {
                let from = (rand() % ACCOUNTS as u64) as i64;
                let to = (from + 1) % ACCOUNTS;
                let amount = (rand() % 50) as i64 + 1;
                let t = db.begin();
                let moved = (|| -> Result<bool, TdbError> {
                    let a = accounts.update(&t, "by-id", from, |acc| acc.balance -= amount)?;
                    let b = accounts.update(&t, "by-id", to, |acc| acc.balance += amount)?;
                    Ok(a == 1 && b == 1)
                })();
                match moved {
                    Ok(true) => {
                        let durability = Durability::from(done.is_multiple_of(2));
                        match t.commit(durability) {
                            Ok(()) => done += 1,
                            // Conflict aborts are expected; anything else
                            // (e.g. a torn cross-shard commit surfacing as
                            // Usage/Tamper) must fail the test loudly
                            // instead of livelocking the writer.
                            Err(e) if e.is_retryable() => {}
                            Err(e) => panic!("writer {w} commit failed: {:?} {e}", e.kind()),
                        }
                    }
                    Ok(false) => t.abort(),
                    Err(e) if e.is_retryable() => t.abort(),
                    Err(e) => panic!("writer failed: {e}"),
                }
            }
        }));
    }

    // Readers: every snapshot must conserve money across both shards.
    for _ in 0..readers {
        let db = db.clone();
        let accounts = accounts.clone();
        let stop = stop.clone();
        let start = start.clone();
        let checked = snapshots_checked.clone();
        handles.push(std::thread::spawn(move || {
            start.wait();
            while !stop.load(Ordering::Relaxed) {
                let r = db.begin_read();
                let entries = accounts.scan(&r, "by-id").unwrap();
                assert_eq!(entries.len(), ACCOUNTS as usize);
                let coll = accounts.read(&r).unwrap();
                let mut total = 0i64;
                for (_key, oid) in &entries {
                    total += coll.get::<Account, _>(*oid, |a| a.balance).unwrap();
                }
                assert_eq!(
                    total,
                    ACCOUNTS * INITIAL,
                    "snapshot is not cross-shard transaction-consistent"
                );
                r.finish();
                checked.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }

    // Cleaner: force checkpoint + cleaning on *each shard individually*
    // the whole time, plus the all-shard paths.
    {
        let chunks = db.chunk_store().clone();
        let stop = stop.clone();
        let start = start.clone();
        handles.push(std::thread::spawn(move || {
            start.wait();
            while !stop.load(Ordering::Relaxed) {
                for i in 0..SHARDS {
                    let shard = chunks.shard(i);
                    let _ = shard.checkpoint();
                    let _ = shard.clean();
                }
                let _ = chunks.checkpoint();
                let _ = chunks.clean();
                std::thread::yield_now();
            }
        }));
    }

    start.wait();
    let mut handles = handles.into_iter();
    for _ in 0..writers {
        handles.next().unwrap().join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }

    assert!(
        snapshots_checked.load(Ordering::Relaxed) > 0,
        "readers never completed a snapshot check"
    );
    // Final durable state conserves money, and both shards did real work.
    let r = db.begin_read();
    let entries = accounts.scan(&r, "by-id").unwrap();
    let coll = accounts.read(&r).unwrap();
    let total: i64 = entries
        .iter()
        .map(|(_k, oid)| coll.get::<Account, _>(*oid, |a| a.balance).unwrap())
        .sum();
    assert_eq!(total, ACCOUNTS * INITIAL);
    r.finish();
    for i in 0..SHARDS {
        assert!(
            db.chunk_store().shard(i).live_chunks() > 0,
            "shard {i} holds no live chunks — the workload never spanned it"
        );
    }
}

// ---------------------------------------------------------------------------
// Tamper regressions against the sharding trust structure
// ---------------------------------------------------------------------------

/// Overwrite `name` in `mem` with `bytes`.
fn put(mem: &MemStore, name: &str, bytes: &[u8]) {
    let f = mem.open(name, false).unwrap();
    f.set_len(0).unwrap();
    f.write_at(0, bytes).unwrap();
}

/// Build a 2-shard database with committed cross-shard state, then close
/// it, leaving the image in `mem` for the attacker.
fn build_sharded_image(mem: &MemStore, counter: &VolatileCounter, label: &str) {
    let db = Db::open(options_on(mem, counter, label)).unwrap();
    seed_accounts(&db);
    let accounts = db.collection::<i64, Account>("accounts");
    for round in 0..6i64 {
        let t = db.begin();
        let from = round % ACCOUNTS;
        let to = (from + 1) % ACCOUNTS;
        accounts
            .update(&t, "by-id", from, |a| a.balance -= 7)
            .unwrap();
        accounts
            .update(&t, "by-id", to, |a| a.balance += 7)
            .unwrap();
        t.commit(Durability::Durable).unwrap();
    }
    db.checkpoint().unwrap();
    db.chunk_store().close();
}

fn open_err_kind(mem: &MemStore, counter: &VolatileCounter, label: &str) -> ErrorKind {
    match Db::open(options_on(mem, counter, label)) {
        Ok(_) => panic!("tampered database opened cleanly"),
        Err(e) => e.kind(),
    }
}

/// Swapping two shards' committed segment files is the canonical
/// cross-shard splice: each file is individually well-formed ciphertext,
/// but each shard's chunks are encrypted and MAC'd under a per-shard
/// derived secret, so the swap must surface as a security error — never as
/// data from the wrong shard.
#[test]
fn swapped_shard_segments_are_detected() {
    let mem = MemStore::new();
    let counter = VolatileCounter::new();
    build_sharded_image(&mem, &counter, "sharded-swap");

    let names = mem.list().unwrap();
    let mut swapped = 0;
    for name in &names {
        let Some(suffix) = name.strip_prefix("shard0--") else {
            continue;
        };
        if !suffix.starts_with("seg.") {
            continue;
        }
        let peer = format!("shard1--{suffix}");
        if !names.contains(&peer) {
            continue;
        }
        let a = mem.raw(name).unwrap();
        let b = mem.raw(&peer).unwrap();
        put(&mem, name, &b);
        put(&mem, &peer, &a);
        swapped += 1;
    }
    assert!(swapped > 0, "no matching segment pair to swap: {names:?}");

    let kind = open_err_kind(&mem, &counter, "sharded-swap");
    assert!(
        matches!(kind, ErrorKind::Tamper | ErrorKind::Replay),
        "segment swap surfaced as {kind:?}, not a security kind"
    );
}

/// Corrupting both root-of-roots slots destroys the combiner record that
/// binds the per-shard Merkle roots to the one-way counter. With no valid
/// slot left, open must refuse with a tamper error (one corrupted slot is
/// survivable by design — that is what double-buffering is for).
#[test]
fn corrupting_both_root_of_roots_slots_is_tamper() {
    let mem = MemStore::new();
    let counter = VolatileCounter::new();
    build_sharded_image(&mem, &counter, "sharded-rr");

    for slot in ["rr.a", "rr.b"] {
        let len = mem.raw(slot).unwrap().len();
        assert!(len > 0, "{slot} missing from a sharded image");
        for off in (0..len).step_by(7) {
            mem.corrupt(slot, off as u64, 1).unwrap();
        }
    }
    let kind = open_err_kind(&mem, &counter, "sharded-rr");
    assert_eq!(
        kind,
        ErrorKind::Tamper,
        "rr corruption surfaced as {kind:?}"
    );
}

/// Rolling the whole sharded image back to a stale-but-consistent copy
/// while the hardware counter has moved on is the §3 replay attack; the
/// root-of-roots must pin *all* shards to the counter, so the replay is
/// detected even though every shard is internally consistent.
#[test]
fn whole_image_rollback_is_replay() {
    let mem = MemStore::new();
    let counter = VolatileCounter::new();
    build_sharded_image(&mem, &counter, "sharded-replay");

    let stale = mem.deep_clone();
    // The device moves on: more durable commits advance the counter.
    {
        let db = Db::open(options_on(&mem, &counter, "sharded-replay")).unwrap();
        let accounts = db.collection::<i64, Account>("accounts");
        for round in 0..3i64 {
            let t = db.begin();
            accounts
                .update(&t, "by-id", round % ACCOUNTS, |a| a.balance += 1)
                .unwrap();
            accounts
                .update(&t, "by-id", (round + 1) % ACCOUNTS, |a| a.balance -= 1)
                .unwrap();
            t.commit(Durability::Durable).unwrap();
        }
        db.chunk_store().close();
    }

    let kind = open_err_kind(&stale, &counter, "sharded-replay");
    assert_eq!(kind, ErrorKind::Replay, "rollback surfaced as {kind:?}");
}
