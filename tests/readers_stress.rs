//! Stress: snapshot-isolated readers racing read-write transactions and
//! forced log cleaning, with a money-conservation oracle.
//!
//! Writers transfer balance between accounts (the total is invariant);
//! every reader snapshot must observe a transaction-consistent state, i.e.
//! the sum of all balances always equals the initial total — regardless of
//! how many transfers commit or how often the cleaner relocates chunks
//! while the reader is open. Run with `--release` in CI.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use tdb::{
    impl_persistent_boilerplate, Db, Durability, IndexKind, IndexSpec, Key, Options, Persistent,
    PickleError, Pickler, Unpickler,
};

const CLASS_ACCOUNT: u32 = 0xACC7_0002;
const ACCOUNTS: i64 = 8;
const INITIAL: i64 = 1_000;

struct Account {
    id: i64,
    balance: i64,
}

impl Persistent for Account {
    impl_persistent_boilerplate!(CLASS_ACCOUNT);
    fn pickle(&self, w: &mut Pickler) {
        w.i64(self.id);
        w.i64(self.balance);
    }
}

fn unpickle_account(r: &mut Unpickler) -> Result<Box<dyn Persistent>, PickleError> {
    Ok(Box::new(Account {
        id: r.i64()?,
        balance: r.i64()?,
    }))
}

fn open_db() -> Db {
    // Tiny segments force the cleaner to actually relocate live chunks
    // under the open snapshots.
    Db::open(
        Options::in_memory()
            .secret_label("readers-stress")
            .chunk_config(tdb::ChunkStoreConfig::small_for_tests())
            .register_class(CLASS_ACCOUNT, "Account", unpickle_account)
            .register_extractor("acct.id", |o| {
                tdb::extractor_typed::<Account>(o, |a| Key::I64(a.id))
            }),
    )
    .unwrap()
}

#[test]
fn readers_vs_writers_vs_cleaner() {
    let db = open_db();
    let accounts = db.collection::<i64, Account>("accounts");

    let t = db.begin();
    accounts
        .ensure(
            &t,
            &[IndexSpec::new("by-id", "acct.id", true, IndexKind::BTree)],
        )
        .unwrap();
    for id in 0..ACCOUNTS {
        accounts
            .insert(
                &t,
                Account {
                    id,
                    balance: INITIAL,
                },
            )
            .unwrap();
    }
    t.commit(Durability::Durable).unwrap();

    let writers = 2;
    let readers = 4;
    let transfers_per_writer: u64 = if cfg!(debug_assertions) { 150 } else { 600 };

    let stop = Arc::new(AtomicBool::new(false));
    let snapshots_checked = Arc::new(AtomicU64::new(0));
    let start = Arc::new(Barrier::new(writers + readers + 2));
    let mut handles = Vec::new();

    // Writers: random-ish transfers keep the total invariant.
    for w in 0..writers {
        let db = db.clone();
        let accounts = accounts.clone();
        let start = start.clone();
        handles.push(std::thread::spawn(move || {
            start.wait();
            let mut state = 0x9E37_79B9u64.wrapping_add(w as u64);
            let mut rand = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let mut done: u64 = 0;
            while done < transfers_per_writer {
                let from = (rand() % ACCOUNTS as u64) as i64;
                let to = (rand() % ACCOUNTS as u64) as i64;
                if from == to {
                    continue;
                }
                let amount = (rand() % 50) as i64 + 1;
                let t = db.begin();
                let moved = (|| -> Result<bool, tdb::TdbError> {
                    let a = accounts.update(&t, "by-id", from, |acc| acc.balance -= amount)?;
                    let b = accounts.update(&t, "by-id", to, |acc| acc.balance += amount)?;
                    Ok(a == 1 && b == 1)
                })();
                match moved {
                    Ok(true) => {
                        // Alternate durable / lazy commits.
                        let durability = Durability::from(done.is_multiple_of(2));
                        if t.commit(durability).is_ok() {
                            done += 1;
                        }
                    }
                    Ok(false) => t.abort(),
                    Err(e) if e.is_retryable() => t.abort(),
                    Err(e) => panic!("writer failed: {e}"),
                }
            }
        }));
    }

    // Readers: every snapshot must conserve money and see all accounts.
    for _ in 0..readers {
        let db = db.clone();
        let accounts = accounts.clone();
        let stop = stop.clone();
        let start = start.clone();
        let checked = snapshots_checked.clone();
        handles.push(std::thread::spawn(move || {
            start.wait();
            while !stop.load(Ordering::Relaxed) {
                let r = db.begin_read();
                let entries = accounts.scan(&r, "by-id").unwrap();
                assert_eq!(entries.len(), ACCOUNTS as usize);
                let coll = accounts.read(&r).unwrap();
                let mut total = 0i64;
                for (_key, oid) in &entries {
                    total += coll.get::<Account, _>(*oid, |a| a.balance).unwrap();
                }
                assert_eq!(
                    total,
                    ACCOUNTS * INITIAL,
                    "snapshot at seq {} is not transaction-consistent",
                    r.commit_seq()
                );
                // Point lookups against the same snapshot agree with the scan.
                let probe = (r.commit_seq() % ACCOUNTS as u64) as i64;
                assert!(accounts
                    .get(&r, "by-id", probe, |a| a.balance)
                    .unwrap()
                    .is_some());
                r.finish();
                checked.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }

    // Cleaner: force checkpoint + cleaning passes the whole time.
    {
        let db = db.clone();
        let stop = stop.clone();
        let start = start.clone();
        handles.push(std::thread::spawn(move || {
            start.wait();
            while !stop.load(Ordering::Relaxed) {
                let _ = db.checkpoint();
                let _ = db.clean();
                std::thread::yield_now();
            }
        }));
    }

    start.wait();
    // Main thread: wait for writers (the first `writers` handles).
    let mut handles = handles.into_iter();
    for _ in 0..writers {
        handles.next().unwrap().join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }

    assert!(
        snapshots_checked.load(Ordering::Relaxed) > 0,
        "readers never completed a snapshot check"
    );

    // Final ground truth through a fresh snapshot.
    let r = db.begin_read();
    let coll = accounts.read(&r).unwrap();
    let mut total = 0;
    for (_k, oid) in coll.scan("by-id").unwrap() {
        total += coll.get::<Account, _>(oid, |a| a.balance).unwrap();
    }
    assert_eq!(total, ACCOUNTS * INITIAL);
}
