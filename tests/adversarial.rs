//! Adversarial integration tests: the attacker owns the storage (paper
//! §2). Every stored byte is flipped in turn; the database must either
//! behave identically or refuse with tamper/replay detection — never
//! silently serve corrupted state.

use std::sync::Arc;
use tdb::platform::{MemSecretStore, MemStore, OneWayCounter, UntrustedStore, VolatileCounter};
use tdb::Durability;
use tdb::{
    impl_persistent_boilerplate, ChunkStoreError, ClassRegistry, CollectionError, Database,
    DatabaseConfig, ExtractorRegistry, IndexKind, IndexSpec, Key, ObjectStoreError, Persistent,
    PickleError, Pickler, TdbError, Unpickler,
};

const CLASS_SECRETVAL: u32 = 0x5EC0_0001;

struct SecretVal {
    id: u64,
    payload: Vec<u8>,
}

impl Persistent for SecretVal {
    impl_persistent_boilerplate!(CLASS_SECRETVAL);
    fn pickle(&self, w: &mut Pickler) {
        w.u64(self.id);
        w.bytes(&self.payload);
    }
}

fn unpickle(r: &mut Unpickler) -> Result<Box<dyn Persistent>, PickleError> {
    Ok(Box::new(SecretVal {
        id: r.u64()?,
        payload: r.bytes()?.to_vec(),
    }))
}

fn registries() -> (ClassRegistry, ExtractorRegistry) {
    let mut classes = ClassRegistry::new();
    classes.register(CLASS_SECRETVAL, "SecretVal", unpickle);
    let mut extractors = ExtractorRegistry::new();
    extractors.register("sv.id", |o| {
        tdb::extractor_typed::<SecretVal>(o, |s| Key::U64(s.id))
    });
    (classes, extractors)
}

fn build_database(mem: &MemStore, counter: &VolatileCounter) -> Vec<Vec<u8>> {
    let (classes, extractors) = registries();
    let secret = MemSecretStore::from_label("adversarial");
    let db = Database::create(
        Arc::new(mem.clone()),
        &secret,
        Arc::new(counter.clone()),
        classes,
        extractors,
        DatabaseConfig::default(),
    )
    .unwrap();
    let t = db.begin();
    let c = t
        .create_collection(
            "vault",
            &[IndexSpec::new("by-id", "sv.id", true, IndexKind::Hash)],
        )
        .unwrap();
    let mut payloads = Vec::new();
    for id in 0..80u64 {
        let payload = format!("content-key-{id:04}-SECRET").into_bytes();
        c.insert(Box::new(SecretVal {
            id,
            payload: payload.clone(),
        }))
        .unwrap();
        payloads.push(payload);
    }
    drop(c);
    t.commit(Durability::Durable).unwrap();
    payloads
}

/// Open the database and read everything back; `Ok` only if every payload
/// matches exactly.
fn read_all(mem: &MemStore, counter: &VolatileCounter, expect: &[Vec<u8>]) -> Result<(), String> {
    let (classes, extractors) = registries();
    let secret = MemSecretStore::from_label("adversarial");
    let db = Database::open(
        Arc::new(mem.clone()),
        &secret,
        Arc::new(counter.clone()),
        classes,
        extractors,
        DatabaseConfig::default(),
    )
    .map_err(|e| e.to_string())?;
    let t = db.begin();
    let c = t.read_collection("vault").map_err(|e| e.to_string())?;
    for (id, payload) in expect.iter().enumerate() {
        let it = c
            .exact("by-id", &Key::U64(id as u64))
            .map_err(|e| e.to_string())?;
        let sv = it.read::<SecretVal>().map_err(|e| e.to_string())?;
        if &sv.get().payload != payload {
            return Err(format!("SILENT CORRUPTION of value {id}"));
        }
        drop(sv);
        it.close().map_err(|e| e.to_string())?;
    }
    Ok(())
}

#[test]
fn exhaustive_bit_flip_sweep_never_corrupts_silently() {
    let mem = MemStore::new();
    let counter = VolatileCounter::new();
    let payloads = build_database(&mem, &counter);
    // Baseline sanity.
    read_all(&mem, &counter, &payloads).expect("clean database must read");

    let mut flips = 0;
    let mut detected = 0;
    for name in mem.list().unwrap() {
        let len = mem.raw(&name).unwrap().len();
        // Sweep with a stride to keep runtime bounded; prime stride avoids
        // aliasing with record layouts.
        for off in (0..len).step_by(37) {
            mem.corrupt(&name, off as u64, 1).unwrap();
            flips += 1;
            match read_all(&mem, &counter, &payloads) {
                Ok(()) => {} // flip landed in dead bytes — fine
                Err(e) if e.contains("SILENT CORRUPTION") => {
                    panic!("flip at {name}:{off} caused silent corruption")
                }
                Err(_) => detected += 1,
            }
            mem.corrupt(&name, off as u64, 1).unwrap(); // restore
        }
    }
    assert!(flips > 150, "sweep too small: {flips}");
    assert!(
        detected > flips / 4,
        "only {detected}/{flips} flips detected — most of the file should be live"
    );
    // And the restored database still reads cleanly.
    read_all(&mem, &counter, &payloads).expect("database damaged by the sweep itself");
}

#[test]
fn truncation_never_corrupts_silently() {
    // Truncating a file may be harmless (the cut bytes were dead) or must
    // be *detected* — it may never yield wrong data. Cutting the first
    // segment to a sliver always removes live state and must error.
    let mem = MemStore::new();
    let counter = VolatileCounter::new();
    let payloads = build_database(&mem, &counter);
    for name in mem.list().unwrap() {
        let copy = mem.deep_clone();
        let len = copy.raw(&name).unwrap().len();
        if len == 0 {
            continue;
        }
        copy.open(&name, false)
            .unwrap()
            .set_len(len as u64 / 2)
            .unwrap();
        match read_all(&copy, &counter, &payloads) {
            Ok(()) => {} // cut bytes were dead space
            Err(e) => assert!(!e.contains("SILENT"), "truncating {name}: {e}"),
        }
    }
    let copy = mem.deep_clone();
    let len = copy.raw("seg.000000").unwrap().len();
    copy.open("seg.000000", false)
        .unwrap()
        .set_len(len as u64 / 10)
        .unwrap();
    assert!(read_all(&copy, &counter, &payloads).is_err());
}

#[test]
fn deleting_segments_is_detected() {
    let mem = MemStore::new();
    let counter = VolatileCounter::new();
    let payloads = build_database(&mem, &counter);
    for name in mem.list().unwrap() {
        if !name.starts_with("seg.") {
            continue;
        }
        if mem.raw(&name).unwrap().is_empty() {
            continue; // free (truncated) segments hold nothing
        }
        let copy = mem.deep_clone();
        copy.remove(&name).unwrap();
        assert!(
            read_all(&copy, &counter, &payloads).is_err(),
            "deleting {name} went unnoticed"
        );
    }
}

#[test]
fn cross_database_splicing_is_detected() {
    // Two databases under the same secret: splice a segment file from one
    // into the other. Hash/chain validation must catch it.
    let mem_a = MemStore::new();
    let counter_a = VolatileCounter::new();
    let payloads_a = build_database(&mem_a, &counter_a);
    let mem_b = MemStore::new();
    let counter_b = VolatileCounter::new();
    let _payloads_b = build_database(&mem_b, &counter_b);

    let victim = mem_a.deep_clone();
    let donor_seg = mem_b.raw("seg.000000").unwrap();
    victim
        .open("seg.000000", false)
        .unwrap()
        .set_len(0)
        .unwrap();
    victim
        .open("seg.000000", false)
        .unwrap()
        .write_at(0, &donor_seg)
        .unwrap();
    assert!(read_all(&victim, &counter_a, &payloads_a).is_err());
}

#[test]
fn error_types_are_distinguishable() {
    // The facade surfaces the paper's two distinct failure classes.
    let mem = MemStore::new();
    let counter = VolatileCounter::new();
    let payloads = build_database(&mem, &counter);

    // Tamper: corrupt the log heavily.
    let copy = mem.deep_clone();
    for off in (0..copy.raw("seg.000000").unwrap().len()).step_by(11) {
        copy.corrupt("seg.000000", off as u64, 1).unwrap();
    }
    let (classes, extractors) = registries();
    let secret = MemSecretStore::from_label("adversarial");
    match Database::open(
        Arc::new(copy),
        &secret,
        Arc::new(counter.clone()),
        classes,
        extractors,
        DatabaseConfig::default(),
    ) {
        Err(TdbError::Chunk(ChunkStoreError::TamperDetected(_))) => {}
        other => panic!(
            "expected TamperDetected, got {:?}",
            other.err().map(|e| e.to_string())
        ),
    }

    // Replay: old image, advanced counter.
    let old = mem.deep_clone();
    counter.increment().unwrap();
    counter.increment().unwrap();
    let (classes, extractors) = registries();
    match Database::open(
        Arc::new(old),
        &secret,
        Arc::new(counter.clone()),
        classes,
        extractors,
        DatabaseConfig::default(),
    ) {
        Err(TdbError::Chunk(ChunkStoreError::ReplayDetected { .. })) => {}
        other => panic!(
            "expected ReplayDetected, got {:?}",
            other.err().map(|e| e.to_string())
        ),
    }

    // Keep the variants nameable from the facade (compile-time check).
    let _ = |e: TdbError| match e {
        TdbError::Object(ObjectStoreError::LockTimeout(_)) => (),
        TdbError::Collection(CollectionError::IteratorConflict) => (),
        _ => (),
    };
    let _ = &payloads;
}

#[test]
fn ciphertext_leaks_nothing_across_whole_stack() {
    let mem = MemStore::new();
    let counter = VolatileCounter::new();
    let payloads = build_database(&mem, &counter);
    for name in mem.list().unwrap() {
        let raw = mem.raw(&name).unwrap();
        for payload in &payloads {
            assert!(
                !raw.windows(12).any(|w| w == &payload[..12]),
                "payload fragment visible in {name}"
            );
        }
        // Even the collection/index names stay secret.
        assert!(
            !raw.windows(5).any(|w| w == b"vault"),
            "schema name visible in {name}"
        );
    }
}

/// The §3 replay attack, at both granularities the paper distinguishes.
/// Rolling the *whole store* back to a stale-but-internally-consistent
/// image is exactly what the one-way counter exists to defeat, and must be
/// reported as [`ChunkStoreError::ReplayDetected`] carrying both counter
/// values. Splicing a *single* stale segment back into an otherwise
/// current store breaks the Merkle/chain structure instead, and must
/// surface as generic tamper detection — never as a whole-database replay,
/// and never silently.
#[test]
fn stale_segment_replay_is_detected_and_distinguishable() {
    let mem = MemStore::new();
    let counter = VolatileCounter::new();
    let mut payloads = build_database(&mem, &counter);

    // The attacker snapshots everything at time T0.
    let whole_t0 = mem.deep_clone();
    let files_t0: Vec<(String, Vec<u8>)> = mem
        .list()
        .unwrap()
        .into_iter()
        .map(|n| (n.clone(), mem.raw(&n).unwrap()))
        .collect();

    // The device moves on: durable updates advance the state and the
    // one-way counter.
    {
        let (classes, extractors) = registries();
        let secret = MemSecretStore::from_label("adversarial");
        let db = Database::open(
            Arc::new(mem.clone()),
            &secret,
            Arc::new(counter.clone()),
            classes,
            extractors,
            DatabaseConfig::default(),
        )
        .unwrap();
        for round in 0..4u64 {
            let t = db.begin();
            let c = t.write_collection("vault").unwrap();
            for id in 0..8u64 {
                let mut it = c.exact("by-id", &Key::U64(id)).unwrap();
                {
                    let sv = it.write::<SecretVal>().unwrap();
                    sv.get_mut().payload = format!("rotated-{round}-{id:04}").into_bytes();
                }
                it.close().unwrap();
            }
            drop(c);
            t.commit(Durability::Durable).unwrap();
        }
        db.checkpoint().unwrap();
    }
    for (id, payload) in payloads.iter_mut().enumerate().take(8) {
        *payload = format!("rotated-3-{id:04}").into_bytes();
    }
    read_all(&mem, &counter, &payloads).expect("advanced database must read");

    // Attack 1: restore the whole T0 image. Internally consistent, so only
    // the counter can give it away — as a replay, with both values named.
    let (classes, extractors) = registries();
    let secret = MemSecretStore::from_label("adversarial");
    match Database::open(
        Arc::new(whole_t0),
        &secret,
        Arc::new(counter.clone()),
        classes,
        extractors,
        DatabaseConfig::default(),
    ) {
        Err(TdbError::Chunk(ChunkStoreError::ReplayDetected {
            anchor_counter,
            hardware_counter,
        })) => {
            assert!(
                anchor_counter < hardware_counter,
                "stale anchor ({anchor_counter}) must trail the hardware \
                 counter ({hardware_counter})"
            );
        }
        other => panic!(
            "whole-store rollback: expected ReplayDetected, got {:?}",
            other.err().map(|e| e.to_string())
        ),
    }

    // Attack 2: restore just the segments that changed since T0, one at a
    // time. Each splice must be caught — but as tampering, not replay (the
    // anchor itself is current).
    let mut spliced = 0;
    for (name, old_bytes) in &files_t0 {
        if !name.starts_with("seg.") || mem.raw(name).unwrap() == *old_bytes {
            continue;
        }
        spliced += 1;
        let victim = mem.deep_clone();
        let f = victim.open(name, false).unwrap();
        f.set_len(0).unwrap();
        f.write_at(0, old_bytes).unwrap();

        let (classes, extractors) = registries();
        match Database::open(
            Arc::new(victim.clone()),
            &secret,
            Arc::new(counter.clone()),
            classes,
            extractors,
            DatabaseConfig::default(),
        ) {
            Err(TdbError::Chunk(ChunkStoreError::ReplayDetected { .. })) => {
                panic!("splicing {name}: single-segment rollback misreported as replay")
            }
            Err(_) => {} // caught at open: generic tamper detection
            Ok(_) => {
                // Structure happened to validate; reading the data must
                // still catch the stale bytes.
                let e = read_all(&victim, &counter, &payloads)
                    .expect_err(&format!("splicing {name} went unnoticed"));
                assert!(!e.contains("SILENT"), "splicing {name}: {e}");
            }
        }
    }
    assert!(
        spliced > 0,
        "advancing the database must have rewritten some segment"
    );
}
