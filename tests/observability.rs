//! Observability integration tests: commit-path phase spans must account
//! for the measured end-to-end durable-commit time, registry counter deltas
//! must reconcile with the legacy `StatsSnapshot` view, and (as an
//! `--ignored` benchmark guard) full instrumentation must cost < 2% of
//! TPC-B throughput versus no-op mode.

use std::sync::Arc;
use tdb::obs;
use tdb::platform::{MemSecretStore, MemStore, VolatileCounter};
use tdb::Durability;
use tdb::{ChunkStore, ChunkStoreConfig, SecurityMode};

fn store(cfg: ChunkStoreConfig) -> ChunkStore {
    ChunkStore::create(
        Arc::new(MemStore::new()),
        &MemSecretStore::from_label("obs-test"),
        Arc::new(VolatileCounter::new()),
        cfg,
    )
    .unwrap()
}

/// The eight instrumented commit phases (serialize, seal, append, map,
/// sync, rehash, anchor, counter) must sum to within ε of `commit.total` —
/// everything the durable commit path does is attributed.
///
/// The store runs in Full security with payloads large enough that crypto
/// and log writes dominate, and a checkpoint threshold high enough that no
/// checkpoint (whose map-page sealing is deliberately unattributed) can
/// fire mid-measurement.
#[test]
fn commit_phase_spans_sum_close_to_total() {
    // Phase attribution samples every Nth commit by default; this test
    // reconciles phase sums against totals, so time every commit.
    obs::set_phase_sample_every(1);
    let st = store(ChunkStoreConfig {
        security: SecurityMode::Full,
        checkpoint_threshold: u64::MAX / 2,
        ..Default::default()
    });
    let base = st.obs().snapshot();
    let payload = vec![0xC5u8; 8192];
    for _ in 0..40 {
        let id = st.allocate_chunk_id().unwrap();
        st.write(id, &payload).unwrap();
        st.commit(Durability::Durable).unwrap();
    }
    let snap = st.obs().snapshot().since(&base);

    let phase_sum: u64 = [
        "commit.serialize",
        "commit.seal",
        "commit.append",
        "commit.map",
        "commit.sync",
        "commit.rehash",
        "commit.anchor",
        "commit.counter",
    ]
    .iter()
    .map(|name| snap.histograms.get(*name).map(|h| h.sum).unwrap_or(0))
    .sum();
    let total = snap.histograms.get("commit.total").expect("total recorded");
    assert_eq!(total.count(), 40, "one total sample per durable commit");
    assert!(
        phase_sum <= total.sum,
        "phases ({phase_sum} ns) cannot exceed the enclosing total ({} ns)",
        total.sum
    );
    // Generous ε: at least half the measured commit time must be attributed
    // to a phase (in practice it is well above 80%; the slack absorbs debug
    // builds and noisy CI machines).
    assert!(
        phase_sum * 2 >= total.sum,
        "phases ({phase_sum} ns) explain under half of commit.total ({} ns)",
        total.sum
    );
}

/// Regression test for the phase-lap attribution drift: checkpoint and
/// cleaner anchor rounds used to record their sync/anchor/counter laps
/// into the `commit.*` histograms, so a bench run showed more
/// `commit.anchor` laps than `commit.serialize` laps (380 vs 375 in the
/// checked-in fig10 JSON). With maintenance rounds attributed to the
/// `maint.*` lanes, every commit-phase histogram must carry exactly one
/// lap per durable commit, no matter how many checkpoints interleave.
#[test]
fn commit_phase_lap_counts_match_across_interleaved_checkpoints() {
    obs::set_enabled(true);
    obs::set_phase_sample_every(1);
    // No maintenance thread: the leader then runs the batched Merkle pass
    // inline in its anchor round, so `commit.rehash` laps are exactly one
    // per durable commit (with the thread, the pass is deferred there and
    // consecutive rounds coalesce — counted under `maint.rehash` instead).
    let st = store(ChunkStoreConfig {
        security: SecurityMode::Full,
        checkpoint_threshold: u64::MAX / 2,
        background_maintenance: false,
        ..Default::default()
    });
    let base = st.obs().snapshot();
    let mut commits = 0u64;
    let mut checkpoints = 0u64;
    for round in 0..12u8 {
        let id = st.allocate_chunk_id().unwrap();
        st.write(id, &vec![round; 1024]).unwrap();
        st.commit(Durability::Durable).unwrap();
        commits += 1;
        if round % 3 == 2 {
            st.checkpoint().unwrap();
            checkpoints += 1;
        }
    }
    let snap = st.obs().snapshot().since(&base);
    let count = |name: &str| snap.histograms.get(name).map(|h| h.count()).unwrap_or(0);
    for phase in [
        "commit.serialize",
        "commit.seal",
        "commit.append",
        "commit.map",
        "commit.sync",
        "commit.rehash",
        "commit.anchor",
        "commit.counter",
    ] {
        assert_eq!(
            count(phase),
            commits,
            "{phase} laps must match the {commits} durable commits"
        );
    }
    assert_eq!(
        count("maint.anchor"),
        checkpoints,
        "each checkpoint's anchor round lands in maint.anchor"
    );
    assert_eq!(count("maint.counter"), checkpoints);
    assert!(count("maint.sync") >= checkpoints);
    // Group stats stay per-user-commit exact: checkpoints neither lead
    // nor join a commit group, and each single-threaded durable commit is
    // its own group of one.
    assert_eq!(count("commit.group_wait"), commits);
    assert_eq!(count("commit.group_size"), commits);
    let group_sum = snap
        .histograms
        .get("commit.group_size")
        .map(|h| h.sum)
        .unwrap_or(0);
    assert_eq!(group_sum, commits, "groups must cover each commit once");
}

/// The `chunk.*` registry counters and the legacy [`StatsSnapshot`] read
/// the same atomics, so deltas taken through either view must agree.
#[test]
fn registry_counter_deltas_reconcile_with_stats_snapshot() {
    let st = store(ChunkStoreConfig::default());
    // Warm-up traffic so the deltas start from nonzero bases.
    let id0 = st.allocate_chunk_id().unwrap();
    st.write(id0, b"warmup").unwrap();
    st.commit(Durability::Durable).unwrap();

    let stats_base = st.stats();
    let obs_base = st.obs().snapshot();
    for i in 0..7 {
        let id = st.allocate_chunk_id().unwrap();
        st.write(id, &vec![i as u8; 512]).unwrap();
        st.commit(Durability::from(i % 2 == 0)).unwrap();
    }
    st.checkpoint().unwrap();

    let stats_delta = st.stats().since(&stats_base);
    let obs_delta = st.obs().snapshot().since(&obs_base);
    let counter = |name: &str| obs_delta.counters.get(name).copied().unwrap_or(0);

    assert_eq!(counter("chunk.commits"), stats_delta.commits);
    assert_eq!(
        counter("chunk.durable_commits"),
        stats_delta.durable_commits
    );
    assert_eq!(counter("chunk.bytes_appended"), stats_delta.bytes_appended);
    assert_eq!(
        counter("chunk.chunk_bytes_appended"),
        stats_delta.chunk_bytes_appended
    );
    assert_eq!(counter("chunk.syncs"), stats_delta.syncs);
    assert_eq!(counter("chunk.anchor_writes"), stats_delta.anchor_writes);
    assert_eq!(counter("chunk.checkpoints"), stats_delta.checkpoints);
    assert_eq!(stats_delta.checkpoints, 1);
    assert!(stats_delta.commits == 7 && stats_delta.durable_commits == 4);
}

/// Recovery phases are timed on every open.
#[test]
fn recovery_phases_recorded_on_open() {
    let mem = Arc::new(MemStore::new());
    let secret = MemSecretStore::from_label("obs-recovery");
    let counter = Arc::new(VolatileCounter::new());
    {
        let st = ChunkStore::create(
            mem.clone(),
            &secret,
            counter.clone(),
            ChunkStoreConfig::default(),
        )
        .unwrap();
        let id = st.allocate_chunk_id().unwrap();
        st.write(id, b"persisted").unwrap();
        st.commit(Durability::Durable).unwrap();
    }
    let st = ChunkStore::open(mem, &secret, counter, ChunkStoreConfig::default()).unwrap();
    let snap = st.obs().snapshot();
    for phase in [
        "recovery.anchor",
        "recovery.map_load",
        "recovery.replay",
        "recovery.total",
    ] {
        let h = snap.histograms.get(phase).unwrap_or_else(|| {
            panic!(
                "{phase} missing from registry: {:?}",
                snap.histograms.keys()
            )
        });
        assert_eq!(h.count(), 1, "{phase} must have one sample per open");
    }
    let total = &snap.histograms["recovery.total"];
    let parts: u64 = ["recovery.anchor", "recovery.map_load", "recovery.replay"]
        .iter()
        .map(|p| snap.histograms[*p].sum)
        .sum();
    assert!(
        parts <= total.sum,
        "recovery phases ({parts} ns) exceed recovery.total ({} ns)",
        total.sum
    );
}

/// Benchmark-backed hot-path guard (documented in EXPERIMENTS.md): full
/// instrumentation must cost < 2% of TPC-B throughput versus no-op mode.
/// `#[ignore]`d because it needs a quiet machine and a release build:
///
/// ```text
/// cargo test --release --test observability -- --ignored overhead_guard
/// ```
#[test]
#[ignore = "benchmark: run --release on a quiet machine"]
fn overhead_guard_instrumentation_under_two_percent() {
    use tpcb::{run_benchmark, TdbDriver, TpcbConfig};

    let cfg = TpcbConfig {
        scale: 0.02,
        transactions: 6_000,
        seed: 0x0B5,
        threads: 1,
    };
    let run = |enabled: bool| {
        obs::set_enabled(enabled);
        let mut driver = TdbDriver::new(
            Arc::new(MemStore::new()),
            tdb::DatabaseConfig::without_security(),
        );
        // Warm-up run then measured run, interleaved per mode to share any
        // machine-wide drift.
        let report = run_benchmark(&mut driver, &cfg);
        report.transactions as f64 / report.run_seconds
    };
    // Interleave A/B/A/B and keep the best of each to shed scheduler noise:
    // noise only ever slows a run down, so each mode's best run is its
    // closest approach to true throughput. Five rounds give each mode a
    // good chance at one quiet slot even on a loaded machine.
    let mut best_on = 0.0f64;
    let mut best_off = 0.0f64;
    for _ in 0..5 {
        best_on = best_on.max(run(true));
        best_off = best_off.max(run(false));
    }
    obs::set_enabled(true);
    let overhead = (best_off - best_on) / best_off;
    eprintln!(
        "throughput: instrumented {best_on:.0} txn/s, no-op {best_off:.0} txn/s, \
         overhead {:.2}%",
        overhead * 100.0
    );
    assert!(
        overhead < 0.02,
        "instrumentation overhead {:.2}% exceeds the 2% budget",
        overhead * 100.0
    );
}

/// Same guard for the flight recorder: with the trace ring enabled (as
/// `TDB_TRACE=on` would), tracing must cost < 2% of TPC-B throughput. The
/// recorder's design brief is "cheap enough to leave on in production
/// stress runs" — a fetch_add plus eight single-cache-line stores per
/// event — so a regression here means an instrumentation site started
/// doing real work (formatting, locking, allocation) on the hot path.
///
/// Unlike the guard above this one does *not* A/B end-to-end throughput:
/// the effect is well under 1%, and virtualized runners swing several
/// percent run-to-run, so an A/B comparison flakes in both directions
/// (measured spread across repeated A/B attempts: −27% to +18%). Instead
/// it measures the factors directly — cost of one `record` (tight loop,
/// low variance), events emitted per transaction (deterministic), and
/// time per transaction (one run) — and bounds their product. A heavy
/// emit path blows up the first factor; event spam on the commit path
/// blows up the second; either fails the guard deterministically.
/// `#[ignore]`d for the same reason as the guard above:
///
/// ```text
/// cargo test --release --test observability -- --ignored tracing_overhead
/// ```
#[test]
#[ignore = "benchmark: run --release on a quiet machine"]
fn tracing_overhead_guard_under_two_percent() {
    use std::time::Instant;
    use tpcb::{run_benchmark, TdbDriver, TpcbConfig};

    // Factor 1: nanoseconds per recorded event, into the process-global
    // ring the real instrumentation uses (includes the enabled-check and
    // recorder lookup via the public emit path).
    obs::set_enabled(true);
    obs::trace::set_trace_enabled(true);
    let rec = obs::trace::recorder();
    let spam = 1_000_000u64;
    let t0 = Instant::now();
    for i in 0..spam {
        obs::trace::emit(obs::TraceLayer::Chunk, obs::TraceKind::Mark, i, i, i);
    }
    let ns_per_event = t0.elapsed().as_nanos() as f64 / spam as f64;

    // Factors 2 and 3: events per transaction and time per transaction,
    // from one traced TPC-B run.
    let cfg = TpcbConfig {
        scale: 0.02,
        transactions: 10_000,
        seed: 0x0B5,
        threads: 1,
    };
    let before = rec.recorded();
    let mut driver = TdbDriver::new(
        Arc::new(MemStore::new()),
        tdb::DatabaseConfig::without_security(),
    );
    let report = run_benchmark(&mut driver, &cfg);
    let events_per_txn = (rec.recorded() - before) as f64 / report.transactions as f64;
    let ns_per_txn = report.run_seconds * 1e9 / report.transactions as f64;
    obs::trace::set_trace_enabled(false);

    let overhead = events_per_txn * ns_per_event / ns_per_txn;
    eprintln!(
        "tracing cost: {ns_per_event:.0} ns/event x {events_per_txn:.1} events/txn \
         over {ns_per_txn:.0} ns/txn = {:.2}% overhead",
        overhead * 100.0
    );
    assert!(
        overhead < 0.02,
        "flight-recorder overhead {:.2}% exceeds the 2% budget \
         ({ns_per_event:.0} ns/event, {events_per_txn:.1} events/txn)",
        overhead * 100.0
    );
}
