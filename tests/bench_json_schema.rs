//! Schema gate for bench telemetry. Validates every `results/BENCH_*.json`
//! present in the repository; with `REQUIRE_BENCH_JSON=1` (set by the CI
//! smoke-bench job after running the benchmarks) the key documents must
//! exist and a missing or malformed file fails the build.

use tdb_bench::telemetry::{validate_bench_doc, validate_bench_file};
use tdb_obs::Json;

fn results_dir() -> std::path::PathBuf {
    // Relative to the workspace root, where the bench binaries write when
    // run from a checkout (and where CI runs them).
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("results")
}

/// A synthetic document shaped like real emissions must pass, and known
/// corruptions of it must fail — the validator itself is under test here.
#[test]
fn validator_accepts_wellformed_and_rejects_malformed() {
    let text = r#"{
      "schema_version": 1,
      "bench": "synthetic",
      "config": {"scale": 0.1},
      "results": [
        {
          "system": "TDB",
          "throughput_txn_per_sec": 812.5,
          "threads": 4,
          "shards": 2,
          "per_shard": [
            {"shard": 0, "commits": 55, "group_commits": 20, "group_size_mean": 1.6},
            {"shard": 1, "commits": 45, "group_commits": 18, "group_size_mean": 1.4}
          ],
          "readers": 3,
          "reader_ops_per_sec": 856.0,
          "writer_txn_per_sec": 5248.0,
          "reads_per_sec": 91000.0,
          "proofs_per_sec": 88000.5,
          "proof_bytes_mean": 2712.0,
          "deferred_p50_ratio": 1.8,
          "latency_ms": {"count": 100, "mean": 1.2, "p50": 1.0, "p90": 2.0, "p95": 2.5, "p99": 4.0, "p999": 9.5},
          "phases_ns": {
            "commit.seal": {"count": 100, "sum": 12345678, "min": 1000, "max": 99999, "mean": 123456.78, "p50": 1.0, "p90": 1.0, "p95": 1.0, "p99": 1.0},
            "commit.sync": {"count": 100, "sum": 345678},
            "commit.stall": {"count": 3, "sum": 4500000},
            "commit.group_size": {"count": 50, "sum": 100}
          },
          "counters": {"chunk.commits": 100, "chunk.bytes_appended": 51200},
          "maintenance": {"wakeups": 12, "stalls": 3, "gave_up": 0, "checkpoints": 7, "cleaner_passes": 5, "cleaner_slices": 40, "cleaner_segments_freed": 9, "cleaner_bytes_copied": 262144}
        }
      ]
    }"#;
    let doc = Json::parse(text).expect("synthetic doc parses");
    validate_bench_doc(&doc).expect("synthetic doc validates");

    // Required-field and type corruptions must all be rejected.
    let corrupt = |f: &dyn Fn(&str) -> String| {
        let mutated = f(text);
        match Json::parse(&mutated) {
            Err(_) => (), // unparseable is also a rejection
            Ok(d) => assert!(
                validate_bench_doc(&d).is_err(),
                "validator accepted corrupted doc: {mutated}"
            ),
        }
    };
    corrupt(&|t| t.replace("\"schema_version\": 1", "\"schema_version\": 2"));
    corrupt(&|t| t.replace("\"bench\": \"synthetic\"", "\"bench\": \"\""));
    corrupt(&|t| t.replace("\"p99\": 4.0", "\"p99\": \"fast\""));
    corrupt(&|t| t.replace("\"sum\": 345678", "\"sum\": null"));
    corrupt(&|t| t.replace("\"chunk.commits\": 100", "\"chunk.commits\": \"100\""));
    corrupt(&|t| t.replace("\"results\": [", "\"results\": \"none\", \"unused\": ["));
    corrupt(&|t| t.replace("\"threads\": 4", "\"threads\": \"four\""));
    corrupt(&|t| t.replace("\"threads\": 4", "\"threads\": 0"));
    corrupt(&|t| t.replace("\"shards\": 2", "\"shards\": 0"));
    corrupt(&|t| t.replace("\"shards\": 2", "\"shards\": \"two\""));
    corrupt(&|t| t.replace("\"group_size_mean\": 1.4", "\"group_size_mean\": \"small\""));
    corrupt(&|t| {
        t.replace(
            "\"per_shard\": [",
            "\"per_shard\": \"both\", \"unused2\": [",
        )
    });
    corrupt(&|t| t.replace("\"readers\": 3", "\"readers\": \"three\""));
    corrupt(&|t| {
        t.replace(
            "\"reader_ops_per_sec\": 856.0",
            "\"reader_ops_per_sec\": null",
        )
    });
    corrupt(&|t| {
        t.replace(
            "\"writer_txn_per_sec\": 5248.0",
            "\"writer_txn_per_sec\": \"fast\"",
        )
    });
    corrupt(&|t| t.replace("\"p999\": 9.5", "\"p999\": \"tail\""));
    corrupt(&|t| t.replace("\"proofs_per_sec\": 88000.5", "\"proofs_per_sec\": null"));
    corrupt(&|t| {
        t.replace(
            "\"proof_bytes_mean\": 2712.0",
            "\"proof_bytes_mean\": \"big\"",
        )
    });
    corrupt(&|t| {
        t.replace(
            "\"deferred_p50_ratio\": 1.8",
            "\"deferred_p50_ratio\": \"low\"",
        )
    });
    corrupt(&|t| t.replace("\"stalls\": 3", "\"stalls\": \"some\""));
    corrupt(&|t| {
        t.replace(
            "\"commit.stall\": {\"count\": 3, \"sum\": 4500000}",
            "\"commit.stall\": {\"count\": 3}",
        )
    });
    corrupt(&|t| {
        t.replace(
            "\"commit.group_size\": {\"count\": 50, \"sum\": 100}",
            "\"commit.group_size\": {\"count\": 50}",
        )
    });
}

/// Every bench JSON document in `results/` must satisfy the schema. With
/// `REQUIRE_BENCH_JSON=1`, the smoke-bench set must actually be present.
#[test]
fn emitted_bench_json_validates() {
    let dir = results_dir();
    let require = std::env::var("REQUIRE_BENCH_JSON").as_deref() == Ok("1");

    let mut seen = Vec::new();
    if let Ok(entries) = std::fs::read_dir(&dir) {
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with("BENCH_") && name.ends_with(".json") {
                validate_bench_file(&entry.path())
                    .unwrap_or_else(|e| panic!("{name} fails schema validation: {e}"));
                seen.push(name);
            }
        }
    }

    if require {
        for want in [
            "BENCH_overheads.json",
            "BENCH_fig10_tpcb.json",
            "BENCH_fig_readers.json",
            "BENCH_fig_proofs.json",
        ] {
            assert!(
                seen.iter().any(|n| n == want),
                "REQUIRE_BENCH_JSON=1 but {want} is missing from {} (found: {seen:?})",
                dir.display()
            );
        }
    } else if seen.is_empty() {
        eprintln!(
            "note: no BENCH_*.json under {} — run the bench binaries to generate them",
            dir.display()
        );
    }
}
