//! Ablation A1 (§4.2.1): single-object vs multi-object chunks.
//!
//! TDB chose single-object chunks: "only modified objects are written to
//! the log". This bench makes the tradeoff measurable at the chunk layer:
//! updating 1 of N logical 100-byte objects when each lives in its own
//! chunk vs when all N are packed into one chunk (which must be rewritten
//! whole, as §4.2.1's recomposition argument describes).

use chunk_store::ChunkStoreConfig;
use chunk_store::Durability;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tdb_bench::bench_chunk_store;

fn bench_packing(c: &mut Criterion) {
    const OBJ: usize = 100;
    let mut group = c.benchmark_group("update_one_of_N_objects");
    for n in [1usize, 4, 16] {
        // Single-object chunks: write just the touched object.
        let store = bench_chunk_store(ChunkStoreConfig::default());
        let ids: Vec<_> = (0..n)
            .map(|_| {
                let id = store.allocate_chunk_id().unwrap();
                store.write(id, &[1u8; OBJ]).unwrap();
                id
            })
            .collect();
        store.commit(Durability::Durable).unwrap();
        group.bench_function(BenchmarkId::new("single_object_chunks", n), |b| {
            b.iter(|| {
                store.write(ids[0], &[2u8; OBJ]).unwrap();
                store.commit(Durability::Durable).unwrap();
            })
        });

        // Multi-object chunk: the container is re-composed and rewritten.
        let store = bench_chunk_store(ChunkStoreConfig::default());
        let packed = store.allocate_chunk_id().unwrap();
        store.write(packed, &vec![1u8; OBJ * n]).unwrap();
        store.commit(Durability::Durable).unwrap();
        group.bench_function(BenchmarkId::new("multi_object_chunk", n), |b| {
            b.iter(|| {
                let mut all = store.read(packed).unwrap();
                all[..OBJ].copy_from_slice(&[2u8; OBJ]);
                store.write(packed, &all).unwrap();
                store.commit(Durability::Durable).unwrap();
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_packing);
criterion_main!(benches);
