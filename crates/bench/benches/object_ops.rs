//! Microbenchmarks of object store operations: cached reads, writes,
//! insert/remove cycles.

use chunk_store::{ChunkStore, ChunkStoreConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use object_store::Durability;
use object_store::{
    impl_persistent_boilerplate, ClassRegistry, ObjectStore, ObjectStoreConfig, Persistent,
    PickleError, Pickler, Unpickler,
};
use std::sync::Arc;
use tdb_platform::{MemSecretStore, MemStore, VolatileCounter};

struct Rec {
    balance: i64,
    pad: Vec<u8>,
}
impl Persistent for Rec {
    impl_persistent_boilerplate!(0xBE7C);
    fn pickle(&self, w: &mut Pickler) {
        w.i64(self.balance);
        w.bytes(&self.pad);
    }
}
fn unpickle(r: &mut Unpickler) -> Result<Box<dyn Persistent>, PickleError> {
    Ok(Box::new(Rec {
        balance: r.i64()?,
        pad: r.bytes()?.to_vec(),
    }))
}

fn store() -> ObjectStore {
    let chunks = Arc::new(
        ChunkStore::create(
            Arc::new(MemStore::new()),
            &MemSecretStore::from_label("bench"),
            Arc::new(VolatileCounter::new()),
            ChunkStoreConfig::default(),
        )
        .unwrap(),
    );
    let mut reg = ClassRegistry::new();
    reg.register(0xBE7C, "Rec", unpickle);
    ObjectStore::create(chunks, reg, ObjectStoreConfig::default()).unwrap()
}

fn bench_object_ops(c: &mut Criterion) {
    let os = store();
    let t = os.begin();
    let ids: Vec<_> = (0..1000)
        .map(|_| {
            t.insert(Box::new(Rec {
                balance: 0,
                pad: vec![0; 88],
            }))
            .unwrap()
        })
        .collect();
    t.commit(Durability::Durable).unwrap();

    let mut i = 0usize;
    c.bench_function("object_cached_read", |b| {
        b.iter(|| {
            i = (i + 13) % ids.len();
            let t = os.begin();
            let r = t.open_readonly::<Rec>(ids[i]).unwrap();
            let v = r.get().balance;
            drop(r);
            t.commit(Durability::Lazy).unwrap();
            v
        })
    });

    let mut j = 0usize;
    c.bench_function("object_update_commit_durable", |b| {
        b.iter(|| {
            j = (j + 13) % ids.len();
            let t = os.begin();
            let r = t.open_writable::<Rec>(ids[j]).unwrap();
            r.get_mut().balance += 1;
            drop(r);
            t.commit(Durability::Durable).unwrap();
        })
    });

    c.bench_function("object_insert_remove_cycle", |b| {
        b.iter(|| {
            let t = os.begin();
            let id = t
                .insert(Box::new(Rec {
                    balance: 1,
                    pad: vec![0; 88],
                }))
                .unwrap();
            t.commit(Durability::Durable).unwrap();
            let t = os.begin();
            t.remove(id).unwrap();
            t.commit(Durability::Durable).unwrap();
        })
    });
}

criterion_group!(benches, bench_object_ops);
criterion_main!(benches);
