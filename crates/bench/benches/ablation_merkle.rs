//! Ablation A2 (§3.2.1): the cost of the security machinery on the chunk
//! read/write path — encryption + hashing + Merkle maintenance (Full) vs
//! none (Off). The paper's claim: "the extra CPU overhead of hashing and
//! encryption was relatively small (less than 10% of the total CPU
//! overhead)" on their disk-bound runs; on a memory-backed store the CPU
//! delta is fully visible.

use chunk_store::Durability;
use chunk_store::{ChunkStoreConfig, SecurityMode};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tdb_bench::bench_chunk_store;

fn bench_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("merkle_roundtrip_1KB");
    group.throughput(Throughput::Bytes(1024));
    for (name, mode) in [("off", SecurityMode::Off), ("full", SecurityMode::Full)] {
        let cfg = ChunkStoreConfig {
            security: mode,
            ..Default::default()
        };
        let store = bench_chunk_store(cfg);
        let id = store.allocate_chunk_id().unwrap();
        store.write(id, &[7u8; 1024]).unwrap();
        store.commit(Durability::Durable).unwrap();
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                store.write(id, &[7u8; 1024]).unwrap();
                store.commit(Durability::Durable).unwrap();
                store.read(id).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_roundtrip);
criterion_main!(benches);
