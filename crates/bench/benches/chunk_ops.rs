//! Microbenchmarks of chunk store primitives (write/commit, read,
//! checkpoint) in both security modes.

use chunk_store::Durability;
use chunk_store::{ChunkStoreConfig, SecurityMode};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tdb_bench::bench_chunk_store;

fn bench_write_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("chunk_write_commit_100B");
    group.throughput(Throughput::Elements(1));
    for (name, mode) in [("off", SecurityMode::Off), ("full", SecurityMode::Full)] {
        let cfg = ChunkStoreConfig {
            security: mode,
            ..Default::default()
        };
        let store = bench_chunk_store(cfg);
        let payload = vec![0x5Au8; 100];
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let id = store.allocate_chunk_id().unwrap();
                store.write(id, &payload).unwrap();
                store.commit(Durability::Durable).unwrap();
            })
        });
    }
    group.finish();
}

fn bench_read(c: &mut Criterion) {
    let mut group = c.benchmark_group("chunk_read_100B");
    for (name, mode) in [("off", SecurityMode::Off), ("full", SecurityMode::Full)] {
        let cfg = ChunkStoreConfig {
            security: mode,
            ..Default::default()
        };
        let store = bench_chunk_store(cfg);
        let ids: Vec<_> = (0..1000)
            .map(|i| {
                let id = store.allocate_chunk_id().unwrap();
                store.write(id, &[i as u8; 100]).unwrap();
                id
            })
            .collect();
        store.commit(Durability::Durable).unwrap();
        let mut i = 0usize;
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                i = (i + 7) % ids.len();
                store.read(ids[i]).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_checkpoint(c: &mut Criterion) {
    let store = bench_chunk_store(ChunkStoreConfig::default());
    for i in 0..500u32 {
        let id = store.allocate_chunk_id().unwrap();
        store.write(id, &i.to_le_bytes().repeat(25)).unwrap();
    }
    store.commit(Durability::Durable).unwrap();
    c.bench_function("chunk_checkpoint_after_one_commit", |b| {
        b.iter(|| {
            let id = chunk_store::ChunkId(0);
            store.write(id, b"dirty one path").unwrap();
            store.commit(Durability::Durable).unwrap();
            store.checkpoint().unwrap();
        })
    });
}

criterion_group!(benches, bench_write_commit, bench_read, bench_checkpoint);
criterion_main!(benches);
