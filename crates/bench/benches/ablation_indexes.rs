//! Ablation A3 (§5.2.4): index implementation choice — B-tree vs dynamic
//! hash vs list — for inserts and exact-match lookups.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use tdb::platform::{MemSecretStore, MemStore, VolatileCounter};
use tdb::Durability;
use tdb::{
    impl_persistent_boilerplate, ClassRegistry, Database, DatabaseConfig, ExtractorRegistry,
    IndexKind, IndexSpec, Key, Persistent, PickleError, Pickler, Unpickler,
};

struct Item {
    id: u64,
}
impl Persistent for Item {
    impl_persistent_boilerplate!(0x17E4);
    fn pickle(&self, w: &mut Pickler) {
        w.u64(self.id);
    }
}
fn unpickle(r: &mut Unpickler) -> Result<Box<dyn Persistent>, PickleError> {
    Ok(Box::new(Item { id: r.u64()? }))
}

fn db() -> Database {
    let mut classes = ClassRegistry::new();
    classes.register(0x17E4, "Item", unpickle);
    let mut extractors = ExtractorRegistry::new();
    extractors.register("item.id", |o| {
        tdb::extractor_typed::<Item>(o, |i| Key::U64(i.id))
    });
    Database::create(
        Arc::new(MemStore::new()),
        &MemSecretStore::from_label("bench"),
        Arc::new(VolatileCounter::new()),
        classes,
        extractors,
        DatabaseConfig::without_security(),
    )
    .unwrap()
}

fn kinds() -> [(&'static str, IndexKind); 3] {
    [
        ("btree", IndexKind::BTree),
        ("hash", IndexKind::Hash),
        ("list", IndexKind::List),
    ]
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_insert");
    for (name, kind) in kinds() {
        let database = db();
        let t = database.begin();
        t.create_collection("c", &[IndexSpec::new("i", "item.id", false, kind)])
            .unwrap();
        t.commit(Durability::Durable).unwrap();
        let mut next = 0u64;
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let t = database.begin();
                let coll = t.write_collection("c").unwrap();
                coll.insert(Box::new(Item { id: next })).unwrap();
                next += 1;
                drop(coll);
                t.commit(Durability::Durable).unwrap();
            })
        });
    }
    group.finish();
}

fn bench_lookup(c: &mut Criterion) {
    // Lists are linear: keep the preload modest so the bench terminates
    // promptly while still showing the asymptotic difference.
    const N: u64 = 2000;
    let mut group = c.benchmark_group("index_exact_lookup_2k");
    for (name, kind) in kinds() {
        let database = db();
        let t = database.begin();
        let coll = t
            .create_collection("c", &[IndexSpec::new("i", "item.id", false, kind)])
            .unwrap();
        for id in 0..N {
            coll.insert(Box::new(Item { id })).unwrap();
        }
        drop(coll);
        t.commit(Durability::Durable).unwrap();
        let mut probe = 0u64;
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                probe = (probe + 997) % N;
                let t = database.begin();
                let coll = t.read_collection("c").unwrap();
                let it = coll.exact("i", &Key::U64(probe)).unwrap();
                let n = it.result_len();
                it.close().unwrap();
                drop(coll);
                t.commit(Durability::Lazy).unwrap();
                n
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_insert, bench_lookup);
criterion_main!(benches);
