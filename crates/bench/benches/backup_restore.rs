//! Backup/restore microbenchmarks: full vs incremental creation (the
//! §3.2.1 claim that COW snapshots + map diffing make incrementals cheap),
//! and validated restore.

use backup_store::BackupManager;
use chunk_store::Durability;
use chunk_store::{ChunkStoreConfig, SecurityMode};
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use tdb_bench::bench_chunk_store;
use tdb_platform::{MemArchive, MemSecretStore};

fn bench_backup(c: &mut Criterion) {
    let secret = MemSecretStore::from_label("bench");
    let store = bench_chunk_store(ChunkStoreConfig::default());
    let ids: Vec<_> = (0..2000)
        .map(|i: u32| {
            let id = store.allocate_chunk_id().unwrap();
            store.write(id, &i.to_le_bytes().repeat(25)).unwrap();
            id
        })
        .collect();
    store.commit(Durability::Durable).unwrap();

    c.bench_function("backup_full_2k_chunks", |b| {
        b.iter(|| {
            let archive = Arc::new(MemArchive::new());
            let mut mgr = BackupManager::new(archive, &secret, SecurityMode::Full).unwrap();
            mgr.backup_full(&store).unwrap()
        })
    });

    c.bench_function("backup_incremental_after_1_change", |b| {
        let archive = Arc::new(MemArchive::new());
        let mut mgr = BackupManager::new(archive, &secret, SecurityMode::Full).unwrap();
        mgr.backup_full(&store).unwrap();
        let mut round = 0u32;
        b.iter(|| {
            store
                .write(ids[0], &round.to_le_bytes().repeat(25))
                .unwrap();
            store.commit(Durability::Durable).unwrap();
            round += 1;
            mgr.backup_incremental(&store).unwrap()
        })
    });
}

criterion_group!(benches, bench_backup);
criterion_main!(benches);
