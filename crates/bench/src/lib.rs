//! Shared helpers for the benchmark harness.
//!
//! The figure binaries (`fig8_footprint`, `fig9_tables`, `fig10_tpcb`,
//! `fig11_utilization`, `overheads`) regenerate the paper's evaluation
//! tables; the Criterion benches under `benches/` cover micro-operations
//! and the ablations DESIGN.md calls out.

#![forbid(unsafe_code)]

use chunk_store::{ChunkStore, ChunkStoreConfig};
use std::sync::Arc;
use tdb_platform::{MemSecretStore, MemStore, VolatileCounter};

pub mod telemetry;

/// Fresh in-memory chunk store for benchmarks.
pub fn bench_chunk_store(cfg: ChunkStoreConfig) -> ChunkStore {
    ChunkStore::create(
        Arc::new(MemStore::new()),
        &MemSecretStore::from_label("bench"),
        Arc::new(VolatileCounter::new()),
        cfg,
    )
    .expect("create bench store")
}

/// Parse `NAME=value`-style arguments from the environment with a default
/// (keeps the figure binaries flag-light: `SCALE=1.0 TXNS=200000 fig10`).
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Integer environment parameter.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Minimal ELF section-header parser: total size of `.text` (and any other
/// `SHF_EXECINSTR` sections) in a built binary — how the paper measures
/// code footprint ("the size of the .text segment on the x86 platform",
/// §6). Returns `None` if the file is not a readable 64-bit ELF.
pub fn elf_text_size(path: &std::path::Path) -> Option<u64> {
    fn u16le(data: &[u8], off: usize) -> Option<u64> {
        Some(u16::from_le_bytes(data.get(off..off + 2)?.try_into().ok()?) as u64)
    }
    fn u64le(data: &[u8], off: usize) -> Option<u64> {
        Some(u64::from_le_bytes(data.get(off..off + 8)?.try_into().ok()?))
    }

    let data = std::fs::read(path).ok()?;
    if data.len() < 64 || &data[..4] != b"\x7fELF" || data[4] != 2 {
        return None; // not a 64-bit ELF
    }
    let shoff = u64le(&data, 0x28)? as usize;
    let shentsize = u16le(&data, 0x3A)? as usize;
    let shnum = u16le(&data, 0x3C)? as usize;
    let mut text = 0u64;
    for i in 0..shnum {
        let base = shoff + i * shentsize;
        let flags = u64le(&data, base + 0x08)?;
        let size = u64le(&data, base + 0x20)?;
        const SHF_EXECINSTR: u64 = 0x4;
        if flags & SHF_EXECINSTR != 0 {
            text += size;
        }
    }
    Some(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_parsing_defaults() {
        assert_eq!(env_f64("DEFINITELY_UNSET_VAR_X", 0.5), 0.5);
        assert_eq!(env_u64("DEFINITELY_UNSET_VAR_Y", 7), 7);
    }

    #[test]
    fn elf_parser_reads_own_test_binary() {
        // The currently running test binary is an ELF with code in it.
        let exe = std::env::current_exe().unwrap();
        let text = elf_text_size(&exe).expect("parse own binary");
        assert!(text > 100_000, "own .text only {text} bytes?");
    }

    #[test]
    fn elf_parser_rejects_non_elf() {
        let dir = tempfile::tempdir().unwrap();
        let p = dir.path().join("not-elf");
        std::fs::write(&p, b"hello").unwrap();
        assert_eq!(elf_text_size(&p), None);
    }
}
