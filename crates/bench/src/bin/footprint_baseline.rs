//! Footprint probe: the Berkeley-DB-like baseline engine.
use baseline::{BaselineConfig, Env};
use std::sync::Arc;
use tdb_platform::MemStore;

fn main() {
    let env = Env::create(Arc::new(MemStore::new()), BaselineConfig::default()).unwrap();
    let db = env.create_db("probe").unwrap();
    let mut txn = env.begin().unwrap();
    env.put(&mut txn, db, b"k", b"v").unwrap();
    env.commit(txn).unwrap();
    env.checkpoint().unwrap();
    println!("{}", env.get(db, b"k").unwrap().unwrap().len());
}
