//! Footprint probe: the chunk store (TDB's minimal configuration).
use chunk_store::Durability;
use chunk_store::{ChunkStore, ChunkStoreConfig};
use std::sync::Arc;
use tdb_platform::{MemSecretStore, MemStore, VolatileCounter};

fn main() {
    let store = ChunkStore::create(
        Arc::new(MemStore::new()),
        &MemSecretStore::from_label("fp"),
        Arc::new(VolatileCounter::new()),
        ChunkStoreConfig::default(),
    )
    .unwrap();
    let id = store.allocate_chunk_id().unwrap();
    store.write(id, b"probe").unwrap();
    store.commit(Durability::Durable).unwrap();
    let snap = store.snapshot();
    store.checkpoint().unwrap();
    store.clean().unwrap();
    println!("{} {}", store.read(id).unwrap().len(), snap.len());
}
