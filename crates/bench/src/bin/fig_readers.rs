//! **Readers figure**: snapshot-read scaling — N lock-free read-only
//! transactions (account point lookups + range scans) against 1 TPC-B
//! writer on the same store.
//!
//! Read-only transactions pin a chunk-store snapshot and never touch the
//! lock manager, so read throughput should scale near-linearly with reader
//! threads while the writer's response time stays at its writer-only
//! baseline. `SCALE=1.0 RUN_MS=2000 cargo run --release -p tdb-bench --bin
//! fig_readers` runs the full-size tables; the default SCALE=0.1 / 1 s
//! windows keep the same shape.
//!
//! Readers run closed-loop with a per-operation client think time
//! (`THINK_US`, default 1000 µs), the classic latency-bound-client model:
//! scaling then measures the absence of *lock* interference — on a 2PL
//! system concurrent readers would stall on the writer's exclusive locks
//! (and inflate its p99) no matter how much think time they have. On a
//! multi-core machine `THINK_US=0` additionally measures raw CPU
//! parallelism of the snapshot read path.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::hint::black_box;
use std::ops::Bound;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;
use tdb::obs::{Json, RegistrySnapshot};
use tdb::platform::MemStore;
use tdb::{
    ChunkStoreConfig, ClassRegistry, CollectionError, Database, DatabaseConfig, Durability,
    ErrorKind, ExtractorRegistry, IndexKind, IndexSpec, Key, SecurityMode,
};
use tdb_bench::telemetry::{
    bench_doc, counters_json, latency_ms_json, push_result, write_bench_json,
};
use tdb_bench::{env_f64, env_u64};
use tdb_obs::{HistSnapshot, Histogram};
use tpcb::{register_tpcb_classes, register_tpcb_extractors, HistoryRecord, TpcbRecord};

fn open_db() -> Database {
    let mut classes = ClassRegistry::new();
    register_tpcb_classes(&mut classes);
    let mut extractors = ExtractorRegistry::new();
    register_tpcb_extractors(&mut extractors);
    let cfg = DatabaseConfig {
        chunk: ChunkStoreConfig {
            security: SecurityMode::Full,
            max_utilization: 0.60,
            ..ChunkStoreConfig::default()
        },
        ..DatabaseConfig::default()
    };
    Database::create(
        Arc::new(MemStore::new()),
        &tdb::platform::MemSecretStore::from_label("fig-readers"),
        Arc::new(tdb::platform::VolatileCounter::new()),
        classes,
        extractors,
        cfg,
    )
    .unwrap()
}

/// Load the TPC-B tables. Unlike the Fig. 10 driver, `account` gets a
/// **B-tree** id index so readers can issue range scans as well as point
/// lookups; teller/branch keep the paper's dynamic-hash access method.
fn load(db: &Database, accounts: u32, tellers: u32, branches: u32) {
    let tables: [(&str, u32, IndexKind, &str); 4] = [
        ("account", accounts, IndexKind::BTree, "tpcb.id"),
        ("teller", tellers, IndexKind::Hash, "tpcb.id"),
        ("branch", branches, IndexKind::Hash, "tpcb.id"),
        ("history", 0, IndexKind::List, "tpcb.history.id"),
    ];
    for (name, size, kind, extractor) in tables {
        let unique = name != "history";
        let t = db.begin();
        let spec = IndexSpec::new("by-id", extractor, unique, kind).immutable();
        t.create_collection(name, &[spec]).unwrap();
        t.commit(Durability::Durable).unwrap();
        let mut id = 0u32;
        while id < size {
            let t = db.begin();
            let coll = t.write_collection(name).unwrap();
            let end = (id + 2000).min(size);
            while id < end {
                coll.insert(Box::new(TpcbRecord::new(id))).unwrap();
                id += 1;
            }
            drop(coll);
            t.commit(Durability::Durable).unwrap();
        }
    }
    db.checkpoint().unwrap();
}

/// One TPC-B transfer; retried only on lock-contention timeouts (which a
/// single writer can only hit against itself — i.e. never — so any error
/// here is a real failure unless its kind says otherwise).
fn transfer(db: &Database, account: u32, teller: u32, branch: u32, delta: i64, hist_id: u32) {
    loop {
        let t = db.begin();
        let staged = (|| -> Result<(), CollectionError> {
            for (table, id) in [("account", account), ("teller", teller), ("branch", branch)] {
                let coll = t.write_collection(table)?;
                let mut it = coll.exact("by-id", &Key::U64(id as u64))?;
                assert!(!it.end(), "{table} record {id} missing");
                {
                    let rec = it.write::<TpcbRecord>()?;
                    rec.get_mut().balance += delta;
                }
                it.close()?;
            }
            let history = t.write_collection("history")?;
            history.insert(Box::new(HistoryRecord::new(
                hist_id, account, teller, branch, delta,
            )))?;
            Ok(())
        })();
        match staged {
            Ok(()) => match t.commit(Durability::Durable) {
                Ok(()) => return,
                Err(e) if e.kind() == ErrorKind::LockTimeout => continue,
                Err(e) => panic!("writer commit failed: {e}"),
            },
            Err(e) => {
                t.abort();
                if e.kind() == ErrorKind::LockTimeout {
                    continue;
                }
                panic!("writer transfer failed: {e}");
            }
        }
    }
}

/// Shared parameters of one mixed readers-vs-writer window.
struct MixConfig {
    run_ms: u64,
    naccounts: u32,
    seed: u64,
    think_us: u64,
    lookups: u64,
    range_len: u64,
}

struct RunOutcome {
    writer_txns: u64,
    writer_latency: HistSnapshot,
    reader_ops: u64,
    run_seconds: f64,
}

/// Run 1 writer + `readers` snapshot readers for `run_ms`. Readers loop:
/// open a read-only transaction, do `lookups` point lookups and one
/// `range_len`-key range scan against the pinned snapshot, finish, then
/// think for `think_us` before the next request.
fn run_mixed(db: &Database, readers: usize, cfg: &MixConfig) -> RunOutcome {
    let &MixConfig {
        run_ms,
        naccounts,
        seed,
        think_us,
        lookups,
        range_len,
    } = cfg;
    let seed = seed ^ readers as u64;
    let stop = Arc::new(AtomicBool::new(false));
    let start = Arc::new(Barrier::new(readers + 2));
    let reader_ops = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();

    for ri in 0..readers {
        let db = db.clone();
        let stop = stop.clone();
        let start = start.clone();
        let ops = reader_ops.clone();
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed ^ (ri as u64 + 1).wrapping_mul(0xA5A5));
            let mut sink = 0i64;
            start.wait();
            while !stop.load(Ordering::Relaxed) {
                let r = db.collections().begin_read();
                let accounts = r.read_collection("account").unwrap();
                for _ in 0..lookups {
                    let id = rng.next_u64() % naccounts as u64;
                    let ids = accounts.exact("by-id", &Key::U64(id)).unwrap();
                    sink += accounts
                        .get::<TpcbRecord, _>(ids[0], |a| a.balance)
                        .unwrap();
                }
                let lo = rng.next_u64() % naccounts as u64;
                let hits = accounts
                    .range(
                        "by-id",
                        Bound::Included(&Key::U64(lo)),
                        Bound::Excluded(&Key::U64(lo + range_len)),
                    )
                    .unwrap();
                sink += hits.len() as i64;
                r.finish();
                ops.fetch_add(1, Ordering::Relaxed);
                if think_us > 0 {
                    std::thread::sleep(std::time::Duration::from_micros(think_us));
                }
            }
            black_box(sink);
        }));
    }

    // The single TPC-B writer.
    let writer = {
        let db = db.clone();
        let stop = stop.clone();
        let start = start.clone();
        std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed);
            let latency = Histogram::default();
            let mut txns = 0u64;
            let mut hist_id = 1_000_000u32;
            start.wait();
            while !stop.load(Ordering::Relaxed) {
                let account = (rng.next_u64() % naccounts as u64) as u32;
                let teller = (rng.next_u64() % 100) as u32;
                let branch = (rng.next_u64() % 10) as u32;
                let began = Instant::now();
                transfer(&db, account, teller, branch, 10, hist_id);
                latency.record(began.elapsed().as_nanos() as u64);
                txns += 1;
                hist_id += 1;
            }
            (txns, latency.snapshot())
        })
    };

    start.wait();
    let began = Instant::now();
    std::thread::sleep(std::time::Duration::from_millis(run_ms));
    stop.store(true, Ordering::Relaxed);
    let run_seconds = began.elapsed().as_secs_f64();
    for h in handles {
        h.join().unwrap();
    }
    let (writer_txns, writer_latency) = writer.join().unwrap();
    RunOutcome {
        writer_txns,
        writer_latency,
        reader_ops: reader_ops.load(Ordering::Relaxed),
        run_seconds,
    }
}

fn result_row(system: &str, readers: u64, out: &RunOutcome, obs: &RegistrySnapshot) -> Json {
    let mut row = Json::obj();
    row.push("system", system);
    row.push("readers", readers);
    row.push("threads", readers + 1);
    row.push(
        "reader_ops_per_sec",
        out.reader_ops as f64 / out.run_seconds.max(1e-9),
    );
    row.push(
        "writer_txn_per_sec",
        out.writer_txns as f64 / out.run_seconds.max(1e-9),
    );
    row.push("latency_ms", latency_ms_json(&out.writer_latency));
    row.push("counters", counters_json(obs));
    row
}

fn main() {
    let scale = env_f64("SCALE", 0.1);
    let run_ms = env_u64("RUN_MS", 1000);
    let seed = env_u64("SEED", 0x7DB);
    let think_us = env_u64("THINK_US", 4000);
    let lookups = env_u64("READ_LOOKUPS", 2);
    let range_len = env_u64("READ_RANGE", 16);
    let naccounts = ((100_000.0 * scale) as u32).max(1_000);
    let tellers = ((1_000.0 * scale) as u32).max(100);
    let branches = ((100.0 * scale) as u32).max(10);

    println!(
        "Readers figure: snapshot-read scaling vs 1 TPC-B writer \
         ({naccounts} accounts, {run_ms} ms windows, {think_us} us think time)"
    );
    println!("================================================================");
    println!();

    let db = open_db();
    load(&db, naccounts, tellers, branches);
    let mix = MixConfig {
        run_ms,
        naccounts,
        seed,
        think_us,
        lookups,
        range_len,
    };

    // Writer-only baseline: the p99 yardstick the mixed runs must hold.
    let baseline = run_mixed(&db, 0, &mix);
    let baseline_obs = db.obs().snapshot();
    let baseline_p99 = baseline.writer_latency.p99();
    println!(
        "writer-only baseline: {:.0} txn/s, p50 {:.3} ms, p99 {:.3} ms",
        baseline.writer_txns as f64 / baseline.run_seconds,
        baseline.writer_latency.p50() / 1e6,
        baseline_p99 / 1e6,
    );
    println!();
    println!(
        "{:<10} {:>14} {:>14} {:>12} {:>12} {:>14}",
        "readers", "reads/s", "scaling", "writer tx/s", "wr p99 ms", "p99 vs base"
    );

    let reader_counts = [1usize, 2, 4];
    let mut outcomes = Vec::new();
    let mut per_reader_1 = 0.0f64;
    for &n in &reader_counts {
        let out = run_mixed(&db, n, &mix);
        let obs = db.obs().snapshot();
        let reads = out.reader_ops as f64 / out.run_seconds.max(1e-9);
        if n == 1 {
            per_reader_1 = reads;
        }
        let p99 = out.writer_latency.p99();
        println!(
            "{:<10} {:>14.0} {:>13.2}x {:>12.0} {:>12.3} {:>+13.0}%",
            n,
            reads,
            reads / per_reader_1.max(1e-9),
            out.writer_txns as f64 / out.run_seconds.max(1e-9),
            p99 / 1e6,
            100.0 * (p99 - baseline_p99) / baseline_p99.max(1e-9),
        );
        outcomes.push((n, out, obs));
    }

    let reads_at = |n: usize| {
        outcomes
            .iter()
            .find(|(c, _, _)| *c == n)
            .map(|(_, o, _)| o.reader_ops as f64 / o.run_seconds.max(1e-9))
            .unwrap_or(0.0)
    };
    let scaling = reads_at(4) / reads_at(1).max(1e-9);
    let p99_at_4 = outcomes
        .iter()
        .find(|(c, _, _)| *c == 4)
        .map(|(_, o, _)| o.writer_latency.p99())
        .unwrap_or(0.0);
    let p99_ratio = p99_at_4 / baseline_p99.max(1e-9);
    println!();
    println!(
        "shape check: 1→4 reader scaling {scaling:.2}x (want ≥3x); writer p99 at 4 readers \
         {:.2}x baseline (want ≤1.15x)",
        p99_ratio
    );
    let snap = db.obs().snapshot();
    let fast = snap.counters.get("read.cache_fast").copied().unwrap_or(0);
    let fallback = snap
        .counters
        .get("read.snapshot_fallbacks")
        .copied()
        .unwrap_or(0);
    println!("snapshot read path: {fast} cache-fast hits, {fallback} chunk-read fallbacks");

    let mut config = Json::obj();
    config.push("scale", scale);
    config.push("run_ms", run_ms);
    config.push("seed", seed);
    config.push("think_us", think_us);
    config.push("accounts", naccounts as u64);
    config.push("range_len", range_len);
    config.push("lookups_per_snapshot", lookups);
    let mut doc = bench_doc("fig_readers", config);
    push_result(
        &mut doc,
        result_row("TDB-writer-only", 0, &baseline, &baseline_obs),
    );
    for (n, out, obs) in &outcomes {
        push_result(
            &mut doc,
            result_row(&format!("TDB-{n}r-1w"), *n as u64, out, obs),
        );
    }
    let mut summary = Json::obj();
    summary.push("system", "summary");
    summary.push("read_scaling_1_to_4", scaling);
    summary.push("writer_p99_ratio_at_4_readers", p99_ratio);
    summary.push("reads_per_sec_at_4", reads_at(4));
    push_result(&mut doc, summary);
    write_bench_json("fig_readers", &doc).expect("write bench json");
}
