//! **Figure 8**: code footprint comparison.
//!
//! The paper measures "the size of the .text segment on the x86 platform"
//! for TDB's modules and for other embedded databases (§6). We measure the
//! same quantity for this reproduction: each `footprint_*` probe binary
//! links exactly one configuration of the stack, and per-module sizes are
//! the .text deltas between configurations. The commercial systems'
//! binaries are unobtainable, so their rows repeat the paper's numbers as
//! literature values.
//!
//! Run after `cargo build --release -p tdb-bench --bins`:
//! `cargo run --release -p tdb-bench --bin fig8_footprint`

use std::path::PathBuf;
use tdb_bench::elf_text_size;

fn probe_path(name: &str) -> PathBuf {
    // The probes live next to this binary in target/<profile>/.
    let mut path = std::env::current_exe().expect("own path");
    path.set_file_name(name);
    path
}

fn text_kb(name: &str) -> Option<f64> {
    elf_text_size(&probe_path(name)).map(|b| b as f64 / 1024.0)
}

fn main() {
    println!("Figure 8: code footprint (.text size)");
    println!("=====================================");
    println!();
    println!("paper values (C++/x86, KB):");
    println!("  Berkeley DB 186 | C-ISAM 344 | Faircom 211 | RDB 284");
    println!(
        "  TDB all modules 250 = collection 45 + object 41 + backup 22 + chunk 115 + support 27"
    );
    println!("  TDB minimal configuration (chunk + support): 142");
    println!();

    let Some(support) = text_kb("footprint_support") else {
        eprintln!(
            "probe binaries not found; build them first:\n  cargo build --release -p tdb-bench --bins"
        );
        std::process::exit(1);
    };
    let chunk_total = text_kb("footprint_chunk").expect("chunk probe");
    let backup_total = text_kb("footprint_backup").expect("backup probe");
    let object_total = text_kb("footprint_object").expect("object probe");
    let full_total = text_kb("footprint_collection").expect("collection probe");
    let baseline_total = text_kb("footprint_baseline").expect("baseline probe");

    let chunk = chunk_total - support;
    let backup = backup_total - chunk_total;
    let object = object_total - chunk_total;
    let collection = full_total - object_total - backup;

    println!("measured (Rust/x86-64, release, KB of executable sections):");
    println!(
        "  {:<38} {:>8.0}",
        "support utilities (platform+crypto+rt)", support
    );
    println!("  {:<38} {:>8.0}", "chunk store (delta)", chunk);
    println!("  {:<38} {:>8.0}", "backup store (delta)", backup);
    println!("  {:<38} {:>8.0}", "object store (delta)", object);
    println!("  {:<38} {:>8.0}", "collection store (delta)", collection);
    println!("  {:<38} {:>8.0}", "TDB all modules", full_total);
    println!(
        "  {:<38} {:>8.0}",
        "TDB minimal config (chunk+support)", chunk_total
    );
    println!(
        "  {:<38} {:>8.0}",
        "baseline (Berkeley-DB-like)", baseline_total
    );
    println!();
    println!("notes: Rust release binaries statically link the runtime and");
    println!("standard library, so absolute sizes exceed the paper's C++");
    println!("shared-library numbers; the *shape* to compare is the module");
    println!("ratios (chunk store biggest, backup smallest) and TDB-vs-");
    println!("baseline totals being the same order of magnitude.");
}
