//! Footprint probe: chunk store + backup store.
use backup_store::BackupManager;
use chunk_store::Durability;
use chunk_store::{ChunkStore, ChunkStoreConfig, SecurityMode};
use std::sync::Arc;
use tdb_platform::{MemArchive, MemSecretStore, MemStore, VolatileCounter};

fn main() {
    let secret = MemSecretStore::from_label("fp");
    let store = ChunkStore::create(
        Arc::new(MemStore::new()),
        &secret,
        Arc::new(VolatileCounter::new()),
        ChunkStoreConfig::default(),
    )
    .unwrap();
    let id = store.allocate_chunk_id().unwrap();
    store.write(id, b"probe").unwrap();
    store.commit(Durability::Durable).unwrap();
    let archive = Arc::new(MemArchive::new());
    let mut mgr = BackupManager::new(archive.clone(), &secret, SecurityMode::Full).unwrap();
    let full = mgr.backup_full(&store).unwrap();
    let incr_base = mgr.backup_incremental(&store).unwrap();
    let restored = ChunkStore::create(
        Arc::new(MemStore::new()),
        &secret,
        Arc::new(VolatileCounter::new()),
        ChunkStoreConfig::default(),
    )
    .unwrap();
    BackupManager::restore_chain(
        &*archive,
        &secret,
        SecurityMode::Full,
        &[full, incr_base],
        &restored,
    )
    .unwrap();
    println!("{}", restored.live_chunks());
}
