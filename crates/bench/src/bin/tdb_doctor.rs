//! `tdb-doctor` — read and summarize TDB diagnostic dumps.
//!
//! The stall watchdog (and `Database::diagnostics_to_dir`) writes
//! `tdb-diag-*.json` files to `TDB_DIAG_DIR`. This tool renders them for
//! humans: which operations were stalled, what each registered store's
//! health looked like, each thread's last trace event, and (on request)
//! the full flight-recorder timeline.
//!
//! ```text
//! tdb-doctor <dump.json | diag-dir>   # summary of one dump (dir: latest)
//! tdb-doctor --timeline <dump.json>   # per-thread event timelines
//! tdb-doctor --json <dump.json>       # pretty-print the raw document
//! tdb-doctor verify-proof <dump.json> # check an exported proof dump
//! ```
//!
//! `verify-proof` checks an offline proof dump (written by
//! [`tdb::proof::wire::dump_json`]): it rebuilds the standalone verifier
//! from the embedded trust anchor and accepts or rejects the proof, with
//! no database involved.
//!
//! Exit status: 0 on a clean dump / verified proof, 1 when the dump
//! records stalled operations or the proof is rejected (so scripts can
//! gate on it), 2 on usage/parse errors.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use tdb::proof::{wire, TrustKeys, Verifier};
use tdb_obs::Json;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("verify-proof") {
        return match args.get(1) {
            Some(path) => verify_proof(Path::new(path)),
            None => {
                eprintln!("usage: tdb-doctor verify-proof <dump.json>");
                ExitCode::from(2)
            }
        };
    }
    let mut timeline = false;
    let mut raw = false;
    let mut target: Option<PathBuf> = None;
    for a in args.drain(..) {
        match a.as_str() {
            "--timeline" => timeline = true,
            "--json" => raw = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: tdb-doctor [--timeline|--json] <dump.json | diag-dir>\n\
                     \x20      tdb-doctor verify-proof <dump.json>"
                );
                return ExitCode::from(2);
            }
            _ => target = Some(PathBuf::from(a)),
        }
    }
    let target = match target.or_else(default_target) {
        Some(t) => t,
        None => {
            eprintln!("tdb-doctor: no dump given and TDB_DIAG_DIR is unset");
            return ExitCode::from(2);
        }
    };
    let file = if target.is_dir() {
        match latest_dump(&target) {
            Some(f) => f,
            None => {
                eprintln!(
                    "tdb-doctor: no tdb-diag-*.json files in {}",
                    target.display()
                );
                return ExitCode::from(2);
            }
        }
    } else {
        target
    };
    let text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tdb-doctor: cannot read {}: {e}", file.display());
            return ExitCode::from(2);
        }
    };
    let dump = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("tdb-doctor: {} is not valid JSON: {e}", file.display());
            return ExitCode::from(2);
        }
    };
    if raw {
        println!("{}", dump.pretty());
        return ExitCode::SUCCESS;
    }
    println!("dump: {}", file.display());
    let stalled = summarize(&dump, timeline);
    if stalled {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// `tdb-doctor verify-proof <dump.json>`: offline check of an exported
/// proof dump against the trust anchor it embeds.
fn verify_proof(path: &Path) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tdb-doctor: cannot read {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    let dump = match wire::parse_dump_json(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("tdb-doctor: {} is not a proof dump: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    let shape = match &dump.anchor.keys {
        TrustKeys::Single { .. } => "unsharded".to_string(),
        TrustKeys::Sharded { shard_mac_keys, .. } => {
            format!("sharded ({} shards)", shard_mac_keys.len())
        }
    };
    println!(
        "dump: {}  chunk {}  {}  anchor counter {}  attested counter {} (commit seq {})",
        path.display(),
        dump.proof.chunk_id,
        shape,
        dump.anchor.counter_value,
        dump.proof.attestation.counter_value,
        dump.proof.attestation.commit_seq,
    );
    let verifier = Verifier::new(dump.anchor);
    match verifier.verify_chunk(&dump.proof, dump.value.as_deref()) {
        Ok(()) => {
            match &dump.value {
                Some(v) => println!("VERIFIED: inclusion proof covers {} value bytes", v.len()),
                None => println!("VERIFIED: non-membership proof (chunk provably absent)"),
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            println!("REJECTED: {e}");
            ExitCode::from(1)
        }
    }
}

fn default_target() -> Option<PathBuf> {
    std::env::var("TDB_DIAG_DIR").ok().map(PathBuf::from)
}

/// Newest `tdb-diag-*.json` in `dir` by file name (names embed the unix
/// timestamp, so lexicographic order is chronological within one epoch
/// width).
fn latest_dump(dir: &Path) -> Option<PathBuf> {
    let mut dumps: Vec<PathBuf> = std::fs::read_dir(dir)
        .ok()?
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("tdb-diag-") && n.ends_with(".json"))
        })
        .collect();
    dumps.sort();
    dumps.pop()
}

fn str_of<'a>(v: &'a Json, key: &str) -> &'a str {
    v.get(key).and_then(|j| j.as_str()).unwrap_or("?")
}

fn u64_of(v: &Json, key: &str) -> u64 {
    v.get(key).and_then(|j| j.as_u64()).unwrap_or(0)
}

/// Print the human summary; returns whether the dump records stalls.
fn summarize(dump: &Json, timeline: bool) -> bool {
    println!(
        "schema {}  reason \"{}\"  pid {}  captured unix_ms {}",
        str_of(dump, "schema"),
        str_of(dump, "reason"),
        u64_of(dump, "pid"),
        u64_of(dump, "unix_ms"),
    );
    println!(
        "watchdog threshold {} ms, tracing {}",
        u64_of(dump, "watchdog_threshold_ms"),
        if dump
            .get("trace_enabled")
            .and_then(|j| j.as_f64())
            .unwrap_or(0.0)
            != 0.0
        {
            "on"
        } else {
            "off"
        },
    );

    let stalled = dump
        .get("stalled_ops")
        .and_then(|j| j.as_arr())
        .unwrap_or(&[]);
    if stalled.is_empty() {
        println!("stalled operations: none");
    } else {
        println!("stalled operations ({}):", stalled.len());
        for op in stalled {
            println!(
                "  thread t{} {:<20} xid {:<8} in flight {} ms",
                u64_of(op, "tid"),
                str_of(op, "kind"),
                u64_of(op, "xid"),
                u64_of(op, "age_ms"),
            );
        }
    }

    if let Some(provs) = dump.get("providers").and_then(|j| j.as_obj()) {
        println!("stores ({}):", provs.len());
        for (name, state) in provs {
            print!("  {name}:");
            for key in [
                "label",
                "commit_seq",
                "durable_seq",
                "anchor_seq",
                "free_segments",
                "group_waiters",
                "store_lock",
                "group_lock",
            ] {
                if let Some(v) = state.get(key) {
                    print!(" {key}={}", v.render());
                }
            }
            if let Some(maint) = state.get("maintenance") {
                print!(" maintenance={}", maint.render());
            }
            println!();
        }
    }

    if let Some(trace) = dump.get("trace") {
        let events = trace.get("events").and_then(|j| j.as_arr()).unwrap_or(&[]);
        println!(
            "trace: {} events buffered ({} recorded since start)",
            events.len(),
            u64_of(trace, "recorded"),
        );
        // Last event per thread — the "where is everyone" table.
        let mut last: Vec<(u64, &Json)> = Vec::new();
        for ev in events {
            let tid = u64_of(ev, "tid");
            match last.iter_mut().find(|(t, _)| *t == tid) {
                Some(slot) => slot.1 = ev,
                None => last.push((tid, ev)),
            }
        }
        last.sort_by_key(|(t, _)| *t);
        println!("last event per thread:");
        for (tid, ev) in &last {
            println!(
                "  t{tid:<4} {:>12} ns  {}.{} xid {} a {} b {}",
                u64_of(ev, "ts_ns"),
                str_of(ev, "layer"),
                str_of(ev, "kind"),
                u64_of(ev, "xid"),
                u64_of(ev, "a"),
                u64_of(ev, "b"),
            );
        }
        if timeline {
            println!("timelines:");
            for (tid, _) in &last {
                println!("thread t{tid}:");
                for ev in events.iter().filter(|e| u64_of(e, "tid") == *tid) {
                    println!(
                        "  {:>12} ns  {}.{} xid {} a {} b {}",
                        u64_of(ev, "ts_ns"),
                        str_of(ev, "layer"),
                        str_of(ev, "kind"),
                        u64_of(ev, "xid"),
                        u64_of(ev, "a"),
                        u64_of(ev, "b"),
                    );
                }
            }
        }
    }
    !stalled.is_empty()
}
