//! **Figure 11**: TDB response time and database size vs maximum
//! utilization (0.5 … 0.9), with Berkeley DB as the flat reference line.
//!
//! `SCALE=1.0 TXNS=200000 cargo run --release -p tdb-bench --bin fig11_utilization`
//! for the paper's run size; defaults are a faster shape-preserving run.

use std::sync::Arc;
use tdb::obs::Json;
use tdb::DatabaseConfig;
use tdb_bench::telemetry::{
    bench_doc, counters_json, histograms_json, latency_ms_json, push_result, write_bench_json,
};
use tdb_bench::{env_f64, env_u64};
use tdb_platform::MemStore;
use tpcb::{run_benchmark, BaselineDriver, TdbDriver, TpcbConfig};

fn main() {
    let cfg = TpcbConfig {
        scale: env_f64("SCALE", 0.1),
        transactions: env_u64("TXNS", 40_000),
        seed: env_u64("SEED", 0x7DB),
        threads: 1,
    };
    println!("Figure 11: TDB performance and database size vs utilization");
    println!(
        "(scale {}, {} txns; TDB without security, as in the paper)",
        cfg.scale, cfg.transactions
    );
    println!("=============================================================");
    println!();
    println!("paper shape: response dips slightly to ~0.7 utilization, then climbs;");
    println!("database size falls as utilization rises; BerkeleyDB size much larger");
    println!("(it never checkpoints its log during the benchmark).");
    println!();

    let mut bdb = BaselineDriver::new(
        Arc::new(MemStore::new()),
        baseline::BaselineConfig::default(),
    );
    let bdb_report = run_benchmark(&mut bdb, &cfg);

    let mut config = Json::obj();
    config.push("scale", cfg.scale);
    config.push("transactions", cfg.transactions);
    config.push("seed", cfg.seed);
    let mut doc = bench_doc("fig11_utilization", config);

    println!(
        "{:>11} {:>16} {:>14} {:>18}",
        "utilization", "resp (ms/txn)", "db size (MB)", "cleaner copies/txn"
    );
    for util in [0.5, 0.6, 0.7, 0.8, 0.9] {
        let mut db_cfg = DatabaseConfig::without_security();
        db_cfg.chunk.max_utilization = util;
        db_cfg.chunk.free_segment_reserve = 2;
        let mut driver = TdbDriver::new(Arc::new(MemStore::new()), db_cfg);
        let before = driver.database().stats();
        let report = run_benchmark(&mut driver, &cfg);
        // Settle: checkpoint so the final size reflects steady state.
        driver.database().checkpoint().unwrap();
        let stats = driver.database().stats().since(&before);
        println!(
            "{:>11.1} {:>16.4} {:>14.2} {:>18.0}",
            util,
            report.avg_response_ms,
            driver.database().disk_size() as f64 / 1e6,
            stats.cleaner_bytes_copied as f64 / cfg.transactions as f64,
        );
        let obs = driver.database().obs().snapshot();
        let mut row = Json::obj();
        row.push("system", "TDB");
        row.push("max_utilization", util);
        row.push(
            "throughput_txn_per_sec",
            report.transactions as f64 / report.run_seconds.max(1e-9),
        );
        row.push("avg_response_ms", report.avg_response_ms);
        row.push("final_disk_size", driver.database().disk_size());
        row.push(
            "cleaner_bytes_per_txn",
            stats.cleaner_bytes_copied as f64 / cfg.transactions as f64,
        );
        row.push("latency_ms", latency_ms_json(&report.latency));
        row.push("phases_ns", histograms_json(&obs, "cleaner."));
        row.push("counters", counters_json(&obs));
        push_result(&mut doc, row);
    }
    println!(
        "{:>11} {:>16.4} {:>14.2} {:>18}",
        "BerkeleyDB",
        bdb_report.avg_response_ms,
        bdb_report.final_disk_size as f64 / 1e6,
        "-"
    );
    let mut row = Json::obj();
    row.push("system", "BerkeleyDB");
    row.push("avg_response_ms", bdb_report.avg_response_ms);
    row.push("final_disk_size", bdb_report.final_disk_size);
    row.push("latency_ms", latency_ms_json(&bdb_report.latency));
    push_result(&mut doc, row);
    write_bench_json("fig11_utilization", &doc).expect("write bench json");
}
