//! **Proofs figure**: the cost of proof-carrying reads.
//!
//! Three read modes over the same loaded store, same snapshot discipline:
//!
//! * **plain** — the ordinary typed read (cache fast path allowed);
//! * **deferred** — a proven read that only captures the bookmark
//!   ([`Proven`] without calling `prove()`), i.e. what every read pays
//!   once an application switches to proof-carrying reads but extracts
//!   proofs lazily;
//! * **eager** — proven read + `prove()` + wire encoding per read, the
//!   full audit path, reported as proofs/s and proof size.
//!
//! A fourth row measures keyed index proofs (`exact_proven`), which cost a
//! full index scan by design. The emitted document
//! (`results/BENCH_fig_proofs.json`) carries per-mode latency
//! distributions, proof throughput and sizes, the deferred-vs-plain p50
//! and p99 ratios, and the `proof.*` counter deltas; CI gates on it. The
//! run also exports one inclusion-proof dump
//! (`results/proof_dump.json`) for `tdb-doctor verify-proof`.

use std::hint::black_box;
use std::time::Instant;
use tdb::obs::Json;
use tdb::proof::{wire, Verifier};
use tdb::{
    impl_persistent_boilerplate, Db, Durability, IndexKind, IndexSpec, Key, ObjectId, Options,
    Persistent, PickleError, Pickler, Unpickler,
};
use tdb_bench::env_u64;
use tdb_bench::telemetry::{
    bench_doc, latency_ms_json, push_result, results_dir, write_bench_json,
};
use tdb_obs::Histogram;

const CLASS_REC: u32 = 0xF19_0001;

struct Rec {
    id: u64,
    payload: u64,
}

impl Persistent for Rec {
    impl_persistent_boilerplate!(CLASS_REC);
    fn pickle(&self, w: &mut Pickler) {
        w.u64(self.id);
        w.u64(self.payload);
    }
}

fn unpickle_rec(r: &mut Unpickler) -> Result<Box<dyn Persistent>, PickleError> {
    Ok(Box::new(Rec {
        id: r.u64()?,
        payload: r.u64()?,
    }))
}

fn open_db() -> Db {
    Db::open(
        Options::in_memory()
            .secret_label("fig-proofs")
            .register_class(CLASS_REC, "Rec", unpickle_rec)
            .register_extractor("rec.id", |o| {
                tdb::extractor_typed::<Rec>(o, |r| Key::U64(r.id))
            }),
    )
    .unwrap()
}

/// xorshift — deterministic id sequence without pulling in a rng.
fn next(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

struct ModeOutcome {
    latency: tdb_obs::HistSnapshot,
    ops: u64,
    seconds: f64,
    /// Total encoded proof bytes (eager mode only).
    proof_bytes: u64,
}

fn result_row(system: &str, out: &ModeOutcome) -> Json {
    let mut row = Json::obj();
    row.push("system", system);
    row.push("threads", 1u64);
    row.push("reads_per_sec", out.ops as f64 / out.seconds.max(1e-9));
    row.push("latency_ms", latency_ms_json(&out.latency));
    if out.proof_bytes > 0 {
        row.push("proofs_per_sec", out.ops as f64 / out.seconds.max(1e-9));
        row.push(
            "proof_bytes_mean",
            out.proof_bytes as f64 / out.ops.max(1) as f64,
        );
    }
    row
}

fn run_mode(reads: u64, seed: u64, mut op: impl FnMut(u64) -> u64) -> ModeOutcome {
    let latency = Histogram::default();
    let mut state = seed;
    let mut proof_bytes = 0u64;
    let began = Instant::now();
    for _ in 0..reads {
        let id = next(&mut state);
        let op_began = Instant::now();
        proof_bytes += op(id);
        latency.record(op_began.elapsed().as_nanos() as u64);
    }
    ModeOutcome {
        latency: latency.snapshot(),
        ops: reads,
        seconds: began.elapsed().as_secs_f64(),
        proof_bytes,
    }
}

fn main() {
    let objects = env_u64("OBJECTS", 2_000);
    let reads = env_u64("READS", 20_000);
    let keyed_lookups = env_u64(
        "KEYED_LOOKUPS",
        if cfg!(debug_assertions) { 20 } else { 200 },
    );
    let seed = env_u64("SEED", 0x5EED);

    println!(
        "Proofs figure: proof-carrying read cost \
         ({objects} objects, {reads} reads per mode, {keyed_lookups} keyed lookups)"
    );
    println!("================================================================");
    println!();

    let db = open_db();
    let mut oids: Vec<ObjectId> = Vec::with_capacity(objects as usize);
    {
        let t = db.begin();
        let c = t
            .create_collection(
                "recs",
                &[IndexSpec::new("by-id", "rec.id", true, IndexKind::BTree)],
            )
            .unwrap();
        for id in 0..objects {
            oids.push(
                c.insert(Box::new(Rec {
                    id,
                    payload: id.wrapping_mul(0x9E37_79B9),
                }))
                .unwrap(),
            );
        }
        drop(c);
        t.commit(Durability::Durable).unwrap();
    }
    db.checkpoint().unwrap();

    let counters_before = db.obs().snapshot();
    let anchor = db.trust_anchor().unwrap();
    let verifier = Verifier::new(anchor.clone());
    let r = db.begin_read_proven().unwrap();
    let reader = r.object_reader();
    let pick = |id: u64| oids[(id % objects) as usize];

    // Plain typed reads — the baseline every proven mode is compared to.
    let plain = run_mode(reads, seed, |id| {
        black_box(reader.read::<Rec, _>(pick(id), |rec| rec.payload).unwrap());
        0
    });

    // Deferred: capture the bookmark, never build the proof.
    let deferred = run_mode(reads, seed, |id| {
        black_box(reader.read_proven_bytes(pick(id)).unwrap().value);
        0
    });

    // Eager: bookmark + prove + encode, i.e. the full audit read.
    let eager = run_mode(reads, seed, |id| {
        let proven = reader.read_proven_bytes(pick(id)).unwrap();
        let proof = proven.prove().unwrap();
        wire::encode_chunk_proof(&proof).len() as u64
    });

    // Keyed proofs: full-scan index commitments, far fewer iterations.
    let coll = r.read_collection("recs").unwrap();
    let keyed = run_mode(keyed_lookups, seed, |id| {
        let hit = coll.exact_proven("by-id", &Key::U64(id % objects)).unwrap();
        wire::encode_keyed_proof(&hit.proof).len() as u64
    });

    // Spot-verify each mode's artifacts so the numbers describe proofs
    // that actually check out.
    let proven = reader.read_proven_bytes(oids[0]).unwrap();
    let bytes = proven.value.clone().unwrap();
    let proof = proven.prove().unwrap();
    verifier.verify_chunk(&proof, Some(&bytes)).unwrap();
    let hit = coll.exact_proven("by-id", &Key::U64(0)).unwrap();
    verifier.verify_keyed(&hit.proof).unwrap();

    // Export one dump for `tdb-doctor verify-proof`.
    let dump_path = results_dir().join("proof_dump.json");
    std::fs::create_dir_all(results_dir()).unwrap();
    std::fs::write(&dump_path, wire::dump_json(&proof, &anchor, Some(&bytes))).unwrap();
    eprintln!("telemetry: wrote {}", dump_path.display());

    let counters_after = db.obs().snapshot();
    let proof_counters = {
        let mut o = Json::obj();
        for (name, after) in &counters_after.counters {
            if let Some(rest) = name.strip_prefix("proof.") {
                let before = counters_before.counters.get(name).copied().unwrap_or(0);
                o.push(format!("proof.{rest}").as_str(), *after - before);
            }
        }
        o
    };

    let ratio = |a: f64, b: f64| a / b.max(1e-9);
    let p50_ratio = ratio(deferred.latency.p50(), plain.latency.p50());
    let p99_ratio = ratio(deferred.latency.p99(), plain.latency.p99());
    for (label, out) in [
        ("plain", &plain),
        ("deferred", &deferred),
        ("eager", &eager),
        ("keyed", &keyed),
    ] {
        println!(
            "{label:<10} {:>12.0} ops/s  p50 {:>8.1} ns  p99 {:>8.1} ns  proof bytes mean {:>6.0}",
            out.ops as f64 / out.seconds.max(1e-9),
            out.latency.p50(),
            out.latency.p99(),
            out.proof_bytes as f64 / out.ops.max(1) as f64,
        );
    }
    println!();
    println!(
        "deferred vs plain: p50 {p50_ratio:.2}x, p99 {p99_ratio:.2}x \
         (what switching one read to the proven snapshot path costs; \
         reads not asking for proofs are untouched)"
    );

    let mut config = Json::obj();
    config.push("objects", objects);
    config.push("reads_per_mode", reads);
    config.push("keyed_lookups", keyed_lookups);
    config.push("seed", seed);
    let mut doc = bench_doc("fig_proofs", config);
    push_result(&mut doc, result_row("TDB-plain-read", &plain));
    push_result(&mut doc, result_row("TDB-proven-deferred", &deferred));
    push_result(&mut doc, result_row("TDB-proven-eager", &eager));
    push_result(&mut doc, result_row("TDB-keyed-exact", &keyed));
    let mut summary = Json::obj();
    summary.push("system", "summary");
    summary.push("proofs_per_sec", eager.ops as f64 / eager.seconds.max(1e-9));
    summary.push(
        "proof_bytes_mean",
        eager.proof_bytes as f64 / eager.ops.max(1) as f64,
    );
    summary.push("deferred_p50_ratio", p50_ratio);
    summary.push("deferred_p99_ratio", p99_ratio);
    summary.push("counters", proof_counters);
    push_result(&mut doc, summary);
    write_bench_json("fig_proofs", &doc).expect("write bench json");
}
