//! **Figure 9**: TPC-B table sizes.
//!
//! Prints the benchmark's initial collection sizes at the configured scale
//! (SCALE=1.0 reproduces the paper's numbers exactly).

use tdb_bench::env_f64;
use tpcb::TpcbConfig;

fn main() {
    let scale = env_f64("SCALE", 1.0);
    let cfg = TpcbConfig {
        scale,
        ..Default::default()
    };
    let (accounts, tellers, branches, history) = cfg.sizes();
    println!("Figure 9: TPC-B tables and sizes (scale {scale})");
    println!("==============================================");
    println!("{:<12} {:>10} {:>10}", "Collection", "paper", "this run");
    println!("{:<12} {:>10} {:>10}", "Account", 100_000, accounts);
    println!("{:<12} {:>10} {:>10}", "Teller", 1_000, tellers);
    println!("{:<12} {:>10} {:>10}", "Branch", 100, branches);
    println!("{:<12} {:>10} {:>10}", "History", 252_000, history);
    println!();
    println!("Objects in all four collections are ~100 bytes with 4-byte unique ids (§7.1).");
}
