//! **Figure 10**: TPC-B average response time — Berkeley DB vs TDB vs TDB-S.
//!
//! `SCALE=1.0 TXNS=200000 cargo run --release -p tdb-bench --bin fig10_tpcb`
//! reproduces the paper's run sizes (200 000 transactions, mean over the
//! later 100 000). Default is a faster SCALE=0.1 / TXNS=40000 run whose
//! shape matches. The in-text §7.4 claim about bytes written per
//! transaction is reported alongside.

use std::sync::Arc;
use tdb::obs::{Json, RegistrySnapshot};
use tdb::{ChunkStoreConfig, DatabaseConfig, SecurityMode};
use tdb_bench::telemetry::{
    bench_doc, counters_json, histograms_json, latency_ms_json, push_result, write_bench_json,
};
use tdb_bench::{env_f64, env_u64};
use tdb_platform::{DirStore, MemStore, UntrustedStore};
use tpcb::{
    run_benchmark, run_benchmark_threaded, BaselineDriver, BenchReport, TdbDriver, TpcbConfig,
};

/// Worker threads: `--threads N` wins over `THREADS=N`; default 1.
fn threads_arg() -> usize {
    arg_or_env("--threads", "THREADS", 1)
}

/// Chunk-store shards for the extra sharded row: `--shards N` wins over
/// `SHARDS=N`; default 1 (no sharded row).
fn shards_arg() -> usize {
    arg_or_env("--shards", "SHARDS", 1)
}

fn arg_or_env(flag: &str, env: &str, default: usize) -> usize {
    let mut value = std::env::var(env)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default);
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == flag {
            if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                value = v;
            }
        }
    }
    value.max(1)
}

/// `STORE=dir` runs on real files in a temp directory (slower but closer
/// to the paper's disk-backed setup); default is in-memory.
fn make_store(keep: &mut Vec<tempfile::TempDir>) -> Arc<dyn UntrustedStore> {
    if std::env::var("STORE").as_deref() == Ok("dir") {
        make_dir_store(keep)
    } else {
        Arc::new(MemStore::new())
    }
}

/// A file-backed store regardless of `STORE` — used for the group-commit
/// comparison, which is only meaningful when a log sync has real latency.
fn make_dir_store(keep: &mut Vec<tempfile::TempDir>) -> Arc<dyn UntrustedStore> {
    let dir = tempfile::tempdir().expect("tempdir");
    let store = Arc::new(DirStore::new(dir.path()).unwrap());
    keep.push(dir);
    store
}

fn run_tdb(
    cfg: &TpcbConfig,
    security: SecurityMode,
    store: Arc<dyn UntrustedStore>,
) -> (BenchReport, chunk_store::StatsSnapshot, RegistrySnapshot) {
    // 60% maximum utilization, "the default for TDB" in this experiment.
    let chunk = ChunkStoreConfig {
        security,
        max_utilization: 0.60,
        ..ChunkStoreConfig::default()
    };
    run_tdb_chunk(cfg, chunk, store)
}

fn run_tdb_chunk(
    cfg: &TpcbConfig,
    chunk: ChunkStoreConfig,
    store: Arc<dyn UntrustedStore>,
) -> (BenchReport, chunk_store::StatsSnapshot, RegistrySnapshot) {
    let db_cfg = DatabaseConfig {
        chunk,
        ..DatabaseConfig::default()
    };
    let mut driver = TdbDriver::new(store, db_cfg);
    let report = if cfg.threads > 1 {
        run_benchmark_threaded(&mut driver, cfg)
    } else {
        run_benchmark(&mut driver, cfg)
    };
    // The registry's `chunk.*` counters and the legacy snapshot read the
    // same atomics — a mismatch here means the wiring regressed. Each shard
    // owns its own registry, so the reconciliation is per shard (at the
    // default single shard this is exactly the whole-store check).
    let chunks = driver.database().chunk_store();
    for i in 0..chunks.shards() {
        let shard = chunks.shard(i);
        assert_eq!(
            shard
                .obs()
                .snapshot()
                .counters
                .get("chunk.commits")
                .copied()
                .unwrap_or(0),
            shard.stats().commits,
            "shard {i}: registry counters must reconcile with StatsSnapshot"
        );
    }
    let stats = driver.database().stats();
    // Measured-run delta: the load phase's own durable commits (schema
    // creation, bulk-load batches, the closing checkpoint) are subtracted,
    // so `commit.*` histogram counts equal the transactions actually run.
    let obs = driver.measured_obs();
    (report, stats, obs)
}

/// Run TPC-B on an `n`-shard store and collect the per-shard telemetry the
/// aggregate snapshot flattens: each shard's commit count and its
/// group-commit histogram (every shard runs its own group-commit
/// coordinator, so group sizes are only meaningful per shard).
fn run_tdb_sharded(
    cfg: &TpcbConfig,
    n: usize,
    store: Arc<dyn UntrustedStore>,
) -> (
    BenchReport,
    chunk_store::StatsSnapshot,
    RegistrySnapshot,
    Json,
) {
    let chunk = ChunkStoreConfig {
        security: SecurityMode::Off,
        max_utilization: 0.60,
        shards: n,
        ..ChunkStoreConfig::default()
    };
    let db_cfg = DatabaseConfig {
        chunk,
        ..DatabaseConfig::default()
    };
    let mut driver = TdbDriver::new(store, db_cfg);
    let report = if cfg.threads > 1 {
        run_benchmark_threaded(&mut driver, cfg)
    } else {
        run_benchmark(&mut driver, cfg)
    };
    let chunks = driver.database().chunk_store();
    // The merged registry re-exports each shard's instruments as
    // `shard{k}.chunk.*` (shared handles), and `obs_snapshot` folds them
    // back into aggregate names. Both views must reconcile with the
    // legacy per-shard StatsSnapshot — same atomics throughout.
    let merged = chunks.obs_snapshot();
    let commits_sum: u64 = (0..chunks.shards())
        .map(|i| {
            merged
                .counters
                .get(&format!("shard{i}.chunk.commits"))
                .copied()
                .unwrap_or(0)
        })
        .sum();
    assert_eq!(
        merged.counters.get("chunk.commits").copied().unwrap_or(0),
        commits_sum,
        "aggregate view must equal the per-shard sum"
    );
    // Report the measured-run delta (load-phase commits subtracted); the
    // merged lifetime snapshot above was only needed for reconciliation.
    // Per-shard group stats come from the same delta via the shard-prefixed
    // instrument names, so they too count measured transactions only.
    let measured = driver.measured_obs();
    let per_shard = Json::array((0..chunks.shards()).map(|i| {
        let shard = chunks.shard(i);
        let s = shard.stats();
        let mut o = Json::obj();
        o.push("shard", i as u64);
        o.push("commits", s.commits);
        o.push("bytes_appended", s.chunk_bytes_appended);
        if let Some(h) = measured
            .histograms
            .get(&format!("shard{i}.commit.group_size"))
        {
            o.push("group_commits", h.count());
            o.push("group_size_mean", h.sum as f64 / h.count().max(1) as f64);
        }
        o
    }));
    let stats = driver.database().stats();
    (report, stats, measured, per_shard)
}

/// One `results[]` row of the BENCH_fig10_tpcb.json document.
fn result_row(name: &str, r: &BenchReport, obs: Option<&RegistrySnapshot>) -> Json {
    let mut row = Json::obj();
    row.push("system", name);
    row.push(
        "throughput_txn_per_sec",
        r.transactions as f64 / r.run_seconds.max(1e-9),
    );
    row.push("avg_response_ms", r.avg_response_ms);
    row.push("bytes_per_txn", r.bytes_per_txn);
    row.push("final_disk_size", r.final_disk_size);
    row.push("latency_ms", latency_ms_json(&r.latency));
    row.push("threads", r.threads as u64);
    if let Some(obs) = obs {
        row.push("phases_ns", histograms_json(obs, "commit."));
        // Maintenance-lane phase laps (checkpoint/cleaner anchor rounds,
        // deferred Merkle passes). Often empty on a short run — a
        // checkpoint may simply not trigger inside the measured window.
        row.push("maint_ns", histograms_json(obs, "maint."));
        row.push("counters", counters_json(obs));
    }
    row
}

/// The background-maintenance counters a row was measured under — the
/// schema's optional `maintenance` object (numeric values only).
fn maintenance_json(s: &chunk_store::StatsSnapshot) -> Json {
    let mut o = Json::obj();
    o.push("wakeups", s.maintenance_wakeups);
    o.push("stalls", s.maintenance_stalls);
    o.push("gave_up", s.maintenance_gave_up);
    o.push("checkpoints", s.checkpoints);
    o.push("cleaner_passes", s.cleaner_passes);
    o.push("cleaner_slices", s.cleaner_slices);
    o.push("cleaner_segments_freed", s.cleaner_segments_freed);
    o.push("cleaner_bytes_copied", s.cleaner_bytes_copied);
    o
}

/// A chunk configuration that forces the cleaner to run continuously under
/// the TPC-B update stream: small segments, a low checkpoint threshold, and
/// tight free-segment watermarks. Only `background_maintenance` differs
/// between the two compared runs.
fn forced_cleaning_chunk(background: bool) -> ChunkStoreConfig {
    ChunkStoreConfig {
        security: SecurityMode::Off,
        max_utilization: 0.60,
        segment_size: 64 * 1024,
        checkpoint_threshold: 512 * 1024,
        background_maintenance: background,
        clean_low_free: 2,
        clean_high_free: 4,
        ..ChunkStoreConfig::default()
    }
}

fn main() {
    let threads = threads_arg();
    let shards = shards_arg();
    let cfg = TpcbConfig {
        scale: env_f64("SCALE", 0.1),
        transactions: env_u64("TXNS", 40_000),
        seed: env_u64("SEED", 0x7DB),
        threads: 1,
    };
    println!(
        "Figure 10: TPC-B average response time (scale {}, {} txns, {threads} thread(s))",
        cfg.scale, cfg.transactions
    );
    println!("================================================================");
    println!();
    println!(
        "paper (733 MHz P3, EIDE disk): BerkeleyDB 6.8 ms | TDB 3.8 ms (56%) | TDB-S 5.8 ms (85%)"
    );
    println!("paper bytes/txn: BerkeleyDB ~1100 | TDB ~523");
    println!();

    let mut keep = Vec::new();
    let mut bdb = BaselineDriver::new(make_store(&mut keep), baseline::BaselineConfig::default());
    let bdb_report = run_benchmark(&mut bdb, &cfg);

    let (tdb_report, tdb_stats, tdb_obs) = run_tdb(&cfg, SecurityMode::Off, make_store(&mut keep));
    let (tdbs_report, tdbs_stats, tdbs_obs) =
        run_tdb(&cfg, SecurityMode::Full, make_store(&mut keep));

    println!(
        "{:<12} {:>14} {:>12} {:>16} {:>14}",
        "system", "resp (ms/txn)", "% of BDB", "total bytes/txn", "disk (MB)"
    );
    for (name, r) in [
        ("BerkeleyDB", &bdb_report),
        ("TDB", &tdb_report),
        ("TDB-S", &tdbs_report),
    ] {
        println!(
            "{:<12} {:>14.4} {:>11.0}% {:>16.0} {:>14.1}",
            name,
            r.avg_response_ms,
            100.0 * r.avg_response_ms / bdb_report.avg_response_ms,
            r.bytes_per_txn,
            r.final_disk_size as f64 / 1e6,
        );
    }
    println!();
    let n = cfg.transactions as f64;
    for (name, s) in [("TDB", &tdb_stats), ("TDB-S", &tdbs_stats)] {
        println!(
            "{name}: commit-path bytes/txn ≈ {:.0} (chunk {:.0} − cleaner {:.0} + commit-records {:.0}); map/checkpoint {:.0}",
            (s.chunk_bytes_appended - s.cleaner_bytes_copied + s.commit_bytes_appended) as f64 / n,
            s.chunk_bytes_appended as f64 / n,
            s.cleaner_bytes_copied as f64 / n,
            s.commit_bytes_appended as f64 / n,
            s.map_bytes_appended as f64 / n,
        );
    }
    println!();
    println!("shape check: TDB < TDB-S < BerkeleyDB in response time, as in the paper.");

    // Multi-threaded group-commit comparison. Group commit amortizes the
    // *durable* half of a commit — the log sync and the anchor/counter
    // round — so both sides run on the file-backed store, where each sync
    // has real latency for the group to share (on the in-memory store a
    // "sync" is free and the comparison only measures scheduler noise).
    let mt = if threads > 1 {
        let mt_cfg = TpcbConfig {
            threads,
            ..cfg.clone()
        };
        let (one_report, _, one_obs) = run_tdb(&cfg, SecurityMode::Off, make_dir_store(&mut keep));
        let (mt_report, _, mt_obs) = run_tdb(&mt_cfg, SecurityMode::Off, make_dir_store(&mut keep));
        let single = one_report.transactions as f64 / one_report.run_seconds.max(1e-9);
        let multi = mt_report.transactions as f64 / mt_report.run_seconds.max(1e-9);
        let group_mean = mt_obs
            .histograms
            .get("commit.group_size")
            .map(|h| h.sum as f64 / h.count().max(1) as f64)
            .unwrap_or(0.0);
        println!();
        println!(
            "group commit (file-backed store): TDB x{threads} {multi:.0} txn/s vs x1 {single:.0} \
             txn/s ({:.2}x, mean group size {group_mean:.2})",
            multi / single.max(1e-9)
        );
        Some((one_report, one_obs, mt_report, mt_obs))
    } else {
        None
    };

    // Sharded comparison: the same workload on an N-shard store (each
    // shard with its own log, location map, and group-commit coordinator,
    // all under the one root-of-roots). Single-shard TPC-B transactions
    // keep the fast path; the row records shard count and the per-shard
    // commit/group-size telemetry the aggregate snapshot flattens.
    let sharded = if shards > 1 {
        let s_cfg = TpcbConfig {
            threads,
            ..cfg.clone()
        };
        let (r, s, obs, per_shard) = run_tdb_sharded(&s_cfg, shards, make_store(&mut keep));
        println!();
        println!(
            "sharded ({shards} shards, {threads} thread(s)): {:.4} ms/txn vs unsharded {:.4} ms/txn, \
             {:.0} bytes/txn",
            r.avg_response_ms, tdb_report.avg_response_ms, r.bytes_per_txn
        );
        Some((r, s, obs, per_shard))
    } else {
        None
    };

    // Maintenance tail-latency comparison: the same threaded workload on a
    // file-backed store with cleaning forced active, differing only in
    // where maintenance runs. Inline maintenance (the pre-thread behavior)
    // charges whole cleaning passes and checkpoints to whichever commit
    // trips the trigger — visible as the p99/p999 response-time tail —
    // while the background thread keeps the commit path to watermark
    // checks and kicks.
    let maint = if threads > 1 {
        let mt_cfg = TpcbConfig {
            threads,
            ..cfg.clone()
        };
        let (inline_r, inline_s, inline_obs) = run_tdb_chunk(
            &mt_cfg,
            forced_cleaning_chunk(false),
            make_dir_store(&mut keep),
        );
        let (bg_r, bg_s, bg_obs) = run_tdb_chunk(
            &mt_cfg,
            forced_cleaning_chunk(true),
            make_dir_store(&mut keep),
        );
        println!();
        println!("maintenance off the commit path (file-backed store, cleaner forced active):");
        println!(
            "{:<18} {:>12} {:>10} {:>10} {:>10} {:>8} {:>8}",
            "system", "txn/s", "p50 ms", "p99 ms", "p999 ms", "passes", "stalls"
        );
        for (name, r, s) in [
            ("inline", &inline_r, &inline_s),
            ("background", &bg_r, &bg_s),
        ] {
            println!(
                "{:<18} {:>12.0} {:>10.3} {:>10.3} {:>10.3} {:>8} {:>8}",
                name,
                r.transactions as f64 / r.run_seconds.max(1e-9),
                r.latency.percentile(0.50) / 1e6,
                r.latency.percentile(0.99) / 1e6,
                r.latency.percentile(0.999) / 1e6,
                s.cleaner_passes,
                s.maintenance_stalls,
            );
        }
        let p99_inline = inline_r.latency.percentile(0.99);
        let p99_bg = bg_r.latency.percentile(0.99);
        println!(
            "p99 response: background {:.3} ms vs inline {:.3} ms ({:+.0}%)",
            p99_bg / 1e6,
            p99_inline / 1e6,
            100.0 * (p99_bg - p99_inline) / p99_inline.max(1e-9)
        );
        Some(((inline_r, inline_s, inline_obs), (bg_r, bg_s, bg_obs)))
    } else {
        None
    };

    let mut config = Json::obj();
    config.push("scale", cfg.scale);
    config.push("transactions", cfg.transactions);
    config.push("seed", cfg.seed);
    config.push("threads", threads as u64);
    config.push("shards", shards as u64);
    let mut doc = bench_doc("fig10_tpcb", config);
    push_result(&mut doc, result_row("BerkeleyDB", &bdb_report, None));
    push_result(&mut doc, result_row("TDB", &tdb_report, Some(&tdb_obs)));
    push_result(&mut doc, result_row("TDB-S", &tdbs_report, Some(&tdbs_obs)));
    if let Some((one_report, one_obs, mt_report, mt_obs)) = &mt {
        push_result(
            &mut doc,
            result_row("TDB-durable", one_report, Some(one_obs)),
        );
        push_result(&mut doc, result_row("TDB-mt", mt_report, Some(mt_obs)));
    }
    if let Some((r, s, obs, per_shard)) = sharded {
        let mut row = result_row("TDB-sharded", &r, Some(&obs));
        row.push("shards", shards as u64);
        row.push("per_shard", per_shard);
        row.push("maintenance", maintenance_json(&s));
        push_result(&mut doc, row);
    }
    if let Some(((inline_r, inline_s, inline_obs), (bg_r, bg_s, bg_obs))) = &maint {
        let mut row = result_row("TDB-maint-inline", inline_r, Some(inline_obs));
        row.push("maintenance", maintenance_json(inline_s));
        push_result(&mut doc, row);
        let mut row = result_row("TDB-maint-bg", bg_r, Some(bg_obs));
        row.push("maintenance", maintenance_json(bg_s));
        push_result(&mut doc, row);
    }
    write_bench_json("fig10_tpcb", &doc).expect("write bench json");
}
