//! Footprint probe: the full TDB stack (all modules).
use std::sync::Arc;
use tdb::platform::{MemArchive, MemSecretStore, MemStore, VolatileCounter};
use tdb::Durability;
use tdb::{
    impl_persistent_boilerplate, ClassRegistry, Database, DatabaseConfig, ExtractorRegistry,
    IndexKind, IndexSpec, Key, Persistent, PickleError, Pickler, Unpickler,
};

struct Probe {
    n: u32,
}
impl Persistent for Probe {
    impl_persistent_boilerplate!(0xF00D);
    fn pickle(&self, w: &mut Pickler) {
        w.u32(self.n);
    }
}
fn unpickle(r: &mut Unpickler) -> Result<Box<dyn Persistent>, PickleError> {
    Ok(Box::new(Probe { n: r.u32()? }))
}

fn main() {
    let mut classes = ClassRegistry::new();
    classes.register(0xF00D, "Probe", unpickle);
    let mut extractors = ExtractorRegistry::new();
    extractors.register("probe.n", |o| {
        tdb::extractor_typed::<Probe>(o, |p| Key::U64(p.n as u64))
    });
    let secret = MemSecretStore::from_label("fp");
    let db = Database::create(
        Arc::new(MemStore::new()),
        &secret,
        Arc::new(VolatileCounter::new()),
        classes,
        extractors,
        DatabaseConfig::default(),
    )
    .unwrap();
    let t = db.begin();
    let c = t
        .create_collection(
            "probe",
            &[
                IndexSpec::new("bt", "probe.n", false, IndexKind::BTree),
                IndexSpec::new("h", "probe.n", false, IndexKind::Hash),
                IndexSpec::new("l", "probe.n", false, IndexKind::List),
            ],
        )
        .unwrap();
    c.insert(Box::new(Probe { n: 7 })).unwrap();
    let it = c.exact("h", &Key::U64(7)).unwrap();
    let n = it.read::<Probe>().unwrap().get().n;
    it.close().unwrap();
    drop(c);
    t.commit(Durability::Durable).unwrap();
    let mut mgr = db
        .backup_manager(Arc::new(MemArchive::new()), &secret)
        .unwrap();
    let _ = mgr
        .backup_full(db.chunk_store().unsharded("backup_full").unwrap())
        .unwrap();
    println!("{n}");
}
