//! Footprint probe: platform substrates + crypto only ("support utilities").
use std::sync::Arc;
use tdb_platform::{
    MemSecretStore, MemStore, OneWayCounter, SecretStore, UntrustedStore, VolatileCounter,
};

fn main() {
    let mem = MemStore::new();
    let f = mem.open("probe", true).unwrap();
    f.write_at(0, b"probe").unwrap();
    let secret = MemSecretStore::from_label("fp").master_secret().unwrap();
    let counter = VolatileCounter::new();
    counter.increment().unwrap();
    let tag = tdb::crypto::hmac_sha256(&secret, b"probe");
    let key = tdb::crypto::derive_key(&secret, "probe");
    let aes = tdb::crypto::Aes128::new(&key);
    let ct = tdb::crypto::cbc_encrypt(&aes, &[0u8; 16], b"probe");
    println!(
        "{} {} {}",
        Arc::new(mem).list().unwrap().len(),
        tag[0],
        ct.len()
    );
}
