//! In-text overhead claims (§3.1 footnote, §4.2.1, §7.4): per-chunk storage
//! overhead with and without security, and the extra location-map bytes
//! TDB-S pays for storing hashes.
//!
//! Paper claims: "about 20 bytes without crypto overhead and 38 bytes with
//! crypto overhead" per chunk; TDB-S has "a higher per-chunk storage
//! overhead (12 bytes) because it stores one-way hashes in the location
//! map"; "there is extra storage overhead of 6 bytes per chunk on top of
//! the space required for storing a one-way hash" for the map entry.

use chunk_store::Durability;
use chunk_store::{ChunkStoreConfig, SecurityMode};
use tdb_bench::bench_chunk_store;
use tdb_bench::telemetry::{
    bench_doc, counters_json, histograms_json, push_result, write_bench_json,
};
use tdb_obs::{Json, RegistrySnapshot};

/// Bytes appended for one N-byte chunk write + its share of metadata.
fn measure(mode: SecurityMode, payload: usize, chunks: u64) -> (f64, f64, RegistrySnapshot) {
    let cfg = ChunkStoreConfig {
        security: mode,
        ..Default::default()
    };
    let store = bench_chunk_store(cfg);
    let base = store.stats();
    for _ in 0..chunks {
        let id = store.allocate_chunk_id().unwrap();
        store.write(id, &vec![0xABu8; payload]).unwrap();
        store.commit(Durability::Durable).unwrap();
    }
    let s = store.stats().since(&base);
    let chunk_overhead =
        (s.chunk_bytes_appended as f64 - (payload as u64 * chunks) as f64) / chunks as f64;
    // Map entry cost: checkpoint and count map bytes per live chunk.
    store.checkpoint().unwrap();
    let s2 = store.stats().since(&base);
    let map_per_chunk = s2.map_bytes_appended as f64 / store.live_chunks() as f64;
    (chunk_overhead, map_per_chunk, store.obs().snapshot())
}

fn main() {
    println!("Per-chunk storage overheads (paper §3.1 / §4.2.1 / §7.4)");
    println!("=========================================================");
    println!();
    println!("paper: ~20 B/chunk without crypto, ~38 B/chunk with crypto;");
    println!("TDB-S map entries 12 B/chunk larger (stored one-way hashes).");
    println!();
    const PAYLOAD: usize = 100;
    const CHUNKS: u64 = 2000;
    let (off_chunk, off_map, off_obs) = measure(SecurityMode::Off, PAYLOAD, CHUNKS);
    let (on_chunk, on_map, on_obs) = measure(SecurityMode::Full, PAYLOAD, CHUNKS);
    println!("measured, {PAYLOAD}-byte chunks (record header + id + IV/padding):");
    println!(
        "  {:<34} {:>7.1} B/chunk",
        "TDB   per-chunk log overhead", off_chunk
    );
    println!(
        "  {:<34} {:>7.1} B/chunk",
        "TDB-S per-chunk log overhead", on_chunk
    );
    println!(
        "  {:<34} {:>7.1} B/chunk",
        "TDB   map entry (amortized)", off_map
    );
    println!(
        "  {:<34} {:>7.1} B/chunk",
        "TDB-S map entry (amortized)", on_map
    );
    println!(
        "  {:<34} {:>7.1} B/chunk   (paper: 12, with SHA-1; ours uses SHA-256)",
        "TDB-S map hash overhead (delta)",
        on_map - off_map
    );
    println!();
    println!("ours differ in absolute terms because SHA-256 digests are 32 B");
    println!("(vs SHA-1's 20 B) and AES blocks are 16 B (vs 3DES's 8 B); the");
    println!("structure of the overhead is the same.");

    let mut config = Json::obj();
    config.push("payload_bytes", PAYLOAD);
    config.push("chunks", CHUNKS);
    let mut doc = bench_doc("overheads", config);
    for (name, chunk_overhead, map_per_chunk, obs) in [
        ("TDB", off_chunk, off_map, &off_obs),
        ("TDB-S", on_chunk, on_map, &on_obs),
    ] {
        let mut row = Json::obj();
        row.push("system", name);
        row.push("chunk_overhead_bytes", chunk_overhead);
        row.push("map_entry_bytes", map_per_chunk);
        row.push("phases_ns", histograms_json(obs, "commit."));
        row.push("counters", counters_json(obs));
        push_result(&mut doc, row);
    }
    write_bench_json("overheads", &doc).expect("write bench json");
}
