//! Footprint probe: chunk store + object store.
use chunk_store::{ChunkStore, ChunkStoreConfig};
use object_store::Durability;
use object_store::{
    impl_persistent_boilerplate, ClassRegistry, ObjectStore, ObjectStoreConfig, Persistent,
    PickleError, Pickler, Unpickler,
};
use std::sync::Arc;
use tdb_platform::{MemSecretStore, MemStore, VolatileCounter};

struct Probe {
    n: u32,
}
impl Persistent for Probe {
    impl_persistent_boilerplate!(0xF00D);
    fn pickle(&self, w: &mut Pickler) {
        w.u32(self.n);
    }
}
fn unpickle(r: &mut Unpickler) -> Result<Box<dyn Persistent>, PickleError> {
    Ok(Box::new(Probe { n: r.u32()? }))
}

fn main() {
    let chunks = Arc::new(
        ChunkStore::create(
            Arc::new(MemStore::new()),
            &MemSecretStore::from_label("fp"),
            Arc::new(VolatileCounter::new()),
            ChunkStoreConfig::default(),
        )
        .unwrap(),
    );
    let mut reg = ClassRegistry::new();
    reg.register(0xF00D, "Probe", unpickle);
    let store = ObjectStore::create(chunks, reg, ObjectStoreConfig::default()).unwrap();
    let t = store.begin();
    let id = t.insert(Box::new(Probe { n: 7 })).unwrap();
    t.set_root("probe", id).unwrap();
    t.commit(Durability::Durable).unwrap();
    let t = store.begin();
    println!("{}", t.open_readonly::<Probe>(id).unwrap().get().n);
}
