//! Machine-readable bench telemetry: every figure binary (and the torture
//! harness) writes a `results/BENCH_<name>.json` document so runs can be
//! captured, diffed, and validated in CI. The schema is deliberately tiny
//! and stable — see [`validate_bench_doc`] for the normative description.

use std::path::{Path, PathBuf};
use tdb_obs::{hist_json, HistSnapshot, Json, RegistrySnapshot};

/// Current document schema version. Bump only when a field changes meaning
/// or a required field is added; additive optional fields don't count.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// Directory bench JSON goes to: `$BENCH_OUT`, or `results/` under the
/// current directory.
pub fn results_dir() -> PathBuf {
    std::env::var_os("BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Start a bench document: `{schema_version, bench, config, results: []}`.
/// Callers fill `config` and push per-system/per-phase rows into `results`.
pub fn bench_doc(bench: &str, config: Json) -> Json {
    let mut doc = Json::obj();
    doc.push("schema_version", BENCH_SCHEMA_VERSION);
    doc.push("bench", bench);
    doc.push("config", config);
    doc.push("results", Json::arr());
    doc
}

/// Append a row to the document's `results` array.
pub fn push_result(doc: &mut Json, row: Json) {
    if let Json::Obj(fields) = doc {
        for (k, v) in fields.iter_mut() {
            if k == "results" {
                if let Json::Arr(rows) = v {
                    rows.push(row);
                }
                return;
            }
        }
    }
}

/// Latency distribution as milliseconds: count plus
/// mean/p50/p90/p95/p99/p999. The snapshot's samples are nanoseconds (the
/// workspace convention). `p999` is the tail the background-maintenance
/// work targets — an inline cleaning pass shows up there first.
pub fn latency_ms_json(lat: &HistSnapshot) -> Json {
    let ms = |ns: f64| ns / 1e6;
    let mut o = Json::obj();
    o.push("count", lat.count());
    o.push("mean", ms(lat.mean()));
    o.push("p50", ms(lat.p50()));
    o.push("p90", ms(lat.p90()));
    o.push("p95", ms(lat.p95()));
    o.push("p99", ms(lat.p99()));
    o.push("p999", ms(lat.percentile(0.999)));
    o
}

/// All histograms in a registry snapshot whose name starts with `prefix`,
/// rendered via [`hist_json`] (nanosecond stats + percentiles). Used for the
/// per-phase commit breakdown (`prefix = "commit."`).
pub fn histograms_json(snap: &RegistrySnapshot, prefix: &str) -> Json {
    let mut o = Json::obj();
    for (name, h) in &snap.histograms {
        if name.starts_with(prefix) && h.count() > 0 {
            o.push(name.as_str(), hist_json(h));
        }
    }
    o
}

/// All counters in a registry snapshot, as a flat name → value object.
pub fn counters_json(snap: &RegistrySnapshot) -> Json {
    let mut o = Json::obj();
    for (name, v) in &snap.counters {
        o.push(name.as_str(), *v);
    }
    o
}

/// Write `doc` to `<results_dir>/BENCH_<name>.json` (pretty-printed),
/// creating the directory if needed. Returns the path written.
pub fn write_bench_json(name: &str, doc: &Json) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("BENCH_{name}.json"));
    std::fs::write(&path, doc.pretty())?;
    eprintln!("telemetry: wrote {}", path.display());
    Ok(path)
}

/// Validate a bench document against the schema every `BENCH_*.json` must
/// satisfy:
///
/// - top level is an object with `schema_version` (integer, == 1),
///   `bench` (non-empty string), and `results` (non-empty array of objects);
/// - any `latency_ms` field in a result row is an object with numeric
///   `count`, `p50`, `p95`, and `p99` (and a numeric `p999` when present —
///   rows written before the tail-latency work omit it);
/// - any `phases_ns` or `maint_ns` field is an object whose values each
///   carry numeric `count` and `sum` (`maint_ns` holds the
///   maintenance-lane laps: checkpoint/cleaner anchor rounds and deferred
///   Merkle passes);
/// - any `counters` or `maintenance` field is an object with only numeric
///   values (`maintenance` carries the background-maintenance counters a
///   row was measured under: wakeups, stalls, cleaner passes/slices, ...);
/// - any `threads` field in a result row is a positive integer (worker
///   threads the row was measured with; rows omitting it are single-run
///   rows from before the field existed);
/// - the per-second and ratio fields (`reads_per_sec`, `proofs_per_sec`,
///   `proof_bytes_mean`, `deferred_p50_ratio`, ...) must be numeric when
///   present;
/// - any `shards` field in a result row is a positive integer (chunk-store
///   shards the row was measured with; unsharded rows omit it);
/// - any `per_shard` field is an array of objects with only numeric values
///   (one entry per shard: commit counts, group-commit sizes, ...).
pub fn validate_bench_doc(doc: &Json) -> Result<(), String> {
    let obj = doc.as_obj().ok_or("top level is not an object")?;
    let field = |k: &str| {
        obj.iter()
            .find(|(n, _)| n == k)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field `{k}`"))
    };
    let version = field("schema_version")?
        .as_u64()
        .ok_or("schema_version is not an integer")?;
    if version != BENCH_SCHEMA_VERSION {
        return Err(format!("unsupported schema_version {version}"));
    }
    let bench = field("bench")?.as_str().ok_or("bench is not a string")?;
    if bench.is_empty() {
        return Err("bench name is empty".into());
    }
    let results = field("results")?
        .as_arr()
        .ok_or("results is not an array")?;
    if results.is_empty() {
        return Err("results array is empty".into());
    }
    for (i, row) in results.iter().enumerate() {
        let row_obj = row
            .as_obj()
            .ok_or_else(|| format!("results[{i}] is not an object"))?;
        for (k, v) in row_obj {
            match k.as_str() {
                "latency_ms" => validate_latency(v).map_err(|e| format!("results[{i}]: {e}"))?,
                "phases_ns" | "maint_ns" => {
                    validate_phases(v).map_err(|e| format!("results[{i}]: {e}"))?
                }
                "threads" if v.as_u64().filter(|t| *t >= 1).is_none() => {
                    return Err(format!("results[{i}]: threads not a positive integer"));
                }
                "shards" if v.as_u64().filter(|s| *s >= 1).is_none() => {
                    return Err(format!("results[{i}]: shards not a positive integer"));
                }
                "per_shard" => {
                    let arr = v
                        .as_arr()
                        .ok_or(format!("results[{i}]: per_shard not an array"))?;
                    for (j, entry) in arr.iter().enumerate() {
                        let eo = entry
                            .as_obj()
                            .ok_or(format!("results[{i}]: per_shard[{j}] not an object"))?;
                        for (name, val) in eo {
                            if val.as_f64().is_none() {
                                return Err(format!(
                                    "results[{i}]: per_shard[{j}] entry `{name}` not numeric"
                                ));
                            }
                        }
                    }
                }
                "readers" if v.as_u64().is_none() => {
                    return Err(format!("results[{i}]: readers not a non-negative integer"));
                }
                "reader_ops_per_sec"
                | "writer_txn_per_sec"
                | "read_scaling_1_to_4"
                | "writer_p99_ratio_at_4_readers"
                | "reads_per_sec"
                | "proofs_per_sec"
                | "proof_bytes_mean"
                | "deferred_p50_ratio"
                | "deferred_p99_ratio"
                    if v.as_f64().is_none() =>
                {
                    return Err(format!("results[{i}]: {k} not numeric"));
                }
                "counters" | "maintenance" => {
                    let c = v
                        .as_obj()
                        .ok_or(format!("results[{i}]: {k} not an object"))?;
                    for (name, val) in c {
                        if val.as_f64().is_none() {
                            return Err(format!("results[{i}]: {k} entry `{name}` not numeric"));
                        }
                    }
                }
                _ => {}
            }
        }
    }
    Ok(())
}

fn validate_latency(v: &Json) -> Result<(), String> {
    let o = v.as_obj().ok_or("latency_ms is not an object")?;
    for key in ["count", "p50", "p95", "p99"] {
        let found = o.iter().find(|(n, _)| n == key).map(|(_, v)| v);
        if found.and_then(|v| v.as_f64()).is_none() {
            return Err(format!("latency_ms.{key} missing or not numeric"));
        }
    }
    // Optional tail percentile: must be numeric when present.
    if let Some((_, v)) = o.iter().find(|(n, _)| n == "p999") {
        if v.as_f64().is_none() {
            return Err("latency_ms.p999 present but not numeric".into());
        }
    }
    Ok(())
}

fn validate_phases(v: &Json) -> Result<(), String> {
    let o = v.as_obj().ok_or("phases_ns is not an object")?;
    for (name, ph) in o {
        let po = ph
            .as_obj()
            .ok_or(format!("phases_ns.{name} is not an object"))?;
        for key in ["count", "sum"] {
            let found = po.iter().find(|(n, _)| n == key).map(|(_, v)| v);
            if found.and_then(|v| v.as_f64()).is_none() {
                return Err(format!("phases_ns.{name}.{key} missing or not numeric"));
            }
        }
    }
    Ok(())
}

/// Parse and validate a bench JSON file on disk.
pub fn validate_bench_file(path: &Path) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("parse: {e}"))?;
    validate_bench_doc(&doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_doc() -> Json {
        let mut cfg = Json::obj();
        cfg.push("scale", 0.01);
        let mut doc = bench_doc("unit_test", cfg);
        let lat = {
            let h = tdb_obs::Histogram::new();
            h.record(1_000_000);
            h.record(2_000_000);
            h.snapshot()
        };
        let mut row = Json::obj();
        row.push("system", "tdb");
        row.push("throughput_txn_per_sec", 123.4);
        row.push("latency_ms", latency_ms_json(&lat));
        push_result(&mut doc, row);
        doc
    }

    #[test]
    fn sample_doc_validates_and_roundtrips() {
        let doc = sample_doc();
        validate_bench_doc(&doc).unwrap();
        let parsed = Json::parse(&doc.pretty()).unwrap();
        validate_bench_doc(&parsed).unwrap();
    }

    #[test]
    fn validation_rejects_malformed_docs() {
        assert!(validate_bench_doc(&Json::arr()).is_err());
        let mut doc = Json::obj();
        doc.push("schema_version", 99u64);
        doc.push("bench", "x");
        doc.push("results", Json::arr());
        assert!(validate_bench_doc(&doc).is_err());

        // Valid frame, but empty results.
        let doc = bench_doc("x", Json::obj());
        assert!(validate_bench_doc(&doc).is_err());

        // Bad latency object inside an otherwise valid row.
        let mut doc = bench_doc("x", Json::obj());
        let mut row = Json::obj();
        let mut lat = Json::obj();
        lat.push("count", 1u64);
        row.push("latency_ms", lat); // missing p50/p95/p99
        push_result(&mut doc, row);
        assert!(validate_bench_doc(&doc).is_err());

        // p999 is optional, but must be numeric when present.
        let mut doc = bench_doc("x", Json::obj());
        let mut row = Json::obj();
        let mut lat = Json::obj();
        for key in ["count", "p50", "p95", "p99"] {
            lat.push(key, 1.0);
        }
        lat.push("p999", "fast");
        row.push("latency_ms", lat);
        push_result(&mut doc, row);
        assert!(validate_bench_doc(&doc).is_err());

        // A maintenance object must hold only numeric values.
        let mut doc = bench_doc("x", Json::obj());
        let mut row = Json::obj();
        let mut maint = Json::obj();
        maint.push("maintenance_stalls", "lots");
        row.push("maintenance", maint);
        push_result(&mut doc, row);
        assert!(validate_bench_doc(&doc).is_err());

        // A shard count of zero is as malformed as a non-numeric one.
        let mut doc = bench_doc("x", Json::obj());
        let mut row = Json::obj();
        row.push("shards", 0u64);
        push_result(&mut doc, row);
        assert!(validate_bench_doc(&doc).is_err());

        // per_shard must be an array of numeric-valued objects.
        let mut doc = bench_doc("x", Json::obj());
        let mut row = Json::obj();
        row.push("per_shard", "two of them");
        push_result(&mut doc, row);
        assert!(validate_bench_doc(&doc).is_err());

        let mut doc = bench_doc("x", Json::obj());
        let mut row = Json::obj();
        let mut entry = Json::obj();
        entry.push("shard", 0u64);
        entry.push("group_size_mean", "big");
        row.push("per_shard", Json::array([entry]));
        push_result(&mut doc, row);
        assert!(validate_bench_doc(&doc).is_err());
    }

    #[test]
    fn sharded_rows_validate() {
        let mut doc = bench_doc("x", Json::obj());
        let mut row = Json::obj();
        row.push("system", "TDB-sharded");
        row.push("shards", 2u64);
        row.push(
            "per_shard",
            Json::array((0..2u64).map(|i| {
                let mut o = Json::obj();
                o.push("shard", i);
                o.push("commits", 50u64);
                o.push("group_size_mean", 1.5);
                o
            })),
        );
        push_result(&mut doc, row);
        validate_bench_doc(&doc).unwrap();
    }

    #[test]
    fn latency_json_carries_the_tail_percentile() {
        let h = tdb_obs::Histogram::new();
        for i in 0..1000u64 {
            h.record(i * 1_000);
        }
        let lat = latency_ms_json(&h.snapshot());
        let o = lat.as_obj().unwrap();
        let p999 = o
            .iter()
            .find(|(n, _)| n == "p999")
            .and_then(|(_, v)| v.as_f64())
            .expect("p999 emitted and numeric");
        let p50 = o
            .iter()
            .find(|(n, _)| n == "p50")
            .and_then(|(_, v)| v.as_f64())
            .unwrap();
        assert!(p999 >= p50);
    }

    #[test]
    fn write_bench_json_emits_file() {
        let dir = tempfile::tempdir().unwrap();
        std::env::set_var("BENCH_OUT", dir.path());
        let path = write_bench_json("unit_test", &sample_doc()).unwrap();
        std::env::remove_var("BENCH_OUT");
        assert!(path.ends_with("BENCH_unit_test.json"));
        validate_bench_file(&path).unwrap();
    }
}
