//! The TPC-B workload of the paper's evaluation (§7.1).
//!
//! "The benchmark schema consists of four collections: Account, Teller,
//! Branch and History. Objects in all four collections are 100 bytes long
//! and contain 4-byte unique ids. A transaction reads and updates a random
//! object from each of the Account, Branch and Teller collections and
//! inserts a new object into the History collection." The initial sizes
//! are scaled down to model an embedded database (paper Fig. 9):
//! Account 100 000, Teller 1 000, Branch 100, History 252 000.
//!
//! Both systems get the same driver loop and the same PRNG stream, so the
//! comparison isolates the storage engines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver_baseline;
pub mod driver_tdb;
pub mod runner;
pub mod schema;

pub use driver_baseline::BaselineDriver;
pub use driver_tdb::{TdbDriver, TdbWorker};
pub use runner::{
    run_benchmark, run_benchmark_threaded, BenchReport, ParallelTpcbSystem, TpcbConfig, TpcbSystem,
    TpcbWorker,
};
pub use schema::{
    history_record_bytes, record_bytes, register_tpcb_classes, register_tpcb_extractors,
    HistoryRecord, TpcbRecord, TABLES,
};
