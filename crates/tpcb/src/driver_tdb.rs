//! TPC-B driver for TDB.
//!
//! Account/Teller/Branch get a unique **dynamic hash** index on id (keyed
//! access, paper Fig. 7 style); History gets a **list** index (append-only
//! audit records, enumerated by scan) — the same access-method choices the
//! paper's driver inherits from Berkeley DB's TPC-B implementation.

use crate::runner::{ParallelTpcbSystem, TpcbSystem, TpcbWorker};
use crate::schema::{register_tpcb_classes, register_tpcb_extractors, HistoryRecord, TpcbRecord};
use std::sync::Arc;
use tdb::platform::{MemSecretStore, OneWayCounter, SecretStore, UntrustedStore, VolatileCounter};
use tdb::{
    ClassRegistry, CollectionError, Database, DatabaseConfig, Durability, ExtractorRegistry,
    IndexKind, IndexSpec, Key, ObjectStoreError,
};
use tdb_obs::RegistrySnapshot;

/// TDB under the TPC-B workload.
pub struct TdbDriver {
    db: Database,
    /// Commit durability (the paper's runs are durable).
    pub durable: bool,
    /// Observability snapshot taken when [`TpcbSystem::load`] finished —
    /// the zero point of the measured run. Loading issues its own durable
    /// commits (schema creation, bulk-load batches, the closing
    /// checkpoint); without subtracting them, per-commit telemetry such as
    /// `commit.group_size` reports more laps than the benchmark ran
    /// transactions.
    load_baseline: Option<RegistrySnapshot>,
}

impl TdbDriver {
    /// Build over an untrusted store with a volatile counter (benchmarks).
    pub fn new(untrusted: Arc<dyn UntrustedStore>, cfg: DatabaseConfig) -> Self {
        let counter: Arc<dyn OneWayCounter> = Arc::new(VolatileCounter::new());
        Self::with_platform(untrusted, &MemSecretStore::from_label("tpcb"), counter, cfg)
    }

    /// Build with explicit platform substrates.
    pub fn with_platform(
        untrusted: Arc<dyn UntrustedStore>,
        secret: &dyn SecretStore,
        counter: Arc<dyn OneWayCounter>,
        cfg: DatabaseConfig,
    ) -> Self {
        let mut classes = ClassRegistry::new();
        register_tpcb_classes(&mut classes);
        let mut extractors = ExtractorRegistry::new();
        register_tpcb_extractors(&mut extractors);
        let db = Database::create(untrusted, secret, counter, classes, extractors, cfg).unwrap();
        TdbDriver {
            db,
            durable: true,
            load_baseline: None,
        }
    }

    /// The database (post-run inspection).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The measured run's observability snapshot: everything recorded
    /// since [`TpcbSystem::load`] returned (the snapshot includes both the
    /// aggregate and, on a sharded store, the `shard{k}.`-prefixed
    /// instruments). Before `load` completes this is the whole-lifetime
    /// snapshot.
    pub fn measured_obs(&self) -> RegistrySnapshot {
        let now = self.db.chunk_store().obs_snapshot();
        match &self.load_baseline {
            Some(base) => now.since(base),
            None => now,
        }
    }

    fn update_balance(&self, t: &tdb::CTransaction, table: &str, id: u32, delta: i64) {
        let coll = t.write_collection(table).unwrap();
        let mut it = coll.exact("by-id", &Key::U64(id as u64)).unwrap();
        assert!(!it.end(), "{table} record {id} missing");
        {
            let rec = it.write::<TpcbRecord>().unwrap();
            rec.get_mut().balance += delta;
        }
        it.close().unwrap();
    }
}

/// One fallible transfer attempt; aborts the transaction on any error so
/// the caller can retry (lock-contention timeouts) or fail.
fn try_transfer(
    db: &Database,
    durable: bool,
    account: u32,
    teller: u32,
    branch: u32,
    delta: i64,
    hist_id: u32,
) -> Result<(), CollectionError> {
    let t = db.begin();
    let staged = (|| -> Result<(), CollectionError> {
        for (table, id) in [("account", account), ("teller", teller), ("branch", branch)] {
            let coll = t.write_collection(table)?;
            let mut it = coll.exact("by-id", &Key::U64(id as u64))?;
            assert!(!it.end(), "{table} record {id} missing");
            {
                let rec = it.write::<TpcbRecord>()?;
                rec.get_mut().balance += delta;
            }
            it.close()?;
        }
        let history = t.write_collection("history")?;
        history.insert(Box::new(HistoryRecord::new(
            hist_id, account, teller, branch, delta,
        )))?;
        Ok(())
    })();
    match staged {
        Ok(()) => t.commit(Durability::from(durable)),
        Err(e) => {
            t.abort();
            Err(e)
        }
    }
}

/// A concurrent benchmark worker over the driver's shared database.
///
/// Transfers acquire locks in a globally consistent class order
/// (account → teller → branch → history), so concurrent workers can
/// contend but never deadlock; lock-timeout errors are therefore pure
/// contention and safe to retry. Any other error is a real failure.
pub struct TdbWorker {
    db: Database,
    durable: bool,
}

impl TpcbWorker for TdbWorker {
    fn transaction(&mut self, account: u32, teller: u32, branch: u32, delta: i64, hist_id: u32) {
        let mut attempt = 0u32;
        loop {
            match try_transfer(
                &self.db,
                self.durable,
                account,
                teller,
                branch,
                delta,
                hist_id,
            ) {
                Ok(()) => return,
                Err(CollectionError::Object(ObjectStoreError::LockTimeout(_))) => {
                    // Jittered backoff before retrying: contending workers
                    // that timed out together would otherwise retry in
                    // lockstep and recreate the same conflict. The jitter
                    // is a hash of (transfer, attempt) so each worker's
                    // delay differs deterministically.
                    attempt += 1;
                    let h = (u64::from(hist_id) << 32 | u64::from(attempt))
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    let cap = 1u64 << attempt.min(6); // 2..64 "slots"
                    std::thread::sleep(std::time::Duration::from_micros(
                        (h >> 32) % (cap * 50) + 1,
                    ));
                }
                Err(e) => panic!("TPC-B transfer failed: {e}"),
            }
        }
    }
}

impl ParallelTpcbSystem for TdbDriver {
    fn worker(&self) -> Box<dyn TpcbWorker> {
        Box::new(TdbWorker {
            db: self.db.clone(),
            durable: self.durable,
        })
    }
}

impl TpcbSystem for TdbDriver {
    fn load(&mut self, accounts: u32, tellers: u32, branches: u32, history: u32) {
        let tables: [(&str, u32, IndexKind); 4] = [
            ("account", accounts, IndexKind::Hash),
            ("teller", tellers, IndexKind::Hash),
            ("branch", branches, IndexKind::Hash),
            ("history", history, IndexKind::List),
        ];
        for (name, size, kind) in tables {
            let extractor = if name == "history" {
                "tpcb.history.id"
            } else {
                "tpcb.id"
            };
            // History is an append-only audit trail: ids are generated
            // unique by the driver, so paying a uniqueness check (a linear
            // probe on a list index) per insert would be pure waste.
            let unique = name != "history";
            let t = self.db.begin();
            // TPC-B record ids never change: declare the key immutable so
            // iterator snapshots skip it (the paper's §5.2.3 optimization).
            let spec = IndexSpec::new("by-id", extractor, unique, kind).immutable();
            t.create_collection(name, &[spec]).unwrap();
            t.commit(Durability::Durable).unwrap();
            // Bulk load in batches to keep individual commits reasonable.
            let mut id = 0u32;
            while id < size {
                let t = self.db.begin();
                let coll = t.write_collection(name).unwrap();
                let end = (id + 2000).min(size);
                while id < end {
                    if name == "history" {
                        coll.insert(Box::new(HistoryRecord::new(id, 0, 0, 0, 0)))
                            .unwrap();
                    } else {
                        coll.insert(Box::new(TpcbRecord::new(id))).unwrap();
                    }
                    id += 1;
                }
                drop(coll);
                t.commit(Durability::Durable).unwrap();
            }
        }
        // Loading is not part of the measurement: checkpoint so the
        // steady-state run starts from a compact, clean log, and zero the
        // telemetry so per-commit histograms count measured transactions
        // only (see [`Self::measured_obs`]).
        self.db.checkpoint().unwrap();
        self.load_baseline = Some(self.db.chunk_store().obs_snapshot());
    }

    fn transaction(&mut self, account: u32, teller: u32, branch: u32, delta: i64, hist_id: u32) {
        let t = self.db.begin();
        self.update_balance(&t, "account", account, delta);
        self.update_balance(&t, "teller", teller, delta);
        self.update_balance(&t, "branch", branch, delta);
        let history = t.write_collection("history").unwrap();
        history
            .insert(Box::new(HistoryRecord::new(
                hist_id, account, teller, branch, delta,
            )))
            .unwrap();
        drop(history);
        t.commit(Durability::from(self.durable)).unwrap();
    }

    fn disk_size(&self) -> u64 {
        self.db.disk_size()
    }

    fn bytes_written(&self) -> u64 {
        self.db.stats().bytes_appended
    }

    fn account_balance(&self, id: u32) -> i64 {
        self.balance_of("account", id)
    }

    fn branch_balance(&self, id: u32) -> i64 {
        self.balance_of("branch", id)
    }
}

impl TdbDriver {
    fn balance_of(&self, table: &str, id: u32) -> i64 {
        let t = self.db.begin();
        let coll = t.read_collection(table).unwrap();
        let it = coll.exact("by-id", &Key::U64(id as u64)).unwrap();
        let rec = it.read::<TpcbRecord>().unwrap();
        let balance = rec.get().balance;
        drop(rec);
        it.close().unwrap();
        t.commit(Durability::Lazy).unwrap();
        balance
    }
}
