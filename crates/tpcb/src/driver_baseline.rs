//! TPC-B driver for the Berkeley-DB-like baseline: four B-tree databases
//! keyed by the 4-byte record id, one shared write-ahead log.

use crate::runner::TpcbSystem;
use crate::schema::{history_record_bytes, record_balance, record_bytes};
use baseline::{BaselineConfig, DbId, Env};
use std::sync::Arc;
use tdb_platform::UntrustedStore;

/// The baseline engine under the TPC-B workload.
pub struct BaselineDriver {
    env: Env,
    account: DbId,
    teller: DbId,
    branch: DbId,
    history: DbId,
}

impl BaselineDriver {
    /// Build over an untrusted store.
    pub fn new(untrusted: Arc<dyn UntrustedStore>, cfg: BaselineConfig) -> Self {
        let env = Env::create(untrusted, cfg).unwrap();
        let account = env.create_db("account").unwrap();
        let teller = env.create_db("teller").unwrap();
        let branch = env.create_db("branch").unwrap();
        let history = env.create_db("history").unwrap();
        BaselineDriver {
            env,
            account,
            teller,
            branch,
            history,
        }
    }

    /// The environment (post-run inspection).
    pub fn env(&self) -> &Env {
        &self.env
    }

    fn update(&self, txn: &mut baseline::Txn, db: DbId, id: u32, delta: i64) {
        let key = id.to_be_bytes();
        let old = self.env.get(db, &key).unwrap().expect("record must exist");
        let new = record_bytes(id, record_balance(&old) + delta);
        self.env.put(txn, db, &key, &new).unwrap();
    }
}

impl TpcbSystem for BaselineDriver {
    fn load(&mut self, accounts: u32, tellers: u32, branches: u32, history: u32) {
        for (db, size) in [
            (self.account, accounts),
            (self.teller, tellers),
            (self.branch, branches),
        ] {
            let mut id = 0u32;
            while id < size {
                let mut txn = self.env.begin().unwrap();
                let end = (id + 2000).min(size);
                while id < end {
                    self.env
                        .put(&mut txn, db, &id.to_be_bytes(), &record_bytes(id, 0))
                        .unwrap();
                    id += 1;
                }
                self.env.commit(txn).unwrap();
            }
        }
        let mut id = 0u32;
        while id < history {
            let mut txn = self.env.begin().unwrap();
            let end = (id + 2000).min(history);
            while id < end {
                self.env
                    .put(
                        &mut txn,
                        self.history,
                        &id.to_be_bytes(),
                        &history_record_bytes(id, 0, 0, 0, 0),
                    )
                    .unwrap();
                id += 1;
            }
            self.env.commit(txn).unwrap();
        }
        // Loading is not measured: checkpoint (flush pages, truncate the
        // log) so the run starts clean, exactly like TDB's post-load
        // checkpoint. During the run itself the baseline never checkpoints
        // (paper §7.4: "it does not checkpoint the log during the
        // benchmark").
        self.env.checkpoint().unwrap();
    }

    fn transaction(&mut self, account: u32, teller: u32, branch: u32, delta: i64, hist_id: u32) {
        let mut txn = self.env.begin().unwrap();
        self.update(&mut txn, self.account, account, delta);
        self.update(&mut txn, self.teller, teller, delta);
        self.update(&mut txn, self.branch, branch, delta);
        self.env
            .put(
                &mut txn,
                self.history,
                &hist_id.to_be_bytes(),
                &history_record_bytes(hist_id, account, teller, branch, delta),
            )
            .unwrap();
        self.env.commit(txn).unwrap();
    }

    fn disk_size(&self) -> u64 {
        self.env.disk_size().unwrap()
    }

    fn bytes_written(&self) -> u64 {
        let (wal, _, pages) = self.env.stats();
        wal + pages
    }

    fn account_balance(&self, id: u32) -> i64 {
        record_balance(
            &self
                .env
                .get(self.account, &id.to_be_bytes())
                .unwrap()
                .unwrap(),
        )
    }

    fn branch_balance(&self, id: u32) -> i64 {
        record_balance(
            &self
                .env
                .get(self.branch, &id.to_be_bytes())
                .unwrap()
                .unwrap(),
        )
    }
}
