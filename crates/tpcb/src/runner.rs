//! The shared benchmark driver: load the four tables, run transactions,
//! report mean response time over the steady-state half (the paper runs
//! 200 000 transactions and averages the later 100 000, §7.3).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use tdb_obs::{HistSnapshot, Histogram};

/// A system under test (TDB or the baseline).
pub trait TpcbSystem {
    /// Bulk-load `account`, `teller`, `branch`, `history` with their
    /// initial record counts.
    fn load(&mut self, accounts: u32, tellers: u32, branches: u32, history: u32);

    /// One TPC-B transaction: update the three picked records' balances by
    /// `delta` and insert a history record with id `hist_id`.
    fn transaction(&mut self, account: u32, teller: u32, branch: u32, delta: i64, hist_id: u32);

    /// Current on-disk footprint in bytes.
    fn disk_size(&self) -> u64;

    /// Total bytes written to storage so far.
    fn bytes_written(&self) -> u64;

    /// Balance of an account (consistency checks).
    fn account_balance(&self, id: u32) -> i64;

    /// Balance of a branch (consistency checks).
    fn branch_balance(&self, id: u32) -> i64;
}

/// Workload parameters.
#[derive(Clone, Debug)]
pub struct TpcbConfig {
    /// Scale factor on the paper's Fig. 9 table sizes (1.0 = full).
    pub scale: f64,
    /// Transactions to run.
    pub transactions: u64,
    /// PRNG seed (same seed ⇒ identical op streams on both systems).
    pub seed: u64,
}

impl Default for TpcbConfig {
    fn default() -> Self {
        TpcbConfig {
            scale: 1.0,
            transactions: 200_000,
            seed: 0x7DB,
        }
    }
}

impl TpcbConfig {
    /// Scaled initial table sizes (account, teller, branch, history).
    pub fn sizes(&self) -> (u32, u32, u32, u32) {
        let s = |n: u64| ((n as f64 * self.scale) as u32).max(1);
        (s(100_000), s(1_000), s(100), s(252_000))
    }
}

/// Results of one run.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Transactions executed.
    pub transactions: u64,
    /// Mean response time over the steady-state (second) half, in ms.
    pub avg_response_ms: f64,
    /// Mean response time over all transactions, in ms.
    pub avg_response_all_ms: f64,
    /// Bytes written to storage per transaction (steady-state half).
    pub bytes_per_txn: f64,
    /// On-disk footprint after the run, in bytes.
    pub final_disk_size: u64,
    /// Wall-clock of the measured run in seconds (loading excluded).
    pub run_seconds: f64,
    /// Per-transaction latency distribution over the steady-state half
    /// (nanoseconds); percentiles via [`HistSnapshot::percentile`].
    pub latency: HistSnapshot,
}

/// Load and run the benchmark against `system`.
pub fn run_benchmark(system: &mut dyn TpcbSystem, cfg: &TpcbConfig) -> BenchReport {
    let (accounts, tellers, branches, history) = cfg.sizes();
    system.load(accounts, tellers, branches, history);

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut hist_id = history; // continue after the preloaded records
    let total = cfg.transactions;
    let half = total / 2;

    let mut first_half_nanos = 0u128;
    let mut second_half_nanos = 0u128;
    let mut bytes_at_half = system.bytes_written();
    // Detached histogram: not in any registry, so two systems benched in the
    // same process never share buckets. Timing here uses the Instant already
    // taken for the mean, so the histogram adds no extra clock reads.
    let latency = Histogram::default();
    let run_start = Instant::now();

    #[allow(clippy::explicit_counter_loop)] // hist_id advances with txns by design
    for i in 0..total {
        let account = rng.gen_range(0..accounts);
        let teller = rng.gen_range(0..tellers);
        let branch = rng.gen_range(0..branches);
        let delta = rng.gen_range(-99_999i64..=99_999);
        let start = Instant::now();
        system.transaction(account, teller, branch, delta, hist_id);
        let nanos = start.elapsed().as_nanos();
        hist_id += 1;
        if i < half {
            first_half_nanos += nanos;
            if i + 1 == half {
                bytes_at_half = system.bytes_written();
            }
        } else {
            second_half_nanos += nanos;
            latency.record(nanos as u64);
        }
    }
    let run_seconds = run_start.elapsed().as_secs_f64();

    let measured = (total - half).max(1);
    let bytes_second_half = system.bytes_written().saturating_sub(bytes_at_half);
    BenchReport {
        transactions: total,
        avg_response_ms: second_half_nanos as f64 / measured as f64 / 1e6,
        avg_response_all_ms: (first_half_nanos + second_half_nanos) as f64 / total as f64 / 1e6,
        bytes_per_txn: bytes_second_half as f64 / measured as f64,
        final_disk_size: system.disk_size(),
        run_seconds,
        latency: latency.snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_scale() {
        let cfg = TpcbConfig {
            scale: 0.01,
            ..Default::default()
        };
        assert_eq!(cfg.sizes(), (1000, 10, 1, 2520));
        let cfg = TpcbConfig {
            scale: 1.0,
            ..Default::default()
        };
        assert_eq!(cfg.sizes(), (100_000, 1_000, 100, 252_000));
        // Tiny scales never hit zero.
        let cfg = TpcbConfig {
            scale: 0.0001,
            ..Default::default()
        };
        let (a, t, b, h) = cfg.sizes();
        assert!(a >= 1 && t >= 1 && b >= 1 && h >= 1);
    }
}
