//! The shared benchmark driver: load the four tables, run transactions,
//! report mean response time over the steady-state half (the paper runs
//! 200 000 transactions and averages the later 100 000, §7.3).
//!
//! With [`TpcbConfig::threads`] > 1 and a [`ParallelTpcbSystem`],
//! [`run_benchmark_threaded`] splits the transaction stream across worker
//! threads sharing one store — the workload that exercises per-transaction
//! write staging and group commit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use tdb_obs::{HistSnapshot, Histogram};

/// A system under test (TDB or the baseline).
pub trait TpcbSystem {
    /// Bulk-load `account`, `teller`, `branch`, `history` with their
    /// initial record counts.
    fn load(&mut self, accounts: u32, tellers: u32, branches: u32, history: u32);

    /// One TPC-B transaction: update the three picked records' balances by
    /// `delta` and insert a history record with id `hist_id`.
    fn transaction(&mut self, account: u32, teller: u32, branch: u32, delta: i64, hist_id: u32);

    /// Current on-disk footprint in bytes.
    fn disk_size(&self) -> u64;

    /// Total bytes written to storage so far.
    fn bytes_written(&self) -> u64;

    /// Balance of an account (consistency checks).
    fn account_balance(&self, id: u32) -> i64;

    /// Balance of a branch (consistency checks).
    fn branch_balance(&self, id: u32) -> i64;
}

/// Workload parameters.
#[derive(Clone, Debug)]
pub struct TpcbConfig {
    /// Scale factor on the paper's Fig. 9 table sizes (1.0 = full).
    pub scale: f64,
    /// Transactions to run.
    pub transactions: u64,
    /// PRNG seed (same seed ⇒ identical op streams on both systems).
    pub seed: u64,
    /// Concurrent worker threads sharing one store (1 = the classic
    /// single-threaded run; >1 requires a [`ParallelTpcbSystem`]).
    pub threads: usize,
}

impl Default for TpcbConfig {
    fn default() -> Self {
        TpcbConfig {
            scale: 1.0,
            transactions: 200_000,
            seed: 0x7DB,
            threads: 1,
        }
    }
}

impl TpcbConfig {
    /// Scaled initial table sizes (account, teller, branch, history).
    pub fn sizes(&self) -> (u32, u32, u32, u32) {
        let s = |n: u64| ((n as f64 * self.scale) as u32).max(1);
        (s(100_000), s(1_000), s(100), s(252_000))
    }
}

/// Results of one run.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Transactions executed.
    pub transactions: u64,
    /// Mean response time over the steady-state (second) half, in ms.
    pub avg_response_ms: f64,
    /// Mean response time over all transactions, in ms.
    pub avg_response_all_ms: f64,
    /// Bytes written to storage per transaction (steady-state half).
    pub bytes_per_txn: f64,
    /// On-disk footprint after the run, in bytes.
    pub final_disk_size: u64,
    /// Wall-clock of the measured run in seconds (loading excluded).
    pub run_seconds: f64,
    /// Per-transaction latency distribution over the steady-state half
    /// (nanoseconds); percentiles via [`HistSnapshot::percentile`].
    pub latency: HistSnapshot,
    /// Worker threads that produced this report.
    pub threads: usize,
}

/// Load and run the benchmark against `system`.
pub fn run_benchmark(system: &mut dyn TpcbSystem, cfg: &TpcbConfig) -> BenchReport {
    let (accounts, tellers, branches, history) = cfg.sizes();
    system.load(accounts, tellers, branches, history);

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut hist_id = history; // continue after the preloaded records
    let total = cfg.transactions;
    let half = total / 2;

    let mut first_half_nanos = 0u128;
    let mut second_half_nanos = 0u128;
    let mut bytes_at_half = system.bytes_written();
    // Detached histogram: not in any registry, so two systems benched in the
    // same process never share buckets. Timing here uses the Instant already
    // taken for the mean, so the histogram adds no extra clock reads.
    let latency = Histogram::default();
    let run_start = Instant::now();

    #[allow(clippy::explicit_counter_loop)] // hist_id advances with txns by design
    for i in 0..total {
        let account = rng.gen_range(0..accounts);
        let teller = rng.gen_range(0..tellers);
        let branch = rng.gen_range(0..branches);
        let delta = rng.gen_range(-99_999i64..=99_999);
        let start = Instant::now();
        system.transaction(account, teller, branch, delta, hist_id);
        let nanos = start.elapsed().as_nanos();
        hist_id += 1;
        if i < half {
            first_half_nanos += nanos;
            if i + 1 == half {
                bytes_at_half = system.bytes_written();
            }
        } else {
            second_half_nanos += nanos;
            latency.record(nanos as u64);
        }
    }
    let run_seconds = run_start.elapsed().as_secs_f64();

    let measured = (total - half).max(1);
    let bytes_second_half = system.bytes_written().saturating_sub(bytes_at_half);
    BenchReport {
        transactions: total,
        avg_response_ms: second_half_nanos as f64 / measured as f64 / 1e6,
        avg_response_all_ms: (first_half_nanos + second_half_nanos) as f64 / total as f64 / 1e6,
        bytes_per_txn: bytes_second_half as f64 / measured as f64,
        final_disk_size: system.disk_size(),
        run_seconds,
        latency: latency.snapshot(),
        threads: 1,
    }
}

/// One worker's handle onto a shared system: runs transactions
/// concurrently with its siblings. Created by
/// [`ParallelTpcbSystem::worker`]; internal retry (e.g. on lock-contention
/// timeouts) is the implementation's responsibility — when `transaction`
/// returns, the transfer is committed.
pub trait TpcbWorker: Send {
    /// One TPC-B transaction (same contract as
    /// [`TpcbSystem::transaction`]).
    fn transaction(&mut self, account: u32, teller: u32, branch: u32, delta: i64, hist_id: u32);
}

/// A system that supports concurrent workers over one shared store.
pub trait ParallelTpcbSystem: TpcbSystem {
    /// A new worker sharing this system's store.
    fn worker(&self) -> Box<dyn TpcbWorker>;
}

/// Like [`run_benchmark`], but with `cfg.threads` workers sharing the
/// store. Each worker gets a disjoint `hist_id` range and an independent
/// PRNG stream; per-thread steady-state latencies are merged into one
/// distribution. After the run the balance-sum invariant is checked:
/// the branch balances must sum to exactly the sum of all applied deltas
/// (any lost update breaks this). Falls back to the single-threaded
/// driver when `cfg.threads <= 1`.
pub fn run_benchmark_threaded(
    system: &mut dyn ParallelTpcbSystem,
    cfg: &TpcbConfig,
) -> BenchReport {
    let threads = cfg.threads.max(1);
    if threads == 1 {
        return run_benchmark(system, cfg);
    }
    let (accounts, tellers, branches, history) = cfg.sizes();
    system.load(accounts, tellers, branches, history);

    let total = cfg.transactions;
    let per_thread = total.div_ceil(threads as u64);

    struct ThreadResult {
        ran: u64,
        steady_nanos: u128,
        all_nanos: u128,
        latency: HistSnapshot,
        delta_sum: i64,
    }

    let bytes_before = system.bytes_written();
    let run_start = Instant::now();
    let results: Vec<ThreadResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let mut worker = system.worker();
                scope.spawn(move || {
                    let start_at = t as u64 * per_thread;
                    let count = per_thread.min(total.saturating_sub(start_at));
                    let half = count / 2;
                    // Distinct, deterministic stream per worker.
                    let mut rng = StdRng::seed_from_u64(
                        cfg.seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(t as u64 + 1),
                    );
                    let latency = Histogram::default();
                    let mut steady_nanos = 0u128;
                    let mut all_nanos = 0u128;
                    let mut delta_sum = 0i64;
                    for i in 0..count {
                        let account = rng.gen_range(0..accounts);
                        let teller = rng.gen_range(0..tellers);
                        let branch = rng.gen_range(0..branches);
                        let delta = rng.gen_range(-99_999i64..=99_999);
                        // Disjoint id space per thread keeps history
                        // inserts collision-free.
                        let hist_id = history + (start_at + i) as u32;
                        let start = Instant::now();
                        worker.transaction(account, teller, branch, delta, hist_id);
                        let nanos = start.elapsed().as_nanos();
                        all_nanos += nanos;
                        delta_sum += delta;
                        if i >= half {
                            steady_nanos += nanos;
                            latency.record(nanos as u64);
                        }
                    }
                    ThreadResult {
                        ran: count,
                        steady_nanos,
                        all_nanos,
                        latency: latency.snapshot(),
                        delta_sum,
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let run_seconds = run_start.elapsed().as_secs_f64();

    // Balance-sum invariant: every applied delta must be visible in its
    // branch balance; a lost update under concurrency breaks the equality.
    let expected: i64 = results.iter().map(|r| r.delta_sum).sum();
    let actual: i64 = (0..branches).map(|b| system.branch_balance(b)).sum();
    assert_eq!(
        actual, expected,
        "balance-sum invariant violated: branches sum to {actual}, deltas sum to {expected}"
    );

    let ran: u64 = results.iter().map(|r| r.ran).sum();
    let steady: u64 = results.iter().map(|r| r.latency.count()).sum();
    let steady_nanos: u128 = results.iter().map(|r| r.steady_nanos).sum();
    let all_nanos: u128 = results.iter().map(|r| r.all_nanos).sum();
    let mut latency = HistSnapshot::default();
    for r in &results {
        latency.merge(&r.latency);
    }
    // Per-half byte accounting needs a global half boundary, which a
    // threaded run does not have; report whole-run bytes per transaction.
    let bytes = system.bytes_written().saturating_sub(bytes_before);
    BenchReport {
        transactions: ran,
        avg_response_ms: steady_nanos as f64 / steady.max(1) as f64 / 1e6,
        avg_response_all_ms: all_nanos as f64 / ran.max(1) as f64 / 1e6,
        bytes_per_txn: bytes as f64 / ran.max(1) as f64,
        final_disk_size: system.disk_size(),
        run_seconds,
        latency,
        threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_scale() {
        let cfg = TpcbConfig {
            scale: 0.01,
            ..Default::default()
        };
        assert_eq!(cfg.sizes(), (1000, 10, 1, 2520));
        let cfg = TpcbConfig {
            scale: 1.0,
            ..Default::default()
        };
        assert_eq!(cfg.sizes(), (100_000, 1_000, 100, 252_000));
        // Tiny scales never hit zero.
        let cfg = TpcbConfig {
            scale: 0.0001,
            ..Default::default()
        };
        let (a, t, b, h) = cfg.sizes();
        assert!(a >= 1 && t >= 1 && b >= 1 && h >= 1);
    }
}
