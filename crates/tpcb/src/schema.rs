//! The TPC-B schema: 100-byte records with 4-byte ids (paper §7.1).

use tdb::{
    impl_persistent_boilerplate, ClassRegistry, ExtractorRegistry, Key, Persistent, PickleError,
    Pickler, Unpickler,
};

/// Class id of account/teller/branch records.
pub const CLASS_TPCB_RECORD: u32 = 0x7b00_0001;
/// Class id of history records.
pub const CLASS_HISTORY: u32 = 0x7b00_0002;

/// The four tables with their paper-specified initial sizes (Fig. 9).
pub const TABLES: [(&str, u64); 4] = [
    ("account", 100_000),
    ("teller", 1_000),
    ("branch", 100),
    ("history", 252_000),
];

/// Padding so a record pickles to ~100 bytes like the paper's objects.
const FILLER_LEN: usize = 80;

/// An Account / Teller / Branch record: 4-byte id, balance, filler.
pub struct TpcbRecord {
    /// Unique id within its table.
    pub id: u32,
    /// Balance, updated by every transaction that picks this record.
    pub balance: i64,
    /// Padding up to the 100-byte record size.
    pub filler: Vec<u8>,
}

impl TpcbRecord {
    /// Fresh record with zero balance.
    pub fn new(id: u32) -> Self {
        TpcbRecord {
            id,
            balance: 0,
            filler: vec![0x20; FILLER_LEN],
        }
    }
}

impl Persistent for TpcbRecord {
    impl_persistent_boilerplate!(CLASS_TPCB_RECORD);
    fn pickle(&self, w: &mut Pickler) {
        w.u32(self.id);
        w.i64(self.balance);
        w.bytes(&self.filler);
    }
}

/// Unpickler for [`TpcbRecord`].
pub fn unpickle_record(r: &mut Unpickler) -> Result<Box<dyn Persistent>, PickleError> {
    Ok(Box::new(TpcbRecord {
        id: r.u32()?,
        balance: r.i64()?,
        filler: r.bytes()?.to_vec(),
    }))
}

/// A History record: who moved how much where.
pub struct HistoryRecord {
    /// Unique id.
    pub id: u32,
    /// Account touched.
    pub account: u32,
    /// Teller touched.
    pub teller: u32,
    /// Branch touched.
    pub branch: u32,
    /// Amount moved.
    pub delta: i64,
    /// Padding up to ~100 bytes.
    pub filler: Vec<u8>,
}

impl HistoryRecord {
    /// Build a history entry.
    pub fn new(id: u32, account: u32, teller: u32, branch: u32, delta: i64) -> Self {
        HistoryRecord {
            id,
            account,
            teller,
            branch,
            delta,
            filler: vec![0x20; FILLER_LEN - 12],
        }
    }
}

impl Persistent for HistoryRecord {
    impl_persistent_boilerplate!(CLASS_HISTORY);
    fn pickle(&self, w: &mut Pickler) {
        w.u32(self.id);
        w.u32(self.account);
        w.u32(self.teller);
        w.u32(self.branch);
        w.i64(self.delta);
        w.bytes(&self.filler);
    }
}

/// Unpickler for [`HistoryRecord`].
pub fn unpickle_history(r: &mut Unpickler) -> Result<Box<dyn Persistent>, PickleError> {
    Ok(Box::new(HistoryRecord {
        id: r.u32()?,
        account: r.u32()?,
        teller: r.u32()?,
        branch: r.u32()?,
        delta: r.i64()?,
        filler: r.bytes()?.to_vec(),
    }))
}

/// Register both TPC-B classes.
pub fn register_tpcb_classes(registry: &mut ClassRegistry) {
    registry.register(CLASS_TPCB_RECORD, "TpcbRecord", unpickle_record);
    registry.register(CLASS_HISTORY, "HistoryRecord", unpickle_history);
}

/// Register the id extractors ("tpcb.id", "tpcb.history.id").
pub fn register_tpcb_extractors(registry: &mut ExtractorRegistry) {
    registry.register("tpcb.id", |obj| {
        tdb::extractor_typed::<TpcbRecord>(obj, |r| Key::U64(r.id as u64))
    });
    registry.register("tpcb.history.id", |obj| {
        tdb::extractor_typed::<HistoryRecord>(obj, |r| Key::U64(r.id as u64))
    });
}

/// The baseline's flat 100-byte record encoding (id, balance, filler).
pub fn record_bytes(id: u32, balance: i64) -> Vec<u8> {
    let mut out = Vec::with_capacity(100);
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(&balance.to_le_bytes());
    out.resize(100, 0x20);
    out
}

/// Parse the balance back out of a baseline record.
pub fn record_balance(bytes: &[u8]) -> i64 {
    i64::from_le_bytes(bytes[4..12].try_into().expect("record too short"))
}

/// The baseline's history record encoding.
pub fn history_record_bytes(
    id: u32,
    account: u32,
    teller: u32,
    branch: u32,
    delta: i64,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(100);
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(&account.to_le_bytes());
    out.extend_from_slice(&teller.to_le_bytes());
    out.extend_from_slice(&branch.to_le_bytes());
    out.extend_from_slice(&delta.to_le_bytes());
    out.resize(100, 0x20);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_are_about_100_bytes() {
        let mut w = Pickler::new();
        TpcbRecord::new(1).pickle(&mut w);
        let len = w.len();
        assert!((95..=105).contains(&len), "record pickles to {len} bytes");
        let mut w = Pickler::new();
        HistoryRecord::new(1, 2, 3, 4, 5).pickle(&mut w);
        let len = w.len();
        assert!((95..=105).contains(&len), "history pickles to {len} bytes");
        assert_eq!(record_bytes(1, 0).len(), 100);
        assert_eq!(history_record_bytes(1, 2, 3, 4, 5).len(), 100);
    }

    #[test]
    fn record_pickle_roundtrip() {
        let mut w = Pickler::new();
        let rec = TpcbRecord {
            id: 7,
            balance: -42,
            filler: vec![1; FILLER_LEN],
        };
        rec.pickle(&mut w);
        let bytes = w.into_bytes();
        let mut r = Unpickler::new(&bytes);
        let back = unpickle_record(&mut r).unwrap();
        let back = back.as_any().downcast_ref::<TpcbRecord>().unwrap();
        assert_eq!((back.id, back.balance), (7, -42));
    }

    #[test]
    fn baseline_record_balance_roundtrip() {
        let bytes = record_bytes(9, -123456);
        assert_eq!(record_balance(&bytes), -123456);
    }
}
