//! Correctness of the TPC-B drivers: both systems process the same op
//! stream and must agree on every balance.

use std::sync::Arc;
use tdb::DatabaseConfig;
use tdb_platform::MemStore;
use tpcb::{run_benchmark, BaselineDriver, TdbDriver, TpcbConfig, TpcbSystem};

fn small_cfg() -> TpcbConfig {
    TpcbConfig {
        scale: 0.002,
        transactions: 500,
        seed: 42,
        threads: 1,
    }
}

#[test]
fn drivers_agree_on_balances() {
    let cfg = small_cfg();
    let mut tdb_sys = TdbDriver::new(Arc::new(MemStore::new()), DatabaseConfig::default());
    let mut bdb_sys = BaselineDriver::new(
        Arc::new(MemStore::new()),
        baseline::BaselineConfig::default(),
    );
    let r1 = run_benchmark(&mut tdb_sys, &cfg);
    let r2 = run_benchmark(&mut bdb_sys, &cfg);
    assert_eq!(r1.transactions, r2.transactions);

    let (accounts, _, branches, _) = cfg.sizes();
    for id in 0..accounts {
        assert_eq!(
            tdb_sys.account_balance(id),
            bdb_sys.account_balance(id),
            "account {id}"
        );
    }
    let mut branch_total = 0i64;
    for id in 0..branches {
        let b = tdb_sys.branch_balance(id);
        assert_eq!(b, bdb_sys.branch_balance(id), "branch {id}");
        branch_total += b;
    }
    // Conservation: every delta hit exactly one account and one branch.
    let mut account_total = 0i64;
    for id in 0..accounts {
        account_total += tdb_sys.account_balance(id);
    }
    assert_eq!(account_total, branch_total);
}

#[test]
fn reports_are_sane() {
    let cfg = small_cfg();
    let mut sys = TdbDriver::new(
        Arc::new(MemStore::new()),
        DatabaseConfig::without_security(),
    );
    let report = run_benchmark(&mut sys, &cfg);
    assert!(report.avg_response_ms > 0.0);
    assert!(
        report.bytes_per_txn > 100.0,
        "bytes/txn {}",
        report.bytes_per_txn
    );
    assert!(report.final_disk_size > 0);
}

#[test]
fn group_stats_count_measured_transactions_exactly() {
    // Regression: loading issues its own durable commits (schema creation,
    // bulk-load batches, the closing checkpoint), and they used to leak
    // into the reported group-commit histograms — a 6000-transaction run
    // reported ~6012 `commit.group_size` laps. `measured_obs` subtracts
    // the load-phase baseline, so group stats are per-user-commit exact.
    tdb_obs::set_enabled(true);
    let cfg = small_cfg();
    let mut sys = TdbDriver::new(
        Arc::new(MemStore::new()),
        DatabaseConfig::without_security(),
    );
    run_benchmark(&mut sys, &cfg);

    let measured = sys.measured_obs();
    let size = measured
        .histograms
        .get("commit.group_size")
        .expect("commit.group_size recorded");
    // Every commit in a single-threaded run leads its own group of one.
    assert_eq!(size.count(), cfg.transactions, "group_size laps");
    assert_eq!(size.sum, cfg.transactions, "commits covered by groups");
    let wait = measured
        .histograms
        .get("commit.group_wait")
        .expect("commit.group_wait recorded");
    assert_eq!(wait.count(), cfg.transactions, "group_wait laps");

    // The lifetime snapshot still includes the load phase — strictly more
    // laps than the measured run (that surplus was the bug).
    let lifetime = sys.database().chunk_store().obs_snapshot();
    let all = lifetime.histograms.get("commit.group_size").unwrap();
    assert!(
        all.count() > size.count(),
        "load-phase commits must exist outside the measured window \
         ({} vs {})",
        all.count(),
        size.count()
    );
}

#[test]
fn tdb_survives_reopen_after_benchmark() {
    // The benchmark leaves a consistent, recoverable database behind.
    let mem = MemStore::new();
    let secret = tdb::platform::MemSecretStore::from_label("tpcb");
    let counter = tdb::platform::VolatileCounter::new();
    let balance_before;
    {
        let mut sys = TdbDriver::with_platform(
            Arc::new(mem.clone()),
            &secret,
            Arc::new(counter.clone()),
            DatabaseConfig::default(),
        );
        run_benchmark(&mut sys, &small_cfg());
        balance_before = sys.account_balance(0);
    }
    let mut classes = tdb::ClassRegistry::new();
    tpcb::register_tpcb_classes(&mut classes);
    let mut extractors = tdb::ExtractorRegistry::new();
    tpcb::register_tpcb_extractors(&mut extractors);
    let db = tdb::Database::open(
        Arc::new(mem),
        &secret,
        Arc::new(counter),
        classes,
        extractors,
        DatabaseConfig::default(),
    )
    .unwrap();
    let t = db.begin();
    let coll = t.read_collection("account").unwrap();
    let it = coll.exact("by-id", &tdb::Key::U64(0)).unwrap();
    let rec = it.read::<tpcb::TpcbRecord>().unwrap();
    assert_eq!(rec.get().balance, balance_before);
}
