//! Log-bucketed (HDR-style, power-of-two) latency histogram.
//!
//! Values are nanoseconds by convention. Recording is lock-free: one relaxed
//! atomic increment on the bucket, one on the running sum, plus monotonic
//! min/max maintenance. Bucket `0` holds `[0, 1)`, bucket `i` holds
//! `[2^(i-1), 2^i)`, and the last bucket is an open-ended overflow bucket.
//! With 48 buckets the overflow threshold is 2^46 ns ≈ 19.5 hours, far beyond
//! any span this workspace times.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Number of power-of-two buckets (last one is the overflow bucket).
pub const BUCKETS: usize = 48;

/// Bucket index for a recorded value.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

/// Half-open `[lo, hi)` range a bucket covers. The overflow bucket reports
/// `[2^(BUCKETS-2), 2^(BUCKETS-1))` for interpolation purposes even though it
/// actually absorbs everything above its lower bound.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    if index == 0 {
        (0, 1)
    } else {
        (1u64 << (index - 1), 1u64 << index)
    }
}

struct HistInner {
    counts: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    /// Raw min; `u64::MAX` sentinel while empty.
    min: AtomicU64,
    max: AtomicU64,
}

/// A shareable histogram handle. Cloning is cheap (`Arc`); all clones record
/// into the same buckets, so a handle can outlive the [`Registry`] it was
/// created from.
///
/// [`Registry`]: crate::Registry
#[derive(Clone)]
pub struct Histogram(Arc<HistInner>);

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Create a detached histogram (not owned by any registry).
    pub fn new() -> Self {
        Histogram(Arc::new(HistInner {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }))
    }

    /// Record one sample (nanoseconds by convention).
    pub fn record(&self, value: u64) {
        if cfg!(feature = "compile-out") {
            return;
        }
        let inner = &self.0;
        inner.counts[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(value, Ordering::Relaxed);
        inner.min.fetch_min(value, Ordering::Relaxed);
        inner.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Time a closure and record its wall-clock duration, honouring the
    /// global enable flag (no clock read when disabled).
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        if !crate::enabled() {
            return f();
        }
        let start = Instant::now();
        let out = f();
        self.record(start.elapsed().as_nanos() as u64);
        out
    }

    /// RAII guard that records the elapsed time into this histogram on drop.
    pub fn span(&self) -> SpanGuard {
        SpanGuard {
            hist: self.clone(),
            start: if crate::enabled() {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// Point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistSnapshot {
        let inner = &self.0;
        let counts = std::array::from_fn(|i| inner.counts[i].load(Ordering::Relaxed));
        let mut snap = HistSnapshot {
            counts,
            sum: inner.sum.load(Ordering::Relaxed),
            min: inner.min.load(Ordering::Relaxed),
            max: inner.max.load(Ordering::Relaxed),
        };
        if snap.count() == 0 {
            snap.min = 0;
        }
        snap
    }
}

/// RAII span timer; records into its histogram when dropped.
pub struct SpanGuard {
    hist: Histogram,
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.hist.record(start.elapsed().as_nanos() as u64);
        }
    }
}

/// Immutable histogram state with delta/merge and percentile extraction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket sample counts.
    pub counts: [u64; BUCKETS],
    /// Sum of all recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            counts: [0; BUCKETS],
            sum: 0,
            min: 0,
            max: 0,
        }
    }
}

impl HistSnapshot {
    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Arithmetic mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Estimate the `q`-quantile (`q` in `0.0..=1.0`) by linear interpolation
    /// within the containing bucket, clamped to the observed `[min, max]`.
    /// Exact for single-sample histograms; within one bucket width otherwise.
    pub fn percentile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= rank {
                if i == BUCKETS - 1 {
                    // Overflow bucket: its nominal upper bound says nothing
                    // about the samples in it; the observed max does.
                    return self.max as f64;
                }
                let (lo, hi) = bucket_bounds(i);
                let frac = (rank - cum) as f64 / c as f64;
                let est = lo as f64 + frac * (hi - lo) as f64;
                return est.clamp(self.min as f64, self.max as f64);
            }
            cum += c;
        }
        self.max as f64
    }

    /// Median estimate.
    pub fn p50(&self) -> f64 {
        self.percentile(0.50)
    }

    /// 90th percentile estimate.
    pub fn p90(&self) -> f64 {
        self.percentile(0.90)
    }

    /// 95th percentile estimate.
    pub fn p95(&self) -> f64 {
        self.percentile(0.95)
    }

    /// 99th percentile estimate.
    pub fn p99(&self) -> f64 {
        self.percentile(0.99)
    }

    /// Samples recorded since `earlier` (counts and sum are subtracted;
    /// `min`/`max` are carried from `self`, i.e. they describe the full
    /// history rather than the interval).
    pub fn since(&self, earlier: &HistSnapshot) -> HistSnapshot {
        let counts = std::array::from_fn(|i| self.counts[i].saturating_sub(earlier.counts[i]));
        let mut snap = HistSnapshot {
            counts,
            sum: self.sum.saturating_sub(earlier.sum),
            min: self.min,
            max: self.max,
        };
        if snap.count() == 0 {
            snap.min = 0;
            snap.max = 0;
        }
        snap
    }

    /// Fold another snapshot into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.sum += other.sum;
        if other.count() > 0 {
            if self.count() == other.count() {
                // self was empty before the merge; adopt other's extrema.
                self.min = other.min;
                self.max = other.max;
            } else {
                self.min = self.min.min(other.min);
                self.max = self.max.max(other.max);
            }
        }
    }
}
