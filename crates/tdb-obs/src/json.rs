//! Minimal JSON value, writer, and parser.
//!
//! The container is offline, so `BENCH_*.json` emission and schema checking
//! cannot lean on serde. This module implements exactly the subset needed:
//! a value tree whose objects preserve insertion order (stable output for
//! diffing), a compact and a pretty writer, and a strict recursive-descent
//! parser used by the bench-schema test to validate emitted files.

use std::fmt::Write as _;

/// A JSON value. Objects are ordered key/value vectors so rendered output is
/// byte-stable across runs.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number; rendered without a fraction when integral.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl Json {
    /// Build an object from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>, I: IntoIterator<Item = (K, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Build an array from values.
    pub fn array<I: IntoIterator<Item = Json>>(items: I) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Empty object (append with [`Json::push`]).
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Empty array.
    pub fn arr() -> Json {
        Json::Arr(Vec::new())
    }

    /// Append a key to an object (no-op with a debug assertion otherwise).
    pub fn push(&mut self, key: impl Into<String>, value: impl Into<Json>) {
        match self {
            Json::Obj(pairs) => pairs.push((key.into(), value.into())),
            _ => debug_assert!(false, "push on non-object"),
        }
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric accessor.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Non-negative integral accessor.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array accessor.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object accessor.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Render compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline(out, indent, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    write_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (strict: rejects trailing garbage).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_num(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() < 9.0e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
    ) {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance over one UTF-8 scalar (the input is a &str, so
                // boundaries are valid by construction).
                let tail = &bytes[*pos..];
                let ch_len = std::str::from_utf8(tail)
                    .ok()
                    .and_then(|s| s.chars().next())
                    .map(|c| c.len_utf8())
                    .ok_or_else(|| format!("invalid utf-8 at byte {}", *pos))?;
                out.push_str(std::str::from_utf8(&tail[..ch_len]).unwrap());
                *pos += ch_len;
            }
        }
    }
}
