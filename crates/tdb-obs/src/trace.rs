//! Flight recorder: a lock-free, fixed-capacity MPSC ring of compact binary
//! trace events.
//!
//! Counters and histograms (the [`Registry`](crate::Registry)) answer "how
//! much / how fast"; the flight recorder answers *"what happened, in what
//! order, on which thread"* — the causality view needed to debug liveness
//! failures across the store's concurrent actors (group commit, background
//! maintenance, snapshot pinning, cross-shard two-phase commits).
//!
//! Design:
//!
//! * Each event is one cache-line-aligned slot of 7 used u64 words (plus
//!   one padding word): a slot sequence word, a monotonic timestamp (ns
//!   since the recorder's epoch), a packed meta word (thread id « 32 |
//!   layer « 8 | kind), the transaction/xid, two payload words, and an XOR
//!   checksum. Exactly 64 bytes per slot, so recording an event touches
//!   exactly one line; the default 16 384-slot ring is 1 MiB — small
//!   enough to stay LLC-resident instead of streaming through DRAM (the
//!   hot-path cost difference is ~2× per event on TPC-B).
//! * Writers claim a slot with one `fetch_add` on the head cursor and
//!   publish with a per-slot seqlock: the sequence word is zeroed before the
//!   payload is written and set to `index + 1` (release) after. Readers
//!   validate the sequence word before and after reading the payload *and*
//!   check the XOR checksum, so a torn slot (reader racing a wrapping
//!   writer) is discarded rather than decoded.
//! * The ring wraps: old events are overwritten, never blocked on. Emission
//!   is wait-free (one fetch_add + eight single-line stores).
//! * Recording is gated like span timing: on unless `TDB_OBS=off`, with an
//!   explicit `TDB_TRACE=on|off` override and a runtime switch
//!   ([`set_trace_enabled`]). Capacity comes from `TDB_TRACE_CAP` (slots,
//!   rounded up to a power of two) at first use.
//!
//! [`TraceSnapshot`] decodes the live ring into per-thread and
//! per-transaction timelines with text and JSON exporters; diagnostic dumps
//! (see [`diag`](crate::diag)) embed it.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::json::Json;

// ---------------------------------------------------------------------------
// Event vocabulary
// ---------------------------------------------------------------------------

/// Which subsystem emitted an event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum TraceLayer {
    /// Chunk-store commit path (append, group commit, anchor rounds).
    Chunk = 0,
    /// Background maintenance (kicks, cleaning slices, checkpoints, frees).
    Maint = 1,
    /// Object store (lock manager, snapshot pins).
    Object = 2,
    /// Sharded store (cross-shard two-phase commits, witness ring, redo).
    Shard = 3,
    /// Application / test / bench marks.
    App = 4,
}

impl TraceLayer {
    fn from_u8(v: u8) -> Option<TraceLayer> {
        Some(match v {
            0 => TraceLayer::Chunk,
            1 => TraceLayer::Maint,
            2 => TraceLayer::Object,
            3 => TraceLayer::Shard,
            4 => TraceLayer::App,
            _ => return None,
        })
    }

    /// Short stable name (used by the exporters).
    pub fn name(self) -> &'static str {
        match self {
            TraceLayer::Chunk => "chunk",
            TraceLayer::Maint => "maint",
            TraceLayer::Object => "object",
            TraceLayer::Shard => "shard",
            TraceLayer::App => "app",
        }
    }
}

macro_rules! event_kinds {
    ($($(#[$doc:meta])* $variant:ident = $val:expr => $name:expr),* $(,)?) => {
        /// What happened. The payload words `a`/`b` are kind-specific and
        /// documented per variant.
        #[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
        #[repr(u8)]
        pub enum TraceKind {
            $( $(#[$doc])* $variant = $val, )*
        }

        impl TraceKind {
            fn from_u8(v: u8) -> Option<TraceKind> {
                match v {
                    $( $val => Some(TraceKind::$variant), )*
                    _ => None,
                }
            }

            /// Short stable name (used by the exporters).
            pub fn name(self) -> &'static str {
                match self {
                    $( TraceKind::$variant => $name, )*
                }
            }
        }
    };
}

event_kinds! {
    /// A commit batch started appending. `a` = op count, `b` = 1 if durable.
    CommitBegin = 1 => "commit.begin",
    /// A commit finished (durable or not). `a` = commit seq.
    CommitEnd = 2 => "commit.end",
    /// A durable committer became the group-commit leader. `a` = covered seq.
    GroupLeader = 3 => "group.leader",
    /// A durable committer parked behind an active leader. `a` = its
    /// commit seq. Uncontended commits lead immediately and never emit this.
    GroupFollower = 4 => "group.follower",
    /// The leader published group durability. `a` = covered seq, `b` = group size.
    GroupPublish = 5 => "group.publish",
    /// A follower woke with its seq durable. `a` = durable seq.
    GroupWake = 6 => "group.wake",
    /// An anchor record was written. `a` = anchor seq, `b` = covered commit seq.
    AnchorRound = 7 => "anchor.round",
    /// The one-way counter was incremented. `a` = new counter value.
    CounterInc = 8 => "counter.inc",
    /// A committer hit out-of-space and entered the stall path. `a` = free segments.
    StallEnter = 9 => "stall.enter",
    /// A stalled committer observed progress and woke. `a` = free epoch, `b` = free segments.
    StallWake = 10 => "stall.wake",
    /// A stalled committer retried its append. `a` = waits so far.
    StallRetry = 11 => "stall.retry",
    /// A stalled committer gave up (true out-of-space). `a` = waits, `b` = free segments.
    StallGiveUp = 12 => "stall.give_up",
    /// Maintenance was kicked. `a` = free segments at kick time.
    MaintKick = 13 => "maint.kick",
    /// A maintenance round started. `a` = round number.
    MaintRound = 14 => "maint.round",
    /// A maintenance round finished. `a` = round number, `b` = segments freed.
    MaintRoundEnd = 15 => "maint.round_end",
    /// One bounded relocation slice ran. `a` = chunks moved, `b` = segment.
    MaintSlice = 16 => "maint.slice",
    /// A checkpoint started. `a` = residual bytes.
    CheckpointBegin = 17 => "checkpoint.begin",
    /// A checkpoint finished. `a` = commit seq it anchored.
    CheckpointEnd = 18 => "checkpoint.end",
    /// A segment was freed. `a` = segment id, `b` = free segments after.
    SegFree = 19 => "seg.free",
    /// The watchdog wrote a diagnostic dump. `a` = stalled-op count.
    WatchdogDump = 20 => "watchdog.dump",
    /// A transaction began waiting for an object lock. `a` = object id hash, `b` = mode (0 shared, 1 exclusive).
    LockWait = 21 => "lock.wait",
    /// An object lock was granted after a wait. `a` = object id hash, `b` = mode.
    LockGrant = 22 => "lock.grant",
    /// A lock wait timed out on contention. `a` = object id hash.
    LockTimeout = 23 => "lock.timeout",
    /// A lock wait was broken as a deadlock victim. `a` = object id hash.
    LockDeadlock = 24 => "lock.deadlock",
    /// A read transaction pinned a snapshot. `a` = snapshot commit seq.
    SnapPin = 25 => "snap.pin",
    /// A read transaction released its snapshot. `a` = snapshot commit seq.
    SnapUnpin = 26 => "snap.unpin",
    /// Cross-shard phase A (coordination record; the commit point). `a` = shard count, `b` = coordinator shard.
    XPhaseA = 27 => "xshard.phase_a",
    /// Cross-shard phase B participant append. `a` = participant shard.
    XPhaseB = 28 => "xshard.phase_b",
    /// A witness-ring entry was appended. `a` = participant shard.
    XWitness = 29 => "xshard.witness",
    /// Cross-shard redo applied during recovery. `a` = participant shard.
    XRedo = 30 => "xshard.redo",
    /// Free-form mark for tests and benches.
    Mark = 31 => "mark",
    /// A maintenance round failed with a store error (round keeps
    /// retrying on later kicks). `a` = round number, `b` = free segments.
    MaintError = 32 => "maint.error",
}

// ---------------------------------------------------------------------------
// Gating
// ---------------------------------------------------------------------------

/// Tri-state: 0 = uninitialised, 1 = enabled, 2 = disabled.
static TRACE_ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether event recording is enabled. Defaults to the span-timing gate
/// ([`enabled`](crate::enabled), i.e. `TDB_OBS`); the `TDB_TRACE`
/// environment variable (`on`/`off`) overrides it, and
/// [`set_trace_enabled`] overrides both. Constant-false under the
/// `compile-out` feature.
#[inline]
pub fn trace_enabled() -> bool {
    if cfg!(feature = "compile-out") {
        return false;
    }
    match TRACE_ENABLED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = match std::env::var("TDB_TRACE").as_deref() {
                Ok("off") | Ok("0") | Ok("false") => false,
                Ok("on") | Ok("1") | Ok("true") => true,
                _ => crate::enabled(),
            };
            TRACE_ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// Turn event recording on or off at runtime (process-wide).
pub fn set_trace_enabled(on: bool) {
    TRACE_ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Thread ids
// ---------------------------------------------------------------------------

static NEXT_TID: AtomicU32 = AtomicU32::new(1);

thread_local! {
    static TRACE_TID: u32 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// This thread's small stable trace id (assigned on first use, starting
/// at 1). Distinct from the OS thread id; dense so dumps stay readable.
pub fn trace_tid() -> u32 {
    TRACE_TID.with(|t| *t)
}

// ---------------------------------------------------------------------------
// Ring
// ---------------------------------------------------------------------------

const WORDS: usize = 8; // 7 used + 1 pad: exactly one 64-byte cache line
const W_SEQ: usize = 0;
const W_TS: usize = 1;
const W_META: usize = 2;
const W_XID: usize = 3;
const W_A: usize = 4;
const W_B: usize = 5;
const W_CHECK: usize = 6;

/// One ring slot, aligned so an event never straddles cache lines: the
/// writer's eight stores and a reader's seven loads each touch one line.
#[repr(align(64))]
struct Slot([AtomicU64; WORDS]);

/// Salt so an all-zero slot never passes the checksum.
const CHECK_SALT: u64 = 0x7d0b_5eed_0b5e_7ace;

fn checksum(seq: u64, ts: u64, meta: u64, xid: u64, a: u64, b: u64) -> u64 {
    seq ^ ts.rotate_left(1)
        ^ meta.rotate_left(2)
        ^ xid.rotate_left(3)
        ^ a.rotate_left(4)
        ^ b.rotate_left(5)
        ^ CHECK_SALT
}

/// The flight-recorder ring. One global instance serves the whole process
/// (see [`recorder`]); tests can build private rings with
/// [`TraceRecorder::with_capacity`].
pub struct TraceRecorder {
    slots: Box<[Slot]>,
    mask: u64,
    head: AtomicU64,
    epoch: Instant,
    wall_base_unix_ns: u128,
}

impl TraceRecorder {
    /// Build a recorder with `capacity` slots (rounded up to a power of two,
    /// clamped to `[64, 2^22]`).
    pub fn with_capacity(capacity: usize) -> TraceRecorder {
        let cap = capacity.clamp(64, 1 << 22).next_power_of_two();
        let mut slots = Vec::with_capacity(cap);
        slots.resize_with(cap, || Slot(std::array::from_fn(|_| AtomicU64::new(0))));
        TraceRecorder {
            slots: slots.into_boxed_slice(),
            mask: (cap as u64) - 1,
            head: AtomicU64::new(0),
            epoch: Instant::now(),
            wall_base_unix_ns: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0),
        }
    }

    /// Ring capacity in slots.
    pub fn capacity(&self) -> usize {
        (self.mask + 1) as usize
    }

    /// Total events ever recorded (monotonic; exceeds [`Self::capacity`]
    /// once the ring has wrapped).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Current head cursor — pass to [`Self::snapshot_since`] to read only
    /// events emitted after this point.
    pub fn cursor(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Nanoseconds since this recorder's epoch (the monotonic event clock).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Record one event. Wait-free: one `fetch_add` plus eight relaxed
    /// stores; wraps over the oldest slot when the ring is full.
    #[inline]
    pub fn record(&self, layer: TraceLayer, kind: TraceKind, xid: u64, a: u64, b: u64) {
        let ts = self.now_ns();
        let tid = trace_tid();
        let meta = ((tid as u64) << 32) | ((layer as u8 as u64) << 8) | kind as u8 as u64;
        let idx = self.head.fetch_add(1, Ordering::Relaxed);
        let seq = idx + 1;
        let w = &self.slots[(idx & self.mask) as usize].0;
        // Per-slot seqlock: invalidate, write payload, publish. A reader
        // racing this writer sees seq 0 / a stale seq / a checksum mismatch
        // and skips the slot.
        w[W_SEQ].store(0, Ordering::Release);
        w[W_TS].store(ts, Ordering::Relaxed);
        w[W_META].store(meta, Ordering::Relaxed);
        w[W_XID].store(xid, Ordering::Relaxed);
        w[W_A].store(a, Ordering::Relaxed);
        w[W_B].store(b, Ordering::Relaxed);
        w[W_CHECK].store(checksum(seq, ts, meta, xid, a, b), Ordering::Relaxed);
        w[W_SEQ].store(seq, Ordering::Release);
    }

    /// Decode every currently-readable event (oldest surviving first).
    pub fn snapshot(&self) -> TraceSnapshot {
        self.snapshot_since(0)
    }

    /// Decode events with ring index ≥ `cursor` (see [`Self::cursor`]).
    /// Slots that are mid-write or already overwritten are skipped, so a
    /// snapshot taken while writers are live is internally consistent:
    /// every decoded event is exactly as its writer published it.
    pub fn snapshot_since(&self, cursor: u64) -> TraceSnapshot {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.mask + 1;
        let start = head.saturating_sub(cap).max(cursor);
        let mut events = Vec::with_capacity((head - start).min(cap) as usize);
        for idx in start..head {
            let w = &self.slots[(idx & self.mask) as usize].0;
            let expect = idx + 1;
            if w[W_SEQ].load(Ordering::Acquire) != expect {
                continue; // overwritten by a lapping writer, or mid-write
            }
            let ts = w[W_TS].load(Ordering::Relaxed);
            let meta = w[W_META].load(Ordering::Relaxed);
            let xid = w[W_XID].load(Ordering::Relaxed);
            let a = w[W_A].load(Ordering::Relaxed);
            let b = w[W_B].load(Ordering::Relaxed);
            let check = w[W_CHECK].load(Ordering::Relaxed);
            if check != checksum(expect, ts, meta, xid, a, b)
                || w[W_SEQ].load(Ordering::Acquire) != expect
            {
                continue; // torn: a writer wrapped onto this slot mid-read
            }
            let kind = match TraceKind::from_u8((meta & 0xff) as u8) {
                Some(k) => k,
                None => continue,
            };
            let layer = match TraceLayer::from_u8(((meta >> 8) & 0xff) as u8) {
                Some(l) => l,
                None => continue,
            };
            events.push(TraceEvent {
                seq: idx,
                ts_ns: ts,
                tid: (meta >> 32) as u32,
                layer,
                kind,
                xid,
                a,
                b,
            });
        }
        events.sort_by_key(|e| (e.ts_ns, e.seq));
        TraceSnapshot {
            events,
            capacity: cap,
            recorded: head,
            wall_base_unix_ns: self.wall_base_unix_ns,
        }
    }
}

/// The process-global flight recorder. Capacity comes from `TDB_TRACE_CAP`
/// (slots; default 16 384 = 1 MiB — small enough to stay cache-resident
/// on the hot path; raise it for longer history windows) the first time
/// it is touched.
pub fn recorder() -> &'static TraceRecorder {
    static GLOBAL: OnceLock<TraceRecorder> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let cap = std::env::var("TDB_TRACE_CAP")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(16_384usize);
        TraceRecorder::with_capacity(cap)
    })
}

/// Record one event into the global recorder, if recording is enabled.
/// The single call sites across the workspace go through this; it is a
/// no-op costing one relaxed load when tracing is off.
#[inline]
pub fn emit(layer: TraceLayer, kind: TraceKind, xid: u64, a: u64, b: u64) {
    if trace_enabled() {
        recorder().record(layer, kind, xid, a, b);
    }
}

// ---------------------------------------------------------------------------
// Decoded events / snapshot
// ---------------------------------------------------------------------------

/// One decoded trace event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global emission index (monotonic across the whole recording).
    pub seq: u64,
    /// Nanoseconds since the recorder's epoch.
    pub ts_ns: u64,
    /// Emitting thread's trace id (see [`trace_tid`]).
    pub tid: u32,
    /// Emitting subsystem.
    pub layer: TraceLayer,
    /// What happened.
    pub kind: TraceKind,
    /// Transaction / cross-shard sequence id (0 when not applicable).
    pub xid: u64,
    /// Kind-specific payload.
    pub a: u64,
    /// Kind-specific payload.
    pub b: u64,
}

impl TraceEvent {
    fn line(&self) -> String {
        let mut s = format!(
            "{:>14.6}ms t{:<3} {:<6} {:<16}",
            self.ts_ns as f64 / 1e6,
            self.tid,
            self.layer.name(),
            self.kind.name(),
        );
        if self.xid != 0 {
            s.push_str(&format!(" xid={}", self.xid));
        }
        s.push_str(&format!(" a={} b={}", self.a, self.b));
        s
    }

    fn to_json(self) -> Json {
        Json::object([
            ("seq", Json::from(self.seq)),
            ("ts_ns", Json::from(self.ts_ns)),
            ("tid", Json::from(self.tid)),
            ("layer", Json::from(self.layer.name())),
            ("kind", Json::from(self.kind.name())),
            ("xid", Json::from(self.xid)),
            ("a", Json::from(self.a)),
            ("b", Json::from(self.b)),
        ])
    }
}

/// A decoded, time-ordered view of the ring with timeline reconstruction
/// and exporters.
#[derive(Clone, Debug, Default)]
pub struct TraceSnapshot {
    /// Events, ordered by timestamp (ties by emission index).
    pub events: Vec<TraceEvent>,
    /// Ring capacity at snapshot time.
    pub capacity: u64,
    /// Total events ever recorded (events `recorded - events.len()` were
    /// overwritten or torn).
    pub recorded: u64,
    /// Unix wall-clock nanoseconds corresponding to trace time 0 (best
    /// effort; 0 if the system clock was unavailable).
    pub wall_base_unix_ns: u128,
}

impl TraceSnapshot {
    /// Per-thread timelines (trace tid → its events, time-ordered).
    pub fn per_thread(&self) -> BTreeMap<u32, Vec<&TraceEvent>> {
        let mut map: BTreeMap<u32, Vec<&TraceEvent>> = BTreeMap::new();
        for e in &self.events {
            map.entry(e.tid).or_default().push(e);
        }
        map
    }

    /// Per-transaction timelines (xid → its events, time-ordered; events
    /// with xid 0 are omitted).
    pub fn per_txn(&self) -> BTreeMap<u64, Vec<&TraceEvent>> {
        let mut map: BTreeMap<u64, Vec<&TraceEvent>> = BTreeMap::new();
        for e in &self.events {
            if e.xid != 0 {
                map.entry(e.xid).or_default().push(e);
            }
        }
        map
    }

    /// The most recent event on each thread — the "where is everybody"
    /// table a stall dump leads with.
    pub fn last_event_per_thread(&self) -> BTreeMap<u32, &TraceEvent> {
        let mut map: BTreeMap<u32, &TraceEvent> = BTreeMap::new();
        for e in &self.events {
            map.insert(e.tid, e); // events are time-ordered
        }
        map
    }

    /// Human-readable timeline (one line per event, then the per-thread
    /// last-event table).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace: {} events decoded ({} recorded, capacity {})",
            self.events.len(),
            self.recorded,
            self.capacity
        );
        for e in &self.events {
            let _ = writeln!(out, "  {}", e.line());
        }
        let last = self.last_event_per_thread();
        if !last.is_empty() {
            out.push_str("last event per thread:\n");
            for (tid, e) in last {
                let _ = writeln!(out, "  t{tid:<3} {}", e.line());
            }
        }
        out
    }

    /// JSON export: `{capacity, recorded, decoded, events: [...],
    /// last_event_per_thread: {tid: event}}`.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("capacity", Json::from(self.capacity)),
            ("recorded", Json::from(self.recorded)),
            ("decoded", Json::from(self.events.len())),
            (
                "wall_base_unix_ns",
                Json::from(self.wall_base_unix_ns as f64),
            ),
            (
                "events",
                Json::array(self.events.iter().map(|e| e.to_json())),
            ),
            (
                "last_event_per_thread",
                Json::Obj(
                    self.last_event_per_thread()
                        .into_iter()
                        .map(|(tid, e)| (format!("t{tid}"), e.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_roundtrip_and_wraparound() {
        let r = TraceRecorder::with_capacity(64);
        for i in 0..200u64 {
            r.record(TraceLayer::App, TraceKind::Mark, i, i * 2, i * 3);
        }
        let snap = r.snapshot();
        // Exactly the last `capacity` events survive, in order.
        assert_eq!(snap.events.len(), 64);
        assert_eq!(snap.recorded, 200);
        for (j, e) in snap.events.iter().enumerate() {
            let i = 136 + j as u64;
            assert_eq!(e.seq, i);
            assert_eq!(e.xid, i);
            assert_eq!(e.a, i * 2);
            assert_eq!(e.b, i * 3);
            assert_eq!(e.kind, TraceKind::Mark);
            assert_eq!(e.layer, TraceLayer::App);
        }
    }

    #[test]
    fn snapshot_since_cursor() {
        let r = TraceRecorder::with_capacity(64);
        r.record(TraceLayer::App, TraceKind::Mark, 1, 0, 0);
        let cur = r.cursor();
        r.record(TraceLayer::App, TraceKind::Mark, 2, 0, 0);
        let snap = r.snapshot_since(cur);
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].xid, 2);
    }

    #[test]
    fn timelines() {
        let r = TraceRecorder::with_capacity(64);
        r.record(TraceLayer::Chunk, TraceKind::CommitBegin, 7, 1, 1);
        r.record(TraceLayer::Chunk, TraceKind::CommitEnd, 7, 9, 0);
        let snap = r.snapshot();
        let txns = snap.per_txn();
        assert_eq!(txns[&7].len(), 2);
        let tid = snap.events[0].tid;
        assert_eq!(
            snap.last_event_per_thread()[&tid].kind,
            TraceKind::CommitEnd
        );
        assert!(snap.to_text().contains("commit.end"));
        let json = snap.to_json().render();
        let parsed = Json::parse(&json).unwrap();
        assert_eq!(parsed.get("decoded").and_then(|d| d.as_u64()), Some(2));
    }
}
