//! Stall watchdog: a lock-free table of in-flight operations plus the
//! threshold/cooldown policy for emitting diagnostic dumps.
//!
//! Long-running operations on liveness-critical paths (durable commits, the
//! out-of-space stall loop, cross-shard commits) register themselves with
//! [`op_begin`]; the guard unregisters on drop. A poller — in TDB the
//! chunk-store maintenance thread, which is awake on its own schedule anyway
//! — calls [`stalled_ops`] periodically and, when an operation has been in
//! flight longer than the configured threshold, assembles a diagnostic dump
//! (see [`diag`](crate::diag)).
//!
//! The threshold comes from `TDB_WATCHDOG_MS` (milliseconds; `0` disables;
//! default 60 000) and can be overridden at runtime with
//! [`set_threshold_ms`]. Dumps are rate-limited by [`claim_dump`]: at most
//! one per cooldown window and a bounded count per process, so a persistent
//! stall cannot flood `TDB_DIAG_DIR`.

use std::sync::atomic::{AtomicI64, AtomicU32, AtomicU64, Ordering};

use crate::trace::{recorder, trace_tid};

// ---------------------------------------------------------------------------
// Operation kinds
// ---------------------------------------------------------------------------

/// What kind of operation is in flight.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum OpKind {
    /// A chunk-store commit (append through group durability).
    Commit = 1,
    /// A committer stalled on the out-of-space backpressure path.
    Stall = 2,
    /// A cross-shard two-phase commit.
    CrossShardCommit = 3,
    /// A checkpoint requested through the public API.
    Checkpoint = 4,
    /// Anything else worth watching (tests, benches).
    Other = 5,
}

impl OpKind {
    fn from_u8(v: u8) -> Option<OpKind> {
        Some(match v {
            1 => OpKind::Commit,
            2 => OpKind::Stall,
            3 => OpKind::CrossShardCommit,
            4 => OpKind::Checkpoint,
            5 => OpKind::Other,
            _ => return None,
        })
    }

    /// Short stable name (used by dumps).
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Commit => "commit",
            OpKind::Stall => "stall",
            OpKind::CrossShardCommit => "cross_shard_commit",
            OpKind::Checkpoint => "checkpoint",
            OpKind::Other => "other",
        }
    }
}

// ---------------------------------------------------------------------------
// In-flight op table
// ---------------------------------------------------------------------------

const SLOTS: usize = 128;

/// Slot layout: `state` packs `tid << 32 | kind` (0 = free); `start_ns` is
/// trace time; `xid` the transaction id.
struct Slot {
    state: AtomicU64,
    start_ns: AtomicU64,
    xid: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)]
const EMPTY_SLOT: Slot = Slot {
    state: AtomicU64::new(0),
    start_ns: AtomicU64::new(0),
    xid: AtomicU64::new(0),
};

static OPS: [Slot; SLOTS] = [EMPTY_SLOT; SLOTS];

/// Rotating hint so consecutive claims spread across the table instead of
/// all scanning from slot 0.
static CLAIM_HINT: AtomicU32 = AtomicU32::new(0);

/// RAII registration of an in-flight operation; unregisters on drop.
/// A `None`-slot guard (table full, or watchdog disabled) is a no-op.
pub struct OpGuard {
    slot: Option<usize>,
}

impl Drop for OpGuard {
    fn drop(&mut self) {
        if let Some(i) = self.slot {
            OPS[i].state.store(0, Ordering::Release);
        }
    }
}

/// Register an in-flight operation on this thread. Wait-free except for a
/// bounded slot scan; returns a no-op guard when the table is full or the
/// watchdog is disabled.
pub fn op_begin(kind: OpKind, xid: u64) -> OpGuard {
    if threshold_ms() == 0 {
        return OpGuard { slot: None };
    }
    op_begin_at(kind, xid, recorder().now_ns())
}

/// [`op_begin`] with an explicit start time (trace clock). Exists so tests
/// can inject an operation that is already "old".
pub fn op_begin_at(kind: OpKind, xid: u64, start_ns: u64) -> OpGuard {
    let tid = trace_tid();
    let state = ((tid as u64) << 32) | kind as u8 as u64;
    let hint = CLAIM_HINT.fetch_add(1, Ordering::Relaxed) as usize;
    for probe in 0..SLOTS {
        let i = (hint + probe) % SLOTS;
        if OPS[i].state.load(Ordering::Relaxed) != 0 {
            continue;
        }
        // Claim the slot, then fill it. A scanner racing the fill may see a
        // zero start_ns; it treats 0 as "just started" (age 0), never a
        // false stall.
        if OPS[i]
            .state
            .compare_exchange(0, u64::MAX, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            OPS[i].start_ns.store(start_ns, Ordering::Relaxed);
            OPS[i].xid.store(xid, Ordering::Relaxed);
            OPS[i].state.store(state, Ordering::Release);
            return OpGuard { slot: Some(i) };
        }
    }
    OpGuard { slot: None }
}

/// A currently in-flight operation that exceeded the watchdog threshold.
#[derive(Clone, Copy, Debug)]
pub struct StalledOp {
    /// Trace thread id running the operation.
    pub tid: u32,
    /// What it is.
    pub kind: OpKind,
    /// Transaction id (0 if not applicable).
    pub xid: u64,
    /// How long it has been in flight, nanoseconds.
    pub age_ns: u64,
}

/// Scan the in-flight table for operations older than `threshold_ns`
/// (against the trace clock "now").
pub fn stalled_ops(threshold_ns: u64) -> Vec<StalledOp> {
    stalled_ops_at(threshold_ns, recorder().now_ns())
}

/// [`stalled_ops`] against an explicit trace-clock reading (tests).
pub fn stalled_ops_at(threshold_ns: u64, now: u64) -> Vec<StalledOp> {
    let mut out = Vec::new();
    for slot in &OPS {
        let state = slot.state.load(Ordering::Acquire);
        if state == 0 || state == u64::MAX {
            continue;
        }
        let start = slot.start_ns.load(Ordering::Relaxed);
        let age = now.saturating_sub(start);
        if start != 0 && age >= threshold_ns {
            let kind = match OpKind::from_u8((state & 0xff) as u8) {
                Some(k) => k,
                None => continue,
            };
            out.push(StalledOp {
                tid: (state >> 32) as u32,
                kind,
                xid: slot.xid.load(Ordering::Relaxed),
                age_ns: age,
            });
        }
    }
    out.sort_by_key(|s| std::cmp::Reverse(s.age_ns));
    out
}

// ---------------------------------------------------------------------------
// Threshold & dump policy
// ---------------------------------------------------------------------------

/// -1 = uninitialised; otherwise milliseconds (0 = disabled).
static THRESHOLD_MS: AtomicI64 = AtomicI64::new(-1);

const DEFAULT_THRESHOLD_MS: u64 = 60_000;

/// The stall threshold in milliseconds (0 = watchdog disabled). Initialised
/// lazily from `TDB_WATCHDOG_MS`; defaults to 60 000 so genuine hangs in CI
/// produce a dump without false positives from slow-but-alive runs.
pub fn threshold_ms() -> u64 {
    match THRESHOLD_MS.load(Ordering::Relaxed) {
        -1 => {
            let ms = std::env::var("TDB_WATCHDOG_MS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(DEFAULT_THRESHOLD_MS);
            THRESHOLD_MS.store(ms as i64, Ordering::Relaxed);
            ms
        }
        ms => ms as u64,
    }
}

/// Override the stall threshold at runtime (process-wide; 0 disables).
pub fn set_threshold_ms(ms: u64) {
    THRESHOLD_MS.store(ms as i64, Ordering::Relaxed);
}

/// Minimum spacing between automatic dumps.
const DUMP_COOLDOWN_NS: u64 = 5_000_000_000;
/// Hard per-process cap on automatic dumps.
const MAX_DUMPS: u64 = 16;

static LAST_DUMP_NS: AtomicU64 = AtomicU64::new(0);
static DUMPS_WRITTEN: AtomicU64 = AtomicU64::new(0);

/// Try to claim the right to write one automatic dump now. Enforces the
/// cooldown and the per-process cap; exactly one racing poller wins.
pub fn claim_dump() -> bool {
    if DUMPS_WRITTEN.load(Ordering::Relaxed) >= MAX_DUMPS {
        return false;
    }
    let now = recorder().now_ns().max(1);
    let last = LAST_DUMP_NS.load(Ordering::Relaxed);
    if last != 0 && now.saturating_sub(last) < DUMP_COOLDOWN_NS {
        return false;
    }
    if LAST_DUMP_NS
        .compare_exchange(last, now, Ordering::AcqRel, Ordering::Relaxed)
        .is_ok()
    {
        DUMPS_WRITTEN.fetch_add(1, Ordering::Relaxed);
        true
    } else {
        false
    }
}

/// Automatic dumps written so far this process.
pub fn dumps_written() -> u64 {
    DUMPS_WRITTEN.load(Ordering::Relaxed)
}

/// Reset the dump rate limiter (tests only).
pub fn reset_dump_limiter() {
    LAST_DUMP_NS.store(0, Ordering::Relaxed);
    DUMPS_WRITTEN.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_registration_and_stall_detection() {
        set_threshold_ms(1_000);
        // The trace clock may be only milliseconds old, so probe with an
        // explicit "now" far in the future instead of a start in the past.
        let start = recorder().now_ns().max(1);
        let now = start + 5_000_000_000;
        let _young = op_begin_at(OpKind::Commit, 42, now);
        let _old = op_begin_at(OpKind::Stall, 7, start);
        let stalled = stalled_ops_at(1_000_000_000, now);
        // Tests share the global table, so filter rather than count.
        let hit = stalled
            .iter()
            .find(|s| s.kind == OpKind::Stall && s.xid == 7)
            .expect("injected old op must be reported");
        assert!(hit.age_ns >= 4_000_000_000);
        assert!(!stalled
            .iter()
            .any(|s| s.kind == OpKind::Commit && s.xid == 42));
    }

    #[test]
    fn guard_drop_frees_slot() {
        set_threshold_ms(1_000);
        let start = recorder().now_ns().max(1);
        let now = start + 10_000_000_000;
        {
            let _g = op_begin_at(OpKind::Other, 9, start);
            assert!(stalled_ops_at(1_000_000_000, now)
                .iter()
                .any(|s| s.kind == OpKind::Other && s.xid == 9));
        }
        assert!(!stalled_ops_at(1_000_000_000, now)
            .iter()
            .any(|s| s.kind == OpKind::Other && s.xid == 9));
    }

    #[test]
    fn dump_claim_rate_limits() {
        reset_dump_limiter();
        assert!(claim_dump());
        assert!(!claim_dump()); // within cooldown
        reset_dump_limiter();
        assert!(claim_dump());
    }
}
