//! Diagnostic dumps: assembling and writing "what is the system doing right
//! now" documents.
//!
//! A dump is a JSON object combining the flight-recorder snapshot (recent
//! trace window + per-thread last-event table), the watchdog's stalled-op
//! list, and one state section per registered *provider*. Providers are how
//! lower layers contribute store-specific state without this crate knowing
//! about them: each chunk store (and the sharded coordinator) registers a
//! closure that reports its anchor/counter/free-segment state and registry
//! snapshot; dead providers (dropped stores) are pruned automatically via
//! `Weak`.
//!
//! Dumps are written to `TDB_DIAG_DIR` (or a runtime override); when no
//! directory is configured, [`write_dump`] returns `Ok(None)` and callers
//! fall back to logging the dump's reason to stderr. The schema is
//! `tdb-diag-v1`; `tdb-doctor` pretty-prints it.

use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock, Weak};

use crate::json::Json;
use crate::trace::{recorder, trace_enabled};
use crate::watchdog::{self, StalledOp};

/// Schema tag written into every dump.
pub const DIAG_SCHEMA: &str = "tdb-diag-v1";

/// A state-reporting closure. Must not block: providers use `try_lock`
/// internally and report `"locked": true` when a lock is held, because a
/// dump is most often taken precisely when something is wedged.
pub type DiagFn = dyn Fn() -> Json + Send + Sync;

struct Provider {
    name: String,
    f: Weak<DiagFn>,
}

fn providers() -> &'static RwLock<Vec<Provider>> {
    static PROVIDERS: OnceLock<RwLock<Vec<Provider>>> = OnceLock::new();
    PROVIDERS.get_or_init(|| RwLock::new(Vec::new()))
}

/// Register a state provider under `name`. The registry holds only a
/// `Weak`; the provider disappears when the caller drops its `Arc`.
/// Duplicate names are allowed (disambiguated by registration order in the
/// dump).
pub fn register_provider(name: impl Into<String>, f: &Arc<DiagFn>) {
    let mut ps = providers().write().unwrap();
    ps.retain(|p| p.f.strong_count() > 0);
    ps.push(Provider {
        name: name.into(),
        f: Arc::downgrade(f),
    });
}

/// Snapshot every live provider's state as `(name, state)` pairs.
pub fn provider_states() -> Vec<(String, Json)> {
    let ps = providers().read().unwrap();
    ps.iter()
        .filter_map(|p| p.f.upgrade().map(|f| (p.name.clone(), f())))
        .collect()
}

/// Assemble a full diagnostic dump. `reason` is free text ("watchdog:
/// commit stalled 12034ms on t3", "api request", ...).
pub fn collect(reason: &str) -> Json {
    collect_with(reason, &watchdog::stalled_ops(watchdog_threshold_ns()))
}

fn watchdog_threshold_ns() -> u64 {
    watchdog::threshold_ms().saturating_mul(1_000_000)
}

/// [`collect`] with an explicit stalled-op list (the watchdog poller has
/// already scanned; avoid scanning twice).
pub fn collect_with(reason: &str, stalled: &[StalledOp]) -> Json {
    let trace = recorder().snapshot();
    let mut dump = Json::obj();
    dump.push("schema", DIAG_SCHEMA);
    dump.push("reason", reason);
    dump.push(
        "unix_ms",
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as f64)
            .unwrap_or(0.0),
    );
    dump.push("pid", std::process::id() as u64);
    dump.push("trace_enabled", trace_enabled());
    dump.push("watchdog_threshold_ms", watchdog::threshold_ms());
    dump.push(
        "stalled_ops",
        Json::array(stalled.iter().map(|s| {
            Json::object([
                ("tid", Json::from(s.tid)),
                ("kind", Json::from(s.kind.name())),
                ("xid", Json::from(s.xid)),
                ("age_ms", Json::from(s.age_ns as f64 / 1e6)),
            ])
        })),
    );
    dump.push(
        "providers",
        Json::Obj(provider_states().into_iter().collect()),
    );
    dump.push("trace", trace.to_json());
    dump
}

// ---------------------------------------------------------------------------
// Dump directory / writing
// ---------------------------------------------------------------------------

static DIAG_DIR: OnceLock<Mutex<Option<PathBuf>>> = OnceLock::new();

fn diag_dir_cell() -> &'static Mutex<Option<PathBuf>> {
    DIAG_DIR.get_or_init(|| {
        Mutex::new(
            std::env::var("TDB_DIAG_DIR")
                .ok()
                .filter(|s| !s.is_empty())
                .map(PathBuf::from),
        )
    })
}

/// Where dumps are written (`TDB_DIAG_DIR`, or the [`set_diag_dir`]
/// override). `None` means dumps are not persisted.
pub fn diag_dir() -> Option<PathBuf> {
    diag_dir_cell().lock().unwrap().clone()
}

/// Override the dump directory at runtime (process-wide; `None` disables
/// persistence).
pub fn set_diag_dir(dir: Option<PathBuf>) {
    *diag_dir_cell().lock().unwrap() = dir;
}

static DUMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Write `dump` as pretty JSON to the diag directory, creating it if
/// needed. Returns the path, or `Ok(None)` when no directory is
/// configured. `slug` goes into the filename (sanitised).
pub fn write_dump(dump: &Json, slug: &str) -> std::io::Result<Option<PathBuf>> {
    let Some(dir) = diag_dir() else {
        return Ok(None);
    };
    std::fs::create_dir_all(&dir)?;
    let unix_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0);
    let slug: String = slug
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .take(40)
        .collect();
    let seq = DUMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let path = dir.join(format!(
        "tdb-diag-{unix_ms}-p{}-{seq}-{slug}.json",
        std::process::id()
    ));
    let mut f = std::fs::File::create(&path)?;
    f.write_all(dump.pretty().as_bytes())?;
    f.sync_all()?;
    Ok(Some(path))
}

/// Convenience: assemble and persist a dump in one call, logging to stderr
/// either way (dumps exist to be seen). Returns the written path, if any.
pub fn emit_dump(reason: &str, slug: &str) -> Option<PathBuf> {
    let dump = collect(reason);
    match write_dump(&dump, slug) {
        Ok(Some(path)) => {
            eprintln!("tdb-diag: {reason} -> {}", path.display());
            Some(path)
        }
        Ok(None) => {
            eprintln!("tdb-diag: {reason} (set TDB_DIAG_DIR to persist dumps)");
            None
        }
        Err(e) => {
            eprintln!("tdb-diag: {reason} (failed to write dump: {e})");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn providers_and_dump_shape() {
        let f: Arc<DiagFn> = Arc::new(|| {
            Json::object([
                ("free_segments", Json::from(3u64)),
                ("locked", Json::from(false)),
            ])
        });
        register_provider("test-store", &f);
        let dump = collect("unit test");
        assert_eq!(
            dump.get("schema").and_then(|s| s.as_str()),
            Some(DIAG_SCHEMA)
        );
        assert_eq!(
            dump.get("reason").and_then(|s| s.as_str()),
            Some("unit test")
        );
        let provs = dump.get("providers").unwrap();
        assert!(provs.get("test-store").is_some());
        // Round-trips through the parser.
        let parsed = Json::parse(&dump.pretty()).unwrap();
        assert!(parsed.get("trace").is_some());
        // Dropping the Arc prunes the provider from later dumps.
        drop(f);
        let dump2 = collect("after drop");
        assert!(dump2.get("providers").unwrap().get("test-store").is_none());
    }
}
