//! `tdb-obs` — zero-dependency observability for the TDB workspace.
//!
//! The container building this workspace is fully offline, so no external
//! `tracing`/`metrics` crates are available; this crate implements the small
//! subset TDB needs:
//!
//! * a [`Registry`] of named [`Counter`]s, [`Gauge`]s, and log-bucketed
//!   [`Histogram`]s with snapshot / delta / merge and percentile extraction,
//! * span timers ([`timed`], [`Histogram::span`], [`Stopwatch`]) cheap enough
//!   for hot paths — one relaxed atomic add plus a monotonic clock read, no
//!   allocation on the fast path,
//! * exporters to human-readable text and stable JSON (see [`Json`]).
//!
//! Handles are `Arc`-backed: layers resolve them once (at store open) and
//! record through the clone, so the hot path never touches the registry's
//! name map. Timing can be disabled at runtime ([`set_enabled`], or the
//! `TDB_OBS=off` environment variable) or compiled out entirely with the
//! `compile-out` cargo feature. Counters and gauges stay live in both cases
//! because layer semantics (chunk-store `StatsSnapshot`, object-store
//! `CacheStats`) are built on them; only clock reads and histogram recording
//! are elided.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
mod hist;
mod json;
pub mod trace;
pub mod watchdog;

pub use hist::{bucket_bounds, bucket_index, HistSnapshot, Histogram, SpanGuard, BUCKETS};
pub use json::Json;
pub use trace::{
    emit, set_trace_enabled, trace_enabled, trace_tid, TraceEvent, TraceKind, TraceLayer,
    TraceRecorder, TraceSnapshot,
};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Enable flag
// ---------------------------------------------------------------------------

/// Tri-state: 0 = uninitialised, 1 = enabled, 2 = disabled.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether span timing is currently enabled. Initialised lazily from the
/// `TDB_OBS` environment variable (`off` or `0` disables); constant-false
/// when the `compile-out` feature is active.
pub fn enabled() -> bool {
    if cfg!(feature = "compile-out") {
        return false;
    }
    match ENABLED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = !matches!(
                std::env::var("TDB_OBS").as_deref(),
                Ok("off") | Ok("0") | Ok("false")
            );
            ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// Turn span timing on or off at runtime (process-wide). Has no effect under
/// the `compile-out` feature.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Hot-path phase-sampling period: 0 = uninitialised.
static SAMPLE_EVERY: AtomicU64 = AtomicU64::new(0);

const DEFAULT_SAMPLE_EVERY: u64 = 16;

/// How often hot-path phase attribution runs: every Nth commit is timed
/// phase-by-phase (the detailed laps cost several clock reads per record, too
/// much for every commit). Initialised lazily from `TDB_OBS_SAMPLE`; defaults
/// to 16. A period of 1 times every commit.
pub fn phase_sample_every() -> u64 {
    match SAMPLE_EVERY.load(Ordering::Relaxed) {
        0 => {
            let n = std::env::var("TDB_OBS_SAMPLE")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n >= 1)
                .unwrap_or(DEFAULT_SAMPLE_EVERY);
            SAMPLE_EVERY.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

/// Override the phase-sampling period at runtime (process-wide; clamped to
/// ≥ 1). Tests that reconcile phase sums against totals set this to 1.
pub fn set_phase_sample_every(n: u64) {
    SAMPLE_EVERY.store(n.max(1), Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Counter / Gauge handles
// ---------------------------------------------------------------------------

/// Monotonic counter handle. Clones share the same cell.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Create a detached counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Point-in-time gauge handle (signed; e.g. bytes currently cached).
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Create a detached gauge.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Set the current value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjust the current value by `delta`.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Stopwatch
// ---------------------------------------------------------------------------

/// Multi-lap phase timer for instrumenting a sequence of phases inline.
///
/// When timing is disabled the stopwatch never reads the clock and every lap
/// returns 0; callers should gate their `record` calls on [`Stopwatch::running`]
/// so disabled runs do not pollute histograms with zero samples.
pub struct Stopwatch(Option<Instant>);

impl Stopwatch {
    /// Start a stopwatch (inert when timing is disabled).
    pub fn start() -> Self {
        if enabled() {
            Stopwatch(Some(Instant::now()))
        } else {
            Stopwatch(None)
        }
    }

    /// A stopwatch that never ran — all laps return 0 and record nothing.
    /// For call sites that decide per-operation (e.g. phase sampling)
    /// whether to pay for clock reads.
    pub fn inert() -> Self {
        Stopwatch(None)
    }

    /// Whether this stopwatch is live (timing was enabled at start).
    pub fn running(&self) -> bool {
        self.0.is_some()
    }

    /// Nanoseconds since start (or the previous lap), resetting the lap base.
    pub fn lap(&mut self) -> u64 {
        match &mut self.0 {
            Some(base) => {
                let now = Instant::now();
                let ns = now.duration_since(*base).as_nanos() as u64;
                *base = now;
                ns
            }
            None => 0,
        }
    }

    /// Record the current lap into `hist` (no-op when inert).
    pub fn lap_into(&mut self, hist: &Histogram) {
        if self.running() {
            let ns = self.lap();
            hist.record(ns);
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Maps {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// A registry of named instruments. Stores own one registry each (created by
/// the chunk store and shared downward through the layers), so concurrent
/// stores in one process never contaminate each other's telemetry.
#[derive(Default)]
pub struct Registry {
    maps: RwLock<Maps>,
}

impl Registry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or register the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.maps.read().unwrap().counters.get(name) {
            return c.clone();
        }
        self.maps
            .write()
            .unwrap()
            .counters
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get or register the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = self.maps.read().unwrap().gauges.get(name) {
            return g.clone();
        }
        self.maps
            .write()
            .unwrap()
            .gauges
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get or register the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        if let Some(h) = self.maps.read().unwrap().histograms.get(name) {
            return h.clone();
        }
        self.maps
            .write()
            .unwrap()
            .histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Time `f` into the histogram `name`. Convenience for cold paths; hot
    /// paths should resolve the [`Histogram`] handle once and reuse it.
    pub fn timed<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        self.histogram(name).time(f)
    }

    /// RAII span recording into the histogram `name` on drop.
    pub fn span(&self, name: &str) -> SpanGuard {
        self.histogram(name).span()
    }

    /// Register an *existing* counter handle under `name` (shared cell, not
    /// a copy). This is how a merged view adopts another registry's
    /// instruments — e.g. a sharded store re-exporting each shard's
    /// `chunk.*` counters as `shard{k}.chunk.*`. Replaces any instrument
    /// previously at `name`.
    pub fn adopt_counter(&self, name: &str, c: &Counter) {
        self.maps
            .write()
            .unwrap()
            .counters
            .insert(name.to_string(), c.clone());
    }

    /// Register an existing gauge handle under `name`. See [`Registry::adopt_counter`].
    pub fn adopt_gauge(&self, name: &str, g: &Gauge) {
        self.maps
            .write()
            .unwrap()
            .gauges
            .insert(name.to_string(), g.clone());
    }

    /// Register an existing histogram handle under `name`. See [`Registry::adopt_counter`].
    pub fn adopt_histogram(&self, name: &str, h: &Histogram) {
        self.maps
            .write()
            .unwrap()
            .histograms
            .insert(name.to_string(), h.clone());
    }

    /// Adopt every instrument of `other` under `prefix` + its name.
    /// Handles are shared, so the adopted names read the same atomics as
    /// the originals — snapshots through either registry reconcile.
    pub fn adopt_all_prefixed(&self, other: &Registry, prefix: &str) {
        let theirs = other.maps.read().unwrap();
        let mut ours = self.maps.write().unwrap();
        for (k, c) in &theirs.counters {
            ours.counters.insert(format!("{prefix}{k}"), c.clone());
        }
        for (k, g) in &theirs.gauges {
            ours.gauges.insert(format!("{prefix}{k}"), g.clone());
        }
        for (k, h) in &theirs.histograms {
            ours.histograms.insert(format!("{prefix}{k}"), h.clone());
        }
    }

    /// Point-in-time snapshot of every registered instrument.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let maps = self.maps.read().unwrap();
        RegistrySnapshot {
            counters: maps
                .counters
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: maps
                .gauges
                .iter()
                .map(|(k, g)| (k.clone(), g.get()))
                .collect(),
            histograms: maps
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// The process-global registry. Library layers deliberately do not use this
/// (each store owns its own registry); it exists for ad-hoc instrumentation
/// in binaries and tests via [`timed`] / [`span`].
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Time `f` into the global registry's histogram `name`.
pub fn timed<T>(name: &str, f: impl FnOnce() -> T) -> T {
    global().timed(name, f)
}

/// RAII span against the global registry.
pub fn span(name: &str) -> SpanGuard {
    global().span(name)
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

/// Immutable snapshot of a registry with delta/merge and exporters.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistSnapshot>,
}

impl RegistrySnapshot {
    /// Delta since `earlier`: counters and histogram counts are subtracted,
    /// gauges keep their current (point-in-time) values. Instruments absent
    /// from `earlier` are treated as zero.
    pub fn since(&self, earlier: &RegistrySnapshot) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| {
                    let base = earlier.counters.get(k).copied().unwrap_or(0);
                    (k.clone(), v.saturating_sub(base))
                })
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| match earlier.histograms.get(k) {
                    Some(base) => (k.clone(), h.since(base)),
                    None => (k.clone(), h.clone()),
                })
                .collect(),
        }
    }

    /// Fold `other` into this snapshot: counters and histograms add, gauges
    /// take `other`'s value (last-writer-wins).
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Render a human-readable report.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "  {k:<36} {v}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (k, v) in &self.gauges {
                let _ = writeln!(out, "  {k:<36} {v}");
            }
        }
        let timed: Vec<_> = self
            .histograms
            .iter()
            .filter(|(_, h)| h.count() > 0)
            .collect();
        if !timed.is_empty() {
            out.push_str("histograms (ns):\n");
            for (k, h) in timed {
                let _ = writeln!(
                    out,
                    "  {k:<28} count {:>8}  mean {:>12.0}  p50 {:>12.0}  p95 {:>12.0}  p99 {:>12.0}  max {:>12}",
                    h.count(),
                    h.mean(),
                    h.p50(),
                    h.p95(),
                    h.p99(),
                    h.max
                );
            }
        }
        out
    }

    /// Export as a stable JSON value: `{"counters": {...}, "gauges": {...},
    /// "histograms": {name: {count, sum, min, max, mean, p50, p90, p95,
    /// p99}}}`. Empty histograms are omitted.
    pub fn to_json(&self) -> Json {
        Json::object([
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::from(*v)))
                        .collect(),
                ),
            ),
            (
                "gauges",
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::from(*v)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Obj(
                    self.histograms
                        .iter()
                        .filter(|(_, h)| h.count() > 0)
                        .map(|(k, h)| (k.clone(), hist_json(h)))
                        .collect(),
                ),
            ),
        ])
    }
}

/// JSON rendering for one histogram snapshot (shared by the exporters and
/// the bench binaries).
pub fn hist_json(h: &HistSnapshot) -> Json {
    Json::object([
        ("count", Json::from(h.count())),
        ("sum", Json::from(h.sum)),
        ("min", Json::from(h.min)),
        ("max", Json::from(h.max)),
        ("mean", Json::from(h.mean())),
        ("p50", Json::from(h.p50())),
        ("p90", Json::from(h.p90())),
        ("p95", Json::from(h.p95())),
        ("p99", Json::from(h.p99())),
    ])
}
