//! tdb-obs unit and property tests: histogram bucket boundaries and
//! percentiles (empty / one-sample / overflow), registry snapshot/delta
//! semantics, and JSON writer↔parser roundtrips.

use proptest::prelude::*;
use tdb_obs::{bucket_bounds, bucket_index, HistSnapshot, Histogram, Json, Registry, BUCKETS};

// ---------------------------------------------------------------- buckets

#[test]
fn bucket_boundaries_are_powers_of_two() {
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_index(1), 1);
    assert_eq!(bucket_index(2), 2);
    assert_eq!(bucket_index(3), 2);
    assert_eq!(bucket_index(4), 3);
    for i in 1..BUCKETS - 1 {
        let (lo, hi) = bucket_bounds(i);
        // Each boundary value lands in its own bucket; one less stays below.
        assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
        assert_eq!(bucket_index(hi - 1), i, "upper bound of bucket {i}");
        assert_eq!(bucket_index(hi), (i + 1).min(BUCKETS - 1));
    }
    // Everything past the last bucket's lower bound is absorbed by it.
    assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    assert_eq!(bucket_index(1u64 << 60), BUCKETS - 1);
}

#[test]
fn empty_histogram_percentiles_are_zero() {
    let snap = Histogram::new().snapshot();
    assert_eq!(snap.count(), 0);
    assert_eq!(snap.mean(), 0.0);
    assert_eq!(snap.p50(), 0.0);
    assert_eq!(snap.p99(), 0.0);
    assert_eq!(snap.min, 0);
    assert_eq!(snap.max, 0);
}

#[test]
fn one_sample_percentiles_are_exact() {
    let h = Histogram::new();
    h.record(12_345);
    let snap = h.snapshot();
    assert_eq!(snap.count(), 1);
    assert_eq!(snap.min, 12_345);
    assert_eq!(snap.max, 12_345);
    // Clamping to [min, max] makes every percentile exact for one sample.
    for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
        assert_eq!(snap.percentile(q), 12_345.0, "q={q}");
    }
    assert_eq!(snap.mean(), 12_345.0);
}

#[test]
fn overflow_bucket_absorbs_and_clamps() {
    let h = Histogram::new();
    let huge = u64::MAX / 2;
    h.record(huge);
    h.record(100);
    let snap = h.snapshot();
    assert_eq!(snap.counts[BUCKETS - 1], 1);
    assert_eq!(snap.max, huge);
    // p99 falls in the overflow bucket; the estimate must clamp to max
    // rather than report the bucket's nominal (way-too-small) bound.
    assert_eq!(snap.p99(), huge as f64);
    // p50 lands in 100's bucket [64, 128): accurate to one bucket width.
    assert!(
        snap.p50() >= 100.0 && snap.p50() <= 128.0,
        "p50 = {}",
        snap.p50()
    );
}

#[test]
fn percentiles_are_monotone_and_bounded() {
    let h = Histogram::new();
    for v in [3u64, 17, 900, 900, 4096, 70_000, 70_001, 1_000_000] {
        h.record(v);
    }
    let snap = h.snapshot();
    let mut last = 0.0f64;
    for i in 0..=100 {
        let p = snap.percentile(i as f64 / 100.0);
        assert!(p >= last, "percentile must be monotone at q={i}");
        assert!(p >= snap.min as f64 && p <= snap.max as f64);
        last = p;
    }
}

#[test]
fn snapshot_since_and_merge_roundtrip() {
    let h = Histogram::new();
    h.record(10);
    h.record(2000);
    let early = h.snapshot();
    h.record(500_000);
    let late = h.snapshot();
    let delta = late.since(&early);
    assert_eq!(delta.count(), 1);
    assert_eq!(delta.sum, 500_000);

    // merge(early, delta) restores the late counts and sum.
    let mut rebuilt = early.clone();
    rebuilt.merge(&delta);
    assert_eq!(rebuilt.counts, late.counts);
    assert_eq!(rebuilt.sum, late.sum);

    // Merging into an empty snapshot adopts the other's extrema.
    let mut empty = HistSnapshot::default();
    empty.merge(&late);
    assert_eq!(empty.min, late.min);
    assert_eq!(empty.max, late.max);
}

// --------------------------------------------------------------- registry

#[test]
fn registry_handles_are_get_or_register() {
    let reg = Registry::new();
    reg.counter("a").add(2);
    reg.counter("a").add(3); // same underlying atomic
    assert_eq!(reg.counter("a").get(), 5);
    reg.gauge("g").set(-7);
    assert_eq!(reg.gauge("g").get(), -7);
    reg.histogram("h").record(42);
    assert_eq!(reg.histogram("h").snapshot().count(), 1);

    let snap = reg.snapshot();
    assert_eq!(snap.counters["a"], 5);
    assert_eq!(snap.gauges["g"], -7);
    assert_eq!(snap.histograms["h"].count(), 1);
}

proptest! {
    /// Delta semantics: for any interleaving of counter adds and histogram
    /// records split into two rounds, `snapshot_after.since(&snapshot_mid)`
    /// reports exactly the second round.
    #[test]
    fn registry_delta_reports_second_round(
        round1 in proptest::collection::vec((0usize..4, 1u64..10_000), 0..24),
        round2 in proptest::collection::vec((0usize..4, 1u64..10_000), 0..24),
    ) {
        let names = ["w", "x", "y", "z"];
        let reg = Registry::new();
        let apply = |ops: &[(usize, u64)]| {
            for (which, v) in ops {
                reg.counter(names[*which]).add(*v);
                reg.histogram(names[*which]).record(*v);
            }
        };
        apply(&round1);
        let mid = reg.snapshot();
        apply(&round2);
        let delta = reg.snapshot().since(&mid);

        for (i, name) in names.iter().enumerate() {
            let expect_sum: u64 = round2.iter().filter(|(w, _)| *w == i).map(|(_, v)| v).sum();
            let expect_n = round2.iter().filter(|(w, _)| *w == i).count() as u64;
            let got = delta.counters.get(*name).copied().unwrap_or(0);
            prop_assert_eq!(got, expect_sum, "counter {}", name);
            let hist = delta.histograms.get(*name).cloned().unwrap_or_default();
            prop_assert_eq!(hist.count(), expect_n, "hist count {}", name);
            prop_assert_eq!(hist.sum, expect_sum, "hist sum {}", name);
        }
    }

    /// Merging the two rounds' deltas equals the full-history snapshot.
    #[test]
    fn delta_merge_equals_total(
        values in proptest::collection::vec(1u64..1_000_000, 1..40),
        split in any::<usize>(),
    ) {
        let reg = Registry::new();
        let cut = split % values.len();
        for v in &values[..cut] {
            reg.histogram("h").record(*v);
        }
        let mid = reg.snapshot();
        for v in &values[cut..] {
            reg.histogram("h").record(*v);
        }
        let total = reg.snapshot();

        let first = mid.histograms.get("h").cloned().unwrap_or_default();
        let second = total
            .since(&mid)
            .histograms
            .get("h")
            .cloned()
            .unwrap_or_default();
        let mut rebuilt = first;
        rebuilt.merge(&second);
        let full = total.histograms.get("h").cloned().unwrap();
        prop_assert_eq!(rebuilt.counts, full.counts);
        prop_assert_eq!(rebuilt.sum, full.sum);
        prop_assert_eq!(rebuilt.count(), values.len() as u64);
    }
}

// ------------------------------------------------------------------- json

#[test]
fn json_roundtrips_structures() {
    let mut doc = Json::obj();
    doc.push("int", 42u64);
    doc.push("neg", -3i64);
    doc.push("float", 1.5);
    doc.push(
        "string",
        "with \"quotes\" and \\ and \n control \u{1} chars",
    );
    doc.push("bool", true);
    doc.push("null", Json::Null);
    doc.push("arr", Json::array([Json::from(1u64), Json::from("two")]));
    let mut nested = Json::obj();
    nested.push("k", "v");
    doc.push("obj", nested);

    for text in [doc.render(), doc.pretty()] {
        let parsed = Json::parse(&text).expect("parse own output");
        assert_eq!(parsed, doc, "roundtrip through {text:?}");
    }
}

#[test]
fn json_parser_rejects_garbage() {
    for bad in [
        "",
        "{",
        "[1,]",
        "{\"a\":}",
        "tru",
        "1 2",
        "{\"a\":1,}",
        "\"\\q\"",
    ] {
        assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
    }
}

#[test]
fn registry_snapshot_to_json_is_stable_and_parseable() {
    let reg = Registry::new();
    reg.counter("chunk.commits").add(3);
    reg.gauge("cache.bytes").set(4096);
    reg.histogram("commit.total").record(1_000);
    let a = reg.snapshot().to_json().render();
    let b = reg.snapshot().to_json().render();
    assert_eq!(a, b, "rendering must be deterministic");
    Json::parse(&a).expect("snapshot JSON parses");
}
