//! tdb-obs unit and property tests: histogram bucket boundaries and
//! percentiles (empty / one-sample / overflow), registry snapshot/delta
//! semantics, and JSON writer↔parser roundtrips.

use proptest::prelude::*;
use tdb_obs::{bucket_bounds, bucket_index, HistSnapshot, Histogram, Json, Registry, BUCKETS};

// ---------------------------------------------------------------- buckets

#[test]
fn bucket_boundaries_are_powers_of_two() {
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_index(1), 1);
    assert_eq!(bucket_index(2), 2);
    assert_eq!(bucket_index(3), 2);
    assert_eq!(bucket_index(4), 3);
    for i in 1..BUCKETS - 1 {
        let (lo, hi) = bucket_bounds(i);
        // Each boundary value lands in its own bucket; one less stays below.
        assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
        assert_eq!(bucket_index(hi - 1), i, "upper bound of bucket {i}");
        assert_eq!(bucket_index(hi), (i + 1).min(BUCKETS - 1));
    }
    // Everything past the last bucket's lower bound is absorbed by it.
    assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    assert_eq!(bucket_index(1u64 << 60), BUCKETS - 1);
}

#[test]
fn empty_histogram_percentiles_are_zero() {
    let snap = Histogram::new().snapshot();
    assert_eq!(snap.count(), 0);
    assert_eq!(snap.mean(), 0.0);
    assert_eq!(snap.p50(), 0.0);
    assert_eq!(snap.p99(), 0.0);
    assert_eq!(snap.min, 0);
    assert_eq!(snap.max, 0);
}

#[test]
fn one_sample_percentiles_are_exact() {
    let h = Histogram::new();
    h.record(12_345);
    let snap = h.snapshot();
    assert_eq!(snap.count(), 1);
    assert_eq!(snap.min, 12_345);
    assert_eq!(snap.max, 12_345);
    // Clamping to [min, max] makes every percentile exact for one sample.
    for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
        assert_eq!(snap.percentile(q), 12_345.0, "q={q}");
    }
    assert_eq!(snap.mean(), 12_345.0);
}

#[test]
fn overflow_bucket_absorbs_and_clamps() {
    let h = Histogram::new();
    let huge = u64::MAX / 2;
    h.record(huge);
    h.record(100);
    let snap = h.snapshot();
    assert_eq!(snap.counts[BUCKETS - 1], 1);
    assert_eq!(snap.max, huge);
    // p99 falls in the overflow bucket; the estimate must clamp to max
    // rather than report the bucket's nominal (way-too-small) bound.
    assert_eq!(snap.p99(), huge as f64);
    // p50 lands in 100's bucket [64, 128): accurate to one bucket width.
    assert!(
        snap.p50() >= 100.0 && snap.p50() <= 128.0,
        "p50 = {}",
        snap.p50()
    );
}

#[test]
fn percentiles_are_monotone_and_bounded() {
    let h = Histogram::new();
    for v in [3u64, 17, 900, 900, 4096, 70_000, 70_001, 1_000_000] {
        h.record(v);
    }
    let snap = h.snapshot();
    let mut last = 0.0f64;
    for i in 0..=100 {
        let p = snap.percentile(i as f64 / 100.0);
        assert!(p >= last, "percentile must be monotone at q={i}");
        assert!(p >= snap.min as f64 && p <= snap.max as f64);
        last = p;
    }
}

#[test]
fn snapshot_since_and_merge_roundtrip() {
    let h = Histogram::new();
    h.record(10);
    h.record(2000);
    let early = h.snapshot();
    h.record(500_000);
    let late = h.snapshot();
    let delta = late.since(&early);
    assert_eq!(delta.count(), 1);
    assert_eq!(delta.sum, 500_000);

    // merge(early, delta) restores the late counts and sum.
    let mut rebuilt = early.clone();
    rebuilt.merge(&delta);
    assert_eq!(rebuilt.counts, late.counts);
    assert_eq!(rebuilt.sum, late.sum);

    // Merging into an empty snapshot adopts the other's extrema.
    let mut empty = HistSnapshot::default();
    empty.merge(&late);
    assert_eq!(empty.min, late.min);
    assert_eq!(empty.max, late.max);
}

// --------------------------------------------------------------- registry

#[test]
fn registry_handles_are_get_or_register() {
    let reg = Registry::new();
    reg.counter("a").add(2);
    reg.counter("a").add(3); // same underlying atomic
    assert_eq!(reg.counter("a").get(), 5);
    reg.gauge("g").set(-7);
    assert_eq!(reg.gauge("g").get(), -7);
    reg.histogram("h").record(42);
    assert_eq!(reg.histogram("h").snapshot().count(), 1);

    let snap = reg.snapshot();
    assert_eq!(snap.counters["a"], 5);
    assert_eq!(snap.gauges["g"], -7);
    assert_eq!(snap.histograms["h"].count(), 1);
}

proptest! {
    /// Delta semantics: for any interleaving of counter adds and histogram
    /// records split into two rounds, `snapshot_after.since(&snapshot_mid)`
    /// reports exactly the second round.
    #[test]
    fn registry_delta_reports_second_round(
        round1 in proptest::collection::vec((0usize..4, 1u64..10_000), 0..24),
        round2 in proptest::collection::vec((0usize..4, 1u64..10_000), 0..24),
    ) {
        let names = ["w", "x", "y", "z"];
        let reg = Registry::new();
        let apply = |ops: &[(usize, u64)]| {
            for (which, v) in ops {
                reg.counter(names[*which]).add(*v);
                reg.histogram(names[*which]).record(*v);
            }
        };
        apply(&round1);
        let mid = reg.snapshot();
        apply(&round2);
        let delta = reg.snapshot().since(&mid);

        for (i, name) in names.iter().enumerate() {
            let expect_sum: u64 = round2.iter().filter(|(w, _)| *w == i).map(|(_, v)| v).sum();
            let expect_n = round2.iter().filter(|(w, _)| *w == i).count() as u64;
            let got = delta.counters.get(*name).copied().unwrap_or(0);
            prop_assert_eq!(got, expect_sum, "counter {}", name);
            let hist = delta.histograms.get(*name).cloned().unwrap_or_default();
            prop_assert_eq!(hist.count(), expect_n, "hist count {}", name);
            prop_assert_eq!(hist.sum, expect_sum, "hist sum {}", name);
        }
    }

    /// Merging the two rounds' deltas equals the full-history snapshot.
    #[test]
    fn delta_merge_equals_total(
        values in proptest::collection::vec(1u64..1_000_000, 1..40),
        split in any::<usize>(),
    ) {
        let reg = Registry::new();
        let cut = split % values.len();
        for v in &values[..cut] {
            reg.histogram("h").record(*v);
        }
        let mid = reg.snapshot();
        for v in &values[cut..] {
            reg.histogram("h").record(*v);
        }
        let total = reg.snapshot();

        let first = mid.histograms.get("h").cloned().unwrap_or_default();
        let second = total
            .since(&mid)
            .histograms
            .get("h")
            .cloned()
            .unwrap_or_default();
        let mut rebuilt = first;
        rebuilt.merge(&second);
        let full = total.histograms.get("h").cloned().unwrap();
        prop_assert_eq!(rebuilt.counts, full.counts);
        prop_assert_eq!(rebuilt.sum, full.sum);
        prop_assert_eq!(rebuilt.count(), values.len() as u64);
    }
}

// ------------------------------------------------------------------- json

#[test]
fn json_roundtrips_structures() {
    let mut doc = Json::obj();
    doc.push("int", 42u64);
    doc.push("neg", -3i64);
    doc.push("float", 1.5);
    doc.push(
        "string",
        "with \"quotes\" and \\ and \n control \u{1} chars",
    );
    doc.push("bool", true);
    doc.push("null", Json::Null);
    doc.push("arr", Json::array([Json::from(1u64), Json::from("two")]));
    let mut nested = Json::obj();
    nested.push("k", "v");
    doc.push("obj", nested);

    for text in [doc.render(), doc.pretty()] {
        let parsed = Json::parse(&text).expect("parse own output");
        assert_eq!(parsed, doc, "roundtrip through {text:?}");
    }
}

#[test]
fn json_parser_rejects_garbage() {
    for bad in [
        "",
        "{",
        "[1,]",
        "{\"a\":}",
        "tru",
        "1 2",
        "{\"a\":1,}",
        "\"\\q\"",
    ] {
        assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
    }
}

#[test]
fn registry_snapshot_to_json_is_stable_and_parseable() {
    let reg = Registry::new();
    reg.counter("chunk.commits").add(3);
    reg.gauge("cache.bytes").set(4096);
    reg.histogram("commit.total").record(1_000);
    let a = reg.snapshot().to_json().render();
    let b = reg.snapshot().to_json().render();
    assert_eq!(a, b, "rendering must be deterministic");
    Json::parse(&a).expect("snapshot JSON parses");
}

// ---------------------------------------------------------------- trace ring

mod trace_ring {
    use super::*;
    use std::sync::Arc;
    use tdb_obs::trace::TraceRecorder;
    use tdb_obs::{TraceKind, TraceLayer};

    // Single-writer wraparound is deterministic: after `n` records into a
    // ring of `cap` slots, the snapshot holds exactly the last
    // `min(n, cap)` events, in order, payloads intact.
    proptest! {
        #[test]
        fn wraparound_keeps_exactly_the_last_capacity_events(
            cap_pow in 6u32..9,
            n in 0u64..1500,
        ) {
            let cap = 1u64 << cap_pow;
            let rec = TraceRecorder::with_capacity(cap as usize);
            prop_assert_eq!(rec.capacity() as u64, cap);
            for i in 0..n {
                rec.record(TraceLayer::App, TraceKind::Mark, i, i.wrapping_mul(3), i ^ 0x5A);
            }
            prop_assert_eq!(rec.recorded(), n);
            let snap = rec.snapshot();
            prop_assert_eq!(snap.events.len() as u64, n.min(cap));
            let first = n.saturating_sub(cap);
            for (ev, i) in snap.events.iter().zip(first..n) {
                prop_assert_eq!(ev.seq, i);
                prop_assert_eq!(ev.xid, i);
                prop_assert_eq!(ev.a, i.wrapping_mul(3));
                prop_assert_eq!(ev.b, i ^ 0x5A);
                prop_assert_eq!(ev.kind, TraceKind::Mark);
                prop_assert_eq!(ev.layer, TraceLayer::App);
            }
        }
    }

    /// Concurrent writers lapping a tiny ring many times over: nothing
    /// decoded may be torn. Every surviving event must carry exactly the
    /// payload some writer published (`b == xid * 1000 + a`), sequence
    /// numbers must be unique, and the total recorded count must be exact.
    #[test]
    fn concurrent_writers_never_produce_torn_events() {
        const THREADS: u64 = 4;
        const PER: u64 = 4_000;
        let rec = Arc::new(TraceRecorder::with_capacity(64));
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let rec = rec.clone();
                s.spawn(move || {
                    for i in 0..PER {
                        rec.record(TraceLayer::App, TraceKind::Mark, t, i, t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(rec.recorded(), THREADS * PER);
        let snap = rec.snapshot();
        assert!(!snap.events.is_empty());
        assert!(snap.events.len() <= rec.capacity());
        let mut seqs: Vec<u64> = snap.events.iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(
            seqs.len(),
            snap.events.len(),
            "duplicate ring slots decoded"
        );
        for ev in &snap.events {
            assert!(
                ev.xid < THREADS && ev.a < PER,
                "payload from nowhere: {ev:?}"
            );
            assert_eq!(ev.b, ev.xid * 1000 + ev.a, "torn payload survived: {ev:?}");
        }
    }

    /// Snapshots taken *while* writers are lapping the ring must each be
    /// internally consistent: only fully-published events decode, and a
    /// thread's own events appear in program order in its timeline.
    #[test]
    fn snapshot_while_recording_is_consistent() {
        const PER: u64 = 20_000;
        let rec = Arc::new(TraceRecorder::with_capacity(128));
        std::thread::scope(|s| {
            for t in 0..2u64 {
                let rec = rec.clone();
                s.spawn(move || {
                    for i in 0..PER {
                        rec.record(TraceLayer::App, TraceKind::Mark, t, i, t * 1_000_000 + i);
                    }
                });
            }
            // Snapshot continuously until both writers have finished, so
            // some snapshots race live wraparound no matter how the
            // scheduler interleaves us (this box may have one CPU).
            while rec.recorded() < 2 * PER {
                let snap = rec.snapshot();
                for ev in &snap.events {
                    assert_eq!(ev.b, ev.xid * 1_000_000 + ev.a, "torn event: {ev:?}");
                }
                for (_tid, evs) in snap.per_thread() {
                    for w in evs.windows(2) {
                        if w[0].xid == w[1].xid {
                            assert!(
                                w[0].a < w[1].a,
                                "thread timeline out of order: {:?} then {:?}",
                                w[0],
                                w[1]
                            );
                        }
                    }
                }
            }
        });
        let total = rec.recorded();
        assert!(total > 128, "writers should have lapped the ring ({total})");
    }

    /// `snapshot_since(cursor)` returns only events recorded after the
    /// cursor was taken.
    #[test]
    fn snapshot_since_skips_earlier_events() {
        let rec = TraceRecorder::with_capacity(256);
        for i in 0..10 {
            rec.record(TraceLayer::App, TraceKind::Mark, 1, i, 0);
        }
        let cursor = rec.cursor();
        for i in 0..5 {
            rec.record(TraceLayer::App, TraceKind::Mark, 2, i, 0);
        }
        let snap = rec.snapshot_since(cursor);
        assert_eq!(snap.events.len(), 5);
        assert!(snap.events.iter().all(|e| e.xid == 2));
    }
}
