//! AES-128-CBC with PKCS#7 padding.
//!
//! Chunk payloads are variable-sized byte strings; CBC + PKCS#7 rounds them
//! up to the 16-byte block size. The padding overhead is part of what the
//! paper measures for TDB-S (encryption padding makes TDB-S write more bytes
//! per transaction than plain TDB, §7.4).

use crate::aes::{Aes128, Block, BLOCK_LEN};

/// Error returned when decryption fails structurally (bad length or padding).
///
/// In the chunk store this is always accompanied by a hash mismatch and is
/// surfaced as tamper detection; the padding check is a backstop, not an
/// authenticity mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CbcError;

impl std::fmt::Display for CbcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CBC decryption failed: invalid length or padding")
    }
}

impl std::error::Error for CbcError {}

/// Number of ciphertext bytes produced for a plaintext of `plain_len` bytes
/// (PKCS#7 always adds 1..=16 bytes of padding).
pub fn ciphertext_len(plain_len: usize) -> usize {
    (plain_len / BLOCK_LEN + 1) * BLOCK_LEN
}

/// Encrypt `plain` under `aes` with the given 16-byte IV.
///
/// Returns `iv-less` ciphertext; the caller stores the IV alongside (the
/// chunk store places it in the chunk header).
pub fn cbc_encrypt(aes: &Aes128, iv: &Block, plain: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(ciphertext_len(plain.len()));
    cbc_encrypt_into(aes, iv, plain, &mut out);
    out
}

/// Encrypt `plain` directly into `out` (appending), avoiding the
/// intermediate ciphertext allocation of [`cbc_encrypt`]. Returns the
/// number of bytes appended (always [`ciphertext_len`] of the input).
pub fn cbc_encrypt_into(aes: &Aes128, iv: &Block, plain: &[u8], out: &mut Vec<u8>) -> usize {
    let start = out.len();
    let out_len = ciphertext_len(plain.len());
    out.reserve(out_len);
    out.extend_from_slice(plain);
    // PKCS#7 pad.
    let pad = (out_len - plain.len()) as u8;
    out.resize(start + out_len, pad);

    let mut prev = *iv;
    for chunk in out[start..].chunks_exact_mut(BLOCK_LEN) {
        for (b, p) in chunk.iter_mut().zip(prev.iter()) {
            *b ^= p;
        }
        let mut block: Block = chunk.try_into().expect("exact chunk");
        aes.encrypt_block(&mut block);
        chunk.copy_from_slice(&block);
        prev = block;
    }
    out_len
}

/// Decrypt `cipher` under `aes` with the given IV and strip PKCS#7 padding.
pub fn cbc_decrypt(aes: &Aes128, iv: &Block, cipher: &[u8]) -> Result<Vec<u8>, CbcError> {
    if cipher.is_empty() || !cipher.len().is_multiple_of(BLOCK_LEN) {
        return Err(CbcError);
    }
    let mut out = cipher.to_vec();
    let mut prev = *iv;
    for chunk in out.chunks_exact_mut(BLOCK_LEN) {
        let this_cipher: Block = chunk.try_into().expect("exact chunk");
        let mut block = this_cipher;
        aes.decrypt_block(&mut block);
        for (b, p) in block.iter_mut().zip(prev.iter()) {
            *b ^= p;
        }
        chunk.copy_from_slice(&block);
        prev = this_cipher;
    }
    let pad = *out.last().expect("non-empty") as usize;
    if pad == 0 || pad > BLOCK_LEN || pad > out.len() {
        return Err(CbcError);
    }
    if out[out.len() - pad..].iter().any(|&b| b as usize != pad) {
        return Err(CbcError);
    }
    out.truncate(out.len() - pad);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len() / 2)
            .map(|i| u8::from_str_radix(&s[i * 2..i * 2 + 2], 16).unwrap())
            .collect()
    }

    // NIST SP 800-38A F.2.1 CBC-AES128.Encrypt (no padding in the vector, so
    // we check our ciphertext prefix block-by-block).
    #[test]
    fn sp800_38a_cbc_prefix() {
        let key: [u8; 16] = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let iv: [u8; 16] = hex("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
        let pt = hex("6bc1bee22e409f96e93d7e117393172a\
             ae2d8a571e03ac9c9eb76fac45af8e51\
             30c81c46a35ce411e5fbc1191a0a52ef\
             f69f2445df4f9b17ad2b417be66c3710");
        let expect = hex("7649abac8119b246cee98e9b12e9197d\
             5086cb9b507219ee95db113a917678b2\
             73bed6b8e3c1743b7116e69e22229516\
             3ff1caa1681fac09120eca307586e1a7");
        let aes = Aes128::new(&key);
        let ct = cbc_encrypt(&aes, &iv, &pt);
        // Our output has one extra padding block at the end.
        assert_eq!(ct.len(), expect.len() + BLOCK_LEN);
        assert_eq!(&ct[..expect.len()], &expect[..]);
        let round = cbc_decrypt(&aes, &iv, &ct).unwrap();
        assert_eq!(round, pt);
    }

    #[test]
    fn roundtrip_all_lengths_0_to_64() {
        let aes = Aes128::new(&[9u8; 16]);
        let iv = [3u8; 16];
        for len in 0..=64 {
            let pt: Vec<u8> = (0..len as u8).collect();
            let ct = cbc_encrypt(&aes, &iv, &pt);
            assert_eq!(ct.len(), ciphertext_len(len));
            assert_eq!(cbc_decrypt(&aes, &iv, &ct).unwrap(), pt, "len {len}");
        }
    }

    #[test]
    fn encrypt_into_appends_and_matches_encrypt() {
        let aes = Aes128::new(&[9u8; 16]);
        let iv = [3u8; 16];
        for len in [0usize, 1, 15, 16, 17, 64, 100] {
            let pt: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let mut out = b"prefix".to_vec();
            let n = cbc_encrypt_into(&aes, &iv, &pt, &mut out);
            assert_eq!(n, ciphertext_len(len));
            assert_eq!(&out[..6], b"prefix");
            assert_eq!(&out[6..], &cbc_encrypt(&aes, &iv, &pt)[..], "len {len}");
        }
    }

    #[test]
    fn ciphertext_len_is_always_next_block_multiple() {
        assert_eq!(ciphertext_len(0), 16);
        assert_eq!(ciphertext_len(1), 16);
        assert_eq!(ciphertext_len(15), 16);
        assert_eq!(ciphertext_len(16), 32);
        assert_eq!(ciphertext_len(17), 32);
        assert_eq!(ciphertext_len(100), 112);
    }

    #[test]
    fn decrypt_rejects_bad_lengths() {
        let aes = Aes128::new(&[0u8; 16]);
        let iv = [0u8; 16];
        assert_eq!(cbc_decrypt(&aes, &iv, &[]), Err(CbcError));
        assert_eq!(cbc_decrypt(&aes, &iv, &[0u8; 15]), Err(CbcError));
        assert_eq!(cbc_decrypt(&aes, &iv, &[0u8; 17]), Err(CbcError));
    }

    #[test]
    fn decrypt_rejects_garbage_padding() {
        let aes = Aes128::new(&[0u8; 16]);
        let iv = [0u8; 16];
        // A random block will decrypt to garbage padding with probability
        // ~255/256; this particular constant does.
        let mut hits = 0;
        for seed in 0u8..8 {
            let ct = [seed.wrapping_mul(37); 16];
            if cbc_decrypt(&aes, &iv, &ct).is_err() {
                hits += 1;
            }
        }
        assert!(hits >= 7, "almost all garbage blocks must fail padding");
    }

    #[test]
    fn wrong_iv_changes_first_block_only() {
        let aes = Aes128::new(&[5u8; 16]);
        let pt = vec![0xABu8; 48];
        let ct = cbc_encrypt(&aes, &[1u8; 16], &pt);
        // Decrypting with a different IV garbles only the first block.
        if let Ok(out) = cbc_decrypt(&aes, &[2u8; 16], &ct) {
            assert_ne!(&out[..16], &pt[..16]);
            assert_eq!(&out[16..48], &pt[16..48]);
        }
        // (Padding may or may not survive; both outcomes are acceptable.)
    }

    #[test]
    fn same_plaintext_different_iv_different_ciphertext() {
        let aes = Aes128::new(&[5u8; 16]);
        let pt = b"usage meter state".to_vec();
        let c1 = cbc_encrypt(&aes, &[1u8; 16], &pt);
        let c2 = cbc_encrypt(&aes, &[2u8; 16], &pt);
        assert_ne!(c1, c2, "IV must randomize ciphertext (traffic analysis)");
    }
}
