//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
//!
//! The chunk store MACs the trusted anchor (Merkle root + one-way counter)
//! with the secret-store key, and the backup store MACs backup manifests.
//! The paper phrases this as "signed with the secret key" — with a symmetric
//! key that is a MAC.

use crate::sha256::{Digest, Sha256, DIGEST_LEN};

const BLOCK_LEN: usize = 64;

/// Streaming HMAC-SHA-256 context.
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    outer_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Create a context keyed by `key` (any length; longer than 64 bytes is
    /// hashed down first, per the spec).
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let d = crate::sha256::sha256(key);
            k[..DIGEST_LEN].copy_from_slice(&d);
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = k[i] ^ 0x36;
            opad[i] = k[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 {
            inner,
            outer_key: opad,
        }
    }

    /// Absorb message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Produce the 32-byte tag.
    pub fn finalize(self) -> Digest {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.outer_key);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// One-shot HMAC-SHA-256.
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> Digest {
    let mut ctx = HmacSha256::new(key);
    ctx.update(msg);
    ctx.finalize()
}

/// Verify a tag in (near) constant time.
pub fn verify_hmac_sha256(key: &[u8], msg: &[u8], tag: &[u8]) -> bool {
    crate::ct_eq(&hmac_sha256(key, msg), tag)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test vectors for HMAC-SHA-256.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0b; 20];
        assert_eq!(
            hex(&hmac_sha256(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaa; 20];
        let msg = [0xdd; 50];
        assert_eq!(
            hex(&hmac_sha256(&key, &msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaa; 131];
        assert_eq!(
            hex(&hmac_sha256(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn rfc4231_case_7_long_key_and_data() {
        let key = [0xaa; 131];
        let msg = b"This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm.";
        assert_eq!(
            hex(&hmac_sha256(&key, msg)),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = hmac_sha256(b"k", b"m");
        assert!(verify_hmac_sha256(b"k", b"m", &tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!verify_hmac_sha256(b"k", b"m", &bad));
        assert!(!verify_hmac_sha256(b"k2", b"m", &tag));
        assert!(!verify_hmac_sha256(b"k", b"m2", &tag));
        assert!(!verify_hmac_sha256(b"k", b"m", &tag[..31]));
    }

    #[test]
    fn streaming_equals_oneshot() {
        let mut ctx = HmacSha256::new(b"key");
        ctx.update(b"part one ");
        ctx.update(b"part two");
        assert_eq!(ctx.finalize(), hmac_sha256(b"key", b"part one part two"));
    }
}
