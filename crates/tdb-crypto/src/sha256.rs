//! SHA-256 (FIPS 180-4), implemented from scratch.
//!
//! The chunk store hashes every chunk and every Merkle-tree node with this
//! function. It exposes a streaming [`Sha256`] context, a one-shot
//! [`sha256`] helper, and a multi-message batch entry point
//! [`sha256_batch`] that keeps 2–4 independent message schedules in flight
//! per compression round. SHA-256's round function is a long serial
//! dependency chain, so a single message leaves most ALU ports idle;
//! interleaving independent lanes hides that latency (and gives LLVM
//! straight-line per-round loops it can SLP-vectorize). The commit path
//! uses the batch form for record hashing and the batched Merkle rehash.

/// Length of a SHA-256 digest in bytes.
pub const DIGEST_LEN: usize = 32;

/// A SHA-256 digest.
pub type Digest = [u8; DIGEST_LEN];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Streaming SHA-256 context.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Total message length in bytes.
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Create a fresh context.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            len: 0,
            buf: [0; 64],
            buf_len: 0,
        }
    }

    /// Absorb `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len < 64 {
                // Input exhausted without completing a block; keep buffering.
                return;
            }
            let block = self.buf;
            self.compress(&block);
            self.buf_len = 0;
        }
        let mut chunks = data.chunks_exact(64);
        for block in &mut chunks {
            // chunks_exact guarantees 64 bytes.
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
        }
        let rem = chunks.remainder();
        self.buf[..rem.len()].copy_from_slice(rem);
        self.buf_len = rem.len();
    }

    /// Finish the computation and return the digest. Consumes the context.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80 then zeros then 8-byte big-endian bit length.
        self.update_padding();
        // After padding, buf_len is 56 mod 64; append the length.
        self.buf[self.buf_len..self.buf_len + 8].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);

        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn update_padding(&mut self) {
        self.buf[self.buf_len] = 0x80;
        self.buf_len += 1;
        if self.buf_len > 56 {
            for b in &mut self.buf[self.buf_len..] {
                *b = 0;
            }
            let block = self.buf;
            self.compress(&block);
            self.buf_len = 0;
        }
        for b in &mut self.buf[self.buf_len..56] {
            *b = 0;
        }
        self.buf_len = 56;
    }

    fn compress(&mut self, block: &[u8; 64]) {
        compress_block(&mut self.state, block);
    }
}

fn compress_block(state: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    for i in 0..16 {
        w[i] = u32::from_be_bytes([
            block[i * 4],
            block[i * 4 + 1],
            block[i * 4 + 2],
            block[i * 4 + 3],
        ]);
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// One compression round over `N` independent messages. Every per-round
/// step is an inner loop over the lanes, so the `N` message schedules and
/// working states advance in lock-step — independent chains the CPU (or
/// the auto-vectorizer) can execute in parallel, hiding the serial
/// latency of a single SHA-256 chain.
// The explicit lane-index loops are the point: every step advances all N
// lanes in lock-step, and the schedule rows (w[t-16], w[t-7], w[t-2])
// cannot be iterator-chained while w[t] is being written.
#[allow(clippy::needless_range_loop)]
fn compress_lanes<const N: usize>(states: &mut [[u32; 8]; N], blocks: &[[u8; 64]; N]) {
    let mut w = [[0u32; N]; 64];
    for t in 0..16 {
        for l in 0..N {
            let blk = &blocks[l];
            w[t][l] =
                u32::from_be_bytes([blk[t * 4], blk[t * 4 + 1], blk[t * 4 + 2], blk[t * 4 + 3]]);
        }
    }
    for t in 16..64 {
        for l in 0..N {
            let x15 = w[t - 15][l];
            let x2 = w[t - 2][l];
            let s0 = x15.rotate_right(7) ^ x15.rotate_right(18) ^ (x15 >> 3);
            let s1 = x2.rotate_right(17) ^ x2.rotate_right(19) ^ (x2 >> 10);
            w[t][l] = w[t - 16][l]
                .wrapping_add(s0)
                .wrapping_add(w[t - 7][l])
                .wrapping_add(s1);
        }
    }

    let mut a = [0u32; N];
    let mut b = [0u32; N];
    let mut c = [0u32; N];
    let mut d = [0u32; N];
    let mut e = [0u32; N];
    let mut f = [0u32; N];
    let mut g = [0u32; N];
    let mut h = [0u32; N];
    for l in 0..N {
        [a[l], b[l], c[l], d[l], e[l], f[l], g[l], h[l]] = states[l];
    }
    for t in 0..64 {
        for l in 0..N {
            let s1 = e[l].rotate_right(6) ^ e[l].rotate_right(11) ^ e[l].rotate_right(25);
            let ch = (e[l] & f[l]) ^ (!e[l] & g[l]);
            let t1 = h[l]
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[t])
                .wrapping_add(w[t][l]);
            let s0 = a[l].rotate_right(2) ^ a[l].rotate_right(13) ^ a[l].rotate_right(22);
            let maj = (a[l] & b[l]) ^ (a[l] & c[l]) ^ (b[l] & c[l]);
            let t2 = s0.wrapping_add(maj);
            h[l] = g[l];
            g[l] = f[l];
            f[l] = e[l];
            e[l] = d[l].wrapping_add(t1);
            d[l] = c[l];
            c[l] = b[l];
            b[l] = a[l];
            a[l] = t1.wrapping_add(t2);
        }
    }
    for l in 0..N {
        states[l][0] = states[l][0].wrapping_add(a[l]);
        states[l][1] = states[l][1].wrapping_add(b[l]);
        states[l][2] = states[l][2].wrapping_add(c[l]);
        states[l][3] = states[l][3].wrapping_add(d[l]);
        states[l][4] = states[l][4].wrapping_add(e[l]);
        states[l][5] = states[l][5].wrapping_add(f[l]);
        states[l][6] = states[l][6].wrapping_add(g[l]);
        states[l][7] = states[l][7].wrapping_add(h[l]);
    }
}

/// Number of 64-byte blocks in the padded form of a `len`-byte message
/// (the padding is 0x80, zeros, and an 8-byte bit length).
fn num_blocks(len: usize) -> usize {
    (len + 8) / 64 + 1
}

/// Materialize block `idx` of the padded form of `msg`. The last block
/// carries the big-endian bit length in its final 8 bytes; the 0x80
/// terminator lands wherever the message ends.
fn padded_block(msg: &[u8], idx: usize, nblocks: usize) -> [u8; 64] {
    let len = msg.len();
    let start = idx * 64;
    let mut blk = [0u8; 64];
    if start + 64 <= len {
        blk.copy_from_slice(&msg[start..start + 64]);
        return blk;
    }
    if start < len {
        let n = len - start;
        blk[..n].copy_from_slice(&msg[start..]);
        blk[n] = 0x80;
    } else if start == len {
        blk[0] = 0x80;
    }
    if idx + 1 == nblocks {
        let bits = (len as u64).wrapping_mul(8);
        blk[56..].copy_from_slice(&bits.to_be_bytes());
    }
    blk
}

fn state_digest(state: &[u32; 8]) -> Digest {
    let mut out = [0u8; DIGEST_LEN];
    for (i, word) in state.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// Hash `N` messages with interleaved schedules. Blocks shared by all
/// lanes run `N`-wide; once the shorter messages run out, the stragglers
/// finish on the scalar path.
fn hash_group<const N: usize>(msgs: &[&[u8]; N]) -> [Digest; N] {
    let mut states = [H0; N];
    let mut nb = [0usize; N];
    for l in 0..N {
        nb[l] = num_blocks(msgs[l].len());
    }
    let common = nb.iter().copied().min().unwrap_or(0);
    let mut blocks = [[0u8; 64]; N];
    for idx in 0..common {
        for l in 0..N {
            blocks[l] = padded_block(msgs[l], idx, nb[l]);
        }
        compress_lanes(&mut states, &blocks);
    }
    for l in 0..N {
        for idx in common..nb[l] {
            compress_block(&mut states[l], &padded_block(msgs[l], idx, nb[l]));
        }
    }
    let mut out = [[0u8; DIGEST_LEN]; N];
    for l in 0..N {
        out[l] = state_digest(&states[l]);
    }
    out
}

/// Hash a batch of messages, keeping up to four independent message
/// schedules in flight per compression round. Bit-identical to calling
/// [`sha256`] on each message; substantially faster for batches because
/// the interleaved lanes hide the round function's serial ALU latency.
pub fn sha256_batch(msgs: &[&[u8]]) -> Vec<Digest> {
    let mut out = Vec::with_capacity(msgs.len());
    let mut rest = msgs;
    while rest.len() >= 4 {
        let (head, tail) = rest.split_at(4);
        let group: &[&[u8]; 4] = head.try_into().expect("four lanes");
        out.extend_from_slice(&hash_group(group));
        rest = tail;
    }
    match rest.len() {
        3 => {
            let group: &[&[u8]; 3] = rest.try_into().expect("three lanes");
            out.extend_from_slice(&hash_group(group));
        }
        2 => {
            let group: &[&[u8]; 2] = rest.try_into().expect("two lanes");
            out.extend_from_slice(&hash_group(group));
        }
        1 => out.push(sha256(rest[0])),
        _ => {}
    }
    out
}

/// One-shot SHA-256.
pub fn sha256(data: &[u8]) -> Digest {
    let mut ctx = Sha256::new();
    ctx.update(data);
    ctx.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    // FIPS 180-4 / NIST CAVP vectors.
    #[test]
    fn empty_message() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let mut ctx = Sha256::new();
        let block = [b'a'; 1000];
        for _ in 0..1000 {
            ctx.update(&block);
        }
        assert_eq!(
            hex(&ctx.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_equals_oneshot_at_all_split_points() {
        let data: Vec<u8> = (0..257u16).map(|i| (i % 251) as u8).collect();
        let whole = sha256(&data);
        for split in 0..data.len() {
            let mut ctx = Sha256::new();
            ctx.update(&data[..split]);
            ctx.update(&data[split..]);
            assert_eq!(ctx.finalize(), whole, "split at {split}");
        }
    }

    #[test]
    fn many_tiny_updates_below_one_block() {
        // Regression: a second update that does not complete the 64-byte
        // buffer must not clobber the buffered byte count.
        let mut ctx = Sha256::new();
        for chunk in [b"ab".as_slice(), b"c"] {
            ctx.update(chunk);
        }
        assert_eq!(ctx.finalize(), sha256(b"abc"));

        let data: Vec<u8> = (0..200u8).collect();
        for step in [1usize, 2, 3, 7, 13] {
            let mut ctx = Sha256::new();
            for chunk in data.chunks(step) {
                ctx.update(chunk);
            }
            assert_eq!(ctx.finalize(), sha256(&data), "step {step}");
        }
    }

    #[test]
    fn batch_matches_scalar_across_lengths() {
        // Every length through several block boundaries, hashed in batches
        // of every lane width, must agree with the scalar path bit for bit.
        let data: Vec<u8> = (0..300u16)
            .map(|i| (i.wrapping_mul(31) % 251) as u8)
            .collect();
        let msgs: Vec<&[u8]> = (0..=300usize).map(|n| &data[..n]).collect();
        let want: Vec<Digest> = msgs.iter().map(|m| sha256(m)).collect();
        for width in 1..=9 {
            for group in msgs.chunks(width) {
                let got = sha256_batch(group);
                let start = group.as_ptr() as usize;
                let idx = (start - msgs.as_ptr() as usize) / std::mem::size_of::<&[u8]>();
                assert_eq!(got, &want[idx..idx + group.len()], "width {width} at {idx}");
            }
        }
    }

    #[test]
    fn batch_mixed_lengths_in_one_group() {
        // Lanes of wildly different block counts exercise the scalar
        // straggler path after the common-prefix rounds.
        let long = vec![7u8; 1000];
        let msgs: Vec<&[u8]> = vec![b"", b"abc", &long, &long[..64]];
        let got = sha256_batch(&msgs);
        for (m, d) in msgs.iter().zip(&got) {
            assert_eq!(*d, sha256(m));
        }
        assert!(sha256_batch(&[]).is_empty());
    }

    #[test]
    fn length_boundary_padding() {
        // Messages of length 55, 56, 57, 63, 64, 65 exercise all padding paths.
        let expect = [
            (
                55usize,
                "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318",
            ),
            (
                56,
                "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a",
            ),
            (
                57,
                "f13b2d724659eb3bf47f2dd6af1accc87b81f09f59f2b75e5c0bed6589dfe8c6",
            ),
            (
                63,
                "7d3e74a05d7db15bce4ad9ec0658ea98e3f06eeecf16b4c6fff2da457ddc2f34",
            ),
            (
                64,
                "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb",
            ),
            (
                65,
                "635361c48bb9eab14198e76ea8ab7f1a41685d6ad62aa9146d301d4f17eb0ae0",
            ),
        ];
        for (n, want) in expect {
            let msg = vec![b'a'; n];
            assert_eq!(hex(&sha256(&msg)), want, "len {n}");
        }
    }
}
