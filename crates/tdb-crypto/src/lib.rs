//! Cryptographic substrate for the TDB trusted database system.
//!
//! The TDB paper (Vingralek, Maheshwari, Shapiro; EDBT 2002) encrypts every
//! chunk, hashes the whole database through a Merkle tree, and MACs the tree
//! root together with a one-way counter value. This crate supplies those
//! primitives, implemented from scratch and validated against the official
//! FIPS / NIST test vectors:
//!
//! * [`sha256`](mod@sha256) — SHA-256 (FIPS 180-4). The paper used SHA-1, which is broken
//!   today; SHA-256 is the drop-in modern substitute (see DESIGN.md §2).
//! * [`hmac`] — HMAC-SHA-256 (RFC 2104 / FIPS 198-1), used where the paper
//!   "signs with the secret key" (a MAC, not public-key signing).
//! * [`aes`] + [`cbc`] — AES-128 in CBC mode with PKCS#7 padding. The paper
//!   used 3DES and itself remarks that equally secure, faster ciphers exist.
//! * [`drbg`] — HMAC-DRBG (NIST SP 800-90A) for IV generation and key
//!   derivation, so chunk encryption never reuses an IV.
//!
//! None of this code aims to be constant-time or side-channel hardened; the
//! threat model of the paper is an attacker who reads and rewrites the
//! *storage*, not one who times the CPU.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod cbc;
pub mod drbg;
pub mod hmac;
pub mod sha256;

pub use aes::Aes128;
pub use cbc::{cbc_decrypt, cbc_encrypt, cbc_encrypt_into, ciphertext_len};
pub use drbg::HmacDrbg;
pub use hmac::{hmac_sha256, HmacSha256};
pub use sha256::{sha256, sha256_batch, Digest, Sha256, DIGEST_LEN};

/// Length in bytes of symmetric keys used throughout TDB (AES-128).
pub const KEY_LEN: usize = 16;

/// Length in bytes of the master secret held in the secret store.
pub const MASTER_SECRET_LEN: usize = 32;

/// A 16-byte AES key.
pub type Key = [u8; KEY_LEN];

/// Derive an independent sub-key from a master secret and a domain-separation
/// label ("encryption", "mac", ...). This mirrors how TDB splits the single
/// platform secret into the keys used by different mechanisms.
pub fn derive_key(master: &[u8], label: &str) -> Key {
    let tag = hmac_sha256(master, label.as_bytes());
    let mut key = [0u8; KEY_LEN];
    key.copy_from_slice(&tag[..KEY_LEN]);
    key
}

/// Derive a full-width (32-byte) sub-secret, e.g. for MAC keys.
pub fn derive_secret(master: &[u8], label: &str) -> [u8; MASTER_SECRET_LEN] {
    hmac_sha256(master, label.as_bytes())
}

/// Constant-ish time comparison of two byte strings. Returns `true` iff they
/// are equal. Avoids early-exit on the first mismatching byte so that MAC
/// verification does not leak the matching prefix length.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_key_is_label_separated() {
        let master = [7u8; MASTER_SECRET_LEN];
        let k1 = derive_key(&master, "encryption");
        let k2 = derive_key(&master, "mac");
        assert_ne!(k1, k2);
        // Deterministic.
        assert_eq!(k1, derive_key(&master, "encryption"));
    }

    #[test]
    fn derive_secret_differs_from_key_prefix_domain() {
        let master = [1u8; MASTER_SECRET_LEN];
        let s = derive_secret(&master, "anchor-mac");
        let k = derive_key(&master, "anchor-mac");
        // The key is the prefix of the secret for the same label: documented
        // relationship, assert it so a refactor can't silently change it.
        assert_eq!(&s[..KEY_LEN], &k[..]);
    }

    #[test]
    fn ct_eq_basic() {
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(ct_eq(b"", b""));
    }
}
