//! HMAC-DRBG (NIST SP 800-90A, HMAC-SHA-256 instantiation).
//!
//! The chunk store needs a fresh IV for every chunk encryption so that
//! rewriting the same object state never produces linkable ciphertext
//! (the paper's traffic-analysis concern, §3.2.1). A deterministic DRBG
//! seeded from the secret store plus per-open entropy (time + counter value)
//! provides that without an OS RNG dependency, which also keeps replay of
//! IV sequences across database reopens impossible in tests.

use crate::hmac::hmac_sha256;
use crate::sha256::DIGEST_LEN;

/// HMAC-DRBG state (K, V) per SP 800-90A §10.1.2.
pub struct HmacDrbg {
    k: [u8; DIGEST_LEN],
    v: [u8; DIGEST_LEN],
    reseed_counter: u64,
}

impl HmacDrbg {
    /// Instantiate from seed material (entropy || nonce || personalization).
    pub fn new(seed: &[u8]) -> Self {
        let mut drbg = HmacDrbg {
            k: [0u8; DIGEST_LEN],
            v: [1u8; DIGEST_LEN],
            reseed_counter: 1,
        };
        drbg.update(Some(seed));
        drbg
    }

    /// Mix additional entropy into the state.
    pub fn reseed(&mut self, entropy: &[u8]) {
        self.update(Some(entropy));
        self.reseed_counter = 1;
    }

    fn update(&mut self, provided: Option<&[u8]>) {
        let mut msg = Vec::with_capacity(DIGEST_LEN + 1 + provided.map_or(0, |p| p.len()));
        msg.extend_from_slice(&self.v);
        msg.push(0x00);
        if let Some(p) = provided {
            msg.extend_from_slice(p);
        }
        self.k = hmac_sha256(&self.k, &msg);
        self.v = hmac_sha256(&self.k, &self.v);
        if let Some(p) = provided {
            let mut msg = Vec::with_capacity(DIGEST_LEN + 1 + p.len());
            msg.extend_from_slice(&self.v);
            msg.push(0x01);
            msg.extend_from_slice(p);
            self.k = hmac_sha256(&self.k, &msg);
            self.v = hmac_sha256(&self.k, &self.v);
        }
    }

    /// Fill `out` with pseudo-random bytes.
    pub fn fill(&mut self, out: &mut [u8]) {
        let mut written = 0;
        while written < out.len() {
            self.v = hmac_sha256(&self.k, &self.v);
            let take = (out.len() - written).min(DIGEST_LEN);
            out[written..written + take].copy_from_slice(&self.v[..take]);
            written += take;
        }
        self.update(None);
        self.reseed_counter += 1;
    }

    /// Generate a 16-byte IV.
    pub fn gen_iv(&mut self) -> [u8; 16] {
        let mut iv = [0u8; 16];
        self.fill(&mut iv);
        iv
    }

    /// Generate a u64 (used by tests and workload seeding helpers).
    pub fn gen_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill(&mut b);
        u64::from_le_bytes(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    // NIST CAVP HMAC_DRBG SHA-256 vector (no reseed, no additional input).
    // EntropyInput || Nonce used as seed; PersonalizationString empty.
    #[test]
    fn cavp_vector_no_reseed() {
        let entropy = "ca851911349384bffe89de1cbdc46e6831e44d34a4fb935ee285dd14b71a7488";
        let nonce = "659ba96c601dc69fc902940805ec0ca8";
        let expected = "e528e9abf2dece54d47c7e75e5fe302149f817ea9fb4bee6f4199697d04d5b89\
                        d54fbb978a15b5c443c9ec21036d2460b6f73ebad0dc2aba6e624abf07745bc1\
                        07694bb7547bb0995f70de25d6b29e2d3011bb19d27676c07162c8b5ccde0668\
                        961df86803482cb37ed6d5c0bb8d50cf1f50d476aa0458bdaba806f48be9dcb8";
        let mut seed = Vec::new();
        seed.extend_from_slice(&hex_to_bytes(entropy));
        seed.extend_from_slice(&hex_to_bytes(nonce));
        let mut drbg = HmacDrbg::new(&seed);
        let mut out = vec![0u8; 128];
        drbg.fill(&mut out); // first generate call is discarded per CAVP
        drbg.fill(&mut out);
        assert_eq!(hex(&out), expected.replace(char::is_whitespace, ""));
    }

    fn hex_to_bytes(s: &str) -> Vec<u8> {
        let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        (0..s.len() / 2)
            .map(|i| u8::from_str_radix(&s[i * 2..i * 2 + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = HmacDrbg::new(b"seed");
        let mut b = HmacDrbg::new(b"seed");
        assert_eq!(a.gen_iv(), b.gen_iv());
        assert_eq!(a.gen_u64(), b.gen_u64());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = HmacDrbg::new(b"seed-a");
        let mut b = HmacDrbg::new(b"seed-b");
        assert_ne!(a.gen_iv(), b.gen_iv());
    }

    #[test]
    fn reseed_changes_stream() {
        let mut a = HmacDrbg::new(b"seed");
        let mut b = HmacDrbg::new(b"seed");
        b.reseed(b"more entropy");
        assert_ne!(a.gen_iv(), b.gen_iv());
    }

    #[test]
    fn successive_ivs_are_distinct() {
        let mut drbg = HmacDrbg::new(b"iv stream");
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            assert!(seen.insert(drbg.gen_iv()), "IV repeated");
        }
    }

    #[test]
    fn fill_spanning_multiple_hmac_blocks() {
        let mut drbg = HmacDrbg::new(b"x");
        let mut out = vec![0u8; 100]; // not a multiple of 32
        drbg.fill(&mut out);
        assert!(out.iter().any(|&b| b != 0));
    }
}
