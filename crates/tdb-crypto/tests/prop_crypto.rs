//! Property tests for the crypto substrate: CBC round-trips at arbitrary
//! lengths, streaming-vs-one-shot hash equivalence at arbitrary splits,
//! and HMAC sensitivity.

use proptest::prelude::*;
use tdb_crypto::{
    cbc_decrypt, cbc_encrypt, hmac_sha256, sha256, Aes128, HmacDrbg, HmacSha256, Sha256,
};

proptest! {
    #[test]
    fn cbc_roundtrips_any_plaintext(
        key in proptest::array::uniform16(any::<u8>()),
        iv in proptest::array::uniform16(any::<u8>()),
        plain in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        let aes = Aes128::new(&key);
        let ct = cbc_encrypt(&aes, &iv, &plain);
        prop_assert_eq!(ct.len() % 16, 0);
        prop_assert!(ct.len() > plain.len());
        prop_assert_eq!(cbc_decrypt(&aes, &iv, &ct).unwrap(), plain);
    }

    #[test]
    fn cbc_ciphertext_differs_from_plaintext(
        key in proptest::array::uniform16(any::<u8>()),
        iv in proptest::array::uniform16(any::<u8>()),
        plain in proptest::collection::vec(any::<u8>(), 16..512),
    ) {
        let aes = Aes128::new(&key);
        let ct = cbc_encrypt(&aes, &iv, &plain);
        // No 16-byte window of the ciphertext equals the aligned plaintext
        // block (probability of coincidence is negligible; a failure here
        // means encryption is a no-op somewhere).
        prop_assert!(ct.windows(plain.len().min(16)).all(|w| w != &plain[..plain.len().min(16)]));
    }

    #[test]
    fn sha256_streaming_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..1024),
        splits in proptest::collection::vec(any::<usize>(), 0..8),
    ) {
        let whole = sha256(&data);
        let mut ctx = Sha256::new();
        let mut cuts: Vec<usize> = splits.iter().map(|s| s % (data.len() + 1)).collect();
        cuts.sort_unstable();
        let mut prev = 0;
        for cut in cuts {
            ctx.update(&data[prev..cut]);
            prev = cut;
        }
        ctx.update(&data[prev..]);
        prop_assert_eq!(ctx.finalize(), whole);
    }

    #[test]
    fn hmac_streaming_equals_oneshot(
        key in proptest::collection::vec(any::<u8>(), 0..100),
        a in proptest::collection::vec(any::<u8>(), 0..200),
        b in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let mut ctx = HmacSha256::new(&key);
        ctx.update(&a);
        ctx.update(&b);
        let mut joined = a.clone();
        joined.extend_from_slice(&b);
        prop_assert_eq!(ctx.finalize(), hmac_sha256(&key, &joined));
    }

    #[test]
    fn hmac_is_key_and_message_sensitive(
        key in proptest::collection::vec(any::<u8>(), 1..64),
        msg in proptest::collection::vec(any::<u8>(), 1..256),
        flip_key in any::<proptest::sample::Index>(),
        flip_msg in any::<proptest::sample::Index>(),
    ) {
        let tag = hmac_sha256(&key, &msg);
        let mut key2 = key.clone();
        key2[flip_key.index(key.len())] ^= 1;
        prop_assert_ne!(hmac_sha256(&key2, &msg), tag);
        let mut msg2 = msg.clone();
        msg2[flip_msg.index(msg.len())] ^= 1;
        prop_assert_ne!(hmac_sha256(&key, &msg2), tag);
    }

    #[test]
    fn drbg_reproducible_and_seed_sensitive(
        seed in proptest::collection::vec(any::<u8>(), 1..64),
        len in 1usize..200,
    ) {
        let mut a = HmacDrbg::new(&seed);
        let mut b = HmacDrbg::new(&seed);
        let mut out_a = vec![0u8; len];
        let mut out_b = vec![0u8; len];
        a.fill(&mut out_a);
        b.fill(&mut out_b);
        prop_assert_eq!(&out_a, &out_b);

        let mut seed2 = seed.clone();
        seed2[0] ^= 1;
        let mut c = HmacDrbg::new(&seed2);
        let mut out_c = vec![0u8; len];
        c.fill(&mut out_c);
        prop_assert_ne!(out_a, out_c);
    }
}
