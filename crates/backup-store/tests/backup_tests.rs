//! End-to-end backup/restore tests: validated restore, sequencing,
//! incremental efficiency, and adversarial archives.

use backup_store::{BackupError, BackupManager};
use chunk_store::Durability;
use chunk_store::{ChunkId, ChunkStore, ChunkStoreConfig, SecurityMode};
use std::sync::Arc;
use tdb_platform::{ArchivalStore, MemArchive, MemSecretStore, MemStore, VolatileCounter};

fn secret() -> MemSecretStore {
    MemSecretStore::from_label("backup-tests")
}

fn new_store() -> ChunkStore {
    ChunkStore::create(
        Arc::new(MemStore::new()),
        &secret(),
        Arc::new(VolatileCounter::new()),
        ChunkStoreConfig::small_for_tests(),
    )
    .unwrap()
}

fn put(store: &ChunkStore, data: &[u8]) -> ChunkId {
    let id = store.allocate_chunk_id().unwrap();
    store.write(id, data).unwrap();
    id
}

#[test]
fn full_backup_and_restore_roundtrip() {
    let store = new_store();
    let ids: Vec<_> = (0..25)
        .map(|i| put(&store, format!("chunk-{i}").as_bytes()))
        .collect();
    store.commit(Durability::Durable).unwrap();

    let archive = Arc::new(MemArchive::new());
    let mut mgr = BackupManager::new(archive.clone(), &secret(), SecurityMode::Full).unwrap();
    let name = mgr.backup_full(&store).unwrap();
    assert!(name.ends_with(".full"));

    let restored = new_store();
    BackupManager::restore_chain(&*archive, &secret(), SecurityMode::Full, &[name], &restored)
        .unwrap();
    for (i, id) in ids.iter().enumerate() {
        assert_eq!(restored.read(*id).unwrap(), format!("chunk-{i}").as_bytes());
    }
    assert_eq!(restored.live_chunks(), 25);
    // Allocation state restored: a new id does not collide.
    let fresh = restored.allocate_chunk_id().unwrap();
    assert!(!ids.contains(&fresh));
}

#[test]
fn incremental_chain_restores_in_order() {
    let store = new_store();
    let a = put(&store, b"a-v1");
    let b = put(&store, b"b-v1");
    store.commit(Durability::Durable).unwrap();

    let archive = Arc::new(MemArchive::new());
    let mut mgr = BackupManager::new(archive.clone(), &secret(), SecurityMode::Full).unwrap();
    let full = mgr.backup_full(&store).unwrap();

    // Change 1: update a, add c.
    store.write(a, b"a-v2").unwrap();
    let c = put(&store, b"c-v1");
    store.commit(Durability::Durable).unwrap();
    let incr1 = mgr.backup_incremental(&store).unwrap();

    // Change 2: remove b, update c.
    store.deallocate(b).unwrap();
    store.write(c, b"c-v2").unwrap();
    store.commit(Durability::Durable).unwrap();
    let incr2 = mgr.backup_incremental(&store).unwrap();

    let restored = new_store();
    BackupManager::restore_chain(
        &*archive,
        &secret(),
        SecurityMode::Full,
        &[full, incr1, incr2],
        &restored,
    )
    .unwrap();
    assert_eq!(restored.read(a).unwrap(), b"a-v2");
    assert!(restored.read(b).is_err());
    assert_eq!(restored.read(c).unwrap(), b"c-v2");
    assert_eq!(restored.live_chunks(), 2);
}

#[test]
fn incremental_is_small() {
    let store = new_store();
    let ids: Vec<_> = (0..200).map(|i| put(&store, &[i as u8; 100])).collect();
    store.commit(Durability::Durable).unwrap();

    let archive = Arc::new(MemArchive::new());
    let mut mgr = BackupManager::new(archive.clone(), &secret(), SecurityMode::Full).unwrap();
    let full = mgr.backup_full(&store).unwrap();

    store.write(ids[7], b"tiny change").unwrap();
    store.commit(Durability::Durable).unwrap();
    let incr = mgr.backup_incremental(&store).unwrap();

    let full_len = archive.len_of(&full).unwrap();
    let incr_len = archive.len_of(&incr).unwrap();
    assert!(
        incr_len * 10 < full_len,
        "incremental ({incr_len}) should be far smaller than full ({full_len})"
    );
}

#[test]
fn incremental_without_base_fails() {
    let store = new_store();
    let archive = Arc::new(MemArchive::new());
    let mut mgr = BackupManager::new(archive, &secret(), SecurityMode::Full).unwrap();
    assert!(matches!(
        mgr.backup_incremental(&store),
        Err(BackupError::NoBaseBackup)
    ));
}

#[test]
fn corrupted_backup_is_rejected_entirely() {
    let store = new_store();
    put(&store, b"precious");
    store.commit(Durability::Durable).unwrap();
    let archive = Arc::new(MemArchive::new());
    let mut mgr = BackupManager::new(archive.clone(), &secret(), SecurityMode::Full).unwrap();
    let name = mgr.backup_full(&store).unwrap();

    archive.corrupt(&name, 20, 3).unwrap();
    let restored = new_store();
    let err =
        BackupManager::restore_chain(&*archive, &secret(), SecurityMode::Full, &[name], &restored)
            .unwrap_err();
    assert!(matches!(err, BackupError::InvalidBackup(_)), "{err}");
    // Nothing was applied.
    assert_eq!(restored.live_chunks(), 0);
}

#[test]
fn truncated_backup_is_rejected() {
    let store = new_store();
    put(&store, b"precious");
    store.commit(Durability::Durable).unwrap();
    let archive = Arc::new(MemArchive::new());
    let mut mgr = BackupManager::new(archive.clone(), &secret(), SecurityMode::Full).unwrap();
    let name = mgr.backup_full(&store).unwrap();
    let len = archive.len_of(&name).unwrap();
    archive.truncate(&name, len / 2).unwrap();
    let restored = new_store();
    assert!(BackupManager::restore_chain(
        &*archive,
        &secret(),
        SecurityMode::Full,
        &[name],
        &restored
    )
    .is_err());
}

#[test]
fn out_of_order_incrementals_are_rejected() {
    let store = new_store();
    let a = put(&store, b"v1");
    store.commit(Durability::Durable).unwrap();
    let archive = Arc::new(MemArchive::new());
    let mut mgr = BackupManager::new(archive.clone(), &secret(), SecurityMode::Full).unwrap();
    let full = mgr.backup_full(&store).unwrap();
    store.write(a, b"v2").unwrap();
    store.commit(Durability::Durable).unwrap();
    let incr1 = mgr.backup_incremental(&store).unwrap();
    store.write(a, b"v3").unwrap();
    store.commit(Durability::Durable).unwrap();
    let incr2 = mgr.backup_incremental(&store).unwrap();

    // Swapped order.
    let restored = new_store();
    let err = BackupManager::restore_chain(
        &*archive,
        &secret(),
        SecurityMode::Full,
        &[full.clone(), incr2.clone(), incr1.clone()],
        &restored,
    )
    .unwrap_err();
    assert!(matches!(err, BackupError::SequenceViolation(_)));

    // Skipped incremental.
    let restored = new_store();
    let err = BackupManager::restore_chain(
        &*archive,
        &secret(),
        SecurityMode::Full,
        &[full, incr2],
        &restored,
    )
    .unwrap_err();
    assert!(matches!(err, BackupError::SequenceViolation(_)));
}

#[test]
fn chain_must_start_with_full() {
    let store = new_store();
    let a = put(&store, b"v1");
    store.commit(Durability::Durable).unwrap();
    let archive = Arc::new(MemArchive::new());
    let mut mgr = BackupManager::new(archive.clone(), &secret(), SecurityMode::Full).unwrap();
    let _full = mgr.backup_full(&store).unwrap();
    store.write(a, b"v2").unwrap();
    store.commit(Durability::Durable).unwrap();
    let incr = mgr.backup_incremental(&store).unwrap();

    let restored = new_store();
    let err =
        BackupManager::restore_chain(&*archive, &secret(), SecurityMode::Full, &[incr], &restored)
            .unwrap_err();
    assert!(matches!(err, BackupError::SequenceViolation(_)));
}

#[test]
fn latest_chain_discovery() {
    let store = new_store();
    let a = put(&store, b"v1");
    store.commit(Durability::Durable).unwrap();
    let archive = Arc::new(MemArchive::new());
    let mut mgr = BackupManager::new(archive.clone(), &secret(), SecurityMode::Full).unwrap();
    mgr.backup_full(&store).unwrap();
    store.write(a, b"v2").unwrap();
    store.commit(Durability::Durable).unwrap();
    mgr.backup_incremental(&store).unwrap();
    // Second full resets the chain.
    mgr.backup_full(&store).unwrap();
    store.write(a, b"v3").unwrap();
    store.commit(Durability::Durable).unwrap();
    mgr.backup_incremental(&store).unwrap();

    let chain = BackupManager::latest_chain(&*archive).unwrap();
    assert_eq!(chain.len(), 2);
    assert!(chain[0].ends_with(".full"));
    assert!(chain[1].ends_with(".incr"));

    let restored = new_store();
    BackupManager::restore_latest(&*archive, &secret(), SecurityMode::Full, &restored).unwrap();
    assert_eq!(restored.read(a).unwrap(), b"v3");
}

#[test]
fn backup_under_wrong_secret_cannot_restore() {
    let store = new_store();
    put(&store, b"x");
    store.commit(Durability::Durable).unwrap();
    let archive = Arc::new(MemArchive::new());
    let mut mgr = BackupManager::new(archive.clone(), &secret(), SecurityMode::Full).unwrap();
    let name = mgr.backup_full(&store).unwrap();

    let restored = new_store();
    let err = BackupManager::restore_chain(
        &*archive,
        &MemSecretStore::from_label("WRONG"),
        SecurityMode::Full,
        &[name],
        &restored,
    )
    .unwrap_err();
    assert!(matches!(err, BackupError::InvalidBackup(_)));
}

#[test]
fn backup_streams_are_encrypted() {
    let store = new_store();
    put(&store, b"DO-NOT-LEAK-ME-0123456789");
    store.commit(Durability::Durable).unwrap();
    let archive = Arc::new(MemArchive::new());
    let mut mgr = BackupManager::new(archive.clone(), &secret(), SecurityMode::Full).unwrap();
    let name = mgr.backup_full(&store).unwrap();
    let mut r = archive.open(&name).unwrap();
    let mut bytes = Vec::new();
    std::io::Read::read_to_end(&mut r, &mut bytes).unwrap();
    assert!(!bytes.windows(12).any(|w| w == b"DO-NOT-LEAK-"));
}

#[test]
fn restore_into_nonempty_store_fails() {
    let store = new_store();
    put(&store, b"x");
    store.commit(Durability::Durable).unwrap();
    let archive = Arc::new(MemArchive::new());
    let mut mgr = BackupManager::new(archive.clone(), &secret(), SecurityMode::Full).unwrap();
    let name = mgr.backup_full(&store).unwrap();

    let target = new_store();
    put(&target, b"already here");
    target.commit(Durability::Durable).unwrap();
    assert!(BackupManager::restore_chain(
        &*archive,
        &secret(),
        SecurityMode::Full,
        &[name],
        &target
    )
    .is_err());
}

#[test]
fn manager_continues_sequence_from_archive() {
    let store = new_store();
    put(&store, b"x");
    store.commit(Durability::Durable).unwrap();
    let archive = Arc::new(MemArchive::new());
    let first_name;
    {
        let mut mgr = BackupManager::new(archive.clone(), &secret(), SecurityMode::Full).unwrap();
        first_name = mgr.backup_full(&store).unwrap();
    }
    // A new manager (process restart) must not collide with old names.
    let mut mgr2 = BackupManager::new(archive.clone(), &secret(), SecurityMode::Full).unwrap();
    let second_name = mgr2.backup_full(&store).unwrap();
    assert_ne!(first_name, second_name);
    assert!(mgr2.next_seq() >= 3);
}

#[test]
fn prune_keeps_newest_chains() {
    let store = new_store();
    let a = put(&store, b"v1");
    store.commit(Durability::Durable).unwrap();
    let archive = Arc::new(MemArchive::new());
    let mut mgr = BackupManager::new(archive.clone(), &secret(), SecurityMode::Full).unwrap();

    // Chain 1: full + incr. Chain 2: full + 2 incrs. Chain 3: full.
    mgr.backup_full(&store).unwrap();
    store.write(a, b"v2").unwrap();
    store.commit(Durability::Durable).unwrap();
    mgr.backup_incremental(&store).unwrap();
    mgr.backup_full(&store).unwrap();
    store.write(a, b"v3").unwrap();
    store.commit(Durability::Durable).unwrap();
    mgr.backup_incremental(&store).unwrap();
    store.write(a, b"v4").unwrap();
    store.commit(Durability::Durable).unwrap();
    mgr.backup_incremental(&store).unwrap();
    mgr.backup_full(&store).unwrap();
    assert_eq!(BackupManager::list_backups(&*archive).unwrap().len(), 6);

    // Keep the last two chains: chain 1 (2 streams) goes away.
    let removed = BackupManager::prune(&*archive, 2).unwrap();
    assert_eq!(removed.len(), 2);
    assert_eq!(BackupManager::list_backups(&*archive).unwrap().len(), 4);

    // Latest chain still restores.
    let restored = new_store();
    BackupManager::restore_latest(&*archive, &secret(), SecurityMode::Full, &restored).unwrap();
    assert_eq!(restored.read(a).unwrap(), b"v4");

    // keep_chains = 0 is a no-op guard, and over-keeping removes nothing.
    assert!(BackupManager::prune(&*archive, 0).unwrap().is_empty());
    assert!(BackupManager::prune(&*archive, 10).unwrap().is_empty());
}

#[test]
fn off_mode_backup_roundtrip() {
    let mem = MemStore::new();
    let mut cfg = ChunkStoreConfig::small_for_tests();
    cfg.security = SecurityMode::Off;
    let store = ChunkStore::create(
        Arc::new(mem),
        &secret(),
        Arc::new(VolatileCounter::new()),
        cfg.clone(),
    )
    .unwrap();
    let id = put(&store, b"plain");
    store.commit(Durability::Durable).unwrap();
    let archive = Arc::new(MemArchive::new());
    let mut mgr = BackupManager::new(archive.clone(), &secret(), SecurityMode::Off).unwrap();
    let name = mgr.backup_full(&store).unwrap();

    let restored = ChunkStore::create(
        Arc::new(MemStore::new()),
        &secret(),
        Arc::new(VolatileCounter::new()),
        cfg,
    )
    .unwrap();
    BackupManager::restore_chain(&*archive, &secret(), SecurityMode::Off, &[name], &restored)
        .unwrap();
    assert_eq!(restored.read(id).unwrap(), b"plain");
}
