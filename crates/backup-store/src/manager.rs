//! Backup creation and restore orchestration.

use crate::error::{BackupError, Result};
use crate::format::{BackupKind, BackupPayload};
use chunk_store::crypto_ctx::CryptoCtx;
use chunk_store::{ChunkStore, SecurityMode, Snapshot};
use std::io::Read;
use std::sync::Arc;
use tdb_platform::{ArchivalStore, SecretStore};

const DOMAIN: &str = "tdb.backup";

/// Creates full and incremental backups of a chunk store into an archival
/// store, and restores validated backup chains.
pub struct BackupManager {
    archive: Arc<dyn ArchivalStore>,
    ctx: CryptoCtx,
    /// Snapshot and sequence of the most recent backup (the diff base).
    last: Option<(Snapshot, u64)>,
    next_seq: u64,
}

impl BackupManager {
    /// Create a manager. `mode` must match the database's security mode so
    /// restores and backups agree on sealing.
    pub fn new(
        archive: Arc<dyn ArchivalStore>,
        secret: &dyn SecretStore,
        mode: SecurityMode,
    ) -> Result<Self> {
        let salt = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let ctx = CryptoCtx::with_domain(mode, secret, salt, DOMAIN)?;
        // Continue the sequence after existing backups in the archive.
        let mut next_seq = 1;
        for name in archive.list()? {
            if let Some(seq) = parse_backup_name(&name) {
                next_seq = next_seq.max(seq + 1);
            }
        }
        Ok(BackupManager {
            archive,
            ctx,
            last: None,
            next_seq,
        })
    }

    /// Stream name for a backup sequence number.
    fn name_for(seq: u64, kind: BackupKind) -> String {
        let k = match kind {
            BackupKind::Full => "full",
            BackupKind::Incremental => "incr",
        };
        format!("backup.{seq:08}.{k}")
    }

    fn write_stream(&self, name: &str, payload: &BackupPayload) -> Result<usize> {
        let bytes = payload.encode(&self.ctx);
        let mut w = self.archive.create(name)?;
        w.write_all(&bytes)?;
        w.flush()?;
        Ok(bytes.len())
    }

    /// Record bytes/chunks processed for a finished backup stream into the
    /// store's observability registry (cold path; resolving by name is fine).
    fn record_backup(
        store: &ChunkStore,
        hist_name: &str,
        sw: &mut tdb_obs::Stopwatch,
        bytes: usize,
        chunks: usize,
    ) {
        let obs = store.obs();
        obs.counter("backup.bytes_written").add(bytes as u64);
        obs.counter("backup.chunks_written").add(chunks as u64);
        sw.lap_into(&obs.histogram(hist_name));
    }

    /// Create a full backup from a fresh snapshot. Returns the stream name.
    pub fn backup_full(&mut self, store: &ChunkStore) -> Result<String> {
        let mut sw = tdb_obs::Stopwatch::start();
        let snap = store.snapshot();
        let mut writes = Vec::new();
        for id in snap.chunk_ids() {
            writes.push((id, store.read_at_snapshot(&snap, id)?));
        }
        let seq = self.next_seq;
        let chunks = writes.len();
        let payload = BackupPayload {
            kind: BackupKind::Full,
            seq,
            base_seq: 0,
            snap_seq: snap.commit_seq(),
            writes,
            removed: Vec::new(),
        };
        let name = Self::name_for(seq, BackupKind::Full);
        let bytes = self.write_stream(&name, &payload)?;
        self.next_seq += 1;
        self.last = Some((snap, seq));
        Self::record_backup(store, "backup.full", &mut sw, bytes, chunks);
        Ok(name)
    }

    /// Create an incremental backup containing only the changes since the
    /// previous backup taken by this manager. Fails with
    /// [`BackupError::NoBaseBackup`] if none exists.
    pub fn backup_incremental(&mut self, store: &ChunkStore) -> Result<String> {
        let mut sw = tdb_obs::Stopwatch::start();
        let Some((base_snap, base_seq)) = &self.last else {
            return Err(BackupError::NoBaseBackup);
        };
        let snap = store.snapshot();
        let diff = store.diff_snapshots(base_snap, &snap);
        let mut writes = Vec::with_capacity(diff.changed.len());
        for (id, _) in &diff.changed {
            writes.push((*id, store.read_at_snapshot(&snap, *id)?));
        }
        let seq = self.next_seq;
        let payload = BackupPayload {
            kind: BackupKind::Incremental,
            seq,
            base_seq: *base_seq,
            snap_seq: snap.commit_seq(),
            writes,
            removed: diff.removed,
        };
        let name = Self::name_for(seq, BackupKind::Incremental);
        let chunks = payload.writes.len();
        let bytes = self.write_stream(&name, &payload)?;
        self.next_seq += 1;
        self.last = Some((snap, seq));
        Self::record_backup(store, "backup.incremental", &mut sw, bytes, chunks);
        Ok(name)
    }

    /// Names of all backups in the archive, in sequence order.
    pub fn list_backups(archive: &dyn ArchivalStore) -> Result<Vec<String>> {
        let mut names: Vec<String> = archive
            .list()?
            .into_iter()
            .filter(|n| parse_backup_name(n).is_some())
            .collect();
        names.sort();
        Ok(names)
    }

    /// The latest restorable chain: the most recent full backup and every
    /// incremental after it, in order.
    pub fn latest_chain(archive: &dyn ArchivalStore) -> Result<Vec<String>> {
        let names = Self::list_backups(archive)?;
        let last_full = names
            .iter()
            .rposition(|n| n.ends_with(".full"))
            .ok_or_else(|| BackupError::SequenceViolation("no full backup found".into()))?;
        Ok(names[last_full..].to_vec())
    }

    /// Read and validate one backup stream.
    fn read_stream(
        archive: &dyn ArchivalStore,
        ctx: &CryptoCtx,
        name: &str,
    ) -> Result<BackupPayload> {
        let mut r = archive.open(name)?;
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes)?;
        BackupPayload::decode(ctx, &bytes)
    }

    /// Restore a chain of backups (one full, then incrementals in creation
    /// order) into `store`, which must be freshly created and empty. Every
    /// stream is validated before anything is applied; sequencing is
    /// enforced ("restores incremental backups in the same sequence as
    /// they were created").
    pub fn restore_chain(
        archive: &dyn ArchivalStore,
        secret: &dyn SecretStore,
        mode: SecurityMode,
        names: &[String],
        store: &ChunkStore,
    ) -> Result<()> {
        let mut sw = tdb_obs::Stopwatch::start();
        let ctx = CryptoCtx::with_domain(mode, secret, 0, DOMAIN)?;
        if names.is_empty() {
            return Err(BackupError::SequenceViolation("empty chain".into()));
        }
        // Validate everything first — a bad stream must not leave the
        // store half-restored.
        let mut payloads = Vec::with_capacity(names.len());
        for name in names {
            payloads.push(Self::read_stream(archive, &ctx, name)?);
        }
        if payloads[0].kind != BackupKind::Full {
            return Err(BackupError::SequenceViolation(
                "chain must start with a full backup".into(),
            ));
        }
        let mut prev_seq = payloads[0].seq;
        for p in &payloads[1..] {
            if p.kind != BackupKind::Incremental {
                return Err(BackupError::SequenceViolation(
                    "full backup in the middle of a chain".into(),
                ));
            }
            if p.base_seq != prev_seq {
                return Err(BackupError::SequenceViolation(format!(
                    "incremental {} is based on {}, expected {}",
                    p.seq, p.base_seq, prev_seq
                )));
            }
            prev_seq = p.seq;
        }

        let (mut chunks_applied, mut bytes_applied) = (0u64, 0u64);
        let mut iter = payloads.into_iter();
        let full = iter.next().expect("non-empty");
        chunks_applied += full.writes.len() as u64;
        bytes_applied += full.writes.iter().map(|(_, d)| d.len() as u64).sum::<u64>();
        store.restore_image(full.writes)?;
        for p in iter {
            chunks_applied += p.writes.len() as u64;
            bytes_applied += p.writes.iter().map(|(_, d)| d.len() as u64).sum::<u64>();
            store.apply_restore_delta(p.writes, p.removed)?;
        }
        let obs = store.obs();
        obs.counter("restore.chunks_applied").add(chunks_applied);
        obs.counter("restore.bytes_applied").add(bytes_applied);
        sw.lap_into(&obs.histogram("backup.restore"));
        Ok(())
    }

    /// Convenience: restore the latest chain in `archive` into `store`.
    pub fn restore_latest(
        archive: &dyn ArchivalStore,
        secret: &dyn SecretStore,
        mode: SecurityMode,
        store: &ChunkStore,
    ) -> Result<()> {
        let chain = Self::latest_chain(archive)?;
        Self::restore_chain(archive, secret, mode, &chain, store)
    }

    /// Sequence number the next backup will use.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Delete superseded backups, keeping the newest `keep_chains` full
    /// chains (a full backup plus its incrementals). The archive "may
    /// opportunistically migrate \[backups\] to a remote server" (paper §2);
    /// pruning bounds the staging footprint. Returns the names removed.
    pub fn prune(archive: &dyn ArchivalStore, keep_chains: usize) -> Result<Vec<String>> {
        let names = Self::list_backups(archive)?;
        let full_positions: Vec<usize> = names
            .iter()
            .enumerate()
            .filter(|(_, n)| n.ends_with(".full"))
            .map(|(i, _)| i)
            .collect();
        if full_positions.len() <= keep_chains || keep_chains == 0 {
            return Ok(Vec::new());
        }
        let cut = full_positions[full_positions.len() - keep_chains];
        let mut removed = Vec::new();
        for name in &names[..cut] {
            archive.remove(name)?;
            removed.push(name.clone());
        }
        Ok(removed)
    }
}

fn parse_backup_name(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("backup.")?;
    let (seq, kind) = rest.split_once('.')?;
    if kind != "full" && kind != "incr" {
        return None;
    }
    seq.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backup_names_parse_and_sort() {
        assert_eq!(parse_backup_name("backup.00000001.full"), Some(1));
        assert_eq!(parse_backup_name("backup.00000012.incr"), Some(12));
        assert_eq!(parse_backup_name("backup.x.full"), None);
        assert_eq!(parse_backup_name("seg.000001"), None);
        assert_eq!(parse_backup_name("backup.00000001.weird"), None);
        let a = BackupManager::name_for(1, BackupKind::Full);
        let b = BackupManager::name_for(2, BackupKind::Incremental);
        assert!(a < b);
    }
}
