//! Backup stream format.
//!
//! A backup stream is:
//!
//! ```text
//! magic(8) || kind(1) || seq(8) || base_seq(8) || snap_seq(8)
//!          || body_len(4) || sealed-body || tag(32)
//! ```
//!
//! The body (encrypted under the backup domain key in `Full` security,
//! plaintext in `Off`) carries the chunk images and, for incrementals, the
//! removed ids. The tag is an HMAC over everything before it, so any
//! modification — including of the plaintext header fields — is rejected at
//! restore.

use crate::error::{BackupError, Result};
use chunk_store::crypto_ctx::CryptoCtx;
use chunk_store::ChunkId;
use tdb_crypto::DIGEST_LEN;

const MAGIC: [u8; 8] = *b"TDBBKP01";

/// `(chunk writes, removed ids)` decoded from a backup body.
type DecodedBody = (Vec<(ChunkId, Vec<u8>)>, Vec<ChunkId>);
/// Fixed byte length of the plaintext stream header.
const HEADER_LEN: usize = 8 + 1 + 8 + 8 + 8 + 4;

/// Kind of backup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackupKind {
    /// Complete database image.
    Full,
    /// Changes since the previous backup (by `base_seq`).
    Incremental,
}

impl BackupKind {
    fn tag(self) -> u8 {
        match self {
            BackupKind::Full => 0,
            BackupKind::Incremental => 1,
        }
    }

    fn from_tag(t: u8) -> Option<Self> {
        match t {
            0 => Some(BackupKind::Full),
            1 => Some(BackupKind::Incremental),
            _ => None,
        }
    }
}

/// Decoded backup contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackupPayload {
    /// Kind of backup.
    pub kind: BackupKind,
    /// Backup sequence number (monotonic per database).
    pub seq: u64,
    /// For incrementals: the `seq` of the backup this one builds on.
    pub base_seq: u64,
    /// Chunk-store commit sequence captured by the snapshot.
    pub snap_seq: u64,
    /// Chunk images (full: all; incremental: changed).
    pub writes: Vec<(ChunkId, Vec<u8>)>,
    /// Ids removed since the base (incremental only).
    pub removed: Vec<ChunkId>,
}

impl BackupPayload {
    fn encode_body(&self) -> Vec<u8> {
        let payload_bytes: usize = self.writes.iter().map(|(_, d)| 12 + d.len()).sum();
        let mut out = Vec::with_capacity(8 + payload_bytes + self.removed.len() * 8);
        out.extend_from_slice(&(self.writes.len() as u32).to_le_bytes());
        for (id, data) in &self.writes {
            out.extend_from_slice(&id.0.to_le_bytes());
            out.extend_from_slice(&(data.len() as u32).to_le_bytes());
            out.extend_from_slice(data);
        }
        out.extend_from_slice(&(self.removed.len() as u32).to_le_bytes());
        for id in &self.removed {
            out.extend_from_slice(&id.0.to_le_bytes());
        }
        out
    }

    fn decode_body(bytes: &[u8]) -> Result<DecodedBody> {
        let bad = |m: &str| BackupError::InvalidBackup(m.to_string());
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
            if *pos + n > bytes.len() {
                return Err(bad("body truncated"));
            }
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        let n_writes = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4")) as usize;
        if n_writes > bytes.len() {
            return Err(bad("write count exceeds body"));
        }
        let mut writes = Vec::with_capacity(n_writes);
        for _ in 0..n_writes {
            let id = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8"));
            let len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4")) as usize;
            let data = take(&mut pos, len)?.to_vec();
            writes.push((ChunkId(id), data));
        }
        let n_removed = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4")) as usize;
        if n_removed > bytes.len() {
            return Err(bad("removed count exceeds body"));
        }
        let mut removed = Vec::with_capacity(n_removed);
        for _ in 0..n_removed {
            removed.push(ChunkId(u64::from_le_bytes(
                take(&mut pos, 8)?.try_into().expect("8"),
            )));
        }
        if pos != bytes.len() {
            return Err(bad("trailing bytes in body"));
        }
        Ok((writes, removed))
    }

    /// Serialize, seal, and authenticate the backup stream.
    pub fn encode(&self, ctx: &CryptoCtx) -> Vec<u8> {
        let sealed = ctx.seal(&self.encode_body());
        let mut out = Vec::with_capacity(HEADER_LEN + sealed.len() + DIGEST_LEN);
        out.extend_from_slice(&MAGIC);
        out.push(self.kind.tag());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.base_seq.to_le_bytes());
        out.extend_from_slice(&self.snap_seq.to_le_bytes());
        out.extend_from_slice(&(sealed.len() as u32).to_le_bytes());
        out.extend_from_slice(&sealed);
        let tag = ctx.anchor_tag(&out);
        out.extend_from_slice(&tag);
        out
    }

    /// Validate and decode a backup stream.
    pub fn decode(ctx: &CryptoCtx, bytes: &[u8]) -> Result<Self> {
        let bad = |m: &str| BackupError::InvalidBackup(m.to_string());
        if bytes.len() < HEADER_LEN + DIGEST_LEN {
            return Err(bad("stream too short"));
        }
        if bytes[..8] != MAGIC {
            return Err(bad("bad magic"));
        }
        let kind = BackupKind::from_tag(bytes[8]).ok_or_else(|| bad("bad kind tag"))?;
        let seq = u64::from_le_bytes(bytes[9..17].try_into().expect("8"));
        let base_seq = u64::from_le_bytes(bytes[17..25].try_into().expect("8"));
        let snap_seq = u64::from_le_bytes(bytes[25..33].try_into().expect("8"));
        let body_len = u32::from_le_bytes(bytes[33..37].try_into().expect("4")) as usize;
        if bytes.len() != HEADER_LEN + body_len + DIGEST_LEN {
            return Err(bad("length mismatch"));
        }
        let (signed, tag_bytes) = bytes.split_at(HEADER_LEN + body_len);
        let tag: [u8; DIGEST_LEN] = tag_bytes.try_into().expect("32");
        if !CryptoCtx::tags_equal(&ctx.anchor_tag(signed), &tag) {
            return Err(bad("authentication tag mismatch"));
        }
        let body = ctx
            .open(&signed[HEADER_LEN..])
            .map_err(|_| bad("body does not decrypt"))?;
        let (writes, removed) = Self::decode_body(&body)?;
        Ok(BackupPayload {
            kind,
            seq,
            base_seq,
            snap_seq,
            writes,
            removed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chunk_store::SecurityMode;
    use tdb_platform::MemSecretStore;

    fn ctx() -> CryptoCtx {
        CryptoCtx::with_domain(
            SecurityMode::Full,
            &MemSecretStore::from_label("bkp-fmt"),
            7,
            "tdb.backup",
        )
        .unwrap()
    }

    fn sample() -> BackupPayload {
        BackupPayload {
            kind: BackupKind::Incremental,
            seq: 5,
            base_seq: 4,
            snap_seq: 77,
            writes: vec![(ChunkId(0), b"zero".to_vec()), (ChunkId(9), vec![1; 300])],
            removed: vec![ChunkId(3)],
        }
    }

    #[test]
    fn roundtrip() {
        let c = ctx();
        let p = sample();
        let enc = p.encode(&c);
        assert_eq!(BackupPayload::decode(&c, &enc).unwrap(), p);
    }

    #[test]
    fn empty_full_backup_roundtrip() {
        let c = ctx();
        let p = BackupPayload {
            kind: BackupKind::Full,
            seq: 1,
            base_seq: 0,
            snap_seq: 0,
            writes: vec![],
            removed: vec![],
        };
        let enc = p.encode(&c);
        assert_eq!(BackupPayload::decode(&c, &enc).unwrap(), p);
    }

    #[test]
    fn any_bit_flip_rejected() {
        let c = ctx();
        let enc = sample().encode(&c);
        for i in (0..enc.len()).step_by(11) {
            let mut bad = enc.clone();
            bad[i] ^= 0x40;
            assert!(BackupPayload::decode(&c, &bad).is_err(), "byte {i}");
        }
    }

    #[test]
    fn truncation_rejected() {
        let c = ctx();
        let enc = sample().encode(&c);
        for cut in [0, 10, HEADER_LEN, enc.len() - 1] {
            assert!(BackupPayload::decode(&c, &enc[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn wrong_key_rejected() {
        let c1 = ctx();
        let c2 = CryptoCtx::with_domain(
            SecurityMode::Full,
            &MemSecretStore::from_label("other"),
            7,
            "tdb.backup",
        )
        .unwrap();
        let enc = sample().encode(&c1);
        assert!(BackupPayload::decode(&c2, &enc).is_err());
    }

    #[test]
    fn payload_is_encrypted() {
        let c = ctx();
        let mut p = sample();
        p.writes[0].1 = b"SECRET-CONTENT-KEY".to_vec();
        let enc = p.encode(&c);
        assert!(!enc.windows(18).any(|w| w == b"SECRET-CONTENT-KEY"));
    }
}
