//! The TDB **backup store** (paper §2, detailed in the OSDI'00 companion
//! paper \[23\]).
//!
//! "The backup store creates and securely restores database backups, which
//! can be either full or incremental. The backup store restores only valid
//! backups. In addition, it restores incremental backups in the same
//! sequence as they were created. Backups are created using the database
//! snapshots provided by the chunk store."
//!
//! * A **full backup** serializes every chunk of a copy-on-write snapshot.
//! * An **incremental backup** serializes only the chunks whose location-map
//!   entries changed since the previous backup's snapshot — computed by the
//!   chunk store's subtree-hash-pruned snapshot diff, which is why frequent
//!   small backups are cheap (§3.2.1).
//! * Every backup stream is encrypted and MAC'd under keys derived from the
//!   platform secret with a backup-specific domain, so the archival store is
//!   trusted for nothing. Restore refuses invalid MACs, gaps, reordered or
//!   cross-database streams.
//!
//! ```
//! use backup_store::BackupManager;
//! use chunk_store::{ChunkStore, ChunkStoreConfig, Durability};
//! use tdb_platform::{MemArchive, MemSecretStore, MemStore, VolatileCounter};
//! use std::sync::Arc;
//!
//! let secret = MemSecretStore::from_label("backup-doc");
//! let store = ChunkStore::create(
//!     Arc::new(MemStore::new()), &secret,
//!     Arc::new(VolatileCounter::new()), ChunkStoreConfig::default()).unwrap();
//! let id = store.allocate_chunk_id().unwrap();
//! store.write(id, b"meter").unwrap();
//! store.commit(Durability::Durable).unwrap();
//!
//! let archive = Arc::new(MemArchive::new());
//! let mut mgr = BackupManager::new(archive.clone(), &secret,
//!     chunk_store::SecurityMode::Full).unwrap();
//! let name = mgr.backup_full(&store).unwrap();
//!
//! // Restore into a fresh device.
//! let restored = ChunkStore::create(
//!     Arc::new(MemStore::new()), &secret,
//!     Arc::new(VolatileCounter::new()), ChunkStoreConfig::default()).unwrap();
//! BackupManager::restore_chain(&*archive, &secret,
//!     chunk_store::SecurityMode::Full, &[name], &restored).unwrap();
//! assert_eq!(restored.read(id).unwrap(), b"meter");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod format;
pub mod manager;

pub use error::{BackupError, Result};
pub use format::{BackupKind, BackupPayload};
pub use manager::BackupManager;
