//! Backup store errors.

use std::fmt;

/// Result alias for backup operations.
pub type Result<T> = std::result::Result<T, BackupError>;

/// Errors from backup creation and restore.
#[derive(Debug)]
pub enum BackupError {
    /// The backup stream is invalid: bad MAC, bad structure, wrong key.
    InvalidBackup(String),
    /// Incremental backups presented out of their creation sequence, with
    /// gaps, or not anchored at a full backup.
    SequenceViolation(String),
    /// An incremental backup was requested before any full backup.
    NoBaseBackup,
    /// Error from the chunk store.
    Chunk(chunk_store::ChunkStoreError),
    /// Error from the platform (archival store I/O).
    Platform(tdb_platform::PlatformError),
    /// Plain I/O error on the backup stream.
    Io(std::io::Error),
}

impl fmt::Display for BackupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackupError::InvalidBackup(m) => write!(f, "invalid backup: {m}"),
            BackupError::SequenceViolation(m) => write!(f, "backup sequence violation: {m}"),
            BackupError::NoBaseBackup => {
                write!(f, "no full backup exists to base an incremental on")
            }
            BackupError::Chunk(e) => write!(f, "chunk store: {e}"),
            BackupError::Platform(e) => write!(f, "platform: {e}"),
            BackupError::Io(e) => write!(f, "I/O: {e}"),
        }
    }
}

impl std::error::Error for BackupError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BackupError::Chunk(e) => Some(e),
            BackupError::Platform(e) => Some(e),
            BackupError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<chunk_store::ChunkStoreError> for BackupError {
    fn from(e: chunk_store::ChunkStoreError) -> Self {
        BackupError::Chunk(e)
    }
}

impl From<tdb_platform::PlatformError> for BackupError {
    fn from(e: tdb_platform::PlatformError) -> Self {
        BackupError::Platform(e)
    }
}

impl From<std::io::Error> for BackupError {
    fn from(e: std::io::Error) -> Self {
        BackupError::Io(e)
    }
}

impl BackupError {
    /// Stable, layer-independent classification (see [`tdb_core::ErrorKind`]).
    pub fn kind(&self) -> tdb_core::ErrorKind {
        use tdb_core::ErrorKind;
        match self {
            BackupError::InvalidBackup(_) => ErrorKind::Tamper,
            BackupError::SequenceViolation(_) | BackupError::NoBaseBackup => ErrorKind::Usage,
            BackupError::Chunk(e) => e.kind(),
            BackupError::Platform(e) => e.kind(),
            BackupError::Io(_) => ErrorKind::Io,
        }
    }
}

impl From<BackupError> for tdb_core::Error {
    fn from(e: BackupError) -> Self {
        tdb_core::Error::with_source(e.kind(), e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(BackupError::NoBaseBackup
            .to_string()
            .contains("full backup"));
        assert!(BackupError::InvalidBackup("mac".into())
            .to_string()
            .contains("mac"));
        assert!(BackupError::SequenceViolation("gap".into())
            .to_string()
            .contains("gap"));
    }
}
