//! Smart references to opened objects.
//!
//! "A Ref is valid only until the transaction it was generated in is
//! committed or aborted; any attempt to use the Ref further results in a
//! checked runtime error. This means that each transaction must start
//! navigating objects from the root; it cannot retain object references
//! across transactions." (paper §4.1)
//!
//! [`ReadonlyRef::get`] / [`WritableRef::get_mut`] panic after the owning
//! transaction ends (the Rust analog of the paper's checked runtime error);
//! the `try_*` variants return [`ObjectStoreError::TransactionInactive`]
//! for applications that prefer recoverable handling.

use crate::error::{ObjectStoreError, Result};
use crate::store::ObjectCell;
use crate::txn::TxnCore;
use crate::{ObjectId, Persistent};
use parking_lot::{
    MappedRwLockReadGuard, MappedRwLockWriteGuard, RwLockReadGuard, RwLockWriteGuard,
};
use std::marker::PhantomData;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// A reference to an object opened in read-only mode. Provides access "to
/// a const object" — only shared access is possible through it.
pub struct ReadonlyRef<T: Persistent> {
    pub(crate) cell: Arc<ObjectCell>,
    pub(crate) txn: Arc<TxnCore>,
    pub(crate) _p: PhantomData<fn() -> T>,
}

impl<T: Persistent> ReadonlyRef<T> {
    /// The referenced object's id.
    pub fn id(&self) -> ObjectId {
        self.cell.id
    }

    /// Whether the owning transaction is still active (the ref usable).
    pub fn is_valid(&self) -> bool {
        self.txn.active.load(Ordering::Acquire)
    }

    /// Borrow the object. Errors if the transaction has ended.
    pub fn try_get(&self) -> Result<MappedRwLockReadGuard<'_, T>> {
        if !self.is_valid() {
            return Err(ObjectStoreError::TransactionInactive);
        }
        let guard = self.cell.data.read();
        Ok(RwLockReadGuard::map(guard, |obj| {
            obj.as_any()
                .downcast_ref::<T>()
                .expect("type checked at open")
        }))
    }

    /// Borrow the object. Panics if the transaction has ended — the
    /// checked runtime error of paper §4.1.
    pub fn get(&self) -> MappedRwLockReadGuard<'_, T> {
        self.try_get()
            .expect("Ref used after its transaction committed or aborted")
    }
}

/// A reference to an object opened in read-write mode.
pub struct WritableRef<T: Persistent> {
    pub(crate) cell: Arc<ObjectCell>,
    pub(crate) txn: Arc<TxnCore>,
    pub(crate) _p: PhantomData<fn() -> T>,
}

impl<T: Persistent> WritableRef<T> {
    /// The referenced object's id.
    pub fn id(&self) -> ObjectId {
        self.cell.id
    }

    /// Whether the owning transaction is still active.
    pub fn is_valid(&self) -> bool {
        self.txn.active.load(Ordering::Acquire)
    }

    /// Borrow the object immutably.
    pub fn try_get(&self) -> Result<MappedRwLockReadGuard<'_, T>> {
        if !self.is_valid() {
            return Err(ObjectStoreError::TransactionInactive);
        }
        let guard = self.cell.data.read();
        Ok(RwLockReadGuard::map(guard, |obj| {
            obj.as_any()
                .downcast_ref::<T>()
                .expect("type checked at open")
        }))
    }

    /// Borrow the object immutably; panics after transaction end.
    pub fn get(&self) -> MappedRwLockReadGuard<'_, T> {
        self.try_get()
            .expect("Ref used after its transaction committed or aborted")
    }

    /// Borrow the object mutably. Errors if the transaction has ended.
    pub fn try_get_mut(&self) -> Result<MappedRwLockWriteGuard<'_, T>> {
        if !self.is_valid() {
            return Err(ObjectStoreError::TransactionInactive);
        }
        let guard = self.cell.data.write();
        Ok(RwLockWriteGuard::map(guard, |obj| {
            obj.as_any_mut()
                .downcast_mut::<T>()
                .expect("type checked at open")
        }))
    }

    /// Borrow the object mutably; panics after transaction end.
    pub fn get_mut(&self) -> MappedRwLockWriteGuard<'_, T> {
        self.try_get_mut()
            .expect("Ref used after its transaction committed or aborted")
    }
}
