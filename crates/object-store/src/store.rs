//! The object store: cache, roots, and transaction factory.

use crate::class::{ClassRegistry, Persistent};
use crate::error::{ObjectStoreError, Result};
use crate::locks::{LockManager, LockStats};
use crate::pickle::{Pickler, Unpickler};
use crate::txn::{Transaction, TxnCore};
use crate::{ChunkId, ObjectId};
use chunk_store::{ChunkStore, Durability, ShardedChunkStore};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tdb_obs::{Counter, Gauge, Registry};

/// Tuning knobs for the object store.
///
/// Prefer building one through [`StoreOptions`], which validates the values
/// and can pull overrides from `TDB_*` environment variables.
#[derive(Clone, Debug)]
pub struct ObjectStoreConfig {
    /// Enable transactional locking. "The application may even switch off
    /// locking to avoid the locking overhead in the absence of concurrent
    /// transactions." (paper §4.2.3)
    pub locking: bool,
    /// How long a lock acquisition waits before breaking a potential
    /// deadlock with [`ObjectStoreError::LockTimeout`].
    pub lock_timeout: Duration,
    /// Object cache budget in (approximate, pickled) bytes. The paper's
    /// evaluation used a 4 MB cache (§7.2).
    pub cache_budget: usize,
    /// Number of independent object-cache shards (power of two). More
    /// shards reduce mutex contention on the cache-hit path at the cost of
    /// coarser per-shard byte budgets.
    pub cache_shards: usize,
}

impl Default for ObjectStoreConfig {
    fn default() -> Self {
        ObjectStoreConfig {
            locking: true,
            lock_timeout: Duration::from_millis(1000),
            cache_budget: 4 * 1024 * 1024,
            cache_shards: DEFAULT_CACHE_SHARDS,
        }
    }
}

/// Builder for [`ObjectStoreConfig`] with validation and environment
/// overrides. Replaces ad-hoc field poking and scattered `TDB_*` parsing:
///
/// ```
/// use object_store::StoreOptions;
/// let cfg = StoreOptions::new()
///     .cache_bytes(8 * 1024 * 1024)
///     .cache_shards(32)
///     .lock_timeout_ms(250)
///     .build()
///     .unwrap();
/// assert_eq!(cfg.cache_shards, 32);
/// ```
#[derive(Clone, Debug, Default)]
pub struct StoreOptions {
    locking: Option<bool>,
    lock_timeout: Option<Duration>,
    cache_budget: Option<usize>,
    cache_shards: Option<usize>,
}

impl StoreOptions {
    /// Start from the defaults of [`ObjectStoreConfig`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Enable or disable transactional locking (default: enabled).
    pub fn locking(mut self, on: bool) -> Self {
        self.locking = Some(on);
        self
    }

    /// Lock wait before deadlock-breaking timeout (default: 1000 ms).
    pub fn lock_timeout(mut self, timeout: Duration) -> Self {
        self.lock_timeout = Some(timeout);
        self
    }

    /// Convenience: lock timeout in milliseconds.
    pub fn lock_timeout_ms(self, ms: u64) -> Self {
        self.lock_timeout(Duration::from_millis(ms))
    }

    /// Object cache budget in bytes (default: 4 MiB).
    pub fn cache_bytes(mut self, bytes: usize) -> Self {
        self.cache_budget = Some(bytes);
        self
    }

    /// Number of cache shards; must be a power of two in `1..=1024`
    /// (default: 16).
    pub fn cache_shards(mut self, shards: usize) -> Self {
        self.cache_shards = Some(shards);
        self
    }

    /// Apply overrides from the environment: `TDB_CACHE_BYTES`,
    /// `TDB_CACHE_SHARDS`, `TDB_LOCK_TIMEOUT_MS`, `TDB_LOCKING` (`0`/`off`
    /// disables). Unset or unparsable variables leave the current value.
    pub fn from_env(mut self) -> Self {
        fn parse<T: std::str::FromStr>(name: &str) -> Option<T> {
            std::env::var(name).ok()?.trim().parse().ok()
        }
        if let Some(b) = parse::<usize>("TDB_CACHE_BYTES") {
            self.cache_budget = Some(b);
        }
        if let Some(s) = parse::<usize>("TDB_CACHE_SHARDS") {
            self.cache_shards = Some(s);
        }
        if let Some(ms) = parse::<u64>("TDB_LOCK_TIMEOUT_MS") {
            self.lock_timeout = Some(Duration::from_millis(ms));
        }
        if let Ok(v) = std::env::var("TDB_LOCKING") {
            self.locking = Some(!matches!(v.trim(), "0" | "off" | "false"));
        }
        self
    }

    /// Validate and produce the config. Fails with
    /// [`ObjectStoreError::Config`] on out-of-range values.
    pub fn build(self) -> Result<ObjectStoreConfig> {
        let defaults = ObjectStoreConfig::default();
        let shards = self.cache_shards.unwrap_or(defaults.cache_shards);
        if !shards.is_power_of_two() || shards > 1024 {
            return Err(ObjectStoreError::Config(format!(
                "cache_shards must be a power of two in 1..=1024, got {shards}"
            )));
        }
        let budget = self.cache_budget.unwrap_or(defaults.cache_budget);
        let timeout = self.lock_timeout.unwrap_or(defaults.lock_timeout);
        if timeout.is_zero() {
            return Err(ObjectStoreError::Config(
                "lock_timeout must be non-zero".into(),
            ));
        }
        Ok(ObjectStoreConfig {
            locking: self.locking.unwrap_or(defaults.locking),
            lock_timeout: timeout,
            cache_budget: budget,
            cache_shards: shards,
        })
    }
}

/// A cached object: the unpickled, decrypted, validated, type-checked form
/// ready for direct application access (§4.2.2's argument for caching
/// objects rather than chunks).
pub(crate) struct ObjectCell {
    pub(crate) id: ObjectId,
    pub(crate) data: RwLock<Box<dyn Persistent>>,
    /// Dirty objects are pinned in the cache until their transaction
    /// commits — the no-steal policy (§4.2.2).
    pub(crate) dirty: AtomicBool,
    /// Approximate pickled size for cache accounting.
    pub(crate) size: AtomicUsize,
    /// Upper bound on the chunk-store commit sequence at which this cached
    /// (clean) content became current. Snapshot readers use it for their
    /// lock-free cache fast path: if `version <= snapshot.commit_seq()` and
    /// the cell is clean, the cached content is exactly what the snapshot
    /// would read. The stamp is conservative — commit stamps the precise
    /// commit sequence, loads stamp the store's current sequence (≥ the
    /// writing commit) — so a too-new stamp only forces the slower
    /// snapshot-chunk-read fallback, never a wrong read.
    pub(crate) version: AtomicU64,
}

struct CacheSlot {
    cell: Arc<ObjectCell>,
    tick: u64,
}

/// Default number of independent cache shards. Objects hash to a shard,
/// each with its own mutex, LRU clock and slice of the byte budget, so
/// concurrent transactions dereferencing different objects never serialize
/// on a common cache lock (the cache-hit path used to be a store-wide
/// critical section, which flattened multi-threaded throughput).
const DEFAULT_CACHE_SHARDS: usize = 16;

/// Shard index for an object id (Fibonacci hash — ids are sequential, so
/// plain modulo would put neighbouring, co-accessed objects together).
/// `shards` must be a power of two.
fn cache_shard_of(oid: u64, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    (oid.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - shards.trailing_zeros())) as usize
}

/// One cache shard: its slice of the object cache plus LRU bookkeeping.
#[derive(Default)]
struct CacheShard {
    cache: HashMap<u64, CacheSlot>,
    tick: u64,
    bytes: usize,
}

impl CacheShard {
    /// Bytes held by dirty (no-steal pinned) objects right now.
    fn pinned_bytes(&self) -> usize {
        self.cache
            .values()
            .filter(|slot| slot.cell.dirty.load(Ordering::Acquire))
            .map(|slot| slot.cell.size.load(Ordering::Relaxed))
            .sum()
    }
}

/// Cache instruments, registered as `cache.*` in the chunk store's
/// observability registry. Clones share cells, so shards update them
/// without any shared lock.
struct CacheObs {
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    /// Mirrors the summed shard occupancy via deltas.
    bytes_gauge: Gauge,
    pinned_gauge: Gauge,
}

pub(crate) struct StoreState {
    /// Named root object ids, persisted in the reserved roots chunk.
    pub(crate) roots: HashMap<String, ObjectId>,
}

pub(crate) struct OsInner {
    pub(crate) chunks: Arc<ShardedChunkStore>,
    pub(crate) registry: ClassRegistry,
    pub(crate) state: Mutex<StoreState>,
    cache_shards: Vec<Mutex<CacheShard>>,
    cache_obs: CacheObs,
    next_txn: AtomicU64,
    pub(crate) locks: LockManager,
    pub(crate) cfg: ObjectStoreConfig,
    pub(crate) roots_chunk: ObjectId,
}

/// The object store handle (cheap to clone; all clones share state).
#[derive(Clone)]
pub struct ObjectStore {
    pub(crate) inner: Arc<OsInner>,
}

/// Cache statistics snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Objects served from cache.
    pub hits: u64,
    /// Objects fetched (and unpickled) from the chunk store.
    pub misses: u64,
    /// Objects evicted under cache pressure.
    pub evictions: u64,
    /// Current approximate cache occupancy in bytes.
    pub bytes: u64,
    /// Bytes held by dirty objects pinned under the no-steal policy
    /// (§4.2.2); never evictable until their transaction commits.
    pub pinned_bytes: u64,
    /// Currently cached objects.
    pub objects: u64,
}

impl CacheStats {
    /// Fraction of lookups served from cache (0.0 when no lookups yet).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

const ROOTS_MAGIC: u32 = 0x54_44_42_52; // "TDBR"

impl ObjectStore {
    /// Create an object store over a **fresh** chunk store. Reserves chunk
    /// id 0 for the persistent root registry.
    pub fn create(
        chunks: Arc<ChunkStore>,
        registry: ClassRegistry,
        cfg: ObjectStoreConfig,
    ) -> Result<Self> {
        Self::create_sharded(
            Arc::new(ShardedChunkStore::from_single(chunks)),
            registry,
            cfg,
        )
    }

    /// Create an object store over a fresh, possibly sharded chunk store.
    pub fn create_sharded(
        chunks: Arc<ShardedChunkStore>,
        registry: ClassRegistry,
        cfg: ObjectStoreConfig,
    ) -> Result<Self> {
        let mut batch = chunks.begin_batch();
        let roots_chunk = batch.allocate_chunk_id()?;
        if roots_chunk.0 != 0 {
            return Err(ObjectStoreError::Chunk(
                chunk_store::ChunkStoreError::ConfigMismatch(
                    "ObjectStore::create requires a fresh chunk store (roots chunk must be id 0)"
                        .into(),
                ),
            ));
        }
        Self::persist_roots_into(&HashMap::new(), roots_chunk, &mut batch)?;
        chunks.commit_batch(batch, Durability::Durable)?;
        Ok(Self::build(chunks, registry, cfg, roots_chunk))
    }

    /// Open an object store over an existing chunk store.
    pub fn open(
        chunks: Arc<ChunkStore>,
        registry: ClassRegistry,
        cfg: ObjectStoreConfig,
    ) -> Result<Self> {
        Self::open_sharded(
            Arc::new(ShardedChunkStore::from_single(chunks)),
            registry,
            cfg,
        )
    }

    /// Open an object store over an existing, possibly sharded chunk store.
    pub fn open_sharded(
        chunks: Arc<ShardedChunkStore>,
        registry: ClassRegistry,
        cfg: ObjectStoreConfig,
    ) -> Result<Self> {
        let roots_chunk = ChunkId(0);
        let bytes = chunks.read(roots_chunk)?;
        let roots = Self::unpickle_roots(&bytes)?;
        let store = Self::build(chunks, registry, cfg, roots_chunk);
        store.inner.state.lock().roots = roots;
        Ok(store)
    }

    fn build(
        chunks: Arc<ShardedChunkStore>,
        registry: ClassRegistry,
        mut cfg: ObjectStoreConfig,
        roots_chunk: ObjectId,
    ) -> Self {
        // Defensive normalization for configs built by hand rather than
        // through the validating `StoreOptions` builder.
        if !cfg.cache_shards.is_power_of_two() || cfg.cache_shards > 1024 {
            cfg.cache_shards = cfg.cache_shards.next_power_of_two().clamp(1, 1024);
        }
        let shards = cfg.cache_shards;
        let obs = chunks.obs();
        ObjectStore {
            inner: Arc::new(OsInner {
                registry,
                state: Mutex::new(StoreState {
                    roots: HashMap::new(),
                }),
                cache_shards: (0..shards).map(|_| Mutex::default()).collect(),
                cache_obs: CacheObs {
                    hits: obs.counter("cache.hits"),
                    misses: obs.counter("cache.misses"),
                    evictions: obs.counter("cache.evictions"),
                    bytes_gauge: obs.gauge("cache.bytes"),
                    pinned_gauge: obs.gauge("cache.pinned_bytes"),
                },
                next_txn: AtomicU64::new(1),
                locks: LockManager::with_registry(&obs),
                chunks,
                cfg,
                roots_chunk,
            }),
        }
    }

    pub(crate) fn unpickle_roots(bytes: &[u8]) -> Result<HashMap<String, ObjectId>> {
        let mut r = Unpickler::new(bytes);
        let magic = r.u32().map_err(ObjectStoreError::Unpickle)?;
        if magic != ROOTS_MAGIC {
            return Err(ObjectStoreError::Unpickle(crate::pickle::PickleError(
                "bad roots chunk magic".into(),
            )));
        }
        let n = r.u32().map_err(ObjectStoreError::Unpickle)? as usize;
        let mut roots = HashMap::with_capacity(n);
        for _ in 0..n {
            let name = r.string().map_err(ObjectStoreError::Unpickle)?;
            let id = r.object_id().map_err(ObjectStoreError::Unpickle)?;
            roots.insert(name, id);
        }
        r.finish().map_err(ObjectStoreError::Unpickle)?;
        Ok(roots)
    }

    /// Stage the roots chunk write into `batch` (caller commits the batch).
    pub(crate) fn persist_roots_into(
        roots: &HashMap<String, ObjectId>,
        roots_chunk: ObjectId,
        batch: &mut chunk_store::ShardedWriteBatch,
    ) -> Result<()> {
        let mut w = Pickler::new();
        w.u32(ROOTS_MAGIC);
        let mut entries: Vec<(&String, &ObjectId)> = roots.iter().collect();
        entries.sort();
        w.u32(entries.len() as u32);
        for (name, id) in entries {
            w.string(name);
            w.object_id(*id);
        }
        batch.write(roots_chunk, &w.into_bytes())?;
        Ok(())
    }

    /// Apply a transaction's root-registry updates under the state lock
    /// and stage the new roots chunk into `batch` — the pickling happens
    /// directly from the guarded map, no clone. Returns the undo list
    /// (`(name, previous value)`); if staging fails the updates are
    /// already reverted.
    pub(crate) fn apply_root_updates(
        &self,
        updates: &HashMap<String, Option<ObjectId>>,
        batch: &mut chunk_store::ShardedWriteBatch,
    ) -> Result<Vec<(String, Option<ObjectId>)>> {
        let mut state = self.inner.state.lock();
        let mut undo = Vec::with_capacity(updates.len());
        for (name, update) in updates {
            let prev = match update {
                Some(id) => state.roots.insert(name.clone(), *id),
                None => state.roots.remove(name),
            };
            undo.push((name.clone(), prev));
        }
        match Self::persist_roots_into(&state.roots, self.inner.roots_chunk, batch) {
            Ok(()) => Ok(undo),
            Err(e) => {
                Self::undo_root_updates(&mut state, undo);
                Err(e)
            }
        }
    }

    /// Roll back root updates applied by [`ObjectStore::apply_root_updates`]
    /// after a later commit step failed.
    pub(crate) fn revert_roots(&self, undo: Vec<(String, Option<ObjectId>)>) {
        if undo.is_empty() {
            return;
        }
        let mut state = self.inner.state.lock();
        Self::undo_root_updates(&mut state, undo);
    }

    fn undo_root_updates(state: &mut StoreState, undo: Vec<(String, Option<ObjectId>)>) {
        for (name, prev) in undo {
            match prev {
                Some(id) => state.roots.insert(name, id),
                None => state.roots.remove(&name),
            };
        }
    }

    /// Start a new transaction.
    pub fn begin(&self) -> Transaction {
        let id = self.inner.next_txn.fetch_add(1, Ordering::Relaxed);
        Transaction::new(self.clone(), Arc::new(TxnCore::new(id)))
    }

    /// Start a snapshot-isolated read-only transaction.
    ///
    /// The reader pins a copy-on-write chunk-store snapshot and never
    /// touches the lock manager: it sees the database exactly as of the
    /// last commit, regardless of concurrent writers or the log cleaner.
    /// See [`ReadTransaction`](crate::ReadTransaction).
    pub fn begin_read(&self) -> crate::read_txn::ReadTransaction {
        crate::read_txn::ReadTransaction::new(self.clone(), self.inner.chunks.snapshot())
    }

    /// Read a registered root object id outside any transaction (roots are
    /// store-level metadata; reading them does not need locks).
    pub fn root(&self, name: &str) -> Option<ObjectId> {
        self.inner.state.lock().roots.get(name).copied()
    }

    /// All registered root names.
    pub fn root_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.state.lock().roots.keys().cloned().collect();
        names.sort();
        names
    }

    /// The underlying (sharded) chunk store — for snapshots, backups,
    /// stats. At shard count 1 this is a transparent wrapper around the
    /// plain [`ChunkStore`].
    pub fn chunk_store(&self) -> &Arc<ShardedChunkStore> {
        &self.inner.chunks
    }

    /// The trust anchor a client verifies this store's proofs against
    /// (see [`ReadTransaction::read_proven`](crate::ReadTransaction)).
    /// Contains MAC key material — hand it only to parties entitled to
    /// verify.
    pub fn trust_anchor(&self) -> Result<tdb_proof::TrustAnchor> {
        Ok(self.inner.chunks.trust_anchor()?)
    }

    /// Cache statistics (summed over the shards).
    pub fn cache_stats(&self) -> CacheStats {
        let mut bytes = 0usize;
        let mut pinned = 0usize;
        let mut objects = 0u64;
        for shard in &self.inner.cache_shards {
            let shard = shard.lock();
            bytes += shard.bytes;
            pinned += shard.pinned_bytes();
            objects += shard.cache.len() as u64;
        }
        let obs = &self.inner.cache_obs;
        obs.pinned_gauge.set(pinned as i64);
        CacheStats {
            hits: obs.hits.get(),
            misses: obs.misses.get(),
            evictions: obs.evictions.get(),
            bytes: bytes as u64,
            pinned_bytes: pinned as u64,
            objects,
        }
    }

    /// Lock-manager statistics.
    pub fn lock_stats(&self) -> LockStats {
        self.inner.locks.stats()
    }

    /// The stack's observability registry (owned by the chunk store; the
    /// object store's `cache.*` and `lock.*` instruments live in it too).
    pub fn obs(&self) -> Arc<Registry> {
        self.inner.chunks.obs()
    }

    /// Byte budget of one cache shard.
    fn shard_budget(&self) -> usize {
        self.inner.cfg.cache_budget / self.inner.cache_shards.len()
    }

    /// The cache shard responsible for an object id.
    fn shard_for(&self, oid: ObjectId) -> &Mutex<CacheShard> {
        &self.inner.cache_shards[cache_shard_of(oid.0, self.inner.cache_shards.len())]
    }

    /// Probe the cache without populating on miss (bumps the LRU clock on
    /// hit). Snapshot readers use this: they must not install content that
    /// was loaded *bypassing* their snapshot, and a miss falls back to a
    /// snapshot chunk read that is private to the reader.
    pub(crate) fn lookup_cell(&self, oid: ObjectId) -> Option<Arc<ObjectCell>> {
        let mut shard = self.shard_for(oid).lock();
        shard.tick += 1;
        let tick = shard.tick;
        let slot = shard.cache.get_mut(&oid.0)?;
        slot.tick = tick;
        Some(slot.cell.clone())
    }

    /// Fetch a cell from cache or load (read + validate + decrypt +
    /// unpickle) from the chunk store.
    pub(crate) fn load_cell(&self, oid: ObjectId) -> Result<Arc<ObjectCell>> {
        let obs = &self.inner.cache_obs;
        let shard_mutex = self.shard_for(oid);
        let mut shard = shard_mutex.lock();
        shard.tick += 1;
        let tick = shard.tick;
        if let Some(slot) = shard.cache.get_mut(&oid.0) {
            slot.tick = tick;
            let cell = slot.cell.clone();
            drop(shard);
            obs.hits.inc();
            return Ok(cell);
        }
        drop(shard); // do not hold the shard mutex across chunk I/O
        obs.misses.inc();
        // Read the chunk together with an upper bound on the commit
        // sequence that produced it, so snapshot readers can trust the
        // cached copy for snapshots at least that recent.
        let (bytes, seq) = self.inner.chunks.read_versioned(oid)?;
        let obj = self.inner.registry.unpickle_object(&bytes)?;
        let cell = Arc::new(ObjectCell {
            id: oid,
            data: RwLock::new(obj),
            dirty: AtomicBool::new(false),
            size: AtomicUsize::new(bytes.len()),
            version: AtomicU64::new(seq),
        });
        let mut shard = shard_mutex.lock();
        // Racing loaders: keep whichever got in first so all transactions
        // share one cell per object.
        if let Some(slot) = shard.cache.get(&oid.0) {
            return Ok(slot.cell.clone());
        }
        shard.bytes += bytes.len();
        obs.bytes_gauge.add(bytes.len() as i64);
        shard.cache.insert(
            oid.0,
            CacheSlot {
                cell: cell.clone(),
                tick,
            },
        );
        Self::evict_over_budget(&mut shard, self.shard_budget(), obs);
        Ok(cell)
    }

    /// Insert a fresh (dirty) cell for a newly inserted object.
    pub(crate) fn install_cell(&self, cell: Arc<ObjectCell>) {
        let obs = &self.inner.cache_obs;
        let mut shard = self.shard_for(cell.id).lock();
        shard.tick += 1;
        let tick = shard.tick;
        let grown = cell.size.load(Ordering::Relaxed);
        shard.bytes += grown;
        obs.bytes_gauge.add(grown as i64);
        shard.cache.insert(cell.id.0, CacheSlot { cell, tick });
        Self::evict_over_budget(&mut shard, self.shard_budget(), obs);
    }

    /// Drop an object from the cache (abort of a written object, or
    /// removal).
    pub(crate) fn evict_cell(&self, oid: ObjectId) {
        let mut shard = self.shard_for(oid).lock();
        if let Some(slot) = shard.cache.remove(&oid.0) {
            let size = slot.cell.size.load(Ordering::Relaxed);
            shard.bytes = shard.bytes.saturating_sub(size);
            self.inner.cache_obs.bytes_gauge.add(-(size as i64));
        }
    }

    /// Update accounting after a commit re-pickled an object.
    pub(crate) fn update_cell_size(&self, oid: ObjectId, new_size: usize) {
        let mut shard = self.shard_for(oid).lock();
        if let Some(slot) = shard.cache.get(&oid.0) {
            let old = slot.cell.size.swap(new_size, Ordering::Relaxed);
            shard.bytes = shard.bytes.saturating_sub(old) + new_size;
            self.inner
                .cache_obs
                .bytes_gauge
                .add(new_size as i64 - old as i64);
        }
    }

    /// LRU eviction of clean, unreferenced objects ("objects referenced by
    /// the application are protected against eviction … using a reference
    /// count", §4.2.2 — here the `Arc` strong count). Per shard, against
    /// the shard's slice of the byte budget.
    fn evict_over_budget(shard: &mut CacheShard, budget: usize, obs: &CacheObs) {
        if shard.bytes <= budget {
            return;
        }
        // Hysteresis: evict down to 90% of the budget so the (O(n log n))
        // scan amortizes over many subsequent insertions instead of
        // running on every operation at the boundary.
        let budget = budget - budget / 10;
        let mut candidates: Vec<(u64, u64)> = shard
            .cache
            .iter()
            .filter(|(_, slot)| {
                Arc::strong_count(&slot.cell) == 1 && !slot.cell.dirty.load(Ordering::Acquire)
            })
            .map(|(id, slot)| (slot.tick, *id))
            .collect();
        candidates.sort_unstable();
        for (_, id) in candidates {
            if shard.bytes <= budget {
                break;
            }
            if let Some(slot) = shard.cache.remove(&id) {
                let size = slot.cell.size.load(Ordering::Relaxed);
                shard.bytes = shard.bytes.saturating_sub(size);
                obs.bytes_gauge.add(-(size as i64));
                obs.evictions.inc();
            }
        }
    }

    /// Test aid: `(accounted_bytes, recomputed_bytes, pinned_bytes)` where
    /// `accounted_bytes` is the incrementally maintained occupancy and
    /// `recomputed_bytes` a fresh walk of the cache. The two must agree or
    /// eviction accounting has drifted.
    #[doc(hidden)]
    pub fn debug_cache_accounting(&self) -> (u64, u64, u64) {
        let mut accounted = 0usize;
        let mut recomputed = 0usize;
        let mut pinned = 0usize;
        for shard in &self.inner.cache_shards {
            let shard = shard.lock();
            accounted += shard.bytes;
            recomputed += shard
                .cache
                .values()
                .map(|slot| slot.cell.size.load(Ordering::Relaxed))
                .sum::<usize>();
            pinned += shard.pinned_bytes();
        }
        (accounted as u64, recomputed as u64, pinned as u64)
    }

    /// Run an eviction pass (called after commits release no-steal pins).
    pub(crate) fn evict_pass(&self) {
        let budget = self.shard_budget();
        for shard in &self.inner.cache_shards {
            Self::evict_over_budget(&mut shard.lock(), budget, &self.inner.cache_obs);
        }
    }

    pub(crate) fn lock_timeout(&self) -> Duration {
        self.inner.cfg.lock_timeout
    }

    pub(crate) fn locking(&self) -> bool {
        self.inner.cfg.locking
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roots_pickle_roundtrip() {
        let mut roots = HashMap::new();
        roots.insert("profile".to_string(), ChunkId(42));
        roots.insert("collections".to_string(), ChunkId(7));
        let mut w = Pickler::new();
        w.u32(ROOTS_MAGIC);
        let mut entries: Vec<_> = roots.iter().collect();
        entries.sort();
        w.u32(entries.len() as u32);
        for (name, id) in entries {
            w.string(name);
            w.object_id(*id);
        }
        let parsed = ObjectStore::unpickle_roots(&w.into_bytes()).unwrap();
        assert_eq!(parsed, roots);
    }

    #[test]
    fn roots_bad_magic_rejected() {
        let mut w = Pickler::new();
        w.u32(0xDEAD);
        w.u32(0);
        assert!(ObjectStore::unpickle_roots(&w.into_bytes()).is_err());
    }
}
