//! The object store: cache, roots, and transaction factory.

use crate::class::{ClassRegistry, Persistent};
use crate::error::{ObjectStoreError, Result};
use crate::locks::{LockManager, LockStats};
use crate::pickle::{Pickler, Unpickler};
use crate::txn::{Transaction, TxnCore};
use crate::{ChunkId, ObjectId};
use chunk_store::ChunkStore;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tdb_obs::{Counter, Gauge, Registry};

/// Tuning knobs for the object store.
#[derive(Clone, Debug)]
pub struct ObjectStoreConfig {
    /// Enable transactional locking. "The application may even switch off
    /// locking to avoid the locking overhead in the absence of concurrent
    /// transactions." (paper §4.2.3)
    pub locking: bool,
    /// How long a lock acquisition waits before breaking a potential
    /// deadlock with [`ObjectStoreError::LockTimeout`].
    pub lock_timeout: Duration,
    /// Object cache budget in (approximate, pickled) bytes. The paper's
    /// evaluation used a 4 MB cache (§7.2).
    pub cache_budget: usize,
}

impl Default for ObjectStoreConfig {
    fn default() -> Self {
        ObjectStoreConfig {
            locking: true,
            lock_timeout: Duration::from_millis(1000),
            cache_budget: 4 * 1024 * 1024,
        }
    }
}

/// A cached object: the unpickled, decrypted, validated, type-checked form
/// ready for direct application access (§4.2.2's argument for caching
/// objects rather than chunks).
pub(crate) struct ObjectCell {
    pub(crate) id: ObjectId,
    pub(crate) data: RwLock<Box<dyn Persistent>>,
    /// Dirty objects are pinned in the cache until their transaction
    /// commits — the no-steal policy (§4.2.2).
    pub(crate) dirty: AtomicBool,
    /// Approximate pickled size for cache accounting.
    pub(crate) size: AtomicUsize,
}

struct CacheSlot {
    cell: Arc<ObjectCell>,
    tick: u64,
}

pub(crate) struct StoreState {
    cache: HashMap<u64, CacheSlot>,
    tick: u64,
    cache_bytes: usize,
    /// Named root object ids, persisted in the reserved roots chunk.
    pub(crate) roots: HashMap<String, ObjectId>,
    next_txn: u64,
    /// Cache statistics, registered as `cache.*` in the chunk store's
    /// observability registry.
    pub(crate) hits: Counter,
    pub(crate) misses: Counter,
    pub(crate) evictions: Counter,
    bytes_gauge: Gauge,
    pinned_gauge: Gauge,
}

impl StoreState {
    /// Adjust `cache_bytes` and mirror it into the `cache.bytes` gauge.
    fn set_cache_bytes(&mut self, bytes: usize) {
        self.cache_bytes = bytes;
        self.bytes_gauge.set(bytes as i64);
    }

    /// Bytes held by dirty (no-steal pinned) objects right now.
    fn pinned_bytes(&self) -> usize {
        self.cache
            .values()
            .filter(|slot| slot.cell.dirty.load(Ordering::Acquire))
            .map(|slot| slot.cell.size.load(Ordering::Relaxed))
            .sum()
    }
}

pub(crate) struct OsInner {
    pub(crate) chunks: Arc<ChunkStore>,
    pub(crate) registry: ClassRegistry,
    pub(crate) state: Mutex<StoreState>,
    pub(crate) locks: LockManager,
    pub(crate) cfg: ObjectStoreConfig,
    pub(crate) roots_chunk: ObjectId,
}

/// The object store handle (cheap to clone; all clones share state).
#[derive(Clone)]
pub struct ObjectStore {
    pub(crate) inner: Arc<OsInner>,
}

/// Cache statistics snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Objects served from cache.
    pub hits: u64,
    /// Objects fetched (and unpickled) from the chunk store.
    pub misses: u64,
    /// Objects evicted under cache pressure.
    pub evictions: u64,
    /// Current approximate cache occupancy in bytes.
    pub bytes: u64,
    /// Bytes held by dirty objects pinned under the no-steal policy
    /// (§4.2.2); never evictable until their transaction commits.
    pub pinned_bytes: u64,
    /// Currently cached objects.
    pub objects: u64,
}

impl CacheStats {
    /// Fraction of lookups served from cache (0.0 when no lookups yet).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

const ROOTS_MAGIC: u32 = 0x54_44_42_52; // "TDBR"

impl ObjectStore {
    /// Create an object store over a **fresh** chunk store. Reserves chunk
    /// id 0 for the persistent root registry.
    pub fn create(
        chunks: Arc<ChunkStore>,
        registry: ClassRegistry,
        cfg: ObjectStoreConfig,
    ) -> Result<Self> {
        let roots_chunk = chunks.allocate_chunk_id()?;
        if roots_chunk.0 != 0 {
            return Err(ObjectStoreError::Chunk(
                chunk_store::ChunkStoreError::ConfigMismatch(
                    "ObjectStore::create requires a fresh chunk store (roots chunk must be id 0)"
                        .into(),
                ),
            ));
        }
        let store = Self::build(chunks, registry, cfg, roots_chunk);
        store.persist_roots_locked(&HashMap::new())?;
        store.inner.chunks.commit(true)?;
        Ok(store)
    }

    /// Open an object store over an existing chunk store.
    pub fn open(
        chunks: Arc<ChunkStore>,
        registry: ClassRegistry,
        cfg: ObjectStoreConfig,
    ) -> Result<Self> {
        let roots_chunk = ChunkId(0);
        let bytes = chunks.read(roots_chunk)?;
        let roots = Self::unpickle_roots(&bytes)?;
        let store = Self::build(chunks, registry, cfg, roots_chunk);
        store.inner.state.lock().roots = roots;
        Ok(store)
    }

    fn build(
        chunks: Arc<ChunkStore>,
        registry: ClassRegistry,
        cfg: ObjectStoreConfig,
        roots_chunk: ObjectId,
    ) -> Self {
        let obs = chunks.obs();
        ObjectStore {
            inner: Arc::new(OsInner {
                registry,
                state: Mutex::new(StoreState {
                    cache: HashMap::new(),
                    tick: 0,
                    cache_bytes: 0,
                    roots: HashMap::new(),
                    next_txn: 1,
                    hits: obs.counter("cache.hits"),
                    misses: obs.counter("cache.misses"),
                    evictions: obs.counter("cache.evictions"),
                    bytes_gauge: obs.gauge("cache.bytes"),
                    pinned_gauge: obs.gauge("cache.pinned_bytes"),
                }),
                locks: LockManager::with_registry(&obs),
                chunks,
                cfg,
                roots_chunk,
            }),
        }
    }

    fn unpickle_roots(bytes: &[u8]) -> Result<HashMap<String, ObjectId>> {
        let mut r = Unpickler::new(bytes);
        let magic = r.u32().map_err(ObjectStoreError::Unpickle)?;
        if magic != ROOTS_MAGIC {
            return Err(ObjectStoreError::Unpickle(crate::pickle::PickleError(
                "bad roots chunk magic".into(),
            )));
        }
        let n = r.u32().map_err(ObjectStoreError::Unpickle)? as usize;
        let mut roots = HashMap::with_capacity(n);
        for _ in 0..n {
            let name = r.string().map_err(ObjectStoreError::Unpickle)?;
            let id = r.object_id().map_err(ObjectStoreError::Unpickle)?;
            roots.insert(name, id);
        }
        r.finish().map_err(ObjectStoreError::Unpickle)?;
        Ok(roots)
    }

    /// Stage the roots chunk write (caller commits).
    pub(crate) fn persist_roots_locked(&self, roots: &HashMap<String, ObjectId>) -> Result<()> {
        let mut w = Pickler::new();
        w.u32(ROOTS_MAGIC);
        let mut entries: Vec<(&String, &ObjectId)> = roots.iter().collect();
        entries.sort();
        w.u32(entries.len() as u32);
        for (name, id) in entries {
            w.string(name);
            w.object_id(*id);
        }
        self.inner
            .chunks
            .write(self.inner.roots_chunk, &w.into_bytes())?;
        Ok(())
    }

    /// Start a new transaction.
    pub fn begin(&self) -> Transaction {
        let id = {
            let mut state = self.inner.state.lock();
            let id = state.next_txn;
            state.next_txn += 1;
            id
        };
        Transaction::new(self.clone(), Arc::new(TxnCore::new(id)))
    }

    /// Read a registered root object id outside any transaction (roots are
    /// store-level metadata; reading them does not need locks).
    pub fn root(&self, name: &str) -> Option<ObjectId> {
        self.inner.state.lock().roots.get(name).copied()
    }

    /// All registered root names.
    pub fn root_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.state.lock().roots.keys().cloned().collect();
        names.sort();
        names
    }

    /// The underlying chunk store (for snapshots, backups, stats).
    pub fn chunk_store(&self) -> &Arc<ChunkStore> {
        &self.inner.chunks
    }

    /// Cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        let state = self.inner.state.lock();
        let pinned = state.pinned_bytes();
        state.pinned_gauge.set(pinned as i64);
        CacheStats {
            hits: state.hits.get(),
            misses: state.misses.get(),
            evictions: state.evictions.get(),
            bytes: state.cache_bytes as u64,
            pinned_bytes: pinned as u64,
            objects: state.cache.len() as u64,
        }
    }

    /// Lock-manager statistics.
    pub fn lock_stats(&self) -> LockStats {
        self.inner.locks.stats()
    }

    /// The stack's observability registry (owned by the chunk store; the
    /// object store's `cache.*` and `lock.*` instruments live in it too).
    pub fn obs(&self) -> Arc<Registry> {
        self.inner.chunks.obs()
    }

    /// Fetch a cell from cache or load (read + validate + decrypt +
    /// unpickle) from the chunk store.
    pub(crate) fn load_cell(&self, oid: ObjectId) -> Result<Arc<ObjectCell>> {
        let mut state = self.inner.state.lock();
        state.tick += 1;
        let tick = state.tick;
        if let Some(slot) = state.cache.get_mut(&oid.0) {
            slot.tick = tick;
            let cell = slot.cell.clone();
            state.hits.inc();
            return Ok(cell);
        }
        state.misses.inc();
        drop(state); // do not hold the state mutex across chunk I/O
        let bytes = self.inner.chunks.read(oid)?;
        let obj = self.inner.registry.unpickle_object(&bytes)?;
        let cell = Arc::new(ObjectCell {
            id: oid,
            data: RwLock::new(obj),
            dirty: AtomicBool::new(false),
            size: AtomicUsize::new(bytes.len()),
        });
        let mut state = self.inner.state.lock();
        // Racing loaders: keep whichever got in first so all transactions
        // share one cell per object.
        if let Some(slot) = state.cache.get(&oid.0) {
            return Ok(slot.cell.clone());
        }
        let grown = state.cache_bytes + bytes.len();
        state.set_cache_bytes(grown);
        state.cache.insert(
            oid.0,
            CacheSlot {
                cell: cell.clone(),
                tick,
            },
        );
        Self::evict_over_budget(&mut state, self.inner.cfg.cache_budget);
        Ok(cell)
    }

    /// Insert a fresh (dirty) cell for a newly inserted object.
    pub(crate) fn install_cell(&self, cell: Arc<ObjectCell>) {
        let mut state = self.inner.state.lock();
        state.tick += 1;
        let tick = state.tick;
        let grown = state.cache_bytes + cell.size.load(Ordering::Relaxed);
        state.set_cache_bytes(grown);
        state.cache.insert(cell.id.0, CacheSlot { cell, tick });
        Self::evict_over_budget(&mut state, self.inner.cfg.cache_budget);
    }

    /// Drop an object from the cache (abort of a written object, or
    /// removal).
    pub(crate) fn evict_cell(&self, oid: ObjectId) {
        let mut state = self.inner.state.lock();
        if let Some(slot) = state.cache.remove(&oid.0) {
            let shrunk = state
                .cache_bytes
                .saturating_sub(slot.cell.size.load(Ordering::Relaxed));
            state.set_cache_bytes(shrunk);
        }
    }

    /// Update accounting after a commit re-pickled an object.
    pub(crate) fn update_cell_size(&self, oid: ObjectId, new_size: usize) {
        let mut state = self.inner.state.lock();
        if let Some(slot) = state.cache.get(&oid.0) {
            let old = slot.cell.size.swap(new_size, Ordering::Relaxed);
            let adjusted = state.cache_bytes.saturating_sub(old) + new_size;
            state.set_cache_bytes(adjusted);
        }
    }

    /// LRU eviction of clean, unreferenced objects ("objects referenced by
    /// the application are protected against eviction … using a reference
    /// count", §4.2.2 — here the `Arc` strong count).
    fn evict_over_budget(state: &mut StoreState, budget: usize) {
        if state.cache_bytes <= budget {
            return;
        }
        // Hysteresis: evict down to 90% of the budget so the (O(n log n))
        // scan amortizes over many subsequent insertions instead of
        // running on every operation at the boundary.
        let budget = budget - budget / 10;
        let mut candidates: Vec<(u64, u64)> = state
            .cache
            .iter()
            .filter(|(_, slot)| {
                Arc::strong_count(&slot.cell) == 1 && !slot.cell.dirty.load(Ordering::Acquire)
            })
            .map(|(id, slot)| (slot.tick, *id))
            .collect();
        candidates.sort_unstable();
        for (_, id) in candidates {
            if state.cache_bytes <= budget {
                break;
            }
            if let Some(slot) = state.cache.remove(&id) {
                let shrunk = state
                    .cache_bytes
                    .saturating_sub(slot.cell.size.load(Ordering::Relaxed));
                state.set_cache_bytes(shrunk);
                state.evictions.inc();
            }
        }
    }

    /// Test aid: `(accounted_bytes, recomputed_bytes, pinned_bytes)` where
    /// `accounted_bytes` is the incrementally maintained occupancy and
    /// `recomputed_bytes` a fresh walk of the cache. The two must agree or
    /// eviction accounting has drifted.
    #[doc(hidden)]
    pub fn debug_cache_accounting(&self) -> (u64, u64, u64) {
        let state = self.inner.state.lock();
        let recomputed: usize = state
            .cache
            .values()
            .map(|slot| slot.cell.size.load(Ordering::Relaxed))
            .sum();
        (
            state.cache_bytes as u64,
            recomputed as u64,
            state.pinned_bytes() as u64,
        )
    }

    /// Run an eviction pass (called after commits release no-steal pins).
    pub(crate) fn evict_pass(&self) {
        let mut state = self.inner.state.lock();
        Self::evict_over_budget(&mut state, self.inner.cfg.cache_budget);
    }

    pub(crate) fn lock_timeout(&self) -> Duration {
        self.inner.cfg.lock_timeout
    }

    pub(crate) fn locking(&self) -> bool {
        self.inner.cfg.locking
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roots_pickle_roundtrip() {
        let mut roots = HashMap::new();
        roots.insert("profile".to_string(), ChunkId(42));
        roots.insert("collections".to_string(), ChunkId(7));
        let mut w = Pickler::new();
        w.u32(ROOTS_MAGIC);
        let mut entries: Vec<_> = roots.iter().collect();
        entries.sort();
        w.u32(entries.len() as u32);
        for (name, id) in entries {
            w.string(name);
            w.object_id(*id);
        }
        let parsed = ObjectStore::unpickle_roots(&w.into_bytes()).unwrap();
        assert_eq!(parsed, roots);
    }

    #[test]
    fn roots_bad_magic_rejected() {
        let mut w = Pickler::new();
        w.u32(0xDEAD);
        w.u32(0);
        assert!(ObjectStore::unpickle_roots(&w.into_bytes()).is_err());
    }
}
