//! Persistent classes and the unpickler registry.
//!
//! "Each subclass must also provide a class id that is unique across all
//! object classes and persists across system restarts. The subclass must
//! register its unpickling constructor with the object store under its
//! class id." (paper §4.1)

use crate::error::{ObjectStoreError, Result};
use crate::pickle::{PickleError, Pickler, Unpickler};
use std::any::Any;
use std::collections::HashMap;

/// Persistent class identifier; must be stable across program runs.
pub type ClassId = u32;

/// A persistently storable object — the analog of subclassing the paper's
/// `Object` class.
///
/// Implementations provide a stable [`class_id`](Persistent::class_id), a
/// [`pickle`](Persistent::pickle) method, and `Any` plumbing for checked
/// downcasts (use [`impl_persistent_boilerplate!`](crate::impl_persistent_boilerplate)
/// for the non-pickle parts). The matching unpickle function is registered
/// in a [`ClassRegistry`].
pub trait Persistent: Any + Send + Sync {
    /// Stable unique class id.
    fn class_id(&self) -> ClassId;

    /// Serialize the object's state.
    fn pickle(&self, w: &mut Pickler);

    /// `Any` upcast for checked downcasting.
    fn as_any(&self) -> &dyn Any;

    /// Mutable `Any` upcast.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Implements the `class_id`/`as_any`/`as_any_mut` boilerplate of
/// [`Persistent`]; the implementer writes only `pickle`.
///
/// ```ignore
/// impl Persistent for Meter {
///     impl_persistent_boilerplate!(0x0001_0001);
///     fn pickle(&self, w: &mut Pickler) { w.u32(self.count); }
/// }
/// ```
#[macro_export]
macro_rules! impl_persistent_boilerplate {
    ($class_id:expr) => {
        fn class_id(&self) -> $crate::ClassId {
            $class_id
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    };
}

/// An unpickling constructor: bytes → freshly allocated object.
pub type UnpickleFn =
    fn(&mut Unpickler<'_>) -> std::result::Result<Box<dyn Persistent>, PickleError>;

/// Registry of unpickling constructors by class id (paper §4.1).
#[derive(Default)]
pub struct ClassRegistry {
    classes: HashMap<ClassId, (&'static str, UnpickleFn)>,
}

impl ClassRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a class. Panics on a duplicate id — ids must be "unique
    /// across all object classes", and colliding ids are a programming
    /// error best caught at startup.
    pub fn register(&mut self, id: ClassId, name: &'static str, unpickle: UnpickleFn) -> &mut Self {
        if let Some((existing, _)) = self.classes.get(&id) {
            panic!("class id {id:#x} registered twice: {existing} and {name}");
        }
        self.classes.insert(id, (name, unpickle));
        self
    }

    /// Whether a class id is known.
    pub fn contains(&self, id: ClassId) -> bool {
        self.classes.contains_key(&id)
    }

    /// Human-readable name of a registered class.
    pub fn name_of(&self, id: ClassId) -> Option<&'static str> {
        self.classes.get(&id).map(|(n, _)| *n)
    }

    /// Unpickle an object: reads the class-id header written by
    /// [`pickle_object`] and dispatches to the registered constructor.
    pub fn unpickle_object(&self, bytes: &[u8]) -> Result<Box<dyn Persistent>> {
        let mut r = Unpickler::new(bytes);
        let class_id = r.u32().map_err(ObjectStoreError::Unpickle)?;
        let (_, unpickle) = self
            .classes
            .get(&class_id)
            .ok_or(ObjectStoreError::ClassNotRegistered(class_id))?;
        let obj = unpickle(&mut r).map_err(ObjectStoreError::Unpickle)?;
        r.finish().map_err(ObjectStoreError::Unpickle)?;
        if obj.class_id() != class_id {
            return Err(ObjectStoreError::Unpickle(PickleError(format!(
                "unpickler for class {class_id:#x} produced an object claiming class {:#x}",
                obj.class_id()
            ))));
        }
        Ok(obj)
    }
}

/// Pickle an object with its class-id header — the stored representation.
/// "The pickled state of each object includes the id of its class" (§4.2.2).
pub fn pickle_object(obj: &dyn Persistent) -> Vec<u8> {
    let mut w = Pickler::new();
    w.u32(obj.class_id());
    obj.pickle(&mut w);
    w.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        n: u32,
    }

    impl Persistent for Counter {
        impl_persistent_boilerplate!(0xC0);
        fn pickle(&self, w: &mut Pickler) {
            w.u32(self.n);
        }
    }

    fn unpickle_counter(
        r: &mut Unpickler<'_>,
    ) -> std::result::Result<Box<dyn Persistent>, PickleError> {
        Ok(Box::new(Counter { n: r.u32()? }))
    }

    #[test]
    fn pickle_unpickle_via_registry() {
        let mut reg = ClassRegistry::new();
        reg.register(0xC0, "Counter", unpickle_counter);
        assert!(reg.contains(0xC0));
        assert_eq!(reg.name_of(0xC0), Some("Counter"));

        let bytes = pickle_object(&Counter { n: 7 });
        let obj = reg.unpickle_object(&bytes).unwrap();
        let c = obj.as_any().downcast_ref::<Counter>().unwrap();
        assert_eq!(c.n, 7);
    }

    #[test]
    fn unknown_class_is_reported() {
        let reg = ClassRegistry::new();
        let bytes = pickle_object(&Counter { n: 7 });
        assert!(matches!(
            reg.unpickle_object(&bytes),
            Err(ObjectStoreError::ClassNotRegistered(0xC0))
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut reg = ClassRegistry::new();
        reg.register(0xC0, "Counter", unpickle_counter);
        let mut bytes = pickle_object(&Counter { n: 7 });
        bytes.push(0xEE);
        assert!(matches!(
            reg.unpickle_object(&bytes),
            Err(ObjectStoreError::Unpickle(_))
        ));
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let mut reg = ClassRegistry::new();
        reg.register(0xC0, "Counter", unpickle_counter);
        reg.register(0xC0, "Other", unpickle_counter);
    }
}
