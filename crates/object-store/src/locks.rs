//! Transactional lock manager: strict two-phase shared/exclusive object
//! locks with a deadlock-breaking timeout (paper §4.1, §4.2.3).
//!
//! The object store "provides transactional isolation using shared/
//! exclusive locks over objects". There is no granular locking and no
//! deadlock graph — "a blocked call raises an exception after a timeout
//! interval, thus breaking potential deadlocks", which is the right
//! complexity trade-off for a single-user DRM workload.
//!
//! The manager has its own mutex + condvar, separate from the object
//! store's state mutex, reproducing §4.2.3's rule that the state mutex is
//! released while a thread waits on a transactional lock.

use crate::error::{ObjectStoreError, Result};
use crate::ObjectId;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Lock modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (read) lock.
    Shared,
    /// Exclusive (write) lock.
    Exclusive,
}

/// Identifier of a lock owner (a transaction).
pub type TxnId = u64;

#[derive(Default)]
struct LockTable {
    /// Per-object holders and their mode.
    locks: HashMap<u64, HashMap<TxnId, LockMode>>,
}

impl LockTable {
    /// Whether `txn` may acquire `mode` on `oid` right now.
    fn grantable(&self, oid: u64, txn: TxnId, mode: LockMode) -> bool {
        let Some(holders) = self.locks.get(&oid) else {
            return true;
        };
        match mode {
            LockMode::Shared => holders
                .iter()
                .all(|(t, m)| *t == txn || *m == LockMode::Shared),
            LockMode::Exclusive => holders.keys().all(|t| *t == txn),
        }
    }

    fn grant(&mut self, oid: u64, txn: TxnId, mode: LockMode) {
        let holders = self.locks.entry(oid).or_default();
        let slot = holders.entry(txn).or_insert(mode);
        // Upgrades stick; downgrades don't (strict 2PL keeps the strongest
        // mode until release).
        if mode == LockMode::Exclusive {
            *slot = LockMode::Exclusive;
        }
    }
}

/// The lock manager.
pub struct LockManager {
    table: Mutex<LockTable>,
    cond: Condvar,
}

impl Default for LockManager {
    fn default() -> Self {
        Self::new()
    }
}

impl LockManager {
    /// Fresh manager.
    pub fn new() -> Self {
        LockManager {
            table: Mutex::new(LockTable::default()),
            cond: Condvar::new(),
        }
    }

    /// Acquire `mode` on `oid` for `txn`, waiting up to `timeout`.
    /// Re-acquiring a held mode (or a weaker one) is a no-op; holding
    /// `Shared` and requesting `Exclusive` upgrades (waiting for other
    /// readers to drain).
    pub fn acquire(
        &self,
        txn: TxnId,
        oid: ObjectId,
        mode: LockMode,
        timeout: Duration,
    ) -> Result<()> {
        let deadline = Instant::now() + timeout;
        let mut table = self.table.lock();
        loop {
            if table.grantable(oid.0, txn, mode) {
                table.grant(oid.0, txn, mode);
                return Ok(());
            }
            if self.cond.wait_until(&mut table, deadline).timed_out() {
                return Err(ObjectStoreError::LockTimeout(oid));
            }
        }
    }

    /// Release every lock `txn` holds (strict 2PL: all at end of
    /// transaction, never earlier).
    pub fn release_all(&self, txn: TxnId) {
        let mut table = self.table.lock();
        table.locks.retain(|_, holders| {
            holders.remove(&txn);
            !holders.is_empty()
        });
        drop(table);
        self.cond.notify_all();
    }

    /// Mode `txn` holds on `oid`, if any (test/diagnostic aid).
    pub fn held(&self, txn: TxnId, oid: ObjectId) -> Option<LockMode> {
        self.table
            .lock()
            .locks
            .get(&oid.0)
            .and_then(|h| h.get(&txn))
            .copied()
    }

    /// Number of objects currently locked (diagnostics).
    pub fn locked_objects(&self) -> usize {
        self.table.lock().locks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    const T: Duration = Duration::from_millis(50);
    const LONG: Duration = Duration::from_secs(5);

    fn oid(n: u64) -> ObjectId {
        crate::ChunkId(n)
    }

    #[test]
    fn shared_locks_coexist() {
        let lm = LockManager::new();
        lm.acquire(1, oid(9), LockMode::Shared, T).unwrap();
        lm.acquire(2, oid(9), LockMode::Shared, T).unwrap();
        assert_eq!(lm.held(1, oid(9)), Some(LockMode::Shared));
        assert_eq!(lm.held(2, oid(9)), Some(LockMode::Shared));
    }

    #[test]
    fn exclusive_excludes() {
        let lm = LockManager::new();
        lm.acquire(1, oid(9), LockMode::Exclusive, T).unwrap();
        assert!(matches!(
            lm.acquire(2, oid(9), LockMode::Shared, T),
            Err(ObjectStoreError::LockTimeout(_))
        ));
        assert!(matches!(
            lm.acquire(2, oid(9), LockMode::Exclusive, T),
            Err(ObjectStoreError::LockTimeout(_))
        ));
        // Different object is fine.
        lm.acquire(2, oid(10), LockMode::Exclusive, T).unwrap();
    }

    #[test]
    fn reacquire_and_upgrade() {
        let lm = LockManager::new();
        lm.acquire(1, oid(1), LockMode::Shared, T).unwrap();
        lm.acquire(1, oid(1), LockMode::Shared, T).unwrap();
        lm.acquire(1, oid(1), LockMode::Exclusive, T).unwrap(); // sole holder upgrade
        assert_eq!(lm.held(1, oid(1)), Some(LockMode::Exclusive));
        // Exclusive then shared request keeps exclusive.
        lm.acquire(1, oid(1), LockMode::Shared, T).unwrap();
        assert_eq!(lm.held(1, oid(1)), Some(LockMode::Exclusive));
    }

    #[test]
    fn upgrade_blocked_by_other_reader() {
        let lm = LockManager::new();
        lm.acquire(1, oid(1), LockMode::Shared, T).unwrap();
        lm.acquire(2, oid(1), LockMode::Shared, T).unwrap();
        assert!(matches!(
            lm.acquire(1, oid(1), LockMode::Exclusive, T),
            Err(ObjectStoreError::LockTimeout(_))
        ));
    }

    #[test]
    fn release_wakes_waiters() {
        let lm = Arc::new(LockManager::new());
        lm.acquire(1, oid(5), LockMode::Exclusive, T).unwrap();
        let lm2 = lm.clone();
        let waiter = std::thread::spawn(move || lm2.acquire(2, oid(5), LockMode::Exclusive, LONG));
        std::thread::sleep(Duration::from_millis(30));
        lm.release_all(1);
        waiter.join().unwrap().unwrap();
        assert_eq!(lm.held(2, oid(5)), Some(LockMode::Exclusive));
    }

    #[test]
    fn deadlock_broken_by_timeout() {
        let lm = Arc::new(LockManager::new());
        lm.acquire(1, oid(1), LockMode::Exclusive, T).unwrap();
        lm.acquire(2, oid(2), LockMode::Exclusive, T).unwrap();
        let lm2 = lm.clone();
        let t2 = std::thread::spawn(move || lm2.acquire(2, oid(1), LockMode::Exclusive, T));
        // Txn 1 wants 2's object; classic cycle, one side must time out.
        let r1 = lm.acquire(1, oid(2), LockMode::Exclusive, T);
        let r2 = t2.join().unwrap();
        assert!(r1.is_err() || r2.is_err());
    }

    #[test]
    fn release_all_clears_table() {
        let lm = LockManager::new();
        lm.acquire(1, oid(1), LockMode::Shared, T).unwrap();
        lm.acquire(1, oid(2), LockMode::Exclusive, T).unwrap();
        assert_eq!(lm.locked_objects(), 2);
        lm.release_all(1);
        assert_eq!(lm.locked_objects(), 0);
        assert_eq!(lm.held(1, oid(1)), None);
    }

    #[test]
    fn contended_counter_serializes() {
        let lm = Arc::new(LockManager::new());
        let counter = Arc::new(Mutex::new(0u32));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let lm = lm.clone();
                let counter = counter.clone();
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        lm.acquire(t, oid(0), LockMode::Exclusive, LONG).unwrap();
                        {
                            let mut c = counter.lock();
                            let v = *c;
                            std::thread::yield_now();
                            *c = v + 1;
                        }
                        lm.release_all(t);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*counter.lock(), 400);
    }
}
