//! Transactional lock manager: strict two-phase shared/exclusive object
//! locks with a deadlock-breaking timeout (paper §4.1, §4.2.3).
//!
//! The object store "provides transactional isolation using shared/
//! exclusive locks over objects". There is no granular locking and no
//! deadlock graph — "a blocked call raises an exception after a timeout
//! interval, thus breaking potential deadlocks", which is the right
//! complexity trade-off for a single-user DRM workload.
//!
//! The manager has its own mutex + condvar, separate from the object
//! store's state mutex, reproducing §4.2.3's rule that the state mutex is
//! released while a thread waits on a transactional lock.

use crate::error::{ObjectStoreError, Result};
use crate::ObjectId;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};
use tdb_obs::{Counter, Histogram, Registry, Stopwatch};

/// Lock modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (read) lock.
    Shared,
    /// Exclusive (write) lock.
    Exclusive,
}

/// Identifier of a lock owner (a transaction).
pub type TxnId = u64;

/// Number of independent lock-table shards. Objects hash to a shard; all
/// state for one object (holders, waiters, doomed marks) lives in exactly
/// one shard, so the hot acquire/release paths of transactions touching
/// different objects never contend on a common mutex. 16 shards is plenty
/// for the thread counts this store targets (the paper's workload is a
/// handful of concurrent client transactions).
const SHARD_COUNT: usize = 16;

/// Shard index for an object id (Fibonacci hash; ids are often sequential,
/// so a plain modulo would stripe neighbouring — frequently co-accessed —
/// objects onto the same shard).
fn shard_of(oid: u64) -> usize {
    (oid.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 60) as usize
}

#[derive(Default)]
struct LockTable {
    /// Per-object holders and their mode.
    locks: HashMap<u64, HashMap<TxnId, LockMode>>,
    /// Which object each blocked transaction is currently waiting for.
    /// Maintained by `acquire`'s slow path; used for wait-for-graph cycle
    /// detection when a wait times out. A transaction waits on the shard
    /// of the object it is blocked on, so this map is per-shard too.
    waiting: HashMap<TxnId, u64>,
    /// Blocked transactions wounded by an older rival upgrader; they must
    /// fail their wait immediately instead of sleeping out the timeout
    /// (see `acquire`'s upgrade-deadlock fast path). Upgrade rivals by
    /// definition block on the same object, hence the same shard.
    doomed: HashSet<TxnId>,
}

impl LockTable {
    /// Whether `txn` may acquire `mode` on `oid` right now.
    fn grantable(&self, oid: u64, txn: TxnId, mode: LockMode) -> bool {
        let Some(holders) = self.locks.get(&oid) else {
            return true;
        };
        match mode {
            LockMode::Shared => holders
                .iter()
                .all(|(t, m)| *t == txn || *m == LockMode::Shared),
            LockMode::Exclusive => holders.keys().all(|t| *t == txn),
        }
    }

    /// Grant the lock; returns true when this was a shared→exclusive
    /// upgrade of an already-held lock.
    fn grant(&mut self, oid: u64, txn: TxnId, mode: LockMode) -> bool {
        let holders = self.locks.entry(oid).or_default();
        let prior = holders.get(&txn).copied();
        let slot = holders.entry(txn).or_insert(mode);
        // Upgrades stick; downgrades don't (strict 2PL keeps the strongest
        // mode until release).
        if mode == LockMode::Exclusive {
            *slot = LockMode::Exclusive;
        }
        prior == Some(LockMode::Shared) && mode == LockMode::Exclusive
    }
}

/// Cumulative lock-manager statistics (see [`LockManager::stats`]).
///
/// Timeouts are counted distinctly: `timeouts_deadlock` when the timed-out
/// wait was part of a wait-for cycle (the timeout broke a deadlock, §4.1),
/// `timeouts_contention` when the holder simply never released in time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Lock acquisitions requested (fast or slow path, granted or not).
    pub acquires: u64,
    /// Acquisitions that had to block.
    pub waits: u64,
    /// Successful shared→exclusive upgrades of an already-held lock.
    pub upgrades: u64,
    /// Waits that timed out without a wait-for cycle.
    pub timeouts_contention: u64,
    /// Waits that timed out while part of a wait-for cycle.
    pub timeouts_deadlock: u64,
}

struct LockCounters {
    acquires: Counter,
    waits: Counter,
    upgrades: Counter,
    timeouts_contention: Counter,
    timeouts_deadlock: Counter,
    wait_time: Histogram,
}

impl LockCounters {
    fn with_registry(registry: &Registry) -> LockCounters {
        LockCounters {
            acquires: registry.counter("lock.acquires"),
            waits: registry.counter("lock.waits"),
            upgrades: registry.counter("lock.upgrades"),
            timeouts_contention: registry.counter("lock.timeouts_contention"),
            timeouts_deadlock: registry.counter("lock.timeouts_deadlock"),
            wait_time: registry.histogram("lock.wait"),
        }
    }
}

/// One lock-table shard: its slice of the table plus the condvar its
/// blocked transactions sleep on.
#[derive(Default)]
struct Shard {
    table: Mutex<LockTable>,
    cond: Condvar,
}

/// The lock manager.
pub struct LockManager {
    shards: Vec<Shard>,
    obs: LockCounters,
}

impl Default for LockManager {
    fn default() -> Self {
        Self::new()
    }
}

impl LockManager {
    /// Fresh manager with detached (unregistered) counters.
    pub fn new() -> Self {
        Self::with_registry(&Registry::new())
    }

    /// Fresh manager whose counters live in `registry` under the `lock.`
    /// prefix (`lock.acquires`, `lock.waits`, `lock.upgrades`,
    /// `lock.timeouts_contention`, `lock.timeouts_deadlock`, and the
    /// `lock.wait` wait-time histogram).
    pub fn with_registry(registry: &Registry) -> Self {
        LockManager {
            shards: (0..SHARD_COUNT).map(|_| Shard::default()).collect(),
            obs: LockCounters::with_registry(registry),
        }
    }

    /// Whether `me` (blocked on `oid`) was part of a wait-for cycle: walk
    /// from the holders of `oid` through the `waiting` edges over a
    /// point-in-time snapshot of every shard; reaching `me` again means the
    /// timeout broke a genuine deadlock rather than plain contention. Runs
    /// only after a timeout (cold path), without any shard mutex held by
    /// the caller — shards are snapshotted one at a time, so the graph is
    /// mildly racy, exactly as graph-free timeout classification has to be.
    fn was_deadlocked(&self, me: TxnId, oid: u64) -> bool {
        let mut holders: HashMap<u64, Vec<TxnId>> = HashMap::new();
        let mut waiting: HashMap<TxnId, u64> = HashMap::new();
        for shard in &self.shards {
            let table = shard.table.lock();
            for (o, h) in &table.locks {
                holders.insert(*o, h.keys().copied().collect());
            }
            waiting.extend(table.waiting.iter().map(|(t, o)| (*t, *o)));
        }
        let mut stack: Vec<TxnId> = match holders.get(&oid) {
            Some(h) => h.iter().copied().filter(|t| *t != me).collect(),
            None => return false,
        };
        let mut seen: HashSet<TxnId> = HashSet::new();
        while let Some(t) = stack.pop() {
            if t == me {
                return true;
            }
            if !seen.insert(t) {
                continue;
            }
            if let Some(next_oid) = waiting.get(&t) {
                if let Some(h) = holders.get(next_oid) {
                    stack.extend(h.iter().copied());
                }
            }
        }
        false
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> LockStats {
        LockStats {
            acquires: self.obs.acquires.get(),
            waits: self.obs.waits.get(),
            upgrades: self.obs.upgrades.get(),
            timeouts_contention: self.obs.timeouts_contention.get(),
            timeouts_deadlock: self.obs.timeouts_deadlock.get(),
        }
    }

    /// Acquire `mode` on `oid` for `txn`, waiting up to `timeout`.
    /// Re-acquiring a held mode (or a weaker one) is a no-op; holding
    /// `Shared` and requesting `Exclusive` upgrades (waiting for other
    /// readers to drain).
    pub fn acquire(
        &self,
        txn: TxnId,
        oid: ObjectId,
        mode: LockMode,
        timeout: Duration,
    ) -> Result<()> {
        self.obs.acquires.inc();
        let deadline = Instant::now() + timeout;
        let shard = &self.shards[shard_of(oid.0)];
        let mut table = shard.table.lock();
        if table.grantable(oid.0, txn, mode) {
            if table.grant(oid.0, txn, mode) {
                self.obs.upgrades.inc();
            }
            return Ok(());
        }

        self.obs.waits.inc();
        tdb_obs::trace::emit(
            tdb_obs::TraceLayer::Object,
            tdb_obs::TraceKind::LockWait,
            txn,
            oid.0,
            mode as u64,
        );
        let mut sw = Stopwatch::start();
        table.waiting.insert(txn, oid.0);

        // Upgrade-deadlock fast path. Two transactions that both hold
        // `Shared` on `oid` and both request `Exclusive` can never drain
        // each other: that cycle is certain the moment the second upgrader
        // registers, so waiting out the timeout (and retrying into the same
        // cycle, in lockstep) would livelock. Resolve it wound-wait style
        // by transaction id: the older upgrader wins, every younger rival
        // fails its acquire immediately (counted as a deadlock timeout).
        let upgrading = mode == LockMode::Exclusive
            && table
                .locks
                .get(&oid.0)
                .is_some_and(|h| h.get(&txn) == Some(&LockMode::Shared));
        if upgrading {
            let rivals: Vec<TxnId> = table.locks[&oid.0]
                .keys()
                .filter(|t| **t != txn && table.waiting.get(t) == Some(&oid.0))
                .copied()
                .collect();
            if rivals.iter().any(|t| *t < txn) {
                table.waiting.remove(&txn);
                sw.lap_into(&self.obs.wait_time);
                self.obs.timeouts_deadlock.inc();
                tdb_obs::trace::emit(
                    tdb_obs::TraceLayer::Object,
                    tdb_obs::TraceKind::LockDeadlock,
                    txn,
                    oid.0,
                    2,
                );
                return Err(ObjectStoreError::Deadlock(oid));
            }
            if !rivals.is_empty() {
                table.doomed.extend(rivals);
                shard.cond.notify_all();
            }
        }

        enum Wait {
            Granted,
            Doomed,
            TimedOut,
        }
        let outcome = loop {
            if table.doomed.remove(&txn) {
                break Wait::Doomed;
            }
            if shard.cond.wait_until(&mut table, deadline).timed_out() {
                // One final check: a release may have raced the timeout.
                if table.grantable(oid.0, txn, mode) {
                    break Wait::Granted;
                }
                break Wait::TimedOut;
            }
            if table.grantable(oid.0, txn, mode) {
                break Wait::Granted;
            }
        };
        table.waiting.remove(&txn);
        table.doomed.remove(&txn);
        sw.lap_into(&self.obs.wait_time);
        use tdb_obs::{TraceKind, TraceLayer};
        match outcome {
            Wait::Granted => {
                if table.grant(oid.0, txn, mode) {
                    self.obs.upgrades.inc();
                }
                tdb_obs::trace::emit(TraceLayer::Object, TraceKind::LockGrant, txn, oid.0, 0);
                Ok(())
            }
            Wait::Doomed => {
                self.obs.timeouts_deadlock.inc();
                tdb_obs::trace::emit(TraceLayer::Object, TraceKind::LockDeadlock, txn, oid.0, 0);
                Err(ObjectStoreError::Deadlock(oid))
            }
            Wait::TimedOut => {
                // Classify without the shard mutex: the wait-for graph may
                // span shards, and snapshotting them all while holding one
                // would order shard locks against each other.
                drop(table);
                if self.was_deadlocked(txn, oid.0) {
                    self.obs.timeouts_deadlock.inc();
                    tdb_obs::trace::emit(
                        TraceLayer::Object,
                        TraceKind::LockDeadlock,
                        txn,
                        oid.0,
                        1,
                    );
                    Err(ObjectStoreError::Deadlock(oid))
                } else {
                    self.obs.timeouts_contention.inc();
                    tdb_obs::trace::emit(TraceLayer::Object, TraceKind::LockTimeout, txn, oid.0, 0);
                    Err(ObjectStoreError::LockTimeout(oid))
                }
            }
        }
    }

    /// Release every lock `txn` holds (strict 2PL: all at end of
    /// transaction, never earlier).
    pub fn release_all(&self, txn: TxnId) {
        for shard in &self.shards {
            let mut table = shard.table.lock();
            let mut released = false;
            table.locks.retain(|_, holders| {
                released |= holders.remove(&txn).is_some();
                !holders.is_empty()
            });
            drop(table);
            // A waiter can only be unblocked by a lock this release dropped
            // (doomed wakeups are notified at doom time), so untouched
            // shards are not woken.
            if released {
                shard.cond.notify_all();
            }
        }
    }

    /// Mode `txn` holds on `oid`, if any (test/diagnostic aid).
    pub fn held(&self, txn: TxnId, oid: ObjectId) -> Option<LockMode> {
        self.shards[shard_of(oid.0)]
            .table
            .lock()
            .locks
            .get(&oid.0)
            .and_then(|h| h.get(&txn))
            .copied()
    }

    /// Number of objects currently locked (diagnostics).
    pub fn locked_objects(&self) -> usize {
        self.shards.iter().map(|s| s.table.lock().locks.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    const T: Duration = Duration::from_millis(50);
    const LONG: Duration = Duration::from_secs(5);

    fn oid(n: u64) -> ObjectId {
        crate::ChunkId(n)
    }

    #[test]
    fn shared_locks_coexist() {
        let lm = LockManager::new();
        lm.acquire(1, oid(9), LockMode::Shared, T).unwrap();
        lm.acquire(2, oid(9), LockMode::Shared, T).unwrap();
        assert_eq!(lm.held(1, oid(9)), Some(LockMode::Shared));
        assert_eq!(lm.held(2, oid(9)), Some(LockMode::Shared));
    }

    #[test]
    fn exclusive_excludes() {
        let lm = LockManager::new();
        lm.acquire(1, oid(9), LockMode::Exclusive, T).unwrap();
        assert!(matches!(
            lm.acquire(2, oid(9), LockMode::Shared, T),
            Err(ObjectStoreError::LockTimeout(_))
        ));
        assert!(matches!(
            lm.acquire(2, oid(9), LockMode::Exclusive, T),
            Err(ObjectStoreError::LockTimeout(_))
        ));
        // Different object is fine.
        lm.acquire(2, oid(10), LockMode::Exclusive, T).unwrap();
    }

    #[test]
    fn reacquire_and_upgrade() {
        let lm = LockManager::new();
        lm.acquire(1, oid(1), LockMode::Shared, T).unwrap();
        lm.acquire(1, oid(1), LockMode::Shared, T).unwrap();
        lm.acquire(1, oid(1), LockMode::Exclusive, T).unwrap(); // sole holder upgrade
        assert_eq!(lm.held(1, oid(1)), Some(LockMode::Exclusive));
        // Exclusive then shared request keeps exclusive.
        lm.acquire(1, oid(1), LockMode::Shared, T).unwrap();
        assert_eq!(lm.held(1, oid(1)), Some(LockMode::Exclusive));
    }

    #[test]
    fn upgrade_blocked_by_other_reader() {
        let lm = LockManager::new();
        lm.acquire(1, oid(1), LockMode::Shared, T).unwrap();
        lm.acquire(2, oid(1), LockMode::Shared, T).unwrap();
        assert!(matches!(
            lm.acquire(1, oid(1), LockMode::Exclusive, T),
            Err(ObjectStoreError::LockTimeout(_))
        ));
    }

    #[test]
    fn release_wakes_waiters() {
        let lm = Arc::new(LockManager::new());
        lm.acquire(1, oid(5), LockMode::Exclusive, T).unwrap();
        let lm2 = lm.clone();
        let waiter = std::thread::spawn(move || lm2.acquire(2, oid(5), LockMode::Exclusive, LONG));
        std::thread::sleep(Duration::from_millis(30));
        lm.release_all(1);
        waiter.join().unwrap().unwrap();
        assert_eq!(lm.held(2, oid(5)), Some(LockMode::Exclusive));
    }

    #[test]
    fn deadlock_broken_by_timeout() {
        let lm = Arc::new(LockManager::new());
        lm.acquire(1, oid(1), LockMode::Exclusive, T).unwrap();
        lm.acquire(2, oid(2), LockMode::Exclusive, T).unwrap();
        let lm2 = lm.clone();
        let t2 = std::thread::spawn(move || lm2.acquire(2, oid(1), LockMode::Exclusive, T));
        // Txn 1 wants 2's object; classic cycle, one side must time out.
        let r1 = lm.acquire(1, oid(2), LockMode::Exclusive, T);
        let r2 = t2.join().unwrap();
        assert!(r1.is_err() || r2.is_err());
    }

    #[test]
    fn contention_timeout_counted_distinctly() {
        let lm = LockManager::new();
        lm.acquire(1, oid(1), LockMode::Exclusive, T).unwrap();
        // Txn 1 is not waiting on anything: no cycle, plain contention.
        assert!(lm.acquire(2, oid(1), LockMode::Shared, T).is_err());
        let stats = lm.stats();
        assert_eq!(stats.timeouts_contention, 1);
        assert_eq!(stats.timeouts_deadlock, 0);
        assert_eq!(stats.waits, 1);
        assert_eq!(stats.acquires, 2);
    }

    #[test]
    fn deadlock_timeout_counted_distinctly() {
        let lm = Arc::new(LockManager::new());
        lm.acquire(1, oid(1), LockMode::Exclusive, T).unwrap();
        lm.acquire(2, oid(2), LockMode::Exclusive, T).unwrap();
        // Txn 2 blocks on txn 1's object with a long timeout...
        let lm2 = lm.clone();
        let t2 = std::thread::spawn(move || lm2.acquire(2, oid(1), LockMode::Exclusive, LONG));
        std::thread::sleep(Duration::from_millis(30));
        // ... so when txn 1 blocks on txn 2's object and times out, the
        // wait-for graph has the cycle 1 → o2 → 2 → o1 → 1.
        assert!(lm.acquire(1, oid(2), LockMode::Exclusive, T).is_err());
        assert_eq!(lm.stats().timeouts_deadlock, 1);
        assert_eq!(lm.stats().timeouts_contention, 0);
        // Breaking the deadlock by releasing txn 1 lets txn 2 proceed.
        lm.release_all(1);
        t2.join().unwrap().unwrap();
    }

    #[test]
    fn upgrades_counted() {
        let lm = LockManager::new();
        lm.acquire(1, oid(1), LockMode::Shared, T).unwrap();
        lm.acquire(1, oid(1), LockMode::Exclusive, T).unwrap();
        // Re-granting an exclusive lock is not another upgrade.
        lm.acquire(1, oid(1), LockMode::Exclusive, T).unwrap();
        assert_eq!(lm.stats().upgrades, 1);
    }

    #[test]
    fn release_all_clears_table() {
        let lm = LockManager::new();
        lm.acquire(1, oid(1), LockMode::Shared, T).unwrap();
        lm.acquire(1, oid(2), LockMode::Exclusive, T).unwrap();
        assert_eq!(lm.locked_objects(), 2);
        lm.release_all(1);
        assert_eq!(lm.locked_objects(), 0);
        assert_eq!(lm.held(1, oid(1)), None);
    }

    #[test]
    fn contended_counter_serializes() {
        let lm = Arc::new(LockManager::new());
        let counter = Arc::new(Mutex::new(0u32));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let lm = lm.clone();
                let counter = counter.clone();
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        lm.acquire(t, oid(0), LockMode::Exclusive, LONG).unwrap();
                        {
                            let mut c = counter.lock();
                            let v = *c;
                            std::thread::yield_now();
                            *c = v + 1;
                        }
                        lm.release_all(t);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*counter.lock(), 400);
    }
}
