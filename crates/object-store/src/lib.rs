//! The TDB **object store** (paper §4): type-safe, transactional storage of
//! application objects over the trusted chunk store.
//!
//! The C++ original stores application-defined classes directly, using
//! explicit pickling, smart-pointer `Ref`s that are invalidated when their
//! transaction ends, strict two-phase locking with a deadlock-breaking
//! timeout, and an LRU object cache with a no-steal policy (dirty objects
//! are pinned until commit). This Rust reproduction maps each mechanism:
//!
//! | paper (C++)                         | here (Rust)                            |
//! |-------------------------------------|----------------------------------------|
//! | subclass of `Object` + class id     | [`Persistent`] trait + [`ClassId`]     |
//! | registered unpickling constructor   | [`ClassRegistry::register`]            |
//! | `ReadonlyRef<T>` / `WritableRef<T>` | [`ReadonlyRef`] / [`WritableRef`] whose `get`/`get_mut` fail after the transaction ends |
//! | runtime-checked `Ref` subtyping     | checked downcast at `open_*::<T>`      |
//! | strict 2PL, shared/exclusive locks  | [`locks::LockManager`] with timeout    |
//! | object cache, no-steal, pinning     | [`store::ObjectStore`] LRU cache       |
//! | one object per chunk (§4.2.1)       | `ObjectId` *is* the `ChunkId`          |
//!
//! ```
//! use object_store::{ClassRegistry, ObjectStore, ObjectStoreConfig, Persistent, Pickler,
//!                    Unpickler, PickleError, impl_persistent_boilerplate};
//! use chunk_store::{ChunkStore, ChunkStoreConfig, Durability};
//! use tdb_platform::{MemStore, MemSecretStore, VolatileCounter};
//! use std::sync::Arc;
//!
//! struct Meter { views: u32 }
//! impl Persistent for Meter {
//!     impl_persistent_boilerplate!(0x4d45_5445); // "METE"
//!     fn pickle(&self, w: &mut Pickler) { w.u32(self.views); }
//! }
//! fn unpickle_meter(r: &mut Unpickler) -> Result<Box<dyn Persistent>, PickleError> {
//!     Ok(Box::new(Meter { views: r.u32()? }))
//! }
//!
//! let chunks = Arc::new(ChunkStore::create(
//!     Arc::new(MemStore::new()), &MemSecretStore::from_label("os-doc"),
//!     Arc::new(VolatileCounter::new()), ChunkStoreConfig::default()).unwrap());
//! let mut registry = ClassRegistry::new();
//! registry.register(0x4d45_5445, "Meter", unpickle_meter);
//! let store = ObjectStore::create(chunks, registry, ObjectStoreConfig::default()).unwrap();
//!
//! let txn = store.begin();
//! let id = txn.insert(Box::new(Meter { views: 0 })).unwrap();
//! txn.commit(Durability::Durable).unwrap();
//!
//! let txn = store.begin();
//! let meter = txn.open_writable::<Meter>(id).unwrap();
//! meter.get_mut().views += 1;
//! drop(meter);
//! txn.commit(Durability::Durable).unwrap();
//!
//! // Snapshot-isolated read: no locks, unaffected by later commits.
//! let reader = store.begin_read();
//! assert_eq!(reader.read::<Meter, _>(id, |m| m.views).unwrap(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod class;
pub mod error;
pub mod locks;
pub mod pickle;
pub mod read_txn;
pub mod reader;
pub mod refs;
pub mod store;
pub mod txn;

pub use chunk_store::{ChunkId, Durability, Proven};
pub use class::{ClassId, ClassRegistry, Persistent, UnpickleFn};
pub use error::{ObjectStoreError, Result};
pub use locks::{LockMode, LockStats};
pub use pickle::{PickleError, Pickler, Unpickler};
pub use read_txn::ReadTransaction;
pub use reader::ObjectReader;
pub use refs::{ReadonlyRef, WritableRef};
pub use store::{CacheStats, ObjectStore, ObjectStoreConfig, StoreOptions};
pub use txn::Transaction;

/// The persistent name of an object. TDB stores one object per chunk, so an
/// object's id *is* its chunk's id (paper §4.2.1).
pub type ObjectId = ChunkId;
