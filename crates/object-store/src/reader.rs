//! [`ObjectReader`]: the read-side capability shared by locking
//! transactions and snapshot readers.
//!
//! Layers that only *read* objects (index traversals, extractor
//! application, scans) are written against this trait, so the same code
//! serves both a [`Transaction`] (2PL shared locks, sees its own writes)
//! and a [`ReadTransaction`](crate::ReadTransaction) (lock-free,
//! snapshot-isolated).

use crate::error::{ObjectStoreError, Result};
use crate::txn::Transaction;
use crate::{ObjectId, Persistent};

/// Read access to persistent objects, independent of isolation mechanism.
///
/// All access is closure-scoped: implementations may hold internal guards
/// for the duration of the call only, so callers can never accidentally
/// pin an object (and, for snapshot readers, never block a writer for
/// longer than one closure).
pub trait ObjectReader {
    /// Apply `f` to the object as a `dyn Persistent` (e.g. for extractor
    /// functions that don't know the concrete type).
    fn with_persistent<R>(&self, oid: ObjectId, f: impl FnOnce(&dyn Persistent) -> R) -> Result<R>;

    /// Apply `f` to the object downcast to `T`; fails with
    /// [`ObjectStoreError::TypeMismatch`] when the stored object is of a
    /// different class.
    fn with_object<T: Persistent, R>(&self, oid: ObjectId, f: impl FnOnce(&T) -> R) -> Result<R> {
        self.try_with_object(oid, |t| Ok(f(t)))
    }

    /// Like [`with_object`](ObjectReader::with_object) but `f` itself may
    /// fail; the error propagates unchanged.
    fn try_with_object<T: Persistent, R>(
        &self,
        oid: ObjectId,
        f: impl FnOnce(&T) -> Result<R>,
    ) -> Result<R>;

    /// Read a named root object id, as visible to this reader (a locking
    /// transaction sees its own pending root updates; a snapshot reader
    /// sees the roots as of its snapshot).
    fn root_id(&self, name: &str) -> Option<ObjectId>;
}

impl ObjectReader for Transaction {
    fn with_persistent<R>(&self, oid: ObjectId, f: impl FnOnce(&dyn Persistent) -> R) -> Result<R> {
        self.with_readonly(oid, f)
    }

    fn try_with_object<T: Persistent, R>(
        &self,
        oid: ObjectId,
        f: impl FnOnce(&T) -> Result<R>,
    ) -> Result<R> {
        self.with_readonly(oid, |obj| match obj.as_any().downcast_ref::<T>() {
            Some(t) => f(t),
            None => Err(ObjectStoreError::TypeMismatch {
                id: oid,
                found: obj.class_id(),
            }),
        })?
    }

    fn root_id(&self, name: &str) -> Option<ObjectId> {
        self.root(name)
    }
}
