//! Transactions over persistent objects (paper Fig. 3 / §4.2.3).

use crate::class::pickle_object;
use crate::error::{ObjectStoreError, Result};
use crate::locks::LockMode;
use crate::refs::{ReadonlyRef, WritableRef};
use crate::store::{ObjectCell, ObjectStore};
use crate::{ChunkId, ObjectId, Persistent};
use chunk_store::{Durability, ShardedWriteBatch};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Shared transaction state; `Ref`s hold it to check validity at deref.
pub(crate) struct TxnCore {
    pub(crate) id: u64,
    pub(crate) active: AtomicBool,
    pub(crate) sets: Mutex<TxnSets>,
}

impl TxnCore {
    pub(crate) fn new(id: u64) -> Self {
        TxnCore {
            id,
            active: AtomicBool::new(true),
            sets: Mutex::new(TxnSets::default()),
        }
    }
}

/// "Each transaction remembers the ids of the objects inserted, read,
/// written, and removed. These sets help avoid locking an object multiple
/// times, and provide the identities of objects to be committed or removed
/// at commit time." (§4.2.3)
#[derive(Default)]
pub(crate) struct TxnSets {
    /// Objects inserted or opened writable (to pickle at commit).
    pub written: BTreeMap<u64, Arc<ObjectCell>>,
    /// Ids allocated by this transaction (returned to the pool on abort).
    pub inserted: Vec<ObjectId>,
    /// Objects removed (deallocated at commit).
    pub removed: BTreeSet<u64>,
    /// Ids read (diagnostic; locking dedup is handled by the lock table).
    pub read: BTreeSet<u64>,
    /// Root registry updates (`None` = unregister).
    pub root_updates: HashMap<String, Option<ObjectId>>,
}

/// A transaction. Created by [`ObjectStore::begin`]; must end with
/// [`commit`](Transaction::commit) or [`abort`](Transaction::abort)
/// (dropping an active transaction aborts it).
pub struct Transaction {
    store: ObjectStore,
    core: Arc<TxnCore>,
    /// This transaction's private chunk staging area. Ids allocate from it
    /// and pickled objects stage into it, so concurrent transactions never
    /// share write state; `None` once commit has consumed it.
    batch: Mutex<Option<ShardedWriteBatch>>,
}

impl Transaction {
    pub(crate) fn new(store: ObjectStore, core: Arc<TxnCore>) -> Self {
        let batch = store.inner.chunks.begin_batch();
        Transaction {
            store,
            core,
            batch: Mutex::new(Some(batch)),
        }
    }

    /// This transaction's numeric id (diagnostics).
    pub fn id(&self) -> u64 {
        self.core.id
    }

    /// Whether the transaction can still be used.
    pub fn is_active(&self) -> bool {
        self.core.active.load(Ordering::Acquire)
    }

    fn check_active(&self) -> Result<()> {
        if self.is_active() {
            Ok(())
        } else {
            Err(ObjectStoreError::TransactionInactive)
        }
    }

    fn lock(&self, oid: ObjectId, mode: LockMode) -> Result<()> {
        if self.store.locking() {
            self.store
                .inner
                .locks
                .acquire(self.core.id, oid, mode, self.store.lock_timeout())?;
        }
        Ok(())
    }

    /// Insert a new object; returns its persistent id (paper Fig. 3:
    /// `insert`).
    pub fn insert(&self, object: Box<dyn Persistent>) -> Result<ObjectId> {
        self.check_active()?;
        if !self.store.inner.registry.contains(object.class_id()) {
            return Err(ObjectStoreError::ClassNotRegistered(object.class_id()));
        }
        let oid = {
            let mut batch = self.batch.lock();
            batch
                .as_mut()
                .expect("active transaction owns its batch")
                .allocate_chunk_id()?
        };
        self.lock(oid, LockMode::Exclusive)?;
        let cell = Arc::new(ObjectCell {
            id: oid,
            data: RwLock::new(object),
            dirty: AtomicBool::new(true),
            size: AtomicUsize::new(256), // refined at commit
            // Dirty content has no committed version yet; the commit stamps
            // the real sequence. MAX keeps snapshot readers off it even if
            // they race the dirty flag.
            version: AtomicU64::new(u64::MAX),
        });
        self.store.install_cell(cell.clone());
        let mut sets = self.core.sets.lock();
        sets.written.insert(oid.0, cell);
        sets.inserted.push(oid);
        Ok(oid)
    }

    fn open_cell(&self, oid: ObjectId, mode: LockMode) -> Result<Arc<ObjectCell>> {
        self.check_active()?;
        if self.core.sets.lock().removed.contains(&oid.0) {
            return Err(ObjectStoreError::NotFound(oid));
        }
        self.lock(oid, mode)?;
        self.store.load_cell(oid)
    }

    fn check_type<T: Persistent>(&self, cell: &Arc<ObjectCell>, oid: ObjectId) -> Result<()> {
        let data = cell.data.read();
        if data.as_any().downcast_ref::<T>().is_none() {
            return Err(ObjectStoreError::TypeMismatch {
                id: oid,
                found: data.class_id(),
            });
        }
        Ok(())
    }

    /// Open an object read-only with a shared lock (paper Fig. 3:
    /// `openReadonly`). The type check replaces the paper's runtime-checked
    /// `Ref` construction.
    pub fn open_readonly<T: Persistent>(&self, oid: ObjectId) -> Result<ReadonlyRef<T>> {
        let cell = self.open_cell(oid, LockMode::Shared)?;
        self.check_type::<T>(&cell, oid)?;
        self.core.sets.lock().read.insert(oid.0);
        Ok(ReadonlyRef {
            cell,
            txn: self.core.clone(),
            _p: PhantomData,
        })
    }

    /// Open an object read-write with an exclusive lock (paper Fig. 3:
    /// `openWritable`). The object is marked dirty and pinned until the
    /// transaction ends (no-steal).
    pub fn open_writable<T: Persistent>(&self, oid: ObjectId) -> Result<WritableRef<T>> {
        let cell = self.open_cell(oid, LockMode::Exclusive)?;
        self.check_type::<T>(&cell, oid)?;
        cell.dirty.store(true, Ordering::Release);
        self.core.sets.lock().written.insert(oid.0, cell.clone());
        Ok(WritableRef {
            cell,
            txn: self.core.clone(),
            _p: PhantomData,
        })
    }

    /// Open an object read-only and apply `f` to it as a `dyn Persistent`
    /// (shared lock held for the call). Used by layers that process objects
    /// generically, e.g. the collection store applying extractor functions.
    pub fn with_readonly<R>(
        &self,
        oid: ObjectId,
        f: impl FnOnce(&dyn Persistent) -> R,
    ) -> Result<R> {
        let cell = self.open_cell(oid, LockMode::Shared)?;
        self.core.sets.lock().read.insert(oid.0);
        let guard = cell.data.read();
        Ok(f(&**guard))
    }

    /// Class id of an object without naming its Rust type.
    pub fn class_of(&self, oid: ObjectId) -> Result<crate::ClassId> {
        self.with_readonly(oid, |obj| obj.class_id())
    }

    /// Remove an object and free its id for reuse (paper Fig. 3: `remove`).
    pub fn remove(&self, oid: ObjectId) -> Result<()> {
        self.check_active()?;
        self.lock(oid, LockMode::Exclusive)?;
        if !self.store.inner.chunks.is_allocated(oid) {
            return Err(ObjectStoreError::NotFound(oid));
        }
        let mut sets = self.core.sets.lock();
        if sets.removed.contains(&oid.0) {
            return Err(ObjectStoreError::NotFound(oid));
        }
        sets.written.remove(&oid.0);
        sets.removed.insert(oid.0);
        Ok(())
    }

    /// Register (or update) a named root object id; applied at commit.
    /// "The application can also register a 'root' object id with the
    /// object store" (§4.1).
    pub fn set_root(&self, name: &str, oid: ObjectId) -> Result<()> {
        self.check_active()?;
        self.core
            .sets
            .lock()
            .root_updates
            .insert(name.to_string(), Some(oid));
        Ok(())
    }

    /// Unregister a named root; applied at commit.
    pub fn remove_root(&self, name: &str) -> Result<()> {
        self.check_active()?;
        self.core
            .sets
            .lock()
            .root_updates
            .insert(name.to_string(), None);
        Ok(())
    }

    /// Read a named root, seeing this transaction's pending updates.
    pub fn root(&self, name: &str) -> Option<ObjectId> {
        if let Some(update) = self.core.sets.lock().root_updates.get(name) {
            return *update;
        }
        self.store.root(name)
    }

    /// Commit: pickle every inserted/written object into this
    /// transaction's private chunk batch, apply removals, and atomically
    /// commit the batch at the chunk level. `durability` matches the chunk
    /// store's durable/nondurable commit semantics (a durable commit may
    /// share its sync/anchor round with concurrent committers via group
    /// commit). Invalidates this transaction and all its `Ref`s.
    pub fn commit(self, durability: Durability) -> Result<()> {
        self.check_active()?;
        let sets = {
            let mut sets = self.core.sets.lock();
            std::mem::take(&mut *sets)
        };
        let mut batch = self
            .batch
            .lock()
            .take()
            .expect("active transaction owns its batch");
        let chunks = &self.store.inner.chunks;

        // Stage everything into the private batch: removals, pickled
        // writes, the roots chunk. Pickling and (at append time) sealing
        // happen outside any store-wide critical path.
        let mut roots_undo = Vec::new();
        let staged = (|| -> Result<Vec<(ObjectId, usize)>> {
            let mut sizes = Vec::new();
            for oid in &sets.removed {
                batch.deallocate(ChunkId(*oid))?;
            }
            for (oid, cell) in &sets.written {
                if sets.removed.contains(oid) {
                    continue;
                }
                let bytes = pickle_object(&**cell.data.read());
                batch.write(ChunkId(*oid), &bytes)?;
                sizes.push((ChunkId(*oid), bytes.len()));
            }
            if !sets.root_updates.is_empty() {
                roots_undo = self
                    .store
                    .apply_root_updates(&sets.root_updates, &mut batch)?;
            }
            Ok(sizes)
        })();

        let sizes = match staged {
            Ok(sizes) => sizes,
            Err(e) => {
                // Roll back *this* transaction only: its batch and its
                // root updates. Other transactions' staged writes live in
                // their own batches and are untouched.
                self.store.revert_roots(roots_undo);
                batch.discard();
                self.abort_with_sets(sets);
                return Err(e);
            }
        };

        // Append the batch's commit record to the log — the commit point.
        let ticket = match chunks.append_batch(batch, durability) {
            Ok(ticket) => ticket,
            Err(e) => {
                self.store.revert_roots(roots_undo);
                self.abort_with_sets(sets);
                return Err(e.into());
            }
        };

        for (oid, cell) in sets.written.iter() {
            // Stamp the commit sequence *before* clearing dirty: a snapshot
            // reader that observes `!dirty` must also observe a version
            // that tells it whether its snapshot predates this commit. The
            // stamp is per object: in a sharded store each shard has its
            // own sequence space, so the version must be the sequence the
            // object's *own* shard assigned to this commit.
            cell.version
                .store(ticket.seq_for(ChunkId(*oid)), Ordering::Release);
            cell.dirty.store(false, Ordering::Release);
        }
        for oid in &sets.removed {
            self.store.evict_cell(ChunkId(*oid));
        }
        for (oid, size) in sizes {
            self.store.update_cell_size(oid, size);
        }
        // Release our Arc clones before the eviction pass, or the
        // just-committed cells look externally referenced.
        drop(sets);
        // Strict 2PL releases at the commit point (our records are in the
        // log), *before* waiting out group durability: any later
        // transaction that reads our writes appends after us in log
        // order, so the durable anchor that covers it covers us first.
        self.finish();
        let result = chunks.wait_durable(ticket);
        self.store.evict_pass();
        result.map_err(Into::into)
    }

    /// Deprecated bool-flavoured commit; use
    /// [`commit`](Transaction::commit) with a [`Durability`].
    #[deprecated(note = "use commit(Durability::{Durable, Lazy}) instead")]
    pub fn commit_bool(self, durable: bool) -> Result<()> {
        self.commit(Durability::from(durable))
    }

    /// Undo all changes made during the transaction (paper Fig. 3:
    /// `abort`). "The object store evicts all objects opened for writing
    /// from the cache, deallocates the chunk ids corresponding to the
    /// objects inserted, and releases all locks." (§4.2.3)
    pub fn abort(self) {
        let sets = {
            let mut sets = self.core.sets.lock();
            std::mem::take(&mut *sets)
        };
        self.abort_with_sets(sets);
    }

    fn abort_with_sets(&self, sets: TxnSets) {
        // Dropping the batch discards its staged operations and returns
        // its allocated ids to the free pool (no-op if commit already
        // consumed it).
        drop(self.batch.lock().take());
        for (oid, _) in sets.written {
            self.store.evict_cell(ChunkId(oid));
        }
        self.store
            .inner
            .chunks
            .release_unwritten_ids(&sets.inserted);
        self.finish();
    }

    /// Common end-of-transaction path: invalidate refs, release locks.
    fn finish(&self) {
        self.core.active.store(false, Ordering::Release);
        if self.store.locking() {
            self.store.inner.locks.release_all(self.core.id);
        }
    }
}

impl Drop for Transaction {
    fn drop(&mut self) {
        if self.is_active() {
            let sets = {
                let mut sets = self.core.sets.lock();
                std::mem::take(&mut *sets)
            };
            self.abort_with_sets(sets);
        }
    }
}
