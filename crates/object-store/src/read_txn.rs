//! Snapshot-isolated read-only transactions.
//!
//! A [`ReadTransaction`] pins a copy-on-write snapshot of the chunk store
//! and reads against it with **zero** 2PL locks. Writers and the log
//! cleaner proceed concurrently; the cleaner will not relocate or free any
//! segment a pinned snapshot still references, so the reader's view stays
//! intact for its whole lifetime. Dropping the reader releases the pin.
//!
//! Reads take two paths:
//!
//! * **cache fast path** — if the shared object cache holds a *clean* cell
//!   whose version stamp is `<=` the snapshot's commit sequence, the cached
//!   (current) content is exactly what the snapshot would decode, and it is
//!   returned without touching the chunk store. Version stamps are upper
//!   bounds, so a stale-looking stamp only costs a fallback, never
//!   correctness.
//! * **snapshot fallback** — otherwise the chunk is read *as of the
//!   snapshot* (possibly from a since-overwritten log record), unpickled,
//!   and memoized privately in the transaction. Fallback cells are never
//!   installed into the shared cache: their content may be older than the
//!   current version.

use crate::error::{ObjectStoreError, Result};
use crate::reader::ObjectReader;
use crate::store::{ObjectCell, ObjectStore};
use crate::{ObjectId, Persistent};
use chunk_store::{Proven, ShardedSnapshot};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use tdb_obs::Counter;

/// A snapshot-isolated read-only transaction; see the
/// [module docs](crate::read_txn). Created by [`ObjectStore::begin_read`].
///
/// Unlike [`Transaction`](crate::Transaction), there is nothing to commit
/// or roll back: the reader observes one consistent state and simply ends
/// when dropped (or via [`finish`](ReadTransaction::finish)).
pub struct ReadTransaction {
    store: ObjectStore,
    snap: ShardedSnapshot,
    /// Snapshot-private cells decoded via the fallback path, memoized so a
    /// scan touching the same node twice unpickles once.
    fallback: Mutex<HashMap<u64, Arc<ObjectCell>>>,
    /// Roots as of the snapshot, decoded lazily on first use.
    roots: Mutex<Option<Arc<HashMap<String, ObjectId>>>>,
    fast_hits: Counter,
    snap_reads: Counter,
}

impl ReadTransaction {
    pub(crate) fn new(store: ObjectStore, snap: ShardedSnapshot) -> Self {
        let obs = store.obs();
        tdb_obs::trace::emit(
            tdb_obs::TraceLayer::Object,
            tdb_obs::TraceKind::SnapPin,
            0,
            snap.commit_seq(),
            0,
        );
        ReadTransaction {
            store,
            snap,
            fallback: Mutex::new(HashMap::new()),
            roots: Mutex::new(None),
            fast_hits: obs.counter("read.cache_fast"),
            snap_reads: obs.counter("read.snapshot_fallbacks"),
        }
    }

    /// The highest chunk-store commit sequence this reader observes
    /// across shards. On an unsharded store every commit with sequence
    /// `<=` this value is visible, every later one is not; at shard
    /// counts above 1 visibility is per shard (see
    /// [`ShardedSnapshot::seq_for`]).
    pub fn commit_seq(&self) -> u64 {
        self.snap.commit_seq()
    }

    /// The underlying pinned snapshot (for diffing/backup interop).
    pub fn snapshot(&self) -> &ShardedSnapshot {
        &self.snap
    }

    /// Apply `f` to the object as a `dyn Persistent`, as of the snapshot.
    pub fn with_readonly<R>(
        &self,
        oid: ObjectId,
        f: impl FnOnce(&dyn Persistent) -> R,
    ) -> Result<R> {
        self.with_cell(oid, |obj| Ok(f(obj)))
    }

    /// Apply `f` to the object downcast to `T`, as of the snapshot.
    pub fn read<T: Persistent, R>(&self, oid: ObjectId, f: impl FnOnce(&T) -> R) -> Result<R> {
        self.with_cell(oid, |obj| match obj.as_any().downcast_ref::<T>() {
            Some(t) => Ok(f(t)),
            None => Err(ObjectStoreError::TypeMismatch {
                id: oid,
                found: obj.class_id(),
            }),
        })
    }

    /// Class id of an object without naming its Rust type.
    pub fn class_of(&self, oid: ObjectId) -> Result<crate::ClassId> {
        self.with_readonly(oid, |obj| obj.class_id())
    }

    /// Proof-carrying read: apply `f` to the object downcast to `T` and
    /// return the result together with a deferred inclusion proof, or a
    /// provable `None` if the object does not exist as of the snapshot.
    ///
    /// Unlike [`read`](ReadTransaction::read), this always takes the
    /// snapshot path — the proof must speak about the pinned chunk bytes,
    /// so the shared cache's fast path cannot be used. Call
    /// [`Proven::prove`](chunk_store::Proven::prove) at any later time
    /// (even after writers commit and the cleaner relocates segments) to
    /// obtain the [`tdb_proof::ChunkProof`] a standalone verifier checks
    /// against the store's trust anchor.
    /// The chunk proof binds the object's **pickled bytes** (that is what
    /// the store hashes); a verifier therefore needs those bytes, either
    /// from [`read_proven_bytes`](ReadTransaction::read_proven_bytes) or
    /// by re-pickling the typed object (pickling is deterministic).
    pub fn read_proven<T: Persistent, R>(
        &self,
        oid: ObjectId,
        f: impl FnOnce(&T) -> R,
    ) -> Result<Proven<Option<R>>> {
        let proven = self
            .store
            .inner
            .chunks
            .proven_at_snapshot(&self.snap, oid)?;
        let decoded = match &proven.value {
            Some(bytes) => {
                let obj = self.store.inner.registry.unpickle_object(bytes)?;
                match obj.as_any().downcast_ref::<T>() {
                    Some(t) => Some(f(t)),
                    None => {
                        return Err(ObjectStoreError::TypeMismatch {
                            id: oid,
                            found: obj.class_id(),
                        })
                    }
                }
            }
            None => None,
        };
        Ok(proven.map(|_| decoded))
    }

    /// Proof-carrying read of the object's raw pickled bytes — the
    /// transferable form: ship `(bytes, proof)` to a client and it can
    /// check [`Verifier::verify_chunk`](tdb_proof::Verifier::verify_chunk)
    /// with exactly these bytes, then unpickle locally.
    pub fn read_proven_bytes(&self, oid: ObjectId) -> Result<Proven<Option<Vec<u8>>>> {
        Ok(self
            .store
            .inner
            .chunks
            .proven_at_snapshot(&self.snap, oid)?)
    }

    /// Mint a keyed-root attestation bound to this reader's snapshot
    /// (counter value and commit sequence). The collection layer uses this
    /// to attest the root of a [`tdb_proof::KeyedTree`] rebuilt from an
    /// index scan at the same snapshot.
    pub fn keyed_attest(
        &self,
        scope: &str,
        total: u64,
        root: &tdb_proof::Digest,
    ) -> Result<tdb_proof::KeyedAttestation> {
        Ok(self
            .store
            .inner
            .chunks
            .keyed_attest_at(&self.snap, scope, total, root)?)
    }

    /// A named root object id **as of the snapshot** (a root registered by
    /// a commit after this reader began is not visible).
    pub fn root(&self, name: &str) -> Option<ObjectId> {
        self.roots_map().ok()?.get(name).copied()
    }

    /// All root names as of the snapshot, sorted.
    pub fn root_names(&self) -> Vec<String> {
        let mut names: Vec<String> = match self.roots_map() {
            Ok(roots) => roots.keys().cloned().collect(),
            Err(_) => Vec::new(),
        };
        names.sort();
        names
    }

    /// End the transaction, releasing the snapshot pin. Equivalent to
    /// dropping; provided so call sites can make the end explicit.
    pub fn finish(self) {}

    fn roots_map(&self) -> Result<Arc<HashMap<String, ObjectId>>> {
        let mut cached = self.roots.lock();
        if let Some(roots) = cached.as_ref() {
            return Ok(roots.clone());
        }
        let bytes = self
            .store
            .inner
            .chunks
            .read_at_snapshot(&self.snap, self.store.inner.roots_chunk)?;
        let roots = Arc::new(ObjectStore::unpickle_roots(&bytes)?);
        *cached = Some(roots.clone());
        Ok(roots)
    }

    /// Core read: cache fast path, else snapshot fallback. `f` runs under a
    /// short-lived read guard; it must not call back into this transaction
    /// for the same object.
    fn with_cell<R>(
        &self,
        oid: ObjectId,
        f: impl FnOnce(&dyn Persistent) -> Result<R>,
    ) -> Result<R> {
        if let Some(cell) = self.store.lookup_cell(oid) {
            // The checks must run *under* the data guard: `dirty` is set
            // before a writer can take the write lock, and commits stamp
            // `version` before clearing `dirty`. So observing a clean cell
            // here proves the guarded content is the committed version the
            // stamp describes.
            let guard = cell.data.read();
            if !cell.dirty.load(Ordering::Acquire)
                && cell.version.load(Ordering::Acquire) <= self.snap.seq_for(oid)
            {
                self.fast_hits.inc();
                return f(&**guard);
            }
        }
        let cell = self.fallback_cell(oid)?;
        let guard = cell.data.read();
        f(&**guard)
    }

    fn fallback_cell(&self, oid: ObjectId) -> Result<Arc<ObjectCell>> {
        if let Some(cell) = self.fallback.lock().get(&oid.0) {
            return Ok(cell.clone());
        }
        self.snap_reads.inc();
        let bytes = self
            .store
            .inner
            .chunks
            .read_at_snapshot(&self.snap, oid)
            .map_err(|e| match e {
                chunk_store::ChunkStoreError::NotAllocated(id)
                | chunk_store::ChunkStoreError::NotWritten(id) => ObjectStoreError::NotFound(id),
                other => ObjectStoreError::Chunk(other),
            })?;
        let obj = self.store.inner.registry.unpickle_object(&bytes)?;
        let cell = Arc::new(ObjectCell {
            id: oid,
            data: RwLock::new(obj),
            dirty: AtomicBool::new(false),
            size: AtomicUsize::new(bytes.len()),
            version: AtomicU64::new(self.snap.seq_for(oid)),
        });
        Ok(self.fallback.lock().entry(oid.0).or_insert(cell).clone())
    }
}

impl Drop for ReadTransaction {
    fn drop(&mut self) {
        tdb_obs::trace::emit(
            tdb_obs::TraceLayer::Object,
            tdb_obs::TraceKind::SnapUnpin,
            0,
            self.snap.commit_seq(),
            0,
        );
    }
}

impl ObjectReader for ReadTransaction {
    fn with_persistent<R>(&self, oid: ObjectId, f: impl FnOnce(&dyn Persistent) -> R) -> Result<R> {
        self.with_readonly(oid, f)
    }

    fn try_with_object<T: Persistent, R>(
        &self,
        oid: ObjectId,
        f: impl FnOnce(&T) -> Result<R>,
    ) -> Result<R> {
        self.with_cell(oid, |obj| match obj.as_any().downcast_ref::<T>() {
            Some(t) => f(t),
            None => Err(ObjectStoreError::TypeMismatch {
                id: oid,
                found: obj.class_id(),
            }),
        })
    }

    fn root_id(&self, name: &str) -> Option<ObjectId> {
        self.root(name)
    }
}
