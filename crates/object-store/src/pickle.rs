//! Explicit pickling: the portable byte format for persistent objects.
//!
//! "Subclasses of Object must implement a method to pickle an object into a
//! sequence of bytes, and a constructor to unpickle an object from a
//! sequence of bytes … The application may choose to pickle objects in an
//! architecture-independent format" (paper §4.1). The helpers here *are*
//! architecture-independent (little-endian, length-prefixed), so a database
//! written on one platform opens on another — and "TDB provides
//! implementations of pickling and unpickling operations for basic types",
//! which is what the method pairs below reproduce.

use std::fmt;

/// Error from unpickling malformed bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PickleError(pub String);

impl fmt::Display for PickleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for PickleError {}

/// Serializer for object state.
#[derive(Default)]
pub struct Pickler {
    buf: Vec<u8>,
}

impl Pickler {
    /// Fresh empty pickler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finished bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Write a `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `i32`.
    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `f64` (IEEE-754 bits).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Write length-prefixed raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn string(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Write an object id.
    pub fn object_id(&mut self, id: crate::ObjectId) {
        self.u64(id.0);
    }

    /// Write `Some`/`None` followed by the value.
    pub fn option<T>(&mut self, v: &Option<T>, mut f: impl FnMut(&mut Self, &T)) {
        match v {
            Some(x) => {
                self.bool(true);
                f(self, x);
            }
            None => self.bool(false),
        }
    }

    /// Write a length-prefixed sequence.
    pub fn seq<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Self, &T)) {
        self.u32(items.len() as u32);
        for item in items {
            f(self, item);
        }
    }
}

/// Deserializer for object state. All reads are bounds-checked: the bytes
/// passed tamper validation, but an application bug (or schema change)
/// must fail cleanly, not panic.
pub struct Unpickler<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Unpickler<'a> {
    /// Wrap pickled bytes.
    pub fn new(bytes: &'a [u8]) -> Self {
        Unpickler { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PickleError> {
        if self.remaining() < n {
            return Err(PickleError(format!(
                "needed {n} bytes at offset {}, only {} remain",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8, PickleError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `bool`.
    pub fn bool(&mut self) -> Result<bool, PickleError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(PickleError(format!("invalid bool byte {other}"))),
        }
    }

    /// Read a `u16`.
    pub fn u16(&mut self) -> Result<u16, PickleError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32, PickleError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, PickleError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Read an `i32`.
    pub fn i32(&mut self) -> Result<i32, PickleError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Read an `i64`.
    pub fn i64(&mut self) -> Result<i64, PickleError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Read an `f64`.
    pub fn f64(&mut self) -> Result<f64, PickleError> {
        Ok(f64::from_bits(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8"),
        )))
    }

    /// Read length-prefixed raw bytes.
    pub fn bytes(&mut self) -> Result<&'a [u8], PickleError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, PickleError> {
        let raw = self.bytes()?;
        String::from_utf8(raw.to_vec()).map_err(|_| PickleError("invalid UTF-8".into()))
    }

    /// Read an object id.
    pub fn object_id(&mut self) -> Result<crate::ObjectId, PickleError> {
        Ok(crate::ChunkId(self.u64()?))
    }

    /// Read an `Option`.
    pub fn option<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, PickleError>,
    ) -> Result<Option<T>, PickleError> {
        if self.bool()? {
            Ok(Some(f(self)?))
        } else {
            Ok(None)
        }
    }

    /// Read a length-prefixed sequence.
    pub fn seq<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, PickleError>,
    ) -> Result<Vec<T>, PickleError> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            // Each element needs at least one byte... except zero-sized
            // encodings; cap against the obvious bomb anyway.
            if n > self.remaining().saturating_mul(8).max(1024) {
                return Err(PickleError(format!("implausible sequence length {n}")));
            }
        }
        let mut out = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            out.push(f(self)?);
        }
        Ok(out)
    }

    /// Assert all bytes were consumed (schema drift check).
    pub fn finish(self) -> Result<(), PickleError> {
        if self.remaining() != 0 {
            return Err(PickleError(format!("{} trailing bytes", self.remaining())));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut p = Pickler::new();
        p.u8(7);
        p.bool(true);
        p.u16(65535);
        p.u32(123456);
        p.u64(u64::MAX);
        p.i32(-5);
        p.i64(i64::MIN);
        p.f64(3.25);
        p.bytes(b"raw");
        p.string("héllo");
        p.object_id(crate::ChunkId(42));
        let bytes = p.into_bytes();

        let mut u = Unpickler::new(&bytes);
        assert_eq!(u.u8().unwrap(), 7);
        assert!(u.bool().unwrap());
        assert_eq!(u.u16().unwrap(), 65535);
        assert_eq!(u.u32().unwrap(), 123456);
        assert_eq!(u.u64().unwrap(), u64::MAX);
        assert_eq!(u.i32().unwrap(), -5);
        assert_eq!(u.i64().unwrap(), i64::MIN);
        assert_eq!(u.f64().unwrap(), 3.25);
        assert_eq!(u.bytes().unwrap(), b"raw");
        assert_eq!(u.string().unwrap(), "héllo");
        assert_eq!(u.object_id().unwrap(), crate::ChunkId(42));
        u.finish().unwrap();
    }

    #[test]
    fn option_and_seq_roundtrip() {
        let mut p = Pickler::new();
        p.option(&Some(9u32), |p, v| p.u32(*v));
        p.option(&None::<u32>, |p, v| p.u32(*v));
        p.seq(&[1u64, 2, 3], |p, v| p.u64(*v));
        let bytes = p.into_bytes();

        let mut u = Unpickler::new(&bytes);
        assert_eq!(u.option(|u| u.u32()).unwrap(), Some(9));
        assert_eq!(u.option(|u| u.u32()).unwrap(), None);
        assert_eq!(u.seq(|u| u.u64()).unwrap(), vec![1, 2, 3]);
        u.finish().unwrap();
    }

    #[test]
    fn truncation_and_garbage_fail_cleanly() {
        let mut p = Pickler::new();
        p.string("hello");
        let bytes = p.into_bytes();
        for cut in 0..bytes.len() {
            assert!(Unpickler::new(&bytes[..cut]).string().is_err(), "cut {cut}");
        }
        // Bad bool byte.
        assert!(Unpickler::new(&[9]).bool().is_err());
        // Bad UTF-8.
        let mut p = Pickler::new();
        p.bytes(&[0xFF, 0xFE]);
        assert!(Unpickler::new(&p.into_bytes()).string().is_err());
        // Trailing bytes flagged.
        assert!(Unpickler::new(&[0, 1]).finish().is_err());
        // Absurd sequence length rejected without OOM.
        let mut p = Pickler::new();
        p.u32(u32::MAX);
        assert!(Unpickler::new(&p.into_bytes()).seq(|u| u.u64()).is_err());
    }

    #[test]
    fn f64_nan_roundtrips_bitwise() {
        let mut p = Pickler::new();
        p.f64(f64::NAN);
        let bytes = p.into_bytes();
        assert!(Unpickler::new(&bytes).f64().unwrap().is_nan());
    }
}
