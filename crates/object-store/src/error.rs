//! Object store errors.

use crate::class::ClassId;
use crate::ObjectId;
use std::fmt;

/// Result alias for object store operations.
pub type Result<T> = std::result::Result<T, ObjectStoreError>;

/// Errors from the object store.
#[derive(Debug)]
pub enum ObjectStoreError {
    /// No object with this id exists.
    NotFound(ObjectId),
    /// The object exists but is not of the requested type — the Rust analog
    /// of the paper's checked runtime error when constructing a
    /// `Ref<MyObject>` from an incompatible object.
    TypeMismatch {
        /// Id of the object.
        id: ObjectId,
        /// Class id actually stored.
        found: ClassId,
    },
    /// A lock could not be acquired within the timeout. The paper breaks
    /// potential deadlocks exactly this way: "a blocked call raises an
    /// exception after a timeout interval" (§4.1). The application may
    /// retry the operation or abort the transaction.
    LockTimeout(ObjectId),
    /// A lock wait timed out **and** the waits-for graph contained a cycle
    /// through this transaction — a genuine deadlock, not mere contention.
    /// Retrying after aborting is the expected response.
    Deadlock(ObjectId),
    /// The transaction already committed or aborted.
    TransactionInactive,
    /// Invalid store configuration (see [`StoreOptions`](crate::StoreOptions)).
    Config(String),
    /// An object's stored class id has no registered unpickler.
    ClassNotRegistered(ClassId),
    /// The stored bytes do not unpickle as the registered class claims.
    Unpickle(crate::pickle::PickleError),
    /// Error from the chunk store (including tamper/replay detection).
    Chunk(chunk_store::ChunkStoreError),
}

impl fmt::Display for ObjectStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectStoreError::NotFound(id) => write!(f, "object {id:?} not found"),
            ObjectStoreError::TypeMismatch { id, found } => {
                write!(
                    f,
                    "object {id:?} has class id {found:#x}, not the requested type"
                )
            }
            ObjectStoreError::LockTimeout(id) => {
                write!(
                    f,
                    "timed out waiting for a lock on {id:?} (possible deadlock)"
                )
            }
            ObjectStoreError::Deadlock(id) => {
                write!(f, "deadlock detected while waiting for a lock on {id:?}")
            }
            ObjectStoreError::TransactionInactive => {
                write!(f, "transaction already committed or aborted")
            }
            ObjectStoreError::Config(m) => write!(f, "invalid store configuration: {m}"),
            ObjectStoreError::ClassNotRegistered(cid) => {
                write!(f, "no unpickler registered for class id {cid:#x}")
            }
            ObjectStoreError::Unpickle(e) => write!(f, "unpickling failed: {e}"),
            ObjectStoreError::Chunk(e) => write!(f, "chunk store: {e}"),
        }
    }
}

impl std::error::Error for ObjectStoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ObjectStoreError::Chunk(e) => Some(e),
            ObjectStoreError::Unpickle(e) => Some(e),
            _ => None,
        }
    }
}

impl From<chunk_store::ChunkStoreError> for ObjectStoreError {
    fn from(e: chunk_store::ChunkStoreError) -> Self {
        match e {
            chunk_store::ChunkStoreError::NotAllocated(id)
            | chunk_store::ChunkStoreError::NotWritten(id) => ObjectStoreError::NotFound(id),
            other => ObjectStoreError::Chunk(other),
        }
    }
}

impl From<crate::pickle::PickleError> for ObjectStoreError {
    fn from(e: crate::pickle::PickleError) -> Self {
        ObjectStoreError::Unpickle(e)
    }
}

impl ObjectStoreError {
    /// Stable, layer-independent classification (see [`tdb_core::ErrorKind`]).
    pub fn kind(&self) -> tdb_core::ErrorKind {
        use tdb_core::ErrorKind;
        match self {
            ObjectStoreError::NotFound(_) => ErrorKind::NotFound,
            ObjectStoreError::TypeMismatch { .. } => ErrorKind::Usage,
            ObjectStoreError::LockTimeout(_) => ErrorKind::LockTimeout,
            ObjectStoreError::Deadlock(_) => ErrorKind::Deadlock,
            ObjectStoreError::TransactionInactive => ErrorKind::Usage,
            ObjectStoreError::ClassNotRegistered(_) => ErrorKind::Usage,
            ObjectStoreError::Config(_) => ErrorKind::Usage,
            ObjectStoreError::Unpickle(_) => ErrorKind::Codec,
            ObjectStoreError::Chunk(e) => e.kind(),
        }
    }
}

impl From<ObjectStoreError> for tdb_core::Error {
    fn from(e: ObjectStoreError) -> Self {
        tdb_core::Error::with_source(e.kind(), e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: ObjectStoreError =
            chunk_store::ChunkStoreError::NotAllocated(crate::ChunkId(3)).into();
        assert!(matches!(e, ObjectStoreError::NotFound(_)));
        let e: ObjectStoreError = chunk_store::ChunkStoreError::TamperDetected("x".into()).into();
        assert!(matches!(e, ObjectStoreError::Chunk(_)));
        assert!(ObjectStoreError::LockTimeout(crate::ChunkId(1))
            .to_string()
            .contains("deadlock"));
    }
}
