//! Snapshot-isolated read-only transactions: isolation semantics, the
//! lock-free guarantee, fast-path/fallback correctness, and the pin
//! lifecycle (snapshots must release their segment pins on drop so the
//! cleaner can make progress — and an abandoned reader must never strand
//! them).

use chunk_store::{ChunkStore, ChunkStoreConfig};
use object_store::{
    impl_persistent_boilerplate, ClassRegistry, Durability, ObjectStore, ObjectStoreConfig,
    Persistent, PickleError, Pickler, Unpickler,
};
use std::sync::Arc;
use std::time::Duration;
use tdb_platform::{MemSecretStore, MemStore, VolatileCounter};

const CLASS_CELL: u32 = 0xCE11_0001;

struct Cell {
    val: i64,
    pad: Vec<u8>,
}

impl Persistent for Cell {
    impl_persistent_boilerplate!(CLASS_CELL);
    fn pickle(&self, w: &mut Pickler) {
        w.i64(self.val);
        w.bytes(&self.pad);
    }
}

fn unpickle_cell(r: &mut Unpickler) -> Result<Box<dyn Persistent>, PickleError> {
    Ok(Box::new(Cell {
        val: r.i64()?,
        pad: r.bytes()?.to_vec(),
    }))
}

fn registry() -> ClassRegistry {
    let mut reg = ClassRegistry::new();
    reg.register(CLASS_CELL, "Cell", unpickle_cell);
    reg
}

fn store() -> ObjectStore {
    let chunks = Arc::new(
        ChunkStore::create(
            Arc::new(MemStore::new()),
            &MemSecretStore::from_label("read-txn-tests"),
            Arc::new(VolatileCounter::new()),
            ChunkStoreConfig::small_for_tests(),
        )
        .unwrap(),
    );
    ObjectStore::create(chunks, registry(), ObjectStoreConfig::default()).unwrap()
}

fn cell(val: i64) -> Box<Cell> {
    Box::new(Cell {
        val,
        pad: Vec::new(),
    })
}

fn fat_cell(val: i64) -> Box<Cell> {
    Box::new(Cell {
        val,
        pad: vec![val as u8; 512],
    })
}

// --- Isolation semantics ---------------------------------------------------

#[test]
fn reader_sees_snapshot_not_later_commits() {
    let store = store();
    let t = store.begin();
    let id = t.insert(cell(1)).unwrap();
    t.set_root("cell", id).unwrap();
    t.commit(Durability::Durable).unwrap();

    let r = store.begin_read();
    assert_eq!(r.read::<Cell, _>(id, |c| c.val).unwrap(), 1);

    // A writer commits a new value while the reader is open.
    let t = store.begin();
    t.open_writable::<Cell>(id).unwrap().get_mut().val = 2;
    t.commit(Durability::Durable).unwrap();

    // The old reader still sees the snapshot value; a new reader sees the
    // committed one.
    assert_eq!(r.read::<Cell, _>(id, |c| c.val).unwrap(), 1);
    assert_eq!(r.root("cell"), Some(id));
    let r2 = store.begin_read();
    assert_eq!(r2.read::<Cell, _>(id, |c| c.val).unwrap(), 2);
    assert!(r2.commit_seq() > r.commit_seq());
}

#[test]
fn reader_sees_objects_deleted_after_its_snapshot() {
    let store = store();
    let t = store.begin();
    let id = t.insert(cell(7)).unwrap();
    t.set_root("cell", id).unwrap();
    t.commit(Durability::Durable).unwrap();

    let r = store.begin_read();
    let t = store.begin();
    t.remove(id).unwrap();
    t.remove_root("cell").unwrap();
    t.commit(Durability::Durable).unwrap();

    // As of the snapshot the object (and the root) still exist.
    assert_eq!(r.read::<Cell, _>(id, |c| c.val).unwrap(), 7);
    assert_eq!(r.root("cell"), Some(id));
    // A fresh reader agrees with the deletion.
    let r2 = store.begin_read();
    assert!(r2.root("cell").is_none());
}

#[test]
fn uncommitted_writes_are_invisible_to_readers() {
    let store = store();
    let t = store.begin();
    let id = t.insert(cell(1)).unwrap();
    t.commit(Durability::Durable).unwrap();

    let t = store.begin();
    t.open_writable::<Cell>(id).unwrap().get_mut().val = 99;
    // Transaction still open: a reader (snapshot or cache fast path) must
    // not observe the dirty value.
    let r = store.begin_read();
    assert_eq!(r.read::<Cell, _>(id, |c| c.val).unwrap(), 1);
    t.abort();
    let r2 = store.begin_read();
    assert_eq!(r2.read::<Cell, _>(id, |c| c.val).unwrap(), 1);
}

// --- The lock-free guarantee ----------------------------------------------

#[test]
fn reader_never_blocks_writer_and_vice_versa() {
    let chunks = Arc::new(
        ChunkStore::create(
            Arc::new(MemStore::new()),
            &MemSecretStore::from_label("read-txn-locks"),
            Arc::new(VolatileCounter::new()),
            ChunkStoreConfig::small_for_tests(),
        )
        .unwrap(),
    );
    let cfg = ObjectStoreConfig {
        lock_timeout: Duration::from_millis(200),
        ..Default::default()
    };
    let store = ObjectStore::create(chunks, registry(), cfg).unwrap();

    let t = store.begin();
    let id = t.insert(cell(5)).unwrap();
    t.commit(Durability::Durable).unwrap();

    // Reader holds the snapshot open across a writer's entire lifetime.
    let r = store.begin_read();
    assert_eq!(r.read::<Cell, _>(id, |c| c.val).unwrap(), 5);

    // The writer takes the exclusive 2PL lock without contending with the
    // reader (a 2PL read transaction would block it for lock_timeout).
    let t = store.begin();
    t.open_writable::<Cell>(id).unwrap().get_mut().val = 6;
    t.commit(Durability::Durable).unwrap();

    // And the reader keeps reading the pinned version afterwards.
    assert_eq!(r.read::<Cell, _>(id, |c| c.val).unwrap(), 5);

    // The writer's lock must have been released at commit: another writer
    // gets it instantly even with the reader still open.
    let t = store.begin();
    t.open_writable::<Cell>(id).unwrap().get_mut().val = 7;
    t.commit(Durability::Durable).unwrap();
    drop(r);
}

// --- Fast path / fallback accounting ---------------------------------------

#[test]
fn fast_path_and_fallback_counters() {
    let store = store();
    let t = store.begin();
    let id = t.insert(cell(1)).unwrap();
    t.commit(Durability::Durable).unwrap();

    let obs = store.obs();
    let fast = obs.counter("read.cache_fast");
    let fallback = obs.counter("read.snapshot_fallbacks");

    // Clean cache, version <= snapshot seq: the reader uses the shared
    // cache fast path.
    let r = store.begin_read();
    let fast0 = fast.get();
    assert_eq!(r.read::<Cell, _>(id, |c| c.val).unwrap(), 1);
    assert!(fast.get() > fast0, "expected a cache fast-path read");

    // After a concurrent commit the cached version is newer than the
    // snapshot: the same reader must fall back to a snapshot chunk read.
    let t = store.begin();
    t.open_writable::<Cell>(id).unwrap().get_mut().val = 2;
    t.commit(Durability::Durable).unwrap();
    let fb0 = fallback.get();
    assert_eq!(r.read::<Cell, _>(id, |c| c.val).unwrap(), 1);
    assert!(fallback.get() > fb0, "expected a snapshot fallback read");

    // Fallback cells are memoized per-reader: a second read of the same
    // object takes no additional fallback.
    let fb1 = fallback.get();
    assert_eq!(r.read::<Cell, _>(id, |c| c.val).unwrap(), 1);
    assert_eq!(fallback.get(), fb1);
}

// --- Pin lifecycle ----------------------------------------------------------

/// Build a store with dead segments that are pinned only by `r`'s
/// snapshot: fill segments with fat cells, snapshot, then overwrite
/// everything so the old versions become garbage.
fn store_with_pinned_garbage() -> (
    ObjectStore,
    object_store::ReadTransaction,
    Vec<object_store::ObjectId>,
) {
    let store = store();
    let t = store.begin();
    let ids: Vec<_> = (0..24).map(|i| t.insert(fat_cell(i)).unwrap()).collect();
    t.commit(Durability::Durable).unwrap();

    let r = store.begin_read();
    // Touch every object through the snapshot so the pin is exercised.
    for &id in &ids {
        r.read::<Cell, _>(id, |c| c.val).unwrap();
    }

    // Overwrite everything twice: the snapshot's versions are now dead in
    // the current state, and only the snapshot pins their segments.
    for round in 1..=2 {
        let t = store.begin();
        for &id in &ids {
            t.open_writable::<Cell>(id).unwrap().get_mut().val += 100 * round;
        }
        t.commit(Durability::Durable).unwrap();
    }
    store.chunk_store().checkpoint().unwrap();
    (store, r, ids)
}

#[test]
fn dropping_reader_releases_pins_and_unblocks_cleaning() {
    let (store, r, ids) = store_with_pinned_garbage();
    let chunks = store.chunk_store().clone();

    // While the reader lives, repeated cleaning passes cannot free the
    // pinned segments (they may free unpinned ones; the pinned garbage
    // stays). Record how far cleaning gets...
    let mut freed_while_pinned = 0;
    for _ in 0..8 {
        freed_while_pinned += chunks.clean().unwrap();
    }
    let disk_while_pinned = chunks.disk_size();

    // The reader still sees its snapshot afterwards (relocations must have
    // skipped every pinned chunk).
    for (i, &id) in ids.iter().enumerate() {
        assert_eq!(r.read::<Cell, _>(id, |c| c.val).unwrap(), i as i64);
    }

    // ...then drop the pin and clean again: now strictly more space is
    // reclaimable than before.
    drop(r);
    let mut freed_after_drop = 0;
    for _ in 0..8 {
        freed_after_drop += chunks.clean().unwrap();
    }
    chunks.checkpoint().unwrap();
    for _ in 0..8 {
        freed_after_drop += chunks.clean().unwrap();
    }
    assert!(
        freed_after_drop > 0,
        "dropping the snapshot must unblock the cleaner \
         (freed {freed_while_pinned} while pinned, {freed_after_drop} after drop, \
          disk was {disk_while_pinned}, now {})",
        chunks.disk_size()
    );
}

#[test]
fn abandoned_reader_never_strands_pins() {
    let (store, r, _ids) = store_with_pinned_garbage();
    let chunks = store.chunk_store().clone();

    // Simulate an aborted/forgotten reader: no finish(), just drop —
    // including one that was moved into a thread that panicked.
    let handle = std::thread::spawn(move || {
        let _moved_in = r;
        panic!("reader thread dies without cleanup");
    });
    assert!(handle.join().is_err());

    // The Weak registration must be gone: cleaning makes progress.
    let mut freed = 0;
    for _ in 0..8 {
        freed += chunks.clean().unwrap();
    }
    chunks.checkpoint().unwrap();
    for _ in 0..8 {
        freed += chunks.clean().unwrap();
    }
    assert!(
        freed > 0,
        "a dead reader thread must not strand segment pins"
    );
}

#[test]
fn finish_releases_pin_like_drop() {
    let (store, r, _ids) = store_with_pinned_garbage();
    let chunks = store.chunk_store().clone();
    r.finish();
    let mut freed = 0;
    for _ in 0..8 {
        freed += chunks.clean().unwrap();
    }
    chunks.checkpoint().unwrap();
    for _ in 0..8 {
        freed += chunks.clean().unwrap();
    }
    assert!(freed > 0, "finish() must release the snapshot pin");
}

// --- Reads during cleaning --------------------------------------------------

#[test]
fn snapshot_reads_survive_cleaner_relocation() {
    let store = store();
    let t = store.begin();
    let ids: Vec<_> = (0..24).map(|i| t.insert(fat_cell(i)).unwrap()).collect();
    t.commit(Durability::Durable).unwrap();

    let r = store.begin_read();

    // Generate garbage and force cleaning while the reader is open. The
    // cleaner relocates live chunks; every pinned chunk must remain
    // readable at its snapshot location or its relocated one.
    for round in 0..6 {
        let t = store.begin();
        for &id in &ids {
            t.open_writable::<Cell>(id).unwrap().get_mut().val += round;
        }
        t.commit(Durability::Durable).unwrap();
        store.chunk_store().checkpoint().unwrap();
        store.chunk_store().clean().unwrap();
    }

    for (i, &id) in ids.iter().enumerate() {
        assert_eq!(
            r.read::<Cell, _>(id, |c| c.val).unwrap(),
            i as i64,
            "snapshot read of object {i} changed under cleaning"
        );
    }
}
