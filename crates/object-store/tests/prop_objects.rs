//! Property test: the object store against a model under random typed
//! operations with commits, aborts, and full-stack reopens.

use chunk_store::{ChunkStore, ChunkStoreConfig};
use object_store::Durability;
use object_store::{
    impl_persistent_boilerplate, ClassRegistry, ObjectId, ObjectStore, ObjectStoreConfig,
    Persistent, PickleError, Pickler, Unpickler,
};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;
use tdb_platform::{MemSecretStore, MemStore, VolatileCounter};

const CLASS_CELL: u32 = 0xCE11;

struct Cell {
    value: i64,
    blob: Vec<u8>,
}

impl Persistent for Cell {
    impl_persistent_boilerplate!(CLASS_CELL);
    fn pickle(&self, w: &mut Pickler) {
        w.i64(self.value);
        w.bytes(&self.blob);
    }
}

fn unpickle(r: &mut Unpickler) -> Result<Box<dyn Persistent>, PickleError> {
    Ok(Box::new(Cell {
        value: r.i64()?,
        blob: r.bytes()?.to_vec(),
    }))
}

fn registry() -> ClassRegistry {
    let mut reg = ClassRegistry::new();
    reg.register(CLASS_CELL, "Cell", unpickle);
    reg
}

#[derive(Debug, Clone)]
enum Op {
    /// Insert `n` objects and commit (or abort).
    InsertBatch { n: usize, commit: bool },
    /// Update pick-th object's value; maybe abort.
    Update {
        pick: usize,
        value: i64,
        commit: bool,
    },
    /// Remove pick-th object.
    Remove { pick: usize },
    /// Close and reopen the whole stack.
    Reopen,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (1usize..5, any::<bool>()).prop_map(|(n, commit)| Op::InsertBatch { n, commit }),
        4 => (any::<usize>(), any::<i64>(), any::<bool>())
            .prop_map(|(pick, value, commit)| Op::Update { pick, value, commit }),
        2 => any::<usize>().prop_map(|pick| Op::Remove { pick }),
        1 => Just(Op::Reopen),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn object_ops_match_model(ops in proptest::collection::vec(op_strategy(), 1..30)) {
        let mem = MemStore::new();
        let counter = VolatileCounter::new();
        let secret = MemSecretStore::from_label("prop-objects");
        let open_stack = |create: bool| -> ObjectStore {
            let chunks = Arc::new(
                if create {
                    ChunkStore::create(
                        Arc::new(mem.clone()),
                        &secret,
                        Arc::new(counter.clone()),
                        ChunkStoreConfig::small_for_tests(),
                    )
                } else {
                    ChunkStore::open(
                        Arc::new(mem.clone()),
                        &secret,
                        Arc::new(counter.clone()),
                        ChunkStoreConfig::small_for_tests(),
                    )
                }
                .unwrap(),
            );
            if create {
                ObjectStore::create(chunks, registry(), ObjectStoreConfig::default())
            } else {
                ObjectStore::open(chunks, registry(), ObjectStoreConfig::default())
            }
            .unwrap()
        };

        let mut os = open_stack(true);
        let mut model: BTreeMap<ObjectId, i64> = BTreeMap::new();
        let mut seq = 0i64;

        for op in ops {
            match op {
                Op::InsertBatch { n, commit } => {
                    let t = os.begin();
                    let mut fresh = Vec::new();
                    for _ in 0..n {
                        seq += 1;
                        let id = t
                            .insert(Box::new(Cell { value: seq, blob: vec![seq as u8; 40] }))
                            .unwrap();
                        fresh.push((id, seq));
                    }
                    if commit {
                        t.commit(Durability::Durable).unwrap();
                        model.extend(fresh);
                    } else {
                        t.abort();
                    }
                }
                Op::Update { pick, value, commit } => {
                    if model.is_empty() { continue; }
                    let id = *model.keys().nth(pick % model.len()).unwrap();
                    let t = os.begin();
                    {
                        let c = t.open_writable::<Cell>(id).unwrap();
                        c.get_mut().value = value;
                    }
                    if commit {
                        t.commit(Durability::Durable).unwrap();
                        model.insert(id, value);
                    } else {
                        t.abort();
                    }
                }
                Op::Remove { pick } => {
                    if model.is_empty() { continue; }
                    let id = *model.keys().nth(pick % model.len()).unwrap();
                    let t = os.begin();
                    t.remove(id).unwrap();
                    t.commit(Durability::Durable).unwrap();
                    model.remove(&id);
                }
                Op::Reopen => {
                    drop(os);
                    os = open_stack(false);
                }
            }

            // Agreement after every step.
            let t = os.begin();
            for (&id, &value) in &model {
                let c = t.open_readonly::<Cell>(id).unwrap();
                prop_assert_eq!(c.get().value, value, "object {:?}", id);
            }
            t.commit(Durability::Lazy).unwrap();
        }

        // Survives a final reopen too.
        drop(os);
        let os = open_stack(false);
        let t = os.begin();
        for (&id, &value) in &model {
            let c = t.open_readonly::<Cell>(id).unwrap();
            prop_assert_eq!(c.get().value, value);
        }
        t.commit(Durability::Lazy).unwrap();
    }
}
