//! Tests for the §4.2.2 cache policies: no-steal pinning, reference-count
//! protection, and lock-timeout configurability.

use chunk_store::{ChunkStore, ChunkStoreConfig};
use object_store::Durability;
use object_store::{
    impl_persistent_boilerplate, ClassRegistry, ObjectStore, ObjectStoreConfig, ObjectStoreError,
    Persistent, PickleError, Pickler, Unpickler,
};
use std::sync::Arc;
use std::time::Duration;
use tdb_platform::{MemSecretStore, MemStore, VolatileCounter};

const CLASS_BLOB: u32 = 0xB10B;

struct Blob {
    tag: u32,
    data: Vec<u8>,
}

impl Persistent for Blob {
    impl_persistent_boilerplate!(CLASS_BLOB);
    fn pickle(&self, w: &mut Pickler) {
        w.u32(self.tag);
        w.bytes(&self.data);
    }
}

fn unpickle(r: &mut Unpickler) -> Result<Box<dyn Persistent>, PickleError> {
    Ok(Box::new(Blob {
        tag: r.u32()?,
        data: r.bytes()?.to_vec(),
    }))
}

fn store_with(cfg: ObjectStoreConfig) -> ObjectStore {
    let chunks = Arc::new(
        ChunkStore::create(
            Arc::new(MemStore::new()),
            &MemSecretStore::from_label("cache-policy"),
            Arc::new(VolatileCounter::new()),
            ChunkStoreConfig::default(),
        )
        .unwrap(),
    );
    let mut reg = ClassRegistry::new();
    reg.register(CLASS_BLOB, "Blob", unpickle);
    ObjectStore::create(chunks, reg, cfg).unwrap()
}

/// No-steal: a dirty object is pinned regardless of cache pressure; its
/// uncommitted state must stay reachable until commit.
#[test]
fn dirty_objects_pinned_under_pressure() {
    let os = store_with(ObjectStoreConfig {
        cache_budget: 2048,
        ..Default::default()
    });

    // Open a transaction that dirties one large object...
    let t = os.begin();
    let big = t
        .insert(Box::new(Blob {
            tag: 1,
            data: vec![0xAA; 1500],
        }))
        .unwrap();

    // ...then blast the cache with unrelated objects from the same txn.
    let mut others = Vec::new();
    for i in 0..50u32 {
        others.push(
            t.insert(Box::new(Blob {
                tag: i + 100,
                data: vec![1; 200],
            }))
            .unwrap(),
        );
    }
    // The dirty object's uncommitted state is still there.
    let r = t.open_readonly::<Blob>(big).unwrap();
    assert_eq!(r.get().data.len(), 1500);
    assert_eq!(r.get().tag, 1);
    drop(r);
    t.commit(Durability::Durable).unwrap();

    // After commit everything is durable and re-loadable even if evicted.
    let t = os.begin();
    assert_eq!(
        t.open_readonly::<Blob>(big).unwrap().get().data,
        vec![0xAA; 1500]
    );
    for (i, id) in others.iter().enumerate() {
        assert_eq!(
            t.open_readonly::<Blob>(*id).unwrap().get().tag,
            i as u32 + 100
        );
    }
    let stats = os.cache_stats();
    assert!(
        stats.evictions > 0,
        "pressure must have evicted something: {stats:?}"
    );
}

/// Reference counting: an object the application holds a Ref to is never
/// evicted, even when clean.
#[test]
fn referenced_objects_survive_eviction_waves() {
    let os = store_with(ObjectStoreConfig {
        cache_budget: 1024,
        ..Default::default()
    });
    let t = os.begin();
    let held = t
        .insert(Box::new(Blob {
            tag: 7,
            data: vec![7; 300],
        }))
        .unwrap();
    t.commit(Durability::Durable).unwrap();

    let t = os.begin();
    let held_ref = t.open_readonly::<Blob>(held).unwrap();
    // Wave of traffic that overflows the budget several times.
    for i in 0..100u32 {
        let id = t
            .insert(Box::new(Blob {
                tag: i,
                data: vec![2; 200],
            }))
            .unwrap();
        let _ = id;
    }
    // The guard still works without refetching (same cached cell).
    assert_eq!(held_ref.get().tag, 7);
    drop(held_ref);
    t.commit(Durability::Durable).unwrap();
}

#[test]
fn lock_timeout_is_configurable() {
    let os = store_with(ObjectStoreConfig {
        lock_timeout: Duration::from_millis(30),
        ..Default::default()
    });
    let t = os.begin();
    let id = t
        .insert(Box::new(Blob {
            tag: 0,
            data: vec![],
        }))
        .unwrap();
    t.commit(Durability::Durable).unwrap();

    let holder = os.begin();
    let _guard = holder.open_writable::<Blob>(id).unwrap();
    let started = std::time::Instant::now();
    let os2 = os.clone();
    let waiter = std::thread::spawn(move || {
        let t2 = os2.begin();
        t2.open_readonly::<Blob>(id).map(|_| ())
    });
    let result = waiter.join().unwrap();
    let waited = started.elapsed();
    assert!(matches!(result, Err(ObjectStoreError::LockTimeout(_))));
    assert!(
        waited >= Duration::from_millis(25),
        "returned too early: {waited:?}"
    );
    assert!(
        waited < Duration::from_millis(2000),
        "ignored the configured timeout: {waited:?}"
    );
}

/// The paper's retry guidance: after a timeout the application "may
/// either retry the failed operation or abort and retry the entire
/// transaction" — both must work.
#[test]
fn retry_after_timeout_succeeds() {
    let os = store_with(ObjectStoreConfig {
        lock_timeout: Duration::from_millis(20),
        ..Default::default()
    });
    let t = os.begin();
    let id = t
        .insert(Box::new(Blob {
            tag: 0,
            data: vec![],
        }))
        .unwrap();
    t.commit(Durability::Durable).unwrap();

    let holder = os.begin();
    let guard = holder.open_writable::<Blob>(id).unwrap();
    let t2 = os.begin();
    // First attempt times out...
    assert!(matches!(
        t2.open_readonly::<Blob>(id),
        Err(ObjectStoreError::LockTimeout(_))
    ));
    // ...the holder finishes...
    drop(guard);
    holder.commit(Durability::Durable).unwrap();
    // ...and the *same transaction* retries the failed operation.
    assert!(t2.open_readonly::<Blob>(id).is_ok());
    t2.commit(Durability::Lazy).unwrap();
}

/// Eviction accounting stays consistent while dirty objects are pinned:
/// the incrementally maintained byte count must equal a fresh walk of the
/// cache at every phase (pressure with pins held, after commit, after the
/// post-commit eviction pass), pinned bytes must cover the dirty set, and
/// eviction must never have touched a pinned object.
#[test]
fn eviction_accounting_consistent_under_pinning() {
    let os = store_with(ObjectStoreConfig {
        cache_budget: 4096,
        ..Default::default()
    });

    let check = |phase: &str| {
        let (accounted, recomputed, pinned) = os.debug_cache_accounting();
        assert_eq!(
            accounted, recomputed,
            "cache byte accounting drifted ({phase})"
        );
        assert!(
            pinned <= accounted,
            "pinned {pinned} exceeds occupancy {accounted} ({phase})"
        );
        pinned
    };

    // Dirty a couple of large objects, then flood well past the budget.
    let t = os.begin();
    let big_a = t
        .insert(Box::new(Blob {
            tag: 1,
            data: vec![0xA; 1200],
        }))
        .unwrap();
    let big_b = t
        .insert(Box::new(Blob {
            tag: 2,
            data: vec![0xB; 1200],
        }))
        .unwrap();
    for i in 0..80u32 {
        t.insert(Box::new(Blob {
            tag: i + 10,
            data: vec![3; 150],
        }))
        .unwrap();
    }
    let pinned_under_pressure = check("under pressure");
    assert!(
        pinned_under_pressure >= 2400,
        "both dirty objects must be pinned: {pinned_under_pressure}"
    );
    let stats = os.cache_stats();
    assert_eq!(stats.pinned_bytes, pinned_under_pressure);
    assert!(stats.bytes >= stats.pinned_bytes);
    assert!(stats.hit_ratio() >= 0.0 && stats.hit_ratio() <= 1.0);

    // Pinned objects survived whatever eviction the flood triggered.
    assert_eq!(
        t.open_readonly::<Blob>(big_a).unwrap().get().data.len(),
        1200
    );
    assert_eq!(
        t.open_readonly::<Blob>(big_b).unwrap().get().data.len(),
        1200
    );

    t.commit(Durability::Durable).unwrap();
    // Commit unpins; the eviction pass may now reclaim them, but the books
    // must still balance and nothing may remain pinned.
    let pinned_after = check("after commit");
    assert_eq!(pinned_after, 0, "commit must release every pin");
    let stats = os.cache_stats();
    assert_eq!(stats.pinned_bytes, 0);
    assert!(
        stats.bytes <= 4096,
        "eviction pass must respect the budget once pins are gone: {stats:?}"
    );
}

/// Cache statistics move in the expected directions.
#[test]
fn cache_stats_accounting() {
    let os = store_with(ObjectStoreConfig::default());
    let t = os.begin();
    let id = t
        .insert(Box::new(Blob {
            tag: 1,
            data: vec![0; 64],
        }))
        .unwrap();
    t.commit(Durability::Durable).unwrap();
    let s0 = os.cache_stats();
    let t = os.begin();
    let _ = t.open_readonly::<Blob>(id).unwrap();
    t.commit(Durability::Lazy).unwrap();
    let s1 = os.cache_stats();
    assert!(
        s1.hits > s0.hits,
        "repeat open should hit: {s0:?} -> {s1:?}"
    );
    assert!(s1.bytes > 0 && s1.objects > 0);
}
