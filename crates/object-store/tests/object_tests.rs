//! End-to-end object store tests: the paper's Figure 4 usage pattern,
//! transactional semantics, ref invalidation, cache behaviour, concurrency.

use chunk_store::{ChunkStore, ChunkStoreConfig};
use object_store::Durability;
use object_store::{
    impl_persistent_boilerplate, ClassRegistry, ObjectId, ObjectStore, ObjectStoreConfig,
    ObjectStoreError, Persistent, PickleError, Pickler, Unpickler,
};
use std::sync::Arc;
use tdb_platform::{MemSecretStore, MemStore, VolatileCounter};

// --- the paper's Figure 4 classes -----------------------------------------

const CLASS_METER: u32 = 0x4d455445;
const CLASS_PROFILE: u32 = 0x50524f46;

struct Meter {
    view_count: i32,
    print_count: i32,
}

impl Persistent for Meter {
    impl_persistent_boilerplate!(CLASS_METER);
    fn pickle(&self, w: &mut Pickler) {
        w.i32(self.view_count);
        w.i32(self.print_count);
    }
}

fn unpickle_meter(r: &mut Unpickler) -> Result<Box<dyn Persistent>, PickleError> {
    Ok(Box::new(Meter {
        view_count: r.i32()?,
        print_count: r.i32()?,
    }))
}

struct Profile {
    meters: Vec<ObjectId>,
}

impl Persistent for Profile {
    impl_persistent_boilerplate!(CLASS_PROFILE);
    fn pickle(&self, w: &mut Pickler) {
        w.seq(&self.meters, |w, id| w.object_id(*id));
    }
}

fn unpickle_profile(r: &mut Unpickler) -> Result<Box<dyn Persistent>, PickleError> {
    Ok(Box::new(Profile {
        meters: r.seq(|r| r.object_id())?,
    }))
}

fn registry() -> ClassRegistry {
    let mut reg = ClassRegistry::new();
    reg.register(CLASS_METER, "Meter", unpickle_meter);
    reg.register(CLASS_PROFILE, "Profile", unpickle_profile);
    reg
}

struct Fixture {
    mem: MemStore,
    counter: VolatileCounter,
}

impl Fixture {
    fn new() -> Self {
        Fixture {
            mem: MemStore::new(),
            counter: VolatileCounter::new(),
        }
    }

    fn chunks_create(&self) -> Arc<ChunkStore> {
        Arc::new(
            ChunkStore::create(
                Arc::new(self.mem.clone()),
                &MemSecretStore::from_label("object-tests"),
                Arc::new(self.counter.clone()),
                ChunkStoreConfig::small_for_tests(),
            )
            .unwrap(),
        )
    }

    fn chunks_open(&self) -> Arc<ChunkStore> {
        Arc::new(
            ChunkStore::open(
                Arc::new(self.mem.clone()),
                &MemSecretStore::from_label("object-tests"),
                Arc::new(self.counter.clone()),
                ChunkStoreConfig::small_for_tests(),
            )
            .unwrap(),
        )
    }

    fn create(&self) -> ObjectStore {
        ObjectStore::create(
            self.chunks_create(),
            registry(),
            ObjectStoreConfig::default(),
        )
        .unwrap()
    }

    fn reopen(&self) -> ObjectStore {
        ObjectStore::open(self.chunks_open(), registry(), ObjectStoreConfig::default()).unwrap()
    }
}

/// The full Figure 4 scenario: build a profile of meters, then increment a
/// meter's view count in a second transaction.
#[test]
fn figure_4_scenario() {
    let fx = Fixture::new();
    let store = fx.create();

    // Transaction 1: insert a Meter, register a Profile root listing it.
    let t = store.begin();
    let meter_id = t
        .insert(Box::new(Meter {
            view_count: 0,
            print_count: 0,
        }))
        .unwrap();
    let profile_id = t.insert(Box::new(Profile { meters: vec![] })).unwrap();
    {
        let profile = t.open_writable::<Profile>(profile_id).unwrap();
        profile.get_mut().meters.push(meter_id);
    }
    t.set_root("profile", profile_id).unwrap();
    t.commit(Durability::Durable).unwrap();

    // Transaction 2: navigate from the root and increment the view count.
    let t2 = store.begin();
    let profile_id = t2.root("profile").unwrap();
    let meter_id = {
        let profile = t2.open_readonly::<Profile>(profile_id).unwrap();
        let id = profile.get().meters[0];
        id
    };
    {
        let meter = t2.open_writable::<Meter>(meter_id).unwrap();
        meter.get_mut().view_count += 1;
    }
    t2.commit(Durability::Durable).unwrap();

    // Verify across a reopen.
    drop(store);
    let store = fx.reopen();
    let t3 = store.begin();
    let profile_id = t3.root("profile").unwrap();
    let profile = t3.open_readonly::<Profile>(profile_id).unwrap();
    let meter_id = profile.get().meters[0];
    let meter = t3.open_readonly::<Meter>(meter_id).unwrap();
    assert_eq!(meter.get().view_count, 1);
    assert_eq!(meter.get().print_count, 0);
}

#[test]
fn refs_are_invalidated_at_transaction_end() {
    let fx = Fixture::new();
    let store = fx.create();
    let t = store.begin();
    let id = t
        .insert(Box::new(Meter {
            view_count: 5,
            print_count: 0,
        }))
        .unwrap();
    let r = t.open_readonly::<Meter>(id).unwrap();
    assert_eq!(r.get().view_count, 5);
    assert!(r.is_valid());
    t.commit(Durability::Durable).unwrap();
    assert!(!r.is_valid());
    assert!(matches!(
        r.try_get(),
        Err(ObjectStoreError::TransactionInactive)
    ));
}

#[test]
#[should_panic(expected = "Ref used after its transaction")]
fn stale_ref_get_panics() {
    let fx = Fixture::new();
    let store = fx.create();
    let t = store.begin();
    let id = t
        .insert(Box::new(Meter {
            view_count: 5,
            print_count: 0,
        }))
        .unwrap();
    let r = t.open_readonly::<Meter>(id).unwrap();
    t.commit(Durability::Durable).unwrap();
    let _ = r.get();
}

#[test]
fn type_mismatch_is_checked_at_open() {
    let fx = Fixture::new();
    let store = fx.create();
    let t = store.begin();
    let id = t
        .insert(Box::new(Meter {
            view_count: 0,
            print_count: 0,
        }))
        .unwrap();
    t.commit(Durability::Durable).unwrap();

    let t = store.begin();
    match t.open_readonly::<Profile>(id) {
        Err(ObjectStoreError::TypeMismatch { found, .. }) => assert_eq!(found, CLASS_METER),
        other => panic!("expected TypeMismatch, got {:?}", other.map(|_| ())),
    }
    // The correctly-typed open still works afterwards.
    assert!(t.open_readonly::<Meter>(id).is_ok());
}

#[test]
fn abort_rolls_back_everything() {
    let fx = Fixture::new();
    let store = fx.create();
    let t = store.begin();
    let id = t
        .insert(Box::new(Meter {
            view_count: 10,
            print_count: 0,
        }))
        .unwrap();
    t.set_root("m", id).unwrap();
    t.commit(Durability::Durable).unwrap();

    let t = store.begin();
    {
        let m = t.open_writable::<Meter>(id).unwrap();
        m.get_mut().view_count = 999;
    }
    let orphan = t
        .insert(Box::new(Meter {
            view_count: 1,
            print_count: 1,
        }))
        .unwrap();
    t.set_root("orphan", orphan).unwrap();
    t.abort();

    let t = store.begin();
    let m = t.open_readonly::<Meter>(id).unwrap();
    assert_eq!(m.get().view_count, 10, "aborted write leaked");
    drop(m);
    assert_eq!(t.root("orphan"), None, "aborted root registration leaked");
    assert!(t.open_readonly::<Meter>(orphan).is_err());
    drop(t);

    // The orphan's id was returned to the pool.
    let t = store.begin();
    let next = t
        .insert(Box::new(Meter {
            view_count: 0,
            print_count: 0,
        }))
        .unwrap();
    assert_eq!(next, orphan);
    t.commit(Durability::Durable).unwrap();
}

#[test]
fn drop_without_commit_aborts() {
    let fx = Fixture::new();
    let store = fx.create();
    let t = store.begin();
    let id = t
        .insert(Box::new(Meter {
            view_count: 1,
            print_count: 0,
        }))
        .unwrap();
    t.set_root("m", id).unwrap();
    t.commit(Durability::Durable).unwrap();

    {
        let t = store.begin();
        let m = t.open_writable::<Meter>(id).unwrap();
        m.get_mut().view_count = 777;
        // t dropped here without commit.
    }
    let t = store.begin();
    assert_eq!(t.open_readonly::<Meter>(id).unwrap().get().view_count, 1);
}

#[test]
fn remove_frees_object_and_id() {
    let fx = Fixture::new();
    let store = fx.create();
    let t = store.begin();
    let id = t
        .insert(Box::new(Meter {
            view_count: 1,
            print_count: 0,
        }))
        .unwrap();
    t.commit(Durability::Durable).unwrap();

    let t = store.begin();
    t.remove(id).unwrap();
    // Within the same transaction the object is gone.
    assert!(matches!(
        t.open_readonly::<Meter>(id),
        Err(ObjectStoreError::NotFound(_))
    ));
    t.commit(Durability::Durable).unwrap();

    let t = store.begin();
    assert!(matches!(
        t.open_readonly::<Meter>(id),
        Err(ObjectStoreError::NotFound(_))
    ));
    // Id reuse.
    let id2 = t
        .insert(Box::new(Meter {
            view_count: 2,
            print_count: 0,
        }))
        .unwrap();
    assert_eq!(id2, id);
    t.commit(Durability::Durable).unwrap();
}

#[test]
fn nondurable_object_commits_die_on_crash() {
    let fx = Fixture::new();
    {
        let store = fx.create();
        let t = store.begin();
        let id = t
            .insert(Box::new(Meter {
                view_count: 1,
                print_count: 0,
            }))
            .unwrap();
        t.set_root("m", id).unwrap();
        t.commit(Durability::Durable).unwrap();

        let t = store.begin();
        let m = t.open_writable::<Meter>(t.root("m").unwrap()).unwrap();
        m.get_mut().view_count = 100;
        drop(m);
        t.commit(Durability::Lazy).unwrap(); // nondurable
                                             // Crash: no durable commit follows.
    }
    let store = fx.reopen();
    let t = store.begin();
    let id = t.root("m").unwrap();
    assert_eq!(t.open_readonly::<Meter>(id).unwrap().get().view_count, 1);
}

#[test]
fn concurrent_transactions_conflict_and_timeout() {
    let fx = Fixture::new();
    let store = fx.create();
    let t = store.begin();
    let id = t
        .insert(Box::new(Meter {
            view_count: 0,
            print_count: 0,
        }))
        .unwrap();
    t.commit(Durability::Durable).unwrap();

    let t1 = store.begin();
    let _w = t1.open_writable::<Meter>(id).unwrap();
    // A second transaction cannot even read it (strict 2PL, X lock held)...
    let store2 = store.clone();
    let handle = std::thread::spawn(move || {
        let t2 = store2.begin();
        t2.open_readonly::<Meter>(id).map(|_| ())
    });
    let result = handle.join().unwrap();
    assert!(matches!(result, Err(ObjectStoreError::LockTimeout(_))));
}

#[test]
fn concurrent_shared_reads_are_allowed() {
    let fx = Fixture::new();
    let store = fx.create();
    let t = store.begin();
    let id = t
        .insert(Box::new(Meter {
            view_count: 3,
            print_count: 0,
        }))
        .unwrap();
    t.commit(Durability::Durable).unwrap();

    let t1 = store.begin();
    let r1 = t1.open_readonly::<Meter>(id).unwrap();
    let t2 = store.begin();
    let r2 = t2.open_readonly::<Meter>(id).unwrap();
    assert_eq!(r1.get().view_count + r2.get().view_count, 6);
}

#[test]
fn serialized_counter_increments_from_threads() {
    let fx = Fixture::new();
    let store = fx.create();
    let t = store.begin();
    let id = t
        .insert(Box::new(Meter {
            view_count: 0,
            print_count: 0,
        }))
        .unwrap();
    t.commit(Durability::Durable).unwrap();

    let threads: Vec<_> = (0..4)
        .map(|_| {
            let store = store.clone();
            std::thread::spawn(move || {
                let mut done = 0;
                while done < 25 {
                    let t = store.begin();
                    match t.open_writable::<Meter>(id) {
                        Ok(m) => {
                            m.get_mut().view_count += 1;
                            drop(m);
                            t.commit(Durability::Durable).unwrap();
                            done += 1;
                        }
                        Err(ObjectStoreError::LockTimeout(_)) => {
                            t.abort(); // retry, as the paper prescribes
                        }
                        Err(e) => panic!("{e}"),
                    }
                }
            })
        })
        .collect();
    for h in threads {
        h.join().unwrap();
    }

    let t = store.begin();
    assert_eq!(t.open_readonly::<Meter>(id).unwrap().get().view_count, 100);
}

#[test]
fn locking_can_be_disabled() {
    let fx = Fixture::new();
    let chunks = fx.chunks_create();
    let cfg = ObjectStoreConfig {
        locking: false,
        ..Default::default()
    };
    let store = ObjectStore::create(chunks, registry(), cfg).unwrap();
    let t = store.begin();
    let id = t
        .insert(Box::new(Meter {
            view_count: 0,
            print_count: 0,
        }))
        .unwrap();
    t.commit(Durability::Durable).unwrap();
    // Two "concurrent" writable opens would deadlock with locking on; with
    // it off the single-threaded app is trusted.
    let t1 = store.begin();
    let t2 = store.begin();
    let _a = t1.open_writable::<Meter>(id).unwrap();
    let _b = t2.open_writable::<Meter>(id).unwrap();
}

#[test]
fn cache_serves_repeat_opens_and_evicts_under_pressure() {
    let fx = Fixture::new();
    let chunks = fx.chunks_create();
    let cfg = ObjectStoreConfig {
        cache_budget: 128,
        ..Default::default()
    };
    let store = ObjectStore::create(chunks, registry(), cfg).unwrap();

    let t = store.begin();
    let ids: Vec<_> = (0..50)
        .map(|i| {
            t.insert(Box::new(Meter {
                view_count: i,
                print_count: 0,
            }))
            .unwrap()
        })
        .collect();
    t.commit(Durability::Durable).unwrap();

    // Touch everything: far beyond a 2 KiB budget, so evictions must occur.
    let t = store.begin();
    for id in &ids {
        let _ = t.open_readonly::<Meter>(*id).unwrap();
    }
    t.commit(Durability::Durable).unwrap();
    let stats = store.cache_stats();
    assert!(
        stats.evictions > 0,
        "no evictions under pressure: {stats:?}"
    );
    assert!(
        stats.bytes <= 512,
        "cache stayed far over budget: {stats:?}"
    );

    // Repeat open of a recently used object is a hit.
    let before = store.cache_stats();
    let t = store.begin();
    let hot = ids[ids.len() - 1];
    let _ = t.open_readonly::<Meter>(hot).unwrap();
    let _ = t.open_readonly::<Meter>(hot).unwrap();
    t.commit(Durability::Durable).unwrap();
    let after = store.cache_stats();
    assert!(after.hits > before.hits);
}

#[test]
fn unregistered_class_rejected_at_insert() {
    struct Alien;
    impl Persistent for Alien {
        impl_persistent_boilerplate!(0xDEAD_BEEF);
        fn pickle(&self, _w: &mut Pickler) {}
    }
    let fx = Fixture::new();
    let store = fx.create();
    let t = store.begin();
    assert!(matches!(
        t.insert(Box::new(Alien)),
        Err(ObjectStoreError::ClassNotRegistered(0xDEAD_BEEF))
    ));
}

#[test]
fn roots_survive_reopen_and_can_be_replaced() {
    let fx = Fixture::new();
    {
        let store = fx.create();
        let t = store.begin();
        let a = t
            .insert(Box::new(Meter {
                view_count: 1,
                print_count: 0,
            }))
            .unwrap();
        let b = t
            .insert(Box::new(Meter {
                view_count: 2,
                print_count: 0,
            }))
            .unwrap();
        t.set_root("a", a).unwrap();
        t.set_root("b", b).unwrap();
        t.commit(Durability::Durable).unwrap();

        let t = store.begin();
        t.remove_root("a").unwrap();
        t.commit(Durability::Durable).unwrap();
    }
    let store = fx.reopen();
    assert_eq!(store.root("a"), None);
    assert!(store.root("b").is_some());
    assert_eq!(store.root_names(), vec!["b".to_string()]);
}

#[test]
fn operations_on_inactive_transaction_fail() {
    let fx = Fixture::new();
    let store = fx.create();
    let t = store.begin();
    let id = t
        .insert(Box::new(Meter {
            view_count: 0,
            print_count: 0,
        }))
        .unwrap();
    t.commit(Durability::Durable).unwrap();

    let t = store.begin();
    let _ = t.open_readonly::<Meter>(id).unwrap();
    t.abort();
    // `t` is consumed by abort; start another and abort it, then check via
    // a fresh handle that reuse after end errors — the API consumes the
    // transaction at commit/abort, so this is enforced statically. What we
    // can still check dynamically: refs created before the end.
    let t = store.begin();
    let r = t.open_readonly::<Meter>(id).unwrap();
    t.abort();
    assert!(matches!(
        r.try_get(),
        Err(ObjectStoreError::TransactionInactive)
    ));
}

#[test]
fn many_objects_round_trip_through_reopen() {
    let fx = Fixture::new();
    {
        let store = fx.create();
        for batch in 0..10 {
            let t = store.begin();
            for i in 0..20 {
                let id = t
                    .insert(Box::new(Meter {
                        view_count: batch * 100 + i,
                        print_count: i,
                    }))
                    .unwrap();
                if batch == 0 && i == 0 {
                    t.set_root("first", id).unwrap();
                }
            }
            t.commit(Durability::Durable).unwrap();
        }
    }
    let store = fx.reopen();
    let t = store.begin();
    let first = t.root("first").unwrap();
    assert_eq!(t.open_readonly::<Meter>(first).unwrap().get().view_count, 0);
    // Spot-check the 200 objects via chunk-level count (+1 roots chunk).
    assert_eq!(store.chunk_store().live_chunks(), 201);
}
