//! End-to-end collection store tests, centered on the paper's Figure 7
//! scenario: a "profile" collection of Meter objects with a unique hash
//! index on id and a non-unique B-tree index on derived total usage.

use chunk_store::{ChunkStore, ChunkStoreConfig};
use collection_store::Durability;
use collection_store::{
    extractor::typed, CIter, CollectionError, CollectionStore, ExtractorRegistry, IndexKind,
    IndexSpec, Key, Persistent, Pickler, Unpickler,
};
use object_store::{impl_persistent_boilerplate, ClassRegistry, ObjectStoreConfig, PickleError};
use std::ops::Bound;
use std::sync::Arc;
use tdb_platform::{MemSecretStore, MemStore, VolatileCounter};

// --- Figure 7's (modified) Meter class -------------------------------------

const CLASS_METER: u32 = 0x4d455445;

#[derive(Debug, PartialEq)]
struct Meter {
    id: i64,
    view_count: i64,
    print_count: i64,
}

impl Persistent for Meter {
    impl_persistent_boilerplate!(CLASS_METER);
    fn pickle(&self, w: &mut Pickler) {
        w.i64(self.id);
        w.i64(self.view_count);
        w.i64(self.print_count);
    }
}

fn unpickle_meter(r: &mut Unpickler) -> Result<Box<dyn Persistent>, PickleError> {
    Ok(Box::new(Meter {
        id: r.i64()?,
        view_count: r.i64()?,
        print_count: r.i64()?,
    }))
}

// Figure 7's extractors: `idEx` and `usageCountEx` (a derived value —
// exactly what offset-based ISAM indexes cannot express).
fn id_ex(obj: &dyn Persistent) -> Option<Key> {
    typed::<Meter>(obj, |m| Key::I64(m.id))
}

fn usage_count_ex(obj: &dyn Persistent) -> Option<Key> {
    typed::<Meter>(obj, |m| Key::I64(m.view_count + m.print_count))
}

fn registries() -> (ClassRegistry, ExtractorRegistry) {
    let mut classes = ClassRegistry::new();
    classes.register(CLASS_METER, "Meter", unpickle_meter);
    let mut extractors = ExtractorRegistry::new();
    extractors.register("meter.id", id_ex);
    extractors.register("meter.usage", usage_count_ex);
    (classes, extractors)
}

struct Fixture {
    mem: MemStore,
    counter: VolatileCounter,
}

impl Fixture {
    fn new() -> Self {
        Fixture {
            mem: MemStore::new(),
            counter: VolatileCounter::new(),
        }
    }

    fn chunks(&self, create: bool) -> Arc<ChunkStore> {
        let make = if create {
            ChunkStore::create
        } else {
            ChunkStore::open
        };
        Arc::new(
            make(
                Arc::new(self.mem.clone()),
                &MemSecretStore::from_label("collection-tests"),
                Arc::new(self.counter.clone()),
                ChunkStoreConfig::small_for_tests(),
            )
            .unwrap(),
        )
    }

    fn create(&self) -> CollectionStore {
        let (classes, extractors) = registries();
        CollectionStore::create(
            self.chunks(true),
            classes,
            extractors,
            ObjectStoreConfig::default(),
        )
        .unwrap()
    }

    fn reopen(&self) -> CollectionStore {
        let (classes, extractors) = registries();
        CollectionStore::open(
            self.chunks(false),
            classes,
            extractors,
            ObjectStoreConfig::default(),
        )
        .unwrap()
    }
}

fn id_indexer() -> IndexSpec {
    IndexSpec::new("by-id", "meter.id", true, IndexKind::Hash)
}

fn usage_indexer() -> IndexSpec {
    IndexSpec::new("by-usage", "meter.usage", false, IndexKind::BTree)
}

fn meter(id: i64, views: i64, prints: i64) -> Box<Meter> {
    Box::new(Meter {
        id,
        view_count: views,
        print_count: prints,
    })
}

/// Collect (id, usage) pairs from an iterator without mutating anything.
fn drain_meters(iter: &mut CIter<'_>) -> Vec<(i64, i64)> {
    let mut out = Vec::new();
    while !iter.end() {
        let m = iter.read::<Meter>().unwrap();
        {
            let g = m.get();
            out.push((g.id, g.view_count + g.print_count));
        }
        iter.next();
    }
    out
}

/// The full Figure 7 scenario.
#[test]
fn figure_7_scenario() {
    let fx = Fixture::new();
    let store = fx.create();

    // Create the "profile" collection with a unique hash index on _id.
    let t = store.begin();
    {
        let profile = t.create_collection("profile", &[id_indexer()]).unwrap();
        // Insert Meter objects.
        for i in 0..20 {
            profile.insert(meter(i, i * 10, 5)).unwrap();
        }
        // Create a new non-unique B-tree index on derived total usage.
        profile.create_index(usage_indexer()).unwrap();
    }
    t.commit(Durability::Durable).unwrap();

    // "Reset all Meter objects that have total count exceeding 100."
    let t = store.begin();
    {
        let profile = t.write_collection("profile").unwrap();
        let mut i = profile
            .range(
                "by-usage",
                Bound::Excluded(&Key::I64(100)),
                Bound::Unbounded,
            )
            .unwrap();
        let mut resets = 0;
        while !i.end() {
            let m = i.write::<Meter>().unwrap();
            {
                let mut g = m.get_mut();
                g.view_count = 0;
                g.print_count = 0;
            }
            resets += 1;
            i.next();
        }
        // Meters 10..20 have usage 105..195 > 100.
        assert_eq!(resets, 10);
        i.close().unwrap();
    }
    t.commit(Durability::Durable).unwrap();

    // Verify: usage index reflects the resets (Halloween-free).
    let t = store.begin();
    let profile = t.read_collection("profile").unwrap();
    let mut zeroes = profile.exact("by-usage", &Key::I64(0)).unwrap();
    assert_eq!(zeroes.result_len(), 10);
    let got = drain_meters(&mut zeroes);
    assert!(got.iter().all(|(_, usage)| *usage == 0));
    zeroes.close().unwrap();
    // And the unique id index still finds everything.
    for i in 0..20 {
        let hit = profile.exact("by-id", &Key::I64(i)).unwrap();
        assert_eq!(hit.result_len(), 1, "meter {i}");
        hit.close().unwrap();
    }
    t.commit(Durability::Lazy).unwrap();
}

#[test]
fn collections_survive_reopen() {
    let fx = Fixture::new();
    {
        let store = fx.create();
        let t = store.begin();
        let c = t
            .create_collection("profile", &[id_indexer(), usage_indexer()])
            .unwrap();
        for i in 0..50 {
            c.insert(meter(i, i, i)).unwrap();
        }
        t.commit(Durability::Durable).unwrap();
    }
    let store = fx.reopen();
    let t = store.begin();
    assert_eq!(t.collection_names().unwrap(), vec!["profile".to_string()]);
    let c = t.read_collection("profile").unwrap();
    assert_eq!(c.len().unwrap(), 50);
    let it = c.exact("by-id", &Key::I64(33)).unwrap();
    let m = it.read::<Meter>().unwrap();
    assert_eq!(m.get().id, 33);
    drop(m);
    it.close().unwrap();
    // Ordered range over the B-tree.
    let mut it = c
        .range(
            "by-usage",
            Bound::Included(&Key::I64(90)),
            Bound::Included(&Key::I64(94)),
        )
        .unwrap();
    let got = drain_meters(&mut it);
    assert_eq!(
        got.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
        vec![45, 46, 47]
    );
    it.close().unwrap();
}

#[test]
fn unique_index_rejects_duplicate_insert() {
    let fx = Fixture::new();
    let store = fx.create();
    let t = store.begin();
    let c = t.create_collection("profile", &[id_indexer()]).unwrap();
    c.insert(meter(7, 0, 0)).unwrap();
    match c.insert(meter(7, 1, 1)) {
        Err(CollectionError::DuplicateKey { index }) => assert_eq!(index, "by-id"),
        other => panic!("expected DuplicateKey, got {:?}", other.map(|_| ())),
    }
    // The failed insert left nothing behind.
    assert_eq!(c.len().unwrap(), 1);
    assert_eq!(c.index_entry_count("by-id").unwrap(), 1);
}

#[test]
fn non_unique_index_accepts_duplicates() {
    let fx = Fixture::new();
    let store = fx.create();
    let t = store.begin();
    let c = t
        .create_collection(
            "profile",
            &[IndexSpec::new("u", "meter.usage", false, IndexKind::BTree)],
        )
        .unwrap();
    for i in 0..5 {
        c.insert(meter(i, 10, 0)).unwrap(); // all usage 10
    }
    let it = c.exact("u", &Key::I64(10)).unwrap();
    assert_eq!(it.result_len(), 5);
    it.close().unwrap();
}

#[test]
fn create_index_on_nonempty_collection_checks_uniqueness() {
    let fx = Fixture::new();
    let store = fx.create();
    let t = store.begin();
    let c = t.create_collection("profile", &[id_indexer()]).unwrap();
    c.insert(meter(1, 5, 0)).unwrap();
    c.insert(meter(2, 5, 0)).unwrap(); // same usage
                                       // Unique usage index cannot be built over duplicate usages.
    let err = c
        .create_index(IndexSpec::new("uu", "meter.usage", true, IndexKind::BTree))
        .unwrap_err();
    assert!(matches!(err, CollectionError::DuplicateKey { .. }));
    assert_eq!(c.index_names().unwrap(), vec!["by-id".to_string()]);
    // Non-unique works.
    c.create_index(usage_indexer()).unwrap();
    assert_eq!(c.index_entry_count("by-usage").unwrap(), 2);
}

#[test]
fn remove_index_keeps_last_one() {
    let fx = Fixture::new();
    let store = fx.create();
    let t = store.begin();
    let c = t
        .create_collection("p", &[id_indexer(), usage_indexer()])
        .unwrap();
    c.insert(meter(1, 1, 1)).unwrap();
    c.remove_index("by-usage").unwrap();
    assert_eq!(c.index_names().unwrap(), vec!["by-id".to_string()]);
    assert!(matches!(
        c.remove_index("by-id"),
        Err(CollectionError::LastIndex(_))
    ));
    assert!(matches!(
        c.remove_index("ghost"),
        Err(CollectionError::NoSuchIndex(_))
    ));
}

#[test]
fn read_only_collection_blocks_mutation() {
    let fx = Fixture::new();
    let store = fx.create();
    let t = store.begin();
    t.create_collection("p", &[id_indexer()])
        .unwrap()
        .insert(meter(1, 0, 0))
        .unwrap();
    t.commit(Durability::Durable).unwrap();

    let t = store.begin();
    let c = t.read_collection("p").unwrap();
    assert!(matches!(
        c.insert(meter(2, 0, 0)),
        Err(CollectionError::ReadOnlyCollection(_))
    ));
    let mut it = c.scan("by-id").unwrap();
    assert!(matches!(
        it.write::<Meter>(),
        Err(CollectionError::ReadOnlyCollection(_))
    ));
    assert!(matches!(
        it.delete(),
        Err(CollectionError::ReadOnlyCollection(_))
    ));
    // Reading is fine.
    assert_eq!(drain_meters(&mut it).len(), 1);
    it.close().unwrap();
}

#[test]
fn writable_deref_requires_sole_iterator() {
    let fx = Fixture::new();
    let store = fx.create();
    let t = store.begin();
    let c = t.create_collection("p", &[id_indexer()]).unwrap();
    for i in 0..3 {
        c.insert(meter(i, 0, 0)).unwrap();
    }
    let mut it1 = c.scan("by-id").unwrap();
    let it2 = c.scan("by-id").unwrap();
    assert!(matches!(
        it1.write::<Meter>(),
        Err(CollectionError::IteratorConflict)
    ));
    it2.close().unwrap();
    // Now it1 is alone and may write.
    assert!(it1.write::<Meter>().is_ok());
    it1.close().unwrap();
}

#[test]
fn iterator_is_insensitive_to_own_updates() {
    // The Halloween setup: iterate by the usage index while pushing every
    // meter's usage *up*; with sensitive iterators objects could be
    // re-encountered. Here the result set is frozen and each object is
    // visited exactly once.
    let fx = Fixture::new();
    let store = fx.create();
    let t = store.begin();
    let c = t.create_collection("p", &[usage_indexer()]).unwrap();
    for i in 0..10 {
        c.insert(meter(i, i, 0)).unwrap();
    }
    let mut it = c.scan("by-usage").unwrap();
    let mut visited = 0;
    while !it.end() {
        let m = it.write::<Meter>().unwrap();
        m.get_mut().view_count += 1000; // moves it to the end of the index
        drop(m);
        visited += 1;
        it.next();
    }
    assert_eq!(visited, 10, "each object enumerated at most once");
    it.close().unwrap();

    // After close, the index reflects the new keys.
    let it = c
        .range(
            "by-usage",
            Bound::Included(&Key::I64(1000)),
            Bound::Unbounded,
        )
        .unwrap();
    assert_eq!(it.result_len(), 10);
    it.close().unwrap();
}

#[test]
fn query_before_close_sees_old_index_state() {
    let fx = Fixture::new();
    let store = fx.create();
    let t = store.begin();
    let c = t.create_collection("p", &[usage_indexer()]).unwrap();
    c.insert(meter(1, 5, 0)).unwrap();

    let mut it = c.scan("by-usage").unwrap();
    {
        let m = it.write::<Meter>().unwrap();
        m.get_mut().view_count = 50;
    }
    it.close().unwrap();

    // Maintenance ran at close; the new key is 50.
    let hit = c.exact("by-usage", &Key::I64(50)).unwrap();
    assert_eq!(hit.result_len(), 1);
    hit.close().unwrap();
    let miss = c.exact("by-usage", &Key::I64(5)).unwrap();
    assert_eq!(miss.result_len(), 0);
    miss.close().unwrap();
}

#[test]
fn uniqueness_violation_at_close_removes_offender_and_reports() {
    let fx = Fixture::new();
    let store = fx.create();
    let t = store.begin();
    let c = t.create_collection("p", &[id_indexer()]).unwrap();
    let _a = c.insert(meter(1, 0, 0)).unwrap();
    let b = c.insert(meter(2, 0, 0)).unwrap();

    // Update meter 2's id to collide with meter 1 — undetectable until
    // close, exactly the §5.2.3 situation.
    let mut it = c.exact("by-id", &Key::I64(2)).unwrap();
    {
        let m = it.write::<Meter>().unwrap();
        m.get_mut().id = 1;
    }
    match it.close() {
        Err(CollectionError::UniquenessViolation { removed }) => {
            assert_eq!(removed, vec![b]);
        }
        other => panic!("expected UniquenessViolation, got {other:?}"),
    }
    // The offender is out of the collection but not destroyed (the app
    // can re-integrate it).
    assert_eq!(c.len().unwrap(), 1);
    assert_eq!(c.index_entry_count("by-id").unwrap(), 1);
}

#[test]
fn delete_through_iterator() {
    let fx = Fixture::new();
    let store = fx.create();
    let t = store.begin();
    let c = t
        .create_collection("p", &[id_indexer(), usage_indexer()])
        .unwrap();
    for i in 0..10 {
        c.insert(meter(i, i, 0)).unwrap();
    }
    // Delete the even-id meters.
    let mut it = c.scan("by-id").unwrap();
    while !it.end() {
        let is_even = {
            let m = it.read::<Meter>().unwrap();
            let even = m.get().id % 2 == 0;
            even
        };
        if is_even {
            it.delete().unwrap();
        }
        it.next();
    }
    it.close().unwrap();

    assert_eq!(c.len().unwrap(), 5);
    assert_eq!(c.index_entry_count("by-id").unwrap(), 5);
    assert_eq!(c.index_entry_count("by-usage").unwrap(), 5);
    let mut it = c.scan("by-id").unwrap();
    let got = drain_meters(&mut it);
    assert!(got.iter().all(|(id, _)| id % 2 == 1));
    it.close().unwrap();
}

#[test]
fn scan_exact_range_across_all_index_kinds() {
    let fx = Fixture::new();
    let store = fx.create();
    let t = store.begin();
    let specs = [
        IndexSpec::new("bt", "meter.id", false, IndexKind::BTree),
        IndexSpec::new("h", "meter.id", false, IndexKind::Hash),
        IndexSpec::new("l", "meter.id", false, IndexKind::List),
    ];
    let c = t.create_collection("p", &specs).unwrap();
    for i in 0..100 {
        c.insert(meter(i, 0, 0)).unwrap();
    }

    for index in ["bt", "h", "l"] {
        let it = c.scan(index).unwrap();
        assert_eq!(it.result_len(), 100, "scan on {index}");
        it.close().unwrap();
        let mut it = c.exact(index, &Key::I64(42)).unwrap();
        let got = drain_meters(&mut it);
        assert_eq!(got, vec![(42, 0)], "exact on {index}");
        it.close().unwrap();
    }

    // Range: B-tree ordered and inclusive/exclusive bounds honoured.
    let mut it = c
        .range(
            "bt",
            Bound::Included(&Key::I64(10)),
            Bound::Excluded(&Key::I64(13)),
        )
        .unwrap();
    let got: Vec<i64> = drain_meters(&mut it)
        .into_iter()
        .map(|(id, _)| id)
        .collect();
    assert_eq!(got, vec![10, 11, 12]);
    it.close().unwrap();

    // Range on hash / list is unsupported.
    for index in ["h", "l"] {
        assert!(matches!(
            c.range(index, Bound::Unbounded, Bound::Unbounded),
            Err(CollectionError::UnsupportedQuery { .. })
        ));
    }
}

#[test]
fn btree_scan_is_key_ordered() {
    let fx = Fixture::new();
    let store = fx.create();
    let t = store.begin();
    let c = t
        .create_collection(
            "p",
            &[IndexSpec::new("bt", "meter.id", true, IndexKind::BTree)],
        )
        .unwrap();
    // Insert in scrambled order.
    let mut ids: Vec<i64> = (0..200).collect();
    let mut state = 12345u64;
    for i in (1..ids.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ids.swap(i, (state % (i as u64 + 1)) as usize);
    }
    for id in &ids {
        c.insert(meter(*id, 0, 0)).unwrap();
    }
    let mut it = c.scan("bt").unwrap();
    let got: Vec<i64> = drain_meters(&mut it)
        .into_iter()
        .map(|(id, _)| id)
        .collect();
    let expect: Vec<i64> = (0..200).collect();
    assert_eq!(got, expect);
    it.close().unwrap();
}

#[test]
fn schema_mismatch_rejected() {
    struct Alien;
    impl Persistent for Alien {
        impl_persistent_boilerplate!(0xA11E);
        fn pickle(&self, _w: &mut Pickler) {}
    }
    fn unpickle_alien(_r: &mut Unpickler) -> Result<Box<dyn Persistent>, PickleError> {
        Ok(Box::new(Alien))
    }

    let fx = Fixture::new();
    let (mut classes, extractors) = registries();
    classes.register(0xA11E, "Alien", unpickle_alien);
    let store = CollectionStore::create(
        fx.chunks(true),
        classes,
        extractors,
        ObjectStoreConfig::default(),
    )
    .unwrap();
    let t = store.begin();
    let c = t.create_collection("p", &[id_indexer()]).unwrap();
    assert!(matches!(
        c.insert(Box::new(Alien)),
        Err(CollectionError::SchemaMismatch { .. })
    ));
}

#[test]
fn collection_management_errors() {
    let fx = Fixture::new();
    let store = fx.create();
    let t = store.begin();
    assert!(matches!(
        t.create_collection("p", &[]),
        Err(CollectionError::NeedsIndex(_))
    ));
    t.create_collection("p", &[id_indexer()]).unwrap();
    assert!(matches!(
        t.create_collection("p", &[id_indexer()]),
        Err(CollectionError::CollectionExists(_))
    ));
    assert!(matches!(
        t.read_collection("ghost"),
        Err(CollectionError::NoSuchCollection(_))
    ));
    assert!(matches!(
        t.create_collection(
            "q",
            &[IndexSpec::new(
                "x",
                "no.such.extractor",
                false,
                IndexKind::List
            )]
        ),
        Err(CollectionError::ExtractorNotRegistered(_))
    ));
}

#[test]
fn remove_collection_destroys_members() {
    let fx = Fixture::new();
    let store = fx.create();
    let t = store.begin();
    let c = t
        .create_collection("p", &[id_indexer(), usage_indexer()])
        .unwrap();
    for i in 0..30 {
        c.insert(meter(i, i, i)).unwrap();
    }
    t.commit(Durability::Durable).unwrap();
    let live_before = store.chunk_store().live_chunks();

    let t = store.begin();
    t.remove_collection("p").unwrap();
    t.commit(Durability::Durable).unwrap();
    let live_after = store.chunk_store().live_chunks();
    assert!(
        live_after + 30 <= live_before,
        "members not reclaimed: {live_before} -> {live_after}"
    );
    let t = store.begin();
    assert!(t.collection_names().unwrap().is_empty());
}

#[test]
fn abort_rolls_back_collection_changes() {
    let fx = Fixture::new();
    let store = fx.create();
    let t = store.begin();
    let c = t.create_collection("p", &[id_indexer()]).unwrap();
    c.insert(meter(1, 0, 0)).unwrap();
    t.commit(Durability::Durable).unwrap();

    let t = store.begin();
    {
        let c = t.write_collection("p").unwrap();
        c.insert(meter(2, 0, 0)).unwrap();
    }
    t.abort();

    let t = store.begin();
    let c = t.read_collection("p").unwrap();
    assert_eq!(c.len().unwrap(), 1);
    let it = c.exact("by-id", &Key::I64(2)).unwrap();
    assert_eq!(it.result_len(), 0);
    it.close().unwrap();
}

#[test]
fn large_collection_stress_all_kinds() {
    // Realistic (default) segment size: the hash directory object grows
    // with the table and needs the production chunk-size budget.
    let fx = Fixture::new();
    let (classes, extractors) = registries();
    let chunks = Arc::new(
        ChunkStore::create(
            Arc::new(fx.mem.clone()),
            &MemSecretStore::from_label("collection-tests"),
            Arc::new(fx.counter.clone()),
            ChunkStoreConfig::default(),
        )
        .unwrap(),
    );
    let store =
        CollectionStore::create(chunks, classes, extractors, ObjectStoreConfig::default()).unwrap();
    let t = store.begin();
    let c = t
        .create_collection(
            "big",
            &[
                IndexSpec::new("bt", "meter.id", true, IndexKind::BTree),
                IndexSpec::new("h", "meter.id", true, IndexKind::Hash),
            ],
        )
        .unwrap();
    for i in 0..2000 {
        c.insert(meter(i, i % 7, 0)).unwrap();
    }
    t.commit(Durability::Durable).unwrap();

    let t = store.begin();
    let c = t.read_collection("big").unwrap();
    assert_eq!(c.len().unwrap(), 2000);
    // Hash exact-match and B-tree range agree.
    for probe in [0i64, 1, 999, 1999] {
        let h = c.exact("h", &Key::I64(probe)).unwrap();
        let b = c.exact("bt", &Key::I64(probe)).unwrap();
        assert_eq!(h.current(), b.current(), "probe {probe}");
        assert_eq!(h.result_len(), 1);
        h.close().unwrap();
        b.close().unwrap();
    }
    let r = c
        .range(
            "bt",
            Bound::Included(&Key::I64(500)),
            Bound::Excluded(&Key::I64(600)),
        )
        .unwrap();
    assert_eq!(r.result_len(), 100);
    r.close().unwrap();
}
