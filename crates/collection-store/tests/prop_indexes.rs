//! Property tests: every index kind against a `BTreeMap`-based model under
//! random insert / update / delete traffic driven through the public
//! collection API (including the deferred-maintenance path).

use chunk_store::{ChunkStore, ChunkStoreConfig};
use collection_store::Durability;
use collection_store::{
    extractor::typed, CollectionStore, ExtractorRegistry, IndexKind, IndexSpec, Key,
};
use object_store::{
    impl_persistent_boilerplate, ClassRegistry, ObjectStoreConfig, Persistent, PickleError,
    Pickler, Unpickler,
};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::Arc;
use tdb_platform::{MemSecretStore, MemStore, VolatileCounter};

const CLASS_ITEM: u32 = 0x9999;

struct Item {
    uid: u64,
    score: i64,
}

impl Persistent for Item {
    impl_persistent_boilerplate!(CLASS_ITEM);
    fn pickle(&self, w: &mut Pickler) {
        w.u64(self.uid);
        w.i64(self.score);
    }
}

fn unpickle(r: &mut Unpickler) -> Result<Box<dyn Persistent>, PickleError> {
    Ok(Box::new(Item {
        uid: r.u64()?,
        score: r.i64()?,
    }))
}

fn store() -> CollectionStore {
    let chunks = Arc::new(
        ChunkStore::create(
            Arc::new(MemStore::new()),
            &MemSecretStore::from_label("prop-indexes"),
            Arc::new(VolatileCounter::new()),
            ChunkStoreConfig::small_for_tests(),
        )
        .unwrap(),
    );
    let mut classes = ClassRegistry::new();
    classes.register(CLASS_ITEM, "Item", unpickle);
    let mut extractors = ExtractorRegistry::new();
    extractors.register("item.uid", |o| typed::<Item>(o, |i| Key::U64(i.uid)));
    extractors.register("item.score", |o| typed::<Item>(o, |i| Key::I64(i.score)));
    CollectionStore::create(chunks, classes, extractors, ObjectStoreConfig::default()).unwrap()
}

#[derive(Debug, Clone)]
enum Op {
    Insert {
        uid: u64,
        score: i64,
    },
    /// Change the score of the pick-th live item (re-keys the score index).
    Rescore {
        pick: usize,
        score: i64,
    },
    Delete {
        pick: usize,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u64..400, -50i64..50).prop_map(|(uid, score)| Op::Insert { uid, score }),
        3 => (any::<usize>(), -50i64..50).prop_map(|(pick, score)| Op::Rescore { pick, score }),
        2 => any::<usize>().prop_map(|pick| Op::Delete { pick }),
    ]
}

fn run(ops: Vec<Op>, kind: IndexKind) {
    let cs = store();
    let t = cs.begin();
    let c = t
        .create_collection(
            "items",
            &[
                IndexSpec::new("uid", "item.uid", true, kind),
                IndexSpec::new("score", "item.score", false, IndexKind::BTree),
            ],
        )
        .unwrap();

    // Model: uid -> score.
    let mut model: BTreeMap<u64, i64> = BTreeMap::new();

    for op in ops {
        match op {
            Op::Insert { uid, score } => {
                let result = c.insert(Box::new(Item { uid, score }));
                if let std::collections::btree_map::Entry::Vacant(e) = model.entry(uid) {
                    result.unwrap();
                    e.insert(score);
                } else {
                    assert!(result.is_err(), "duplicate uid {uid} accepted");
                }
            }
            Op::Rescore { pick, score } => {
                if model.is_empty() {
                    continue;
                }
                let uid = *model.keys().nth(pick % model.len()).unwrap();
                let mut it = c.exact("uid", &Key::U64(uid)).unwrap();
                assert!(!it.end());
                {
                    let item = it.write::<Item>().unwrap();
                    item.get_mut().score = score;
                }
                it.close().unwrap();
                model.insert(uid, score);
            }
            Op::Delete { pick } => {
                if model.is_empty() {
                    continue;
                }
                let uid = *model.keys().nth(pick % model.len()).unwrap();
                let mut it = c.exact("uid", &Key::U64(uid)).unwrap();
                assert!(!it.end());
                it.delete().unwrap();
                it.close().unwrap();
                model.remove(&uid);
            }
        }

        // Agreement: exact-match on uid.
        for (&uid, &score) in &model {
            let it = c.exact("uid", &Key::U64(uid)).unwrap();
            assert_eq!(it.result_len(), 1, "uid {uid} lookup");
            let item = it.read::<Item>().unwrap();
            assert_eq!(item.get().score, score, "uid {uid} score");
            drop(item);
            it.close().unwrap();
        }
    }

    // Final whole-table checks.
    assert_eq!(c.len().unwrap() as usize, model.len());
    let it = c.scan("uid").unwrap();
    assert_eq!(it.result_len(), model.len());
    it.close().unwrap();

    // Score index agrees: range over everything, key-ordered.
    let mut scores_from_index = Vec::new();
    let mut it = c
        .range("score", Bound::Unbounded, Bound::Unbounded)
        .unwrap();
    while !it.end() {
        let item = it.read::<Item>().unwrap();
        scores_from_index.push(item.get().score);
        drop(item);
        it.next();
    }
    it.close().unwrap();
    let mut expected: Vec<i64> = model.values().copied().collect();
    expected.sort_unstable();
    let mut got = scores_from_index.clone();
    got.sort_unstable();
    assert_eq!(got, expected);
    assert!(
        scores_from_index.windows(2).all(|w| w[0] <= w[1]),
        "B-tree scan out of order: {scores_from_index:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn btree_unique_index_matches_model(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        run(ops, IndexKind::BTree);
    }

    #[test]
    fn hash_unique_index_matches_model(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        run(ops, IndexKind::Hash);
    }

    #[test]
    fn list_unique_index_matches_model(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        run(ops, IndexKind::List);
    }
}

/// Deterministic heavy fill: hash index splits across several levels and
/// still agrees with the model after a reopen of the whole stack.
#[test]
fn hash_split_storm_and_reopen() {
    let mem = MemStore::new();
    let counter = VolatileCounter::new();
    let secret = MemSecretStore::from_label("split-storm");
    let mk = |create: bool| {
        let chunks = Arc::new(
            if create {
                ChunkStore::create(
                    Arc::new(mem.clone()),
                    &secret,
                    Arc::new(counter.clone()),
                    ChunkStoreConfig::default(),
                )
            } else {
                ChunkStore::open(
                    Arc::new(mem.clone()),
                    &secret,
                    Arc::new(counter.clone()),
                    ChunkStoreConfig::default(),
                )
            }
            .unwrap(),
        );
        let mut classes = ClassRegistry::new();
        classes.register(CLASS_ITEM, "Item", unpickle);
        let mut extractors = ExtractorRegistry::new();
        extractors.register("item.uid", |o| typed::<Item>(o, |i| Key::U64(i.uid)));
        extractors.register("item.score", |o| typed::<Item>(o, |i| Key::I64(i.score)));
        if create {
            CollectionStore::create(chunks, classes, extractors, ObjectStoreConfig::default())
        } else {
            CollectionStore::open(chunks, classes, extractors, ObjectStoreConfig::default())
        }
        .unwrap()
    };

    let cs = mk(true);
    let t = cs.begin();
    let c = t
        .create_collection(
            "items",
            &[IndexSpec::new("uid", "item.uid", true, IndexKind::Hash)],
        )
        .unwrap();
    for uid in 0..5000u64 {
        c.insert(Box::new(Item {
            uid,
            score: (uid % 97) as i64,
        }))
        .unwrap();
    }
    drop(c);
    t.commit(Durability::Durable).unwrap();
    drop(cs);

    let cs = mk(false);
    let t = cs.begin();
    let c = t.read_collection("items").unwrap();
    assert_eq!(c.len().unwrap(), 5000);
    for uid in (0..5000u64).step_by(271) {
        let it = c.exact("uid", &Key::U64(uid)).unwrap();
        assert_eq!(it.result_len(), 1, "uid {uid}");
        let item = it.read::<Item>().unwrap();
        assert_eq!(item.get().uid, uid);
        drop(item);
        it.close().unwrap();
    }
}
