//! Read-only collection transactions over a snapshot: lookups, scans and
//! range queries must be stable while writers commit, indexes split, and
//! the log cleaner relocates chunks.

use chunk_store::{ChunkStore, ChunkStoreConfig};
use collection_store::{
    extractor::typed, CollectionError, CollectionStore, Durability, ExtractorRegistry, IndexKind,
    IndexSpec, Key, Persistent, Pickler, Unpickler,
};
use object_store::{impl_persistent_boilerplate, ClassRegistry, ObjectStoreConfig, PickleError};
use std::ops::Bound;
use std::sync::Arc;
use tdb_platform::{MemSecretStore, MemStore, VolatileCounter};

const CLASS_ACCT: u32 = 0xACC7_0001;

struct Account {
    id: i64,
    balance: i64,
}

impl Persistent for Account {
    impl_persistent_boilerplate!(CLASS_ACCT);
    fn pickle(&self, w: &mut Pickler) {
        w.i64(self.id);
        w.i64(self.balance);
    }
}

fn unpickle_account(r: &mut Unpickler) -> Result<Box<dyn Persistent>, PickleError> {
    Ok(Box::new(Account {
        id: r.i64()?,
        balance: r.i64()?,
    }))
}

fn store() -> CollectionStore {
    let chunks = Arc::new(
        ChunkStore::create(
            Arc::new(MemStore::new()),
            &MemSecretStore::from_label("read-coll-tests"),
            Arc::new(VolatileCounter::new()),
            ChunkStoreConfig::small_for_tests(),
        )
        .unwrap(),
    );
    let mut classes = ClassRegistry::new();
    classes.register(CLASS_ACCT, "Account", unpickle_account);
    let mut extractors = ExtractorRegistry::new();
    extractors.register("acct.id", |o| typed::<Account>(o, |a| Key::I64(a.id)));
    CollectionStore::create(chunks, classes, extractors, ObjectStoreConfig::default()).unwrap()
}

fn setup(store: &CollectionStore, n: i64, kind: IndexKind) {
    let t = store.begin();
    let c = t
        .create_collection(
            "accounts",
            &[IndexSpec::new("by-id", "acct.id", true, kind)],
        )
        .unwrap();
    for id in 0..n {
        c.insert(Box::new(Account {
            id,
            balance: id * 10,
        }))
        .unwrap();
    }
    drop(c);
    t.commit(Durability::Durable).unwrap();
}

#[test]
fn snapshot_scan_lookup_range_len() {
    let store = store();
    setup(&store, 50, IndexKind::BTree);

    let r = store.begin_read();
    let accounts = r.read_collection("accounts").unwrap();
    assert_eq!(accounts.len().unwrap(), 50);
    assert!(!accounts.is_empty().unwrap());
    assert_eq!(accounts.index_names().unwrap(), vec!["by-id".to_string()]);

    // Exact lookup + typed read.
    let ids = accounts.exact("by-id", &Key::I64(7)).unwrap();
    assert_eq!(ids.len(), 1);
    assert_eq!(
        accounts.get::<Account, _>(ids[0], |a| a.balance).unwrap(),
        70
    );

    // Full scan in key order.
    let entries = accounts.scan("by-id").unwrap();
    assert_eq!(entries.len(), 50);
    let keys: Vec<_> = entries.iter().map(|(k, _)| k.clone()).collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "B-tree scan must be in key order");

    // Range query.
    let range = accounts
        .range(
            "by-id",
            Bound::Included(&Key::I64(10)),
            Bound::Excluded(&Key::I64(20)),
        )
        .unwrap();
    assert_eq!(range.len(), 10);
}

#[test]
fn hash_and_range_rules_match_writable_side() {
    let store = store();
    setup(&store, 10, IndexKind::Hash);
    let r = store.begin_read();
    let accounts = r.read_collection("accounts").unwrap();
    assert_eq!(accounts.exact("by-id", &Key::I64(3)).unwrap().len(), 1);
    match accounts.range("by-id", Bound::Unbounded, Bound::Unbounded) {
        Err(CollectionError::UnsupportedQuery { .. }) => {}
        other => panic!("hash range must be UnsupportedQuery, got {other:?}"),
    }
    match r.read_collection("nope") {
        Err(CollectionError::NoSuchCollection(_)) => {}
        other => panic!("expected NoSuchCollection, got {:?}", other.map(|_| ())),
    }
}

#[test]
fn reader_is_stable_across_commits_and_index_splits() {
    let store = store();
    setup(&store, 20, IndexKind::BTree);

    let r = store.begin_read();
    let before = r
        .read_collection("accounts")
        .unwrap()
        .scan("by-id")
        .unwrap();
    assert_eq!(before.len(), 20);

    // A writer inserts enough members to split B-tree nodes several times,
    // updates balances, and commits — repeatedly.
    for round in 0..5 {
        let t = store.begin();
        let c = t.write_collection("accounts").unwrap();
        for id in 0..30 {
            c.insert(Box::new(Account {
                id: 1000 + round * 100 + id,
                balance: 1,
            }))
            .unwrap();
        }
        drop(c);
        t.commit(Durability::Durable).unwrap();
        store.chunk_store().checkpoint().unwrap();
        store.chunk_store().clean().unwrap();
    }

    // The open reader's view is unchanged: same members, same results.
    let accounts = r.read_collection("accounts").unwrap();
    assert_eq!(accounts.len().unwrap(), 20);
    let after = accounts.scan("by-id").unwrap();
    assert_eq!(
        before, after,
        "snapshot scan changed under concurrent writes"
    );
    for id in 0..20 {
        assert_eq!(
            accounts.exact("by-id", &Key::I64(id)).unwrap().len(),
            1,
            "account {id} lookup changed under concurrent writes"
        );
    }

    // A fresh reader sees all 170 members.
    let r2 = store.begin_read();
    assert_eq!(r2.read_collection("accounts").unwrap().len().unwrap(), 170);
}

#[test]
fn reader_sees_collections_dropped_after_snapshot() {
    let store = store();
    setup(&store, 5, IndexKind::BTree);

    let r = store.begin_read();
    let t = store.begin();
    t.remove_collection("accounts").unwrap();
    t.commit(Durability::Durable).unwrap();

    // As of the snapshot the collection exists and is fully readable.
    assert_eq!(r.collection_names().unwrap(), vec!["accounts".to_string()]);
    assert_eq!(r.read_collection("accounts").unwrap().len().unwrap(), 5);

    // A fresh reader agrees with the drop.
    let r2 = store.begin_read();
    assert!(r2.collection_names().unwrap().is_empty());
}

#[test]
fn object_reader_alongside_collection_reads() {
    let store = store();
    setup(&store, 3, IndexKind::BTree);

    let r = store.begin_read();
    let accounts = r.read_collection("accounts").unwrap();
    let ids = accounts.exact("by-id", &Key::I64(2)).unwrap();
    // The wrapped object-store reader serves direct typed reads too.
    let via_obj = r
        .object_reader()
        .read::<Account, _>(ids[0], |a| a.balance)
        .unwrap();
    assert_eq!(via_obj, 20);
    assert_eq!(r.commit_seq(), r.object_reader().commit_seq());
    r.finish();
}
