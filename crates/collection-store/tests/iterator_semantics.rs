//! Focused tests of insensitive-iterator semantics (§5.2.2/§5.2.3) beyond
//! the main suite: drop-without-close maintenance, multiple sequential
//! writable iterators, mixed update+delete batches, and schema evolution
//! through a second registered class.

use chunk_store::{ChunkStore, ChunkStoreConfig};
use collection_store::{
    extractor::typed, CollectionError, CollectionStore, ExtractorRegistry, IndexKind, IndexSpec,
    Key,
};
use object_store::{
    impl_persistent_boilerplate, ClassRegistry, ObjectStoreConfig, Persistent, PickleError,
    Pickler, Unpickler,
};
use std::sync::Arc;
use tdb_platform::{MemSecretStore, MemStore, VolatileCounter};

const CLASS_BASE: u32 = 0xBA5E;
const CLASS_EXTENDED: u32 = 0xEC57;

/// The collection schema class (paper §5.1.1).
struct BaseDoc {
    id: u64,
    rank: i64,
}

impl Persistent for BaseDoc {
    impl_persistent_boilerplate!(CLASS_BASE);
    fn pickle(&self, w: &mut Pickler) {
        w.u64(self.id);
        w.i64(self.rank);
    }
}

fn unpickle_base(r: &mut Unpickler) -> Result<Box<dyn Persistent>, PickleError> {
    Ok(Box::new(BaseDoc {
        id: r.u64()?,
        rank: r.i64()?,
    }))
}

/// "The database schema can be evolved by subclassing the collection
/// schema class" (§5.1.1). Rust has no subclassing; the analog is a second
/// class whose extractors produce the same logical keys.
struct ExtendedDoc {
    id: u64,
    rank: i64,
    note: String,
}

impl Persistent for ExtendedDoc {
    impl_persistent_boilerplate!(CLASS_EXTENDED);
    fn pickle(&self, w: &mut Pickler) {
        w.u64(self.id);
        w.i64(self.rank);
        w.string(&self.note);
    }
}

fn unpickle_extended(r: &mut Unpickler) -> Result<Box<dyn Persistent>, PickleError> {
    Ok(Box::new(ExtendedDoc {
        id: r.u64()?,
        rank: r.i64()?,
        note: r.string()?,
    }))
}

fn store() -> CollectionStore {
    let chunks = Arc::new(
        ChunkStore::create(
            Arc::new(MemStore::new()),
            &MemSecretStore::from_label("iter-semantics"),
            Arc::new(VolatileCounter::new()),
            ChunkStoreConfig::small_for_tests(),
        )
        .unwrap(),
    );
    let mut classes = ClassRegistry::new();
    classes.register(CLASS_BASE, "BaseDoc", unpickle_base);
    classes.register(CLASS_EXTENDED, "ExtendedDoc", unpickle_extended);
    let mut extractors = ExtractorRegistry::new();
    // Schema-polymorphic extractors: accept both classes.
    extractors.register("doc.id", |o| {
        typed::<BaseDoc>(o, |d| Key::U64(d.id))
            .or_else(|| typed::<ExtendedDoc>(o, |d| Key::U64(d.id)))
    });
    extractors.register("doc.rank", |o| {
        typed::<BaseDoc>(o, |d| Key::I64(d.rank))
            .or_else(|| typed::<ExtendedDoc>(o, |d| Key::I64(d.rank)))
    });
    CollectionStore::create(chunks, classes, extractors, ObjectStoreConfig::default()).unwrap()
}

fn specs() -> [IndexSpec; 2] {
    [
        IndexSpec::new("id", "doc.id", true, IndexKind::Hash),
        IndexSpec::new("rank", "doc.rank", false, IndexKind::BTree),
    ]
}

#[test]
fn dropping_iterator_still_maintains_indexes() {
    let cs = store();
    let t = cs.begin();
    let c = t.create_collection("docs", &specs()).unwrap();
    c.insert(Box::new(BaseDoc { id: 1, rank: 10 })).unwrap();

    {
        let mut it = c.scan("id").unwrap();
        let d = it.write::<BaseDoc>().unwrap();
        d.get_mut().rank = 99;
        drop(d);
        // Dropped without close(): maintenance must still run (errors are
        // lost, which is why close() is the documented path).
    }
    let hit = c.exact("rank", &Key::I64(99)).unwrap();
    assert_eq!(hit.result_len(), 1);
    hit.close().unwrap();
    let miss = c.exact("rank", &Key::I64(10)).unwrap();
    assert_eq!(miss.result_len(), 0);
    miss.close().unwrap();
}

#[test]
fn sequential_writable_iterators_compose() {
    let cs = store();
    let t = cs.begin();
    let c = t.create_collection("docs", &specs()).unwrap();
    for id in 0..10 {
        c.insert(Box::new(BaseDoc {
            id,
            rank: id as i64,
        }))
        .unwrap();
    }
    // Round 1: double every rank. Round 2: delete ranks >= 10.
    let mut it = c.scan("id").unwrap();
    while !it.end() {
        let d = it.write::<BaseDoc>().unwrap();
        let mut d = d.get_mut();
        d.rank *= 2;
        drop(d);
        it.next();
    }
    it.close().unwrap();

    let mut it = c
        .range(
            "rank",
            std::ops::Bound::Included(&Key::I64(10)),
            std::ops::Bound::Unbounded,
        )
        .unwrap();
    let mut deleted = 0;
    while !it.end() {
        it.delete().unwrap();
        deleted += 1;
        it.next();
    }
    it.close().unwrap();
    // ids 0..10 doubled: ranks 0,2,…,18; ranks >= 10 are ids 5..=9.
    assert_eq!(deleted, 5);
    assert_eq!(c.len().unwrap(), 5);
}

#[test]
fn update_and_delete_same_object_in_one_iterator() {
    let cs = store();
    let t = cs.begin();
    let c = t.create_collection("docs", &specs()).unwrap();
    c.insert(Box::new(BaseDoc { id: 1, rank: 1 })).unwrap();
    c.insert(Box::new(BaseDoc { id: 2, rank: 2 })).unwrap();

    let mut it = c.scan("id").unwrap();
    while !it.end() {
        let is_one = {
            let d = it.read::<BaseDoc>().unwrap();
            let v = d.get().id == 1;
            v
        };
        if is_one {
            // Update then delete: the delete must win cleanly.
            let d = it.write::<BaseDoc>().unwrap();
            d.get_mut().rank = 500;
            drop(d);
            it.delete().unwrap();
        }
        it.next();
    }
    it.close().unwrap();
    assert_eq!(c.len().unwrap(), 1);
    let ghost = c.exact("rank", &Key::I64(500)).unwrap();
    assert_eq!(
        ghost.result_len(),
        0,
        "deleted object leaked into the rank index"
    );
    ghost.close().unwrap();
    let survivor = c.exact("id", &Key::U64(2)).unwrap();
    assert_eq!(survivor.result_len(), 1);
    survivor.close().unwrap();
}

#[test]
fn schema_evolution_by_second_class() {
    let cs = store();
    let t = cs.begin();
    let c = t.create_collection("docs", &specs()).unwrap();
    c.insert(Box::new(BaseDoc { id: 1, rank: 1 })).unwrap();
    // The "subclass": indexed by the same extractors, stored alongside.
    c.insert(Box::new(ExtendedDoc {
        id: 2,
        rank: 2,
        note: "v2 schema".into(),
    }))
    .unwrap();

    let mut it = c.scan("rank").unwrap();
    assert_eq!(it.result_len(), 2);
    // First by rank is the BaseDoc...
    assert!(it.read::<BaseDoc>().is_ok());
    it.next();
    // ...second is the ExtendedDoc; reading it as BaseDoc is a checked
    // type error, as ExtendedDoc it works.
    assert!(matches!(
        it.read::<BaseDoc>(),
        Err(CollectionError::Object(
            object_store::ObjectStoreError::TypeMismatch { .. }
        ))
    ));
    let d = it.read::<ExtendedDoc>().unwrap();
    assert_eq!(d.get().note, "v2 schema");
    drop(d);
    it.close().unwrap();
}

#[test]
fn immutable_keys_skip_maintenance() {
    // §5.2.3: declaring keys immutable foregoes snapshot recording. The
    // contract: the key truly never changes; if the application violates
    // it, the index keeps the stale key (and the object stays reachable
    // under it) instead of silently re-indexing.
    let cs = store();
    let t = cs.begin();
    let c = t
        .create_collection(
            "docs",
            &[
                IndexSpec::new("id", "doc.id", true, IndexKind::Hash).immutable(),
                IndexSpec::new("rank", "doc.rank", false, IndexKind::BTree),
            ],
        )
        .unwrap();
    c.insert(Box::new(BaseDoc { id: 1, rank: 10 })).unwrap();

    // Mutating the *mutable* key through an iterator re-indexes it...
    let mut it = c.exact("id", &Key::U64(1)).unwrap();
    {
        let d = it.write::<BaseDoc>().unwrap();
        d.get_mut().rank = 20;
    }
    it.close().unwrap();
    let hit = c.exact("rank", &Key::I64(20)).unwrap();
    assert_eq!(hit.result_len(), 1);
    hit.close().unwrap();

    // ...while a (contract-violating) mutation of the immutable key is
    // NOT reflected: the index still finds the object under the old key.
    let mut it = c.exact("id", &Key::U64(1)).unwrap();
    {
        let d = it.write::<BaseDoc>().unwrap();
        d.get_mut().id = 42;
    }
    it.close().unwrap();
    let old = c.exact("id", &Key::U64(1)).unwrap();
    assert_eq!(
        old.result_len(),
        1,
        "immutable index must keep the declared key"
    );
    old.close().unwrap();
    let new = c.exact("id", &Key::U64(42)).unwrap();
    assert_eq!(new.result_len(), 0);
    new.close().unwrap();

    // Deletion still removes the entry correctly (delete snapshots include
    // immutable keys — computed from the current object, which by contract
    // equals the stored key; here we restore the contract first).
    let mut it = c.exact("id", &Key::U64(1)).unwrap();
    {
        let d = it.write::<BaseDoc>().unwrap();
        d.get_mut().id = 1; // restore the contract
    }
    it.close().unwrap();
    let mut it = c.exact("id", &Key::U64(1)).unwrap();
    it.delete().unwrap();
    it.close().unwrap();
    assert_eq!(c.len().unwrap(), 0);
    assert_eq!(c.index_entry_count("id").unwrap(), 0);
    assert_eq!(c.index_entry_count("rank").unwrap(), 0);
}

#[test]
fn result_set_is_frozen_at_query_time() {
    let cs = store();
    let t = cs.begin();
    let c = t.create_collection("docs", &specs()).unwrap();
    for id in 0..5 {
        c.insert(Box::new(BaseDoc { id, rank: 0 })).unwrap();
    }
    // Open a scan, then insert more members: the open iterator must not
    // see them (insensitivity), while a fresh query does.
    let it = c.scan("id").unwrap();
    assert_eq!(it.result_len(), 5);
    c.insert(Box::new(BaseDoc { id: 100, rank: 0 })).unwrap();
    assert_eq!(it.result_len(), 5, "open iterator grew");
    it.close().unwrap();
    let it = c.scan("id").unwrap();
    assert_eq!(it.result_len(), 6);
    it.close().unwrap();
}
