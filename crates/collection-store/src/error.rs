//! Collection store errors.

use crate::ObjectId;
use std::fmt;

/// Result alias for collection store operations.
pub type Result<T> = std::result::Result<T, CollectionError>;

/// Errors from the collection store.
#[derive(Debug)]
pub enum CollectionError {
    /// No collection with this name.
    NoSuchCollection(String),
    /// A collection with this name already exists.
    CollectionExists(String),
    /// No index with this name on the collection.
    NoSuchIndex(String),
    /// An index with this name already exists on the collection.
    IndexExists(String),
    /// "Raises an exception if there is only one index on the collection."
    /// (paper Fig. 6, `removeIndex`)
    LastIndex(String),
    /// A collection must be created with at least one index (paper Fig. 5:
    /// `createCollection` takes an indexer).
    NeedsIndex(String),
    /// The named extractor function is not registered.
    ExtractorNotRegistered(String),
    /// The object is not an instance of the collection's schema (the
    /// extractor refused it) — the runtime type check of §5.2.1.
    SchemaMismatch {
        /// Collection name.
        collection: String,
        /// Class id of the rejected object.
        class_id: u32,
    },
    /// An insert or index creation would violate a unique index
    /// immediately (paper Fig. 6: `insert`, `createIndex`).
    DuplicateKey {
        /// Index whose uniqueness was violated.
        index: String,
    },
    /// Deferred index maintenance at iterator close found updates that
    /// created duplicate keys in unique indexes. "The collection store
    /// removes all objects that violate index integrity from the
    /// collection and raises an exception … The exception object contains
    /// a list of ids of all objects that were removed" (§5.2.3).
    UniquenessViolation {
        /// Objects removed from the collection (still present in the
        /// object store, so the application can re-integrate them).
        removed: Vec<ObjectId>,
    },
    /// The query kind is not supported by this index implementation
    /// (e.g. range queries on a hash index).
    UnsupportedQuery {
        /// Index name.
        index: String,
        /// What was attempted.
        what: &'static str,
    },
    /// A writable dereference while other iterators are open on the same
    /// collection (insensitivity constraint 2, §5.2.2).
    IteratorConflict,
    /// The collection handle is read-only (`read_collection`).
    ReadOnlyCollection(String),
    /// Error from the object store (locks, types, chunk store, ...).
    Object(object_store::ObjectStoreError),
}

impl fmt::Display for CollectionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollectionError::NoSuchCollection(n) => write!(f, "no collection named {n:?}"),
            CollectionError::CollectionExists(n) => write!(f, "collection {n:?} already exists"),
            CollectionError::NoSuchIndex(n) => write!(f, "no index named {n:?}"),
            CollectionError::IndexExists(n) => write!(f, "index {n:?} already exists"),
            CollectionError::LastIndex(n) => {
                write!(f, "cannot remove {n:?}: a collection must keep at least one index")
            }
            CollectionError::NeedsIndex(n) => {
                write!(f, "collection {n:?} must be created with at least one index")
            }
            CollectionError::ExtractorNotRegistered(n) => {
                write!(f, "extractor {n:?} is not registered")
            }
            CollectionError::SchemaMismatch { collection, class_id } => write!(
                f,
                "object of class {class_id:#x} is not an instance of collection {collection:?}'s schema"
            ),
            CollectionError::DuplicateKey { index } => {
                write!(f, "insertion would create a duplicate key in unique index {index:?}")
            }
            CollectionError::UniquenessViolation { removed } => write!(
                f,
                "updates created duplicate keys; {} object(s) removed from the collection: {removed:?}",
                removed.len()
            ),
            CollectionError::UnsupportedQuery { index, what } => {
                write!(f, "index {index:?} does not support {what}")
            }
            CollectionError::IteratorConflict => write!(
                f,
                "writable dereference requires no other open iterators on the collection"
            ),
            CollectionError::ReadOnlyCollection(n) => {
                write!(f, "collection {n:?} was opened read-only")
            }
            CollectionError::Object(e) => write!(f, "object store: {e}"),
        }
    }
}

impl std::error::Error for CollectionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CollectionError::Object(e) => Some(e),
            _ => None,
        }
    }
}

impl From<object_store::ObjectStoreError> for CollectionError {
    fn from(e: object_store::ObjectStoreError) -> Self {
        CollectionError::Object(e)
    }
}

impl CollectionError {
    /// Stable, layer-independent classification (see [`tdb_core::ErrorKind`]).
    pub fn kind(&self) -> tdb_core::ErrorKind {
        use tdb_core::ErrorKind;
        match self {
            CollectionError::NoSuchCollection(_) | CollectionError::NoSuchIndex(_) => {
                ErrorKind::NotFound
            }
            CollectionError::CollectionExists(_)
            | CollectionError::IndexExists(_)
            | CollectionError::LastIndex(_)
            | CollectionError::NeedsIndex(_)
            | CollectionError::ExtractorNotRegistered(_)
            | CollectionError::UnsupportedQuery { .. }
            | CollectionError::IteratorConflict
            | CollectionError::ReadOnlyCollection(_) => ErrorKind::Usage,
            CollectionError::SchemaMismatch { .. }
            | CollectionError::DuplicateKey { .. }
            | CollectionError::UniquenessViolation { .. } => ErrorKind::Constraint,
            CollectionError::Object(e) => e.kind(),
        }
    }
}

impl From<CollectionError> for tdb_core::Error {
    fn from(e: CollectionError) -> Self {
        tdb_core::Error::with_source(e.kind(), e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CollectionError::LastIndex("i".into())
            .to_string()
            .contains("at least one"));
        assert!(CollectionError::UniquenessViolation {
            removed: vec![ObjectId(3)]
        }
        .to_string()
        .contains("removed"));
        assert!(CollectionError::UnsupportedQuery {
            index: "h".into(),
            what: "range queries"
        }
        .to_string()
        .contains("range"));
    }
}
