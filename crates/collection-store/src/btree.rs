//! Persistent B-tree index (paper §5.2.4).
//!
//! Nodes are persistent objects — "the index meta-objects, such as hash
//! buckets or B-tree nodes, are locked using a two-phase locking policy
//! like any other objects" — so the tree inherits transactional atomicity,
//! caching (the object cache "provides caching of indexes as well",
//! §4.2.2), encryption, and tamper detection with no extra machinery.
//!
//! Entries are `(Key, ObjectId)` pairs ordered by key then id, which makes
//! duplicate keys (non-unique indexes) well-ordered. Inserts use preemptive
//! top-down splitting; deletion is by entry removal without rebalancing
//! (underfull nodes are tolerated — correct, and appropriate for the small
//! DRM databases the paper targets; a full rebuild via `create_index`
//! compacts a degraded index).

use crate::error::Result;
use crate::key::Key;
use crate::meta::CLASS_BTREE_NODE;
use crate::ObjectId;
use object_store::{
    impl_persistent_boilerplate, ObjectReader, Persistent, PickleError, Pickler, Transaction,
    Unpickler,
};
use std::ops::Bound;

/// Max entries per node; splits keep nodes between half and full.
pub(crate) const MAX_ENTRIES: usize = 16;

/// A B-tree node. Leaves hold entries; inner nodes hold separator entries
/// and `entries.len() + 1` children (classic B+-less B-tree layout where
/// separators are real entries).
pub(crate) struct BTreeNode {
    pub leaf: bool,
    pub entries: Vec<(Key, ObjectId)>,
    pub children: Vec<ObjectId>,
}

impl Persistent for BTreeNode {
    impl_persistent_boilerplate!(CLASS_BTREE_NODE);
    fn pickle(&self, w: &mut Pickler) {
        w.bool(self.leaf);
        w.u32(self.entries.len() as u32);
        for (key, id) in &self.entries {
            key.pickle(w);
            w.object_id(*id);
        }
        w.u32(self.children.len() as u32);
        for child in &self.children {
            w.object_id(*child);
        }
    }
}

/// Unpickler registered under [`CLASS_BTREE_NODE`].
pub(crate) fn unpickle_node(
    r: &mut Unpickler,
) -> std::result::Result<Box<dyn Persistent>, PickleError> {
    let leaf = r.bool()?;
    let n = r.u32()? as usize;
    if n > MAX_ENTRIES * 2 {
        return Err(PickleError(format!("implausible btree entry count {n}")));
    }
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let key = Key::unpickle(r)?;
        let id = r.object_id()?;
        entries.push((key, id));
    }
    let c = r.u32()? as usize;
    if c > MAX_ENTRIES * 2 + 2 {
        return Err(PickleError(format!("implausible btree child count {c}")));
    }
    let mut children = Vec::with_capacity(c);
    for _ in 0..c {
        children.push(r.object_id()?);
    }
    Ok(Box::new(BTreeNode {
        leaf,
        entries,
        children,
    }))
}

/// Create an empty tree; returns the root node id.
pub(crate) fn create(txn: &Transaction) -> Result<ObjectId> {
    Ok(txn.insert(Box::new(BTreeNode {
        leaf: true,
        entries: Vec::new(),
        children: Vec::new(),
    }))?)
}

fn entry_cmp(a: &(Key, ObjectId), b: &(Key, ObjectId)) -> std::cmp::Ordering {
    a.0.cmp(&b.0).then(a.1.cmp(&b.1))
}

/// Split the full child at `child_idx` of (writable) `parent`.
fn split_child(txn: &Transaction, parent: &mut BTreeNode, child_idx: usize) -> Result<()> {
    let child_id = parent.children[child_idx];
    let child_ref = txn.open_writable::<BTreeNode>(child_id)?;
    let mut child = child_ref.get_mut();
    let mid = child.entries.len() / 2;
    let median = child.entries[mid].clone();
    let right_entries: Vec<_> = child.entries.split_off(mid + 1);
    child.entries.pop(); // drop the median from the left node
    let right_children: Vec<_> = if child.leaf {
        Vec::new()
    } else {
        child.children.split_off(mid + 1)
    };
    let right = BTreeNode {
        leaf: child.leaf,
        entries: right_entries,
        children: right_children,
    };
    drop(child);
    let right_id = txn.insert(Box::new(right))?;
    parent.entries.insert(child_idx, median);
    parent.children.insert(child_idx + 1, right_id);
    Ok(())
}

/// Insert an entry. Returns `Some(new_root)` if the root split.
pub(crate) fn insert(
    txn: &Transaction,
    root: ObjectId,
    key: Key,
    oid: ObjectId,
) -> Result<Option<ObjectId>> {
    // Preemptive split of a full root.
    let root_full = {
        let r = txn.open_readonly::<BTreeNode>(root)?;
        let full = r.get().entries.len() >= MAX_ENTRIES;
        full
    };
    let (mut node_id, new_root) = if root_full {
        let new_root_obj = BTreeNode {
            leaf: false,
            entries: Vec::new(),
            children: vec![root],
        };
        let new_root_id = txn.insert(Box::new(new_root_obj))?;
        {
            let nr = txn.open_writable::<BTreeNode>(new_root_id)?;
            let mut nr_guard = nr.get_mut();
            split_child(txn, &mut nr_guard, 0)?;
        }
        (new_root_id, Some(new_root_id))
    } else {
        (root, None)
    };

    // Descend, splitting full children on the way.
    let entry = (key, oid);
    loop {
        let node_ref = txn.open_writable::<BTreeNode>(node_id)?;
        let mut node = node_ref.get_mut();
        let pos = node.entries.binary_search_by(|e| entry_cmp(e, &entry));
        let pos = match pos {
            Ok(p) | Err(p) => p,
        };
        if node.leaf {
            node.entries.insert(pos, entry);
            return Ok(new_root);
        }
        let child_id = node.children[pos];
        let child_full = {
            let c = txn.open_readonly::<BTreeNode>(child_id)?;
            let full = c.get().entries.len() >= MAX_ENTRIES;
            full
        };
        if child_full {
            split_child(txn, &mut node, pos)?;
            // Re-route around the new separator.
            let sep = &node.entries[pos];
            node_id = if entry_cmp(&entry, sep) == std::cmp::Ordering::Greater {
                node.children[pos + 1]
            } else {
                node.children[pos]
            };
        } else {
            node_id = child_id;
        }
    }
}

/// Remove an entry; returns whether it was present. No rebalancing (see
/// module docs); separators removed from inner nodes are replaced with the
/// leftmost leaf entry of the right subtree.
pub(crate) fn remove(txn: &Transaction, root: ObjectId, key: &Key, oid: ObjectId) -> Result<bool> {
    let target = (key.clone(), oid);
    let mut node_id = root;
    loop {
        let found = {
            let node_ref = txn.open_readonly::<BTreeNode>(node_id)?;
            let node = node_ref.get();
            match node.entries.binary_search_by(|e| entry_cmp(e, &target)) {
                Ok(pos) => Some((true, pos)),
                Err(pos) => {
                    if node.leaf {
                        None
                    } else {
                        Some((false, pos))
                    }
                }
            }
        };
        match found {
            None => return Ok(false),
            Some((true, pos)) => {
                let node_ref = txn.open_writable::<BTreeNode>(node_id)?;
                let mut node = node_ref.get_mut();
                if node.leaf {
                    node.entries.remove(pos);
                    return Ok(true);
                }
                // Inner node: replace the separator with the smallest
                // entry of the right subtree, then delete that entry from
                // its leaf.
                let right_child = node.children[pos + 1];
                let successor = take_leftmost(txn, right_child)?;
                match successor {
                    Some(succ) => {
                        node.entries[pos] = succ;
                        return Ok(true);
                    }
                    None => {
                        // Right subtree empty (lazy deletion debris): keep
                        // a structurally valid node by removing separator
                        // and the empty child reference.
                        node.entries.remove(pos);
                        node.children.remove(pos + 1);
                        return Ok(true);
                    }
                }
            }
            Some((false, pos)) => {
                let node_ref = txn.open_readonly::<BTreeNode>(node_id)?;
                let next = node_ref.get().children[pos];
                node_id = next;
            }
        }
    }
}

/// Remove and return the smallest entry in the subtree, if any.
fn take_leftmost(txn: &Transaction, node_id: ObjectId) -> Result<Option<(Key, ObjectId)>> {
    let (leaf, first_child, has_entries) = {
        let node_ref = txn.open_readonly::<BTreeNode>(node_id)?;
        let node = node_ref.get();
        (
            node.leaf,
            node.children.first().copied(),
            !node.entries.is_empty(),
        )
    };
    if leaf {
        if !has_entries {
            return Ok(None);
        }
        let node_ref = txn.open_writable::<BTreeNode>(node_id)?;
        let mut node = node_ref.get_mut();
        return Ok(Some(node.entries.remove(0)));
    }
    match first_child {
        Some(child) => {
            // Try the child first; if it is empty debris, fall back to
            // this node's own first entry.
            if let Some(entry) = take_leftmost(txn, child)? {
                return Ok(Some(entry));
            }
            let node_ref = txn.open_writable::<BTreeNode>(node_id)?;
            let mut node = node_ref.get_mut();
            if node.entries.is_empty() {
                return Ok(None);
            }
            let entry = node.entries.remove(0);
            node.children.remove(0);
            Ok(Some(entry))
        }
        None => Ok(None),
    }
}

/// All object ids whose key equals `key`, in id order.
pub(crate) fn lookup(
    reader: &impl ObjectReader,
    root: ObjectId,
    key: &Key,
) -> Result<Vec<ObjectId>> {
    let mut out = Vec::new();
    range_into(
        reader,
        root,
        Bound::Included(key),
        Bound::Included(key),
        &mut |_, id| out.push(id),
    )?;
    Ok(out)
}

/// All `(key, id)` entries with `min <= key <= max`, in key order.
pub(crate) fn range(
    reader: &impl ObjectReader,
    root: ObjectId,
    min: Bound<&Key>,
    max: Bound<&Key>,
) -> Result<Vec<(Key, ObjectId)>> {
    let mut out = Vec::new();
    range_into(reader, root, min, max, &mut |key, id| {
        out.push((key.clone(), id))
    })?;
    Ok(out)
}

fn below_min(key: &Key, min: Bound<&Key>) -> bool {
    match min {
        Bound::Unbounded => false,
        Bound::Included(m) => key < m,
        Bound::Excluded(m) => key <= m,
    }
}

fn above_max(key: &Key, max: Bound<&Key>) -> bool {
    match max {
        Bound::Unbounded => false,
        Bound::Included(m) => key > m,
        Bound::Excluded(m) => key >= m,
    }
}

fn range_into(
    reader: &impl ObjectReader,
    node_id: ObjectId,
    min: Bound<&Key>,
    max: Bound<&Key>,
    f: &mut impl FnMut(&Key, ObjectId),
) -> Result<()> {
    // Clone the (small, <= MAX_ENTRIES) node state out under a short read
    // guard, then recurse with no guard held: snapshot readers must never
    // hold an object's read lock across child I/O, or a long scan could
    // stall a writer committing to the same node.
    let (leaf, entries, children) = reader.with_object::<BTreeNode, _>(node_id, |node| {
        (node.leaf, node.entries.clone(), node.children.clone())
    })?;
    for (i, (key, id)) in entries.iter().enumerate() {
        if !leaf && !below_min(key, min) {
            range_into(reader, children[i], min, max, f)?;
        }
        if above_max(key, max) {
            return Ok(());
        }
        if !below_min(key, min) {
            f(key, *id);
        }
    }
    if !leaf {
        if let Some(last) = children.last() {
            // Visit the rightmost child unless its whole range is above max.
            let visit = match (entries.last(), max) {
                (Some((last_key, _)), m) => !above_max(last_key, m) || m == Bound::Unbounded,
                (None, _) => true,
            };
            if visit {
                range_into(reader, *last, min, max, f)?;
            }
        }
    }
    Ok(())
}

/// Every entry in key order (scan query).
pub(crate) fn scan(reader: &impl ObjectReader, root: ObjectId) -> Result<Vec<(Key, ObjectId)>> {
    range(reader, root, Bound::Unbounded, Bound::Unbounded)
}

/// Delete every node of the tree (index removal).
pub(crate) fn destroy(txn: &Transaction, root: ObjectId) -> Result<()> {
    let children = {
        let node_ref = txn.open_readonly::<BTreeNode>(root)?;
        let children = node_ref.get().children.clone();
        children
    };
    for child in children {
        destroy(txn, child)?;
    }
    txn.remove(root)?;
    Ok(())
}

/// Number of entries (diagnostics / tests).
pub(crate) fn count(reader: &impl ObjectReader, root: ObjectId) -> Result<u64> {
    let mut n = 0u64;
    range_into(
        reader,
        root,
        Bound::Unbounded,
        Bound::Unbounded,
        &mut |_, _| n += 1,
    )?;
    Ok(n)
}
