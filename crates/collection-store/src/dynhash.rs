//! Dynamic hash table index: Larson linear hashing \[20\] (paper §5.2.4).
//!
//! The table grows one bucket at a time: when an insert overflows its
//! bucket, the bucket at the split pointer is split by rehashing its
//! entries under the doubled modulus, and the pointer advances; when it
//! wraps, the level increments. No global rehash ever happens, so insert
//! cost stays bounded — the property that made Larson's scheme attractive
//! for an embedded store.
//!
//! The directory is two-level — a small root object pointing at fixed-size
//! *segment* objects that hold bucket ids (Larson's original layout) — so
//! a steady-state insert writes only the touched bucket, and a split
//! additionally writes one segment plus the small root. Without this, every
//! insert would rewrite a directory that grows with the table.
//!
//! Exact-match and scan queries only; range queries are unsupported
//! (ordered access is what the B-tree index is for).

use crate::error::Result;
use crate::key::Key;
use crate::meta::{CLASS_HASH_BUCKET, CLASS_HASH_DIR, CLASS_HASH_SEG};
use crate::ObjectId;
use object_store::{
    impl_persistent_boilerplate, ObjectReader, Persistent, PickleError, Pickler, Transaction,
    Unpickler,
};

/// Initial number of buckets.
const INITIAL_BUCKETS: u64 = 4;
/// Split when the inserted-into bucket exceeds this many entries.
const MAX_BUCKET: usize = 8;
/// Bucket ids per directory segment.
const SEG_CAP: usize = 256;

/// Directory root: level, split pointer, segment ids.
pub(crate) struct HashDir {
    pub level: u32,
    pub next: u64,
    pub segments: Vec<ObjectId>,
}

impl HashDir {
    /// Current number of buckets: `INITIAL << level` plus the splits done
    /// at this level.
    fn bucket_count(&self) -> u64 {
        (INITIAL_BUCKETS << self.level) + self.next
    }
}

impl Persistent for HashDir {
    impl_persistent_boilerplate!(CLASS_HASH_DIR);
    fn pickle(&self, w: &mut Pickler) {
        w.u32(self.level);
        w.u64(self.next);
        w.u32(self.segments.len() as u32);
        for s in &self.segments {
            w.object_id(*s);
        }
    }
}

pub(crate) fn unpickle_dir(
    r: &mut Unpickler,
) -> std::result::Result<Box<dyn Persistent>, PickleError> {
    let level = r.u32()?;
    let next = r.u64()?;
    let n = r.u32()? as usize;
    if n > 1_000_000 {
        return Err(PickleError(format!("implausible segment count {n}")));
    }
    let mut segments = Vec::with_capacity(n);
    for _ in 0..n {
        segments.push(r.object_id()?);
    }
    Ok(Box::new(HashDir {
        level,
        next,
        segments,
    }))
}

/// A directory segment: up to [`SEG_CAP`] bucket ids.
pub(crate) struct HashSeg {
    pub buckets: Vec<ObjectId>,
}

impl Persistent for HashSeg {
    impl_persistent_boilerplate!(CLASS_HASH_SEG);
    fn pickle(&self, w: &mut Pickler) {
        w.u32(self.buckets.len() as u32);
        for b in &self.buckets {
            w.object_id(*b);
        }
    }
}

pub(crate) fn unpickle_seg(
    r: &mut Unpickler,
) -> std::result::Result<Box<dyn Persistent>, PickleError> {
    let n = r.u32()? as usize;
    if n > SEG_CAP * 2 {
        return Err(PickleError(format!("implausible segment size {n}")));
    }
    let mut buckets = Vec::with_capacity(n);
    for _ in 0..n {
        buckets.push(r.object_id()?);
    }
    Ok(Box::new(HashSeg { buckets }))
}

/// A bucket of `(key, id)` entries.
pub(crate) struct HashBucket {
    pub entries: Vec<(Key, ObjectId)>,
}

impl Persistent for HashBucket {
    impl_persistent_boilerplate!(CLASS_HASH_BUCKET);
    fn pickle(&self, w: &mut Pickler) {
        w.u32(self.entries.len() as u32);
        for (key, id) in &self.entries {
            key.pickle(w);
            w.object_id(*id);
        }
    }
}

pub(crate) fn unpickle_bucket(
    r: &mut Unpickler,
) -> std::result::Result<Box<dyn Persistent>, PickleError> {
    let n = r.u32()? as usize;
    if n > 1_000_000 {
        return Err(PickleError(format!("implausible bucket entry count {n}")));
    }
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let key = Key::unpickle(r)?;
        let id = r.object_id()?;
        entries.push((key, id));
    }
    Ok(Box::new(HashBucket { entries }))
}

/// Bucket index for a hash under the current (level, next) state.
fn bucket_index(dir: &HashDir, h: u64) -> u64 {
    let low = INITIAL_BUCKETS << dir.level;
    let mut idx = h % low;
    if idx < dir.next {
        idx = h % (low << 1);
    }
    idx
}

/// Resolve a bucket index to its bucket object id.
fn bucket_at(reader: &impl ObjectReader, dir: &HashDir, idx: u64) -> Result<ObjectId> {
    let seg = dir.segments[(idx as usize) / SEG_CAP];
    let id = reader.with_object::<HashSeg, _>(seg, |seg| seg.buckets[(idx as usize) % SEG_CAP])?;
    Ok(id)
}

/// Append a bucket id at index `bucket_count` (always the tail).
fn push_bucket(txn: &Transaction, dir: &mut HashDir, bucket: ObjectId) -> Result<()> {
    let idx = dir.bucket_count() as usize; // position it will occupy
    if idx / SEG_CAP >= dir.segments.len() {
        let seg = txn.insert(Box::new(HashSeg {
            buckets: vec![bucket],
        }))?;
        dir.segments.push(seg);
    } else {
        let seg_ref = txn.open_writable::<HashSeg>(dir.segments[idx / SEG_CAP])?;
        seg_ref.get_mut().buckets.push(bucket);
    }
    Ok(())
}

/// Create an empty table; returns the directory object id.
pub(crate) fn create(txn: &Transaction) -> Result<ObjectId> {
    let mut buckets = Vec::with_capacity(INITIAL_BUCKETS as usize);
    for _ in 0..INITIAL_BUCKETS {
        buckets.push(txn.insert(Box::new(HashBucket {
            entries: Vec::new(),
        }))?);
    }
    let seg = txn.insert(Box::new(HashSeg { buckets }))?;
    Ok(txn.insert(Box::new(HashDir {
        level: 0,
        next: 0,
        segments: vec![seg],
    }))?)
}

/// Insert an entry; splits one bucket when the target bucket overflows.
pub(crate) fn insert(txn: &Transaction, dir_id: ObjectId, key: Key, oid: ObjectId) -> Result<()> {
    // Fast path: read-only directory traversal, write only the bucket —
    // a steady-state insert appends ~20 bytes to one small object.
    let overflowed = {
        let dir_ref = txn.open_readonly::<HashDir>(dir_id)?;
        let dir = dir_ref.get();
        let idx = bucket_index(&dir, key.stable_hash());
        let bucket_id = bucket_at(txn, &dir, idx)?;
        drop(dir);
        let bucket_ref = txn.open_writable::<HashBucket>(bucket_id)?;
        let mut bucket = bucket_ref.get_mut();
        bucket.entries.push((key, oid));
        bucket.entries.len() > MAX_BUCKET
    };
    if overflowed {
        split_step(txn, dir_id)?;
    }
    Ok(())
}

/// One incremental split: split the bucket at the split pointer.
fn split_step(txn: &Transaction, dir_id: ObjectId) -> Result<()> {
    let dir_ref = txn.open_writable::<HashDir>(dir_id)?;
    let mut dir = dir_ref.get_mut();

    let split_idx = dir.next;
    let split_bucket = bucket_at(txn, &dir, split_idx)?;
    let new_bucket = txn.insert(Box::new(HashBucket {
        entries: Vec::new(),
    }))?;
    push_bucket(txn, &mut dir, new_bucket)?;

    let low = INITIAL_BUCKETS << dir.level;
    let high = low << 1;
    dir.next += 1;
    if dir.next >= low {
        dir.level += 1;
        dir.next = 0;
    }
    drop(dir);

    let old_ref = txn.open_writable::<HashBucket>(split_bucket)?;
    let mut old = old_ref.get_mut();
    let (keep, moved): (Vec<_>, Vec<_>) = old
        .entries
        .drain(..)
        .partition(|(k, _)| k.stable_hash() % high == split_idx);
    old.entries = keep;
    drop(old);
    if !moved.is_empty() {
        let new_ref = txn.open_writable::<HashBucket>(new_bucket)?;
        new_ref.get_mut().entries.extend(moved);
    }
    Ok(())
}

/// Remove an entry; returns whether it was present.
pub(crate) fn remove(
    txn: &Transaction,
    dir_id: ObjectId,
    key: &Key,
    oid: ObjectId,
) -> Result<bool> {
    let bucket_id = {
        let dir_ref = txn.open_readonly::<HashDir>(dir_id)?;
        let dir = dir_ref.get();
        let idx = bucket_index(&dir, key.stable_hash());
        bucket_at(txn, &dir, idx)?
    };
    let bucket_ref = txn.open_writable::<HashBucket>(bucket_id)?;
    let mut bucket = bucket_ref.get_mut();
    let before = bucket.entries.len();
    bucket.entries.retain(|(k, id)| !(k == key && *id == oid));
    Ok(bucket.entries.len() < before)
}

/// All ids with this exact key.
pub(crate) fn lookup(
    reader: &impl ObjectReader,
    dir_id: ObjectId,
    key: &Key,
) -> Result<Vec<ObjectId>> {
    let bucket_id = {
        let hash = key.stable_hash();
        // One guard for the directory: compute the bucket index and the
        // owning segment together so they come from a consistent state.
        let (idx, seg) = reader.with_object::<HashDir, _>(dir_id, |dir| {
            let idx = bucket_index(dir, hash);
            (idx, dir.segments[(idx as usize) / SEG_CAP])
        })?;
        reader.with_object::<HashSeg, _>(seg, |seg| seg.buckets[(idx as usize) % SEG_CAP])?
    };
    let mut out: Vec<ObjectId> = reader.with_object::<HashBucket, _>(bucket_id, |bucket| {
        bucket
            .entries
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, id)| *id)
            .collect()
    })?;
    out.sort_unstable();
    Ok(out)
}

fn all_buckets(reader: &impl ObjectReader, dir_id: ObjectId) -> Result<Vec<ObjectId>> {
    let segments = reader.with_object::<HashDir, _>(dir_id, |dir| dir.segments.clone())?;
    let mut buckets = Vec::new();
    for seg in segments {
        let ids = reader.with_object::<HashSeg, _>(seg, |seg| seg.buckets.clone())?;
        buckets.extend(ids);
    }
    Ok(buckets)
}

/// Every entry (scan query). Order is arbitrary but deterministic.
pub(crate) fn scan(reader: &impl ObjectReader, dir_id: ObjectId) -> Result<Vec<(Key, ObjectId)>> {
    let mut out = Vec::new();
    for bucket_id in all_buckets(reader, dir_id)? {
        let entries =
            reader.with_object::<HashBucket, _>(bucket_id, |bucket| bucket.entries.clone())?;
        out.extend(entries);
    }
    Ok(out)
}

/// Delete the whole table.
pub(crate) fn destroy(txn: &Transaction, dir_id: ObjectId) -> Result<()> {
    for bucket in all_buckets(txn, dir_id)? {
        txn.remove(bucket)?;
    }
    let segments = {
        let dir_ref = txn.open_readonly::<HashDir>(dir_id)?;
        let segments = dir_ref.get().segments.clone();
        segments
    };
    for seg in segments {
        txn.remove(seg)?;
    }
    txn.remove(dir_id)?;
    Ok(())
}
