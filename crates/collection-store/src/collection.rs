//! The `Collection` handle: inserts, index management, queries (paper
//! Fig. 6), and the deferred index-maintenance engine (§5.2.3).

use crate::btree;
use crate::ctxn::CTransaction;
use crate::dynhash;
use crate::error::{CollectionError, Result};
use crate::iterator::CIter;
use crate::key::Key;
use crate::listindex;
use crate::meta::{CollectionObj, IndexKind, IndexMeta, IndexSpec};
use crate::ObjectId;
use object_store::Persistent;
use std::ops::Bound;

/// A handle to a named collection within a [`CTransaction`].
pub struct Collection<'t> {
    ct: &'t CTransaction,
    oid: ObjectId,
    name: String,
    writable: bool,
}

// ---------------------------------------------------------------------------
// Index dispatch
// ---------------------------------------------------------------------------

pub(crate) fn create_index_root(ct: &CTransaction, kind: IndexKind) -> Result<ObjectId> {
    let txn = &ct.txn;
    match kind {
        IndexKind::BTree => btree::create(txn),
        IndexKind::Hash => dynhash::create(txn),
        IndexKind::List => listindex::create(txn),
    }
}

/// Insert into an index; returns `Some(new_root)` if the root object
/// changed (B-tree splits).
fn idx_insert(
    ct: &CTransaction,
    kind: IndexKind,
    root: ObjectId,
    key: Key,
    oid: ObjectId,
) -> Result<Option<ObjectId>> {
    ct.obs.inserts.inc();
    let txn = &ct.txn;
    match kind {
        IndexKind::BTree => btree::insert(txn, root, key, oid),
        IndexKind::Hash => {
            dynhash::insert(txn, root, key, oid)?;
            Ok(None)
        }
        IndexKind::List => {
            listindex::insert(txn, root, key, oid)?;
            Ok(None)
        }
    }
}

fn idx_remove(
    ct: &CTransaction,
    kind: IndexKind,
    root: ObjectId,
    key: &Key,
    oid: ObjectId,
) -> Result<bool> {
    ct.obs.removes.inc();
    let txn = &ct.txn;
    match kind {
        IndexKind::BTree => btree::remove(txn, root, key, oid),
        IndexKind::Hash => dynhash::remove(txn, root, key, oid),
        IndexKind::List => listindex::remove(txn, root, key, oid),
    }
}

fn idx_lookup(
    ct: &CTransaction,
    kind: IndexKind,
    root: ObjectId,
    key: &Key,
) -> Result<Vec<ObjectId>> {
    ct.obs.lookups.inc();
    let txn = &ct.txn;
    match kind {
        IndexKind::BTree => btree::lookup(txn, root, key),
        IndexKind::Hash => dynhash::lookup(txn, root, key),
        IndexKind::List => listindex::lookup(txn, root, key),
    }
}

fn idx_scan(ct: &CTransaction, kind: IndexKind, root: ObjectId) -> Result<Vec<(Key, ObjectId)>> {
    ct.obs.scans.inc();
    let txn = &ct.txn;
    match kind {
        IndexKind::BTree => btree::scan(txn, root),
        IndexKind::Hash => dynhash::scan(txn, root),
        IndexKind::List => listindex::scan(txn, root),
    }
}

fn idx_destroy(ct: &CTransaction, kind: IndexKind, root: ObjectId) -> Result<()> {
    let txn = &ct.txn;
    match kind {
        IndexKind::BTree => btree::destroy(txn, root),
        IndexKind::Hash => dynhash::destroy(txn, root),
        IndexKind::List => listindex::destroy(txn, root),
    }
}

// ---------------------------------------------------------------------------
// Shared helpers over the collection object
// ---------------------------------------------------------------------------

pub(crate) fn load_metas(ct: &CTransaction, coll: ObjectId) -> Result<Vec<IndexMeta>> {
    let c = ct.txn.open_readonly::<CollectionObj>(coll)?;
    let metas = c.get().indexes.clone();
    Ok(metas)
}

fn update_root(
    ct: &CTransaction,
    coll: ObjectId,
    index_name: &str,
    new_root: ObjectId,
) -> Result<()> {
    let c = ct.txn.open_writable::<CollectionObj>(coll)?;
    let mut c = c.get_mut();
    if let Some(meta) = c.indexes.iter_mut().find(|m| m.spec.name == index_name) {
        meta.root = new_root;
    }
    Ok(())
}

/// Compute index keys for an object (the "key snapshot" of §5.2.3).
/// Indexes declared immutable are skipped (`None`) unless
/// `include_immutable` — the paper's storage-saving optimization for
/// iterator snapshots, where immutable keys never need re-checking.
pub(crate) fn key_snapshot(
    ct: &CTransaction,
    coll_name: &str,
    metas: &[IndexMeta],
    oid: ObjectId,
    include_immutable: bool,
) -> Result<Vec<Option<Key>>> {
    let extractors: Vec<Option<crate::extractor::ExtractorFn>> = metas
        .iter()
        .map(|m| {
            if m.spec.immutable && !include_immutable {
                Ok(None)
            } else {
                ct.extractors.get(&m.spec.extractor).map(Some)
            }
        })
        .collect::<Result<_>>()?;
    let keys: std::result::Result<Vec<Option<Key>>, u32> = ct.txn.with_readonly(oid, |obj| {
        extractors
            .iter()
            .map(|f| match f {
                Some(f) => f(obj).ok_or(obj.class_id()).map(Some),
                None => Ok(None),
            })
            .collect()
    })?;
    keys.map_err(|class_id| CollectionError::SchemaMismatch {
        collection: coll_name.to_string(),
        class_id,
    })
}

/// Remove every member object and index structure (paper Fig. 5:
/// `removeCollection`).
pub(crate) fn destroy_collection(ct: &CTransaction, coll: ObjectId) -> Result<()> {
    let metas = load_metas(ct, coll)?;
    let members = idx_scan(ct, metas[0].spec.kind, metas[0].root)?;
    for (_, member) in members {
        ct.txn.remove(member)?;
    }
    for meta in &metas {
        idx_destroy(ct, meta.spec.kind, meta.root)?;
    }
    ct.txn.remove(coll)?;
    Ok(())
}

impl<'t> Collection<'t> {
    pub(crate) fn new(ct: &'t CTransaction, oid: ObjectId, name: String, writable: bool) -> Self {
        Collection {
            ct,
            oid,
            name,
            writable,
        }
    }

    /// Collection name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Object id of the collection object itself.
    pub fn id(&self) -> ObjectId {
        self.oid
    }

    /// Number of member objects, derived by counting the first index —
    /// a per-insert persistent counter would double every insert's write
    /// volume, which the paper's 523-bytes-per-transaction profile (§7.4)
    /// clearly does not pay.
    pub fn len(&self) -> Result<u64> {
        let metas = load_metas(self.ct, self.oid)?;
        match metas[0].spec.kind {
            IndexKind::BTree => btree::count(&self.ct.txn, metas[0].root),
            _ => Ok(idx_scan(self.ct, metas[0].spec.kind, metas[0].root)?.len() as u64),
        }
    }

    /// Whether the collection has no members.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Names of the indexes on this collection.
    pub fn index_names(&self) -> Result<Vec<String>> {
        Ok(load_metas(self.ct, self.oid)?
            .into_iter()
            .map(|m| m.spec.name)
            .collect())
    }

    fn require_writable(&self) -> Result<()> {
        if self.writable {
            Ok(())
        } else {
            Err(CollectionError::ReadOnlyCollection(self.name.clone()))
        }
    }

    fn meta_named(&self, index: &str) -> Result<IndexMeta> {
        load_metas(self.ct, self.oid)?
            .into_iter()
            .find(|m| m.spec.name == index)
            .ok_or_else(|| CollectionError::NoSuchIndex(index.to_string()))
    }

    /// Insert an object into the collection (paper Fig. 6: `insert`).
    /// The object is stored in the object store and entered into every
    /// index; uniqueness violations reject the insert atomically.
    pub fn insert(&self, object: Box<dyn Persistent>) -> Result<ObjectId> {
        self.require_writable()?;
        let metas = load_metas(self.ct, self.oid)?;
        // Compute keys before inserting so a schema mismatch costs nothing.
        let mut keys = Vec::with_capacity(metas.len());
        for meta in &metas {
            let extractor = self.ct.extractors.get(&meta.spec.extractor)?;
            let key = extractor(&*object).ok_or_else(|| CollectionError::SchemaMismatch {
                collection: self.name.clone(),
                class_id: object.class_id(),
            })?;
            keys.push(key);
        }
        // Uniqueness pre-check.
        for (meta, key) in metas.iter().zip(&keys) {
            if meta.spec.unique && !idx_lookup(self.ct, meta.spec.kind, meta.root, key)?.is_empty()
            {
                return Err(CollectionError::DuplicateKey {
                    index: meta.spec.name.clone(),
                });
            }
        }
        let oid = self.ct.txn.insert(object)?;
        for (meta, key) in metas.iter().zip(keys) {
            if let Some(new_root) = idx_insert(self.ct, meta.spec.kind, meta.root, key, oid)? {
                update_root(self.ct, self.oid, &meta.spec.name, new_root)?;
            }
        }
        Ok(oid)
    }

    /// Create a new index over the existing members (paper Fig. 6:
    /// `createIndex`). "Raises an exception if indexer specifies an unique
    /// index and any of the objects in the collection violates uniqueness."
    pub fn create_index(&self, spec: IndexSpec) -> Result<()> {
        self.require_writable()?;
        let metas = load_metas(self.ct, self.oid)?;
        if metas.iter().any(|m| m.spec.name == spec.name) {
            return Err(CollectionError::IndexExists(spec.name));
        }
        let extractor = self.ct.extractors.get(&spec.extractor)?;
        let members = idx_scan(self.ct, metas[0].spec.kind, metas[0].root)?;
        let mut root = create_index_root(self.ct, spec.kind)?;
        let build = (|| -> Result<ObjectId> {
            let mut seen = std::collections::BTreeSet::new();
            for (_, member) in &members {
                let key = self
                    .ct
                    .txn
                    .with_readonly(*member, |obj| extractor(obj).ok_or(obj.class_id()))?
                    .map_err(|class_id| CollectionError::SchemaMismatch {
                        collection: self.name.clone(),
                        class_id,
                    })?;
                if spec.unique && !seen.insert(key.clone()) {
                    return Err(CollectionError::DuplicateKey {
                        index: spec.name.clone(),
                    });
                }
                if let Some(new_root) = idx_insert(self.ct, spec.kind, root, key, *member)? {
                    root = new_root;
                }
            }
            Ok(root)
        })();
        match build {
            Ok(root) => {
                let c = self.ct.txn.open_writable::<CollectionObj>(self.oid)?;
                c.get_mut().indexes.push(IndexMeta { spec, root });
                Ok(())
            }
            Err(e) => {
                idx_destroy(self.ct, spec.kind, root)?;
                Err(e)
            }
        }
    }

    /// Remove an index (paper Fig. 6: `removeIndex`). "Raises an exception
    /// if there is only one index on the collection."
    pub fn remove_index(&self, index: &str) -> Result<()> {
        self.require_writable()?;
        let metas = load_metas(self.ct, self.oid)?;
        let meta = metas
            .iter()
            .find(|m| m.spec.name == index)
            .ok_or_else(|| CollectionError::NoSuchIndex(index.to_string()))?;
        if metas.len() <= 1 {
            return Err(CollectionError::LastIndex(index.to_string()));
        }
        idx_destroy(self.ct, meta.spec.kind, meta.root)?;
        let c = self.ct.txn.open_writable::<CollectionObj>(self.oid)?;
        c.get_mut().indexes.retain(|m| m.spec.name != index);
        Ok(())
    }

    // -- queries (paper Fig. 6: the three `query` overloads) -------------

    fn make_iter(&self, ids: Vec<ObjectId>) -> CIter<'t> {
        CIter::new(self.ct, self.oid, self.name.clone(), self.writable, ids)
    }

    /// Scan query: every member, in the index's natural order.
    pub fn scan(&self, index: &str) -> Result<CIter<'t>> {
        let meta = self.meta_named(index)?;
        let entries = idx_scan(self.ct, meta.spec.kind, meta.root)?;
        Ok(self.make_iter(entries.into_iter().map(|(_, id)| id).collect()))
    }

    /// Exact-match query.
    pub fn exact(&self, index: &str, key: &Key) -> Result<CIter<'t>> {
        let meta = self.meta_named(index)?;
        let ids = idx_lookup(self.ct, meta.spec.kind, meta.root, key)?;
        Ok(self.make_iter(ids))
    }

    /// Range query (`min..=max` with explicit bounds). Only ordered
    /// indexes (B-tree) support ranges.
    pub fn range(&self, index: &str, min: Bound<&Key>, max: Bound<&Key>) -> Result<CIter<'t>> {
        let meta = self.meta_named(index)?;
        match meta.spec.kind {
            IndexKind::BTree => {
                let entries = btree::range(&self.ct.txn, meta.root, min, max)?;
                Ok(self.make_iter(entries.into_iter().map(|(_, id)| id).collect()))
            }
            IndexKind::Hash | IndexKind::List => Err(CollectionError::UnsupportedQuery {
                index: index.to_string(),
                what: "range queries",
            }),
        }
    }

    /// Entry count of one index (diagnostics; should equal `len()` unless
    /// maintenance is pending in an open iterator).
    pub fn index_entry_count(&self, index: &str) -> Result<u64> {
        let meta = self.meta_named(index)?;
        match meta.spec.kind {
            IndexKind::BTree => btree::count(&self.ct.txn, meta.root),
            _ => Ok(idx_scan(self.ct, meta.spec.kind, meta.root)?.len() as u64),
        }
    }
}

// ---------------------------------------------------------------------------
// Deferred index maintenance (§5.2.3), invoked by iterator close.
// ---------------------------------------------------------------------------

/// Apply deferred updates and deletions from a closing iterator.
///
/// For each updated object the pre-update key snapshot is compared against
/// keys computed from the current (cached) object version; only affected
/// indexes are touched. Updates that violate a unique index cause the
/// offending object to be *removed from the collection* and reported.
pub(crate) fn maintain(
    ct: &CTransaction,
    coll: ObjectId,
    coll_name: &str,
    writes: Vec<(ObjectId, Vec<Option<Key>>)>,
    deletes: Vec<(ObjectId, Vec<Option<Key>>)>,
) -> Result<()> {
    let mut metas = load_metas(ct, coll)?;
    let mut violations: Vec<ObjectId> = Vec::new();
    ct.obs
        .maintenance
        .add((writes.len() + deletes.len()) as u64);

    'objects: for (oid, pre_keys) in writes {
        if deletes.iter().any(|(d, _)| *d == oid) {
            continue;
        }
        let post_keys = key_snapshot(ct, coll_name, &metas, oid, false)?;
        debug_assert_eq!(pre_keys.len(), post_keys.len());

        // Pass 1: check uniqueness for every changed key before touching
        // anything, so a violating object is removed cleanly. Immutable
        // indexes (snapshot `None`) cannot change by contract.
        for (i, meta) in metas.iter().enumerate() {
            let (Some(pre), Some(post)) = (&pre_keys[i], &post_keys[i]) else {
                continue;
            };
            if pre == post || !meta.spec.unique {
                continue;
            }
            let holders = idx_lookup(ct, meta.spec.kind, meta.root, post)?;
            if holders.iter().any(|h| *h != oid) {
                // Violation: remove the object from the collection under
                // its real current keys (including immutable ones).
                let all_keys = key_snapshot(ct, coll_name, &metas, oid, true)?;
                for (j, meta) in metas.iter().enumerate() {
                    // Entries live under the pre-update key where we have
                    // one; immutable keys equal the current extraction.
                    let key = pre_keys[j].as_ref().or(all_keys[j].as_ref()).expect("some");
                    idx_remove(ct, meta.spec.kind, meta.root, key, oid)?;
                }
                violations.push(oid);
                continue 'objects;
            }
        }
        // Pass 2: apply the redo — remove old entries, insert new ones.
        for (i, meta) in metas.iter_mut().enumerate() {
            let (Some(pre), Some(post)) = (&pre_keys[i], &post_keys[i]) else {
                continue;
            };
            if pre == post {
                continue;
            }
            idx_remove(ct, meta.spec.kind, meta.root, pre, oid)?;
            if let Some(new_root) = idx_insert(ct, meta.spec.kind, meta.root, post.clone(), oid)? {
                meta.root = new_root;
                update_root(ct, coll, &meta.spec.name.clone(), new_root)?;
            }
        }
    }

    for (oid, keys) in deletes {
        for (i, meta) in metas.iter().enumerate() {
            let key = keys[i].as_ref().expect("delete snapshots include all keys");
            idx_remove(ct, meta.spec.kind, meta.root, key, oid)?;
        }
        ct.txn.remove(oid)?;
    }

    if violations.is_empty() {
        Ok(())
    } else {
        Err(CollectionError::UniquenessViolation {
            removed: violations,
        })
    }
}
