//! List index: unordered membership (paper §5.2.4).
//!
//! A chain of persistent nodes, each holding a batch of `(key, id)`
//! entries. Inserts append to the head node (spilling into a freshly
//! prepended node when full), so insertion is O(1); exact-match and removal
//! are linear. The list is the cheapest way to make a collection iterable
//! when no keyed access is needed.

use crate::error::Result;
use crate::key::Key;
use crate::meta::CLASS_LIST_NODE;
use crate::ObjectId;
use object_store::{
    impl_persistent_boilerplate, ObjectReader, Persistent, PickleError, Pickler, Transaction,
    Unpickler,
};

/// Entries per node before spilling. Small, so that the head-node rewrite
/// an append incurs stays ~100 bytes — the log-structured store pays for
/// every rewritten byte (§7.4).
const NODE_CAPACITY: usize = 8;

/// A list node.
pub(crate) struct ListNode {
    pub entries: Vec<(Key, ObjectId)>,
    pub next: Option<ObjectId>,
}

impl Persistent for ListNode {
    impl_persistent_boilerplate!(CLASS_LIST_NODE);
    fn pickle(&self, w: &mut Pickler) {
        w.u32(self.entries.len() as u32);
        for (key, id) in &self.entries {
            key.pickle(w);
            w.object_id(*id);
        }
        w.option(&self.next, |w, id| w.object_id(*id));
    }
}

pub(crate) fn unpickle_node(
    r: &mut Unpickler,
) -> std::result::Result<Box<dyn Persistent>, PickleError> {
    let n = r.u32()? as usize;
    if n > NODE_CAPACITY * 4 {
        return Err(PickleError(format!("implausible list node size {n}")));
    }
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let key = Key::unpickle(r)?;
        let id = r.object_id()?;
        entries.push((key, id));
    }
    let next = r.option(|r| r.object_id())?;
    Ok(Box::new(ListNode { entries, next }))
}

/// Create an empty list; the returned id is the *stable* head (the head
/// node is never replaced — spills go into a successor), so the index root
/// recorded in collection metadata never changes.
pub(crate) fn create(txn: &Transaction) -> Result<ObjectId> {
    Ok(txn.insert(Box::new(ListNode {
        entries: Vec::new(),
        next: None,
    }))?)
}

/// Append an entry.
pub(crate) fn insert(txn: &Transaction, head: ObjectId, key: Key, oid: ObjectId) -> Result<()> {
    let head_ref = txn.open_writable::<ListNode>(head)?;
    let mut node = head_ref.get_mut();
    if node.entries.len() >= NODE_CAPACITY {
        // Spill: move the head's entries into a new second node.
        let spilled = ListNode {
            entries: std::mem::take(&mut node.entries),
            next: node.next.take(),
        };
        drop(node);
        let spill_id = txn.insert(Box::new(spilled))?;
        let mut node = head_ref.get_mut();
        node.next = Some(spill_id);
        node.entries.push((key, oid));
    } else {
        node.entries.push((key, oid));
    }
    Ok(())
}

/// Remove an entry; linear scan. Returns whether it was present.
pub(crate) fn remove(txn: &Transaction, head: ObjectId, key: &Key, oid: ObjectId) -> Result<bool> {
    let mut node_id = Some(head);
    while let Some(id) = node_id {
        let node_ref = txn.open_readonly::<ListNode>(id)?;
        let (has, next) = {
            let node = node_ref.get();
            (
                node.entries.iter().any(|(k, i)| k == key && *i == oid),
                node.next,
            )
        };
        if has {
            let node_ref = txn.open_writable::<ListNode>(id)?;
            let mut node = node_ref.get_mut();
            let before = node.entries.len();
            node.entries.retain(|(k, i)| !(k == key && *i == oid));
            return Ok(node.entries.len() < before);
        }
        node_id = next;
    }
    Ok(false)
}

/// All ids with this exact key (linear).
pub(crate) fn lookup(
    reader: &impl ObjectReader,
    head: ObjectId,
    key: &Key,
) -> Result<Vec<ObjectId>> {
    let mut out = Vec::new();
    let mut node_id = Some(head);
    while let Some(id) = node_id {
        let next = reader.with_object::<ListNode, _>(id, |node| {
            out.extend(
                node.entries
                    .iter()
                    .filter(|(k, _)| k == key)
                    .map(|(_, i)| *i),
            );
            node.next
        })?;
        node_id = next;
    }
    out.sort_unstable();
    Ok(out)
}

/// Every entry, newest-first within the head then older nodes.
pub(crate) fn scan(reader: &impl ObjectReader, head: ObjectId) -> Result<Vec<(Key, ObjectId)>> {
    let mut out = Vec::new();
    let mut node_id = Some(head);
    while let Some(id) = node_id {
        let next = reader.with_object::<ListNode, _>(id, |node| {
            out.extend(node.entries.iter().cloned());
            node.next
        })?;
        node_id = next;
    }
    Ok(out)
}

/// Delete the whole list.
pub(crate) fn destroy(txn: &Transaction, head: ObjectId) -> Result<()> {
    let mut node_id = Some(head);
    while let Some(id) = node_id {
        let next = {
            let node_ref = txn.open_readonly::<ListNode>(id)?;
            let next = node_ref.get().next;
            next
        };
        txn.remove(id)?;
        node_id = next;
    }
    Ok(())
}
