//! Insensitive iterators (paper §5.2.2).
//!
//! The four constraints that together guarantee insensitivity:
//!
//! 1. writable references to collection objects exist *only* through an
//!    iterator ([`CIter::write`]) — `CTransaction` exposes no direct way;
//! 2. a writable dereference requires that no *other* iterator is open on
//!    the same collection ([`CollectionError::IteratorConflict`]);
//! 3. iterators advance in one direction only ([`CIter::next`]);
//! 4. index maintenance is deferred until [`CIter::close`] — which is what
//!    prevents the Halloween syndrome: updating the key an iterator
//!    traverses by cannot re-present objects, because the traversal id-set
//!    was fixed when the query ran.
//!
//! The pre-update key snapshot of every object dereferenced writable is
//! recorded *before* the application can touch it; `close` compares it with
//! keys recomputed from the cached object version, "which trades off extra
//! storage overhead for better performance" compared to re-reading the old
//! chunk (§5.2.3).

use crate::collection::{self, key_snapshot, load_metas};
use crate::ctxn::CTransaction;
use crate::error::{CollectionError, Result};
use crate::key::Key;
use crate::ObjectId;
use object_store::{Persistent, ReadonlyRef, WritableRef};

/// An insensitive iterator over a query result set.
pub struct CIter<'t> {
    ct: &'t CTransaction,
    coll: ObjectId,
    coll_name: String,
    collection_writable: bool,
    ids: Vec<ObjectId>,
    pos: usize,
    /// Pre-update key snapshots, recorded at first writable deref
    /// (`None` per index whose keys are declared immutable, §5.2.3).
    writes: Vec<(ObjectId, Vec<Option<Key>>)>,
    /// Objects marked for deletion, with their full key snapshots.
    deletes: Vec<(ObjectId, Vec<Option<Key>>)>,
    closed: bool,
}

impl<'t> CIter<'t> {
    pub(crate) fn new(
        ct: &'t CTransaction,
        coll: ObjectId,
        coll_name: String,
        collection_writable: bool,
        ids: Vec<ObjectId>,
    ) -> Self {
        ct.register_iter(coll);
        CIter {
            ct,
            coll,
            coll_name,
            collection_writable,
            ids,
            pos: 0,
            writes: Vec::new(),
            deletes: Vec::new(),
            closed: false,
        }
    }

    /// Whether the iterator is past the last object (paper: `end()`).
    pub fn end(&self) -> bool {
        self.pos >= self.ids.len()
    }

    /// Number of objects in the (frozen) result set.
    pub fn result_len(&self) -> usize {
        self.ids.len()
    }

    /// Advance to the next object (paper: `next()`; unidirectional —
    /// constraint 3).
    pub fn next(&mut self) {
        if self.pos < self.ids.len() {
            self.pos += 1;
        }
    }

    /// Id of the current object.
    pub fn current(&self) -> Option<ObjectId> {
        self.ids.get(self.pos).copied()
    }

    fn current_or_end(&self) -> Result<ObjectId> {
        self.current().ok_or(CollectionError::Object(
            object_store::ObjectStoreError::NotFound(ObjectId(u64::MAX)),
        ))
    }

    /// Dereference the current object read-only (paper: `read()`).
    pub fn read<T: Persistent>(&self) -> Result<ReadonlyRef<T>> {
        let oid = self.current_or_end()?;
        Ok(self.ct.txn.open_readonly::<T>(oid)?)
    }

    /// Dereference the current object writable (paper: `write()`).
    /// Requires a writable collection handle and — constraint 2 — that
    /// this is the only open iterator on the collection. Records the
    /// pre-update key snapshot on first writable access.
    pub fn write<T: Persistent>(&mut self) -> Result<WritableRef<T>> {
        if !self.collection_writable {
            return Err(CollectionError::ReadOnlyCollection(self.coll_name.clone()));
        }
        if self.ct.open_iters_on(self.coll) != 1 {
            return Err(CollectionError::IteratorConflict);
        }
        let oid = self.current_or_end()?;
        // Take the exclusive lock *before* snapshotting keys: snapshotting
        // first would read the object under a shared lock and then upgrade,
        // and two transactions doing that to the same object deadlock
        // (each waits for the other's shared lock to drain). The object is
        // unmodified until the caller mutates it through the returned ref,
        // so the snapshot still captures the pre-update keys.
        let wref = self.ct.txn.open_writable::<T>(oid)?;
        if !self.writes.iter().any(|(o, _)| *o == oid) {
            let metas = load_metas(self.ct, self.coll)?;
            let pre = key_snapshot(self.ct, &self.coll_name, &metas, oid, false)?;
            self.writes.push((oid, pre));
        }
        Ok(wref)
    }

    /// Delete the currently enumerated object from the collection (and the
    /// object store), deferred to close like any other index maintenance.
    pub fn delete(&mut self) -> Result<()> {
        if !self.collection_writable {
            return Err(CollectionError::ReadOnlyCollection(self.coll_name.clone()));
        }
        if self.ct.open_iters_on(self.coll) != 1 {
            return Err(CollectionError::IteratorConflict);
        }
        let oid = self.current_or_end()?;
        if !self.deletes.iter().any(|(o, _)| *o == oid) {
            let metas = load_metas(self.ct, self.coll)?;
            let keys = key_snapshot(self.ct, &self.coll_name, &metas, oid, true)?;
            self.deletes.push((oid, keys));
        }
        Ok(())
    }

    /// Close the iterator, performing all deferred index maintenance
    /// (§5.2.3). May return [`CollectionError::UniquenessViolation`]
    /// listing objects that were removed from the collection because their
    /// updates created duplicate keys in unique indexes.
    pub fn close(mut self) -> Result<()> {
        self.closed = true;
        self.ct.unregister_iter(self.coll);
        let writes = std::mem::take(&mut self.writes);
        let deletes = std::mem::take(&mut self.deletes);
        if writes.is_empty() && deletes.is_empty() {
            return Ok(());
        }
        collection::maintain(self.ct, self.coll, &self.coll_name, writes, deletes)
    }
}

impl Drop for CIter<'_> {
    fn drop(&mut self) {
        if !self.closed {
            self.closed = true;
            self.ct.unregister_iter(self.coll);
            let writes = std::mem::take(&mut self.writes);
            let deletes = std::mem::take(&mut self.deletes);
            if !writes.is_empty() || !deletes.is_empty() {
                // Maintenance must still happen for index consistency; use
                // `close()` instead of dropping to observe errors
                // (uniqueness violations are lost here).
                let _ = collection::maintain(self.ct, self.coll, &self.coll_name, writes, deletes);
            }
        }
    }
}
