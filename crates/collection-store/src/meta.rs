//! Internal persistent metadata objects: the collection directory and the
//! `Collection` objects themselves.
//!
//! "The Collection class is a subclass of the Object class" (§5.1.2) — a
//! collection is just another persistent object, stored through the object
//! store like everything else, so it inherits transactional atomicity and
//! tamper protection for free.

use crate::error::Result;
use crate::ObjectId;
use object_store::{
    impl_persistent_boilerplate, ClassRegistry, Persistent, PickleError, Pickler, Unpickler,
};

/// Class ids reserved by the collection store (top byte 0xTD-ish to keep
/// clear of application ids).
pub(crate) const CLASS_DIRECTORY: u32 = 0x7DB0_0001;
pub(crate) const CLASS_COLLECTION: u32 = 0x7DB0_0002;
pub(crate) const CLASS_BTREE_NODE: u32 = 0x7DB0_0003;
pub(crate) const CLASS_HASH_DIR: u32 = 0x7DB0_0004;
pub(crate) const CLASS_HASH_BUCKET: u32 = 0x7DB0_0005;
pub(crate) const CLASS_LIST_NODE: u32 = 0x7DB0_0006;
pub(crate) const CLASS_HASH_SEG: u32 = 0x7DB0_0007;

/// The root name under which the collection directory is registered.
pub(crate) const DIRECTORY_ROOT: &str = "tdb.collections";

/// How an index is implemented (paper §5.2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Ordered B-tree: scan, exact-match, and range queries.
    BTree,
    /// Dynamic hash table (Larson linear hashing): scan and exact-match.
    Hash,
    /// Unordered list: scan and exact-match (linear).
    List,
}

impl IndexKind {
    fn tag(self) -> u8 {
        match self {
            IndexKind::BTree => 0,
            IndexKind::Hash => 1,
            IndexKind::List => 2,
        }
    }

    #[cfg_attr(not(test), allow(dead_code))]
    fn from_tag(t: u8) -> Result<Self> {
        match t {
            0 => Ok(IndexKind::BTree),
            1 => Ok(IndexKind::Hash),
            2 => Ok(IndexKind::List),
            other => Err(crate::CollectionError::Object(
                object_store::ObjectStoreError::Unpickle(PickleError(format!(
                    "unknown index kind tag {other}"
                ))),
            )),
        }
    }
}

/// Declaration of an index: the Rust analog of constructing a paper
/// `Indexer<SchemaClass, KeyClass, extractor>` (§5.1.2). The `extractor`
/// names a function in the [`ExtractorRegistry`](crate::ExtractorRegistry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexSpec {
    /// Index name, unique within the collection.
    pub name: String,
    /// Registered extractor function name.
    pub extractor: String,
    /// Enforce key uniqueness.
    pub unique: bool,
    /// Implementation.
    pub kind: IndexKind,
    /// The application declares this index's keys never change once an
    /// object is in the collection. The collection store then skips
    /// recording them in iterator key snapshots and skips their deferred
    /// maintenance — the paper's own optimization: "it is possible to
    /// reduce the extra storage overhead by allowing applications to
    /// declare index keys as immutable and forego recording of those keys
    /// in the snapshot" (§5.2.3). Mutating a declared-immutable key is an
    /// application contract violation: the index keeps the stale key.
    pub immutable: bool,
}

impl IndexSpec {
    /// Convenience constructor (mutable keys).
    pub fn new(name: &str, extractor: &str, unique: bool, kind: IndexKind) -> Self {
        IndexSpec {
            name: name.to_string(),
            extractor: extractor.to_string(),
            unique,
            kind,
            immutable: false,
        }
    }

    /// Declare this index's keys immutable (see the field docs).
    pub fn immutable(mut self) -> Self {
        self.immutable = true;
        self
    }

    fn pickle(&self, w: &mut Pickler) {
        w.string(&self.name);
        w.string(&self.extractor);
        w.bool(self.unique);
        w.u8(self.kind.tag());
        w.bool(self.immutable);
    }

    fn unpickle(r: &mut Unpickler) -> std::result::Result<Self, PickleError> {
        Ok(IndexSpec {
            name: r.string()?,
            extractor: r.string()?,
            unique: r.bool()?,
            kind: match r.u8()? {
                0 => IndexKind::BTree,
                1 => IndexKind::Hash,
                2 => IndexKind::List,
                other => return Err(PickleError(format!("unknown index kind tag {other}"))),
            },
            immutable: r.bool()?,
        })
    }
}

/// Persistent per-index metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct IndexMeta {
    pub spec: IndexSpec,
    /// Root object of the index structure.
    pub root: ObjectId,
}

/// The persistent `Collection` object (§5.1.2).
pub(crate) struct CollectionObj {
    pub name: String,
    pub indexes: Vec<IndexMeta>,
    /// Number of member objects.
    pub count: u64,
}

impl Persistent for CollectionObj {
    impl_persistent_boilerplate!(CLASS_COLLECTION);
    fn pickle(&self, w: &mut Pickler) {
        w.string(&self.name);
        w.u32(self.indexes.len() as u32);
        for meta in &self.indexes {
            meta.spec.pickle(w);
            w.object_id(meta.root);
        }
        w.u64(self.count);
    }
}

pub(crate) fn unpickle_collection(
    r: &mut Unpickler,
) -> std::result::Result<Box<dyn Persistent>, PickleError> {
    let name = r.string()?;
    let n = r.u32()? as usize;
    if n > 4096 {
        return Err(PickleError(format!("implausible index count {n}")));
    }
    let mut indexes = Vec::with_capacity(n);
    for _ in 0..n {
        let spec = IndexSpec::unpickle(r)?;
        let root = r.object_id()?;
        indexes.push(IndexMeta { spec, root });
    }
    let count = r.u64()?;
    Ok(Box::new(CollectionObj {
        name,
        indexes,
        count,
    }))
}

/// The persistent name → collection-object directory.
pub(crate) struct DirectoryObj {
    pub entries: Vec<(String, ObjectId)>,
}

impl DirectoryObj {
    pub fn get(&self, name: &str) -> Option<ObjectId> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, id)| *id)
    }
}

impl Persistent for DirectoryObj {
    impl_persistent_boilerplate!(CLASS_DIRECTORY);
    fn pickle(&self, w: &mut Pickler) {
        w.u32(self.entries.len() as u32);
        for (name, id) in &self.entries {
            w.string(name);
            w.object_id(*id);
        }
    }
}

pub(crate) fn unpickle_directory(
    r: &mut Unpickler,
) -> std::result::Result<Box<dyn Persistent>, PickleError> {
    let n = r.u32()? as usize;
    if n > 1_000_000 {
        return Err(PickleError(format!("implausible directory size {n}")));
    }
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.string()?;
        let id = r.object_id()?;
        entries.push((name, id));
    }
    Ok(Box::new(DirectoryObj { entries }))
}

/// Register every internal class the collection store stores through the
/// object store.
pub fn register_internal_classes(registry: &mut ClassRegistry) {
    registry.register(CLASS_DIRECTORY, "tdb.Directory", unpickle_directory);
    registry.register(CLASS_COLLECTION, "tdb.Collection", unpickle_collection);
    registry.register(
        CLASS_BTREE_NODE,
        "tdb.BTreeNode",
        crate::btree::unpickle_node,
    );
    registry.register(
        CLASS_HASH_DIR,
        "tdb.HashDirectory",
        crate::dynhash::unpickle_dir,
    );
    registry.register(
        CLASS_HASH_BUCKET,
        "tdb.HashBucket",
        crate::dynhash::unpickle_bucket,
    );
    registry.register(
        CLASS_HASH_SEG,
        "tdb.HashSegment",
        crate::dynhash::unpickle_seg,
    );
    registry.register(
        CLASS_LIST_NODE,
        "tdb.ListNode",
        crate::listindex::unpickle_node,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use object_store::Unpickler;

    #[test]
    fn collection_obj_pickle_roundtrip() {
        let obj = CollectionObj {
            name: "profile".into(),
            indexes: vec![
                IndexMeta {
                    spec: IndexSpec::new("by-id", "meter.id", true, IndexKind::Hash),
                    root: ObjectId(9),
                },
                IndexMeta {
                    spec: IndexSpec::new("by-count", "meter.count", false, IndexKind::BTree),
                    root: ObjectId(12),
                },
            ],
            count: 77,
        };
        let bytes = {
            let mut w = Pickler::new();
            obj.pickle(&mut w);
            w.into_bytes()
        };
        let mut r = Unpickler::new(&bytes);
        let parsed = unpickle_collection(&mut r).unwrap();
        r.finish().unwrap();
        let parsed = parsed.as_any().downcast_ref::<CollectionObj>().unwrap();
        assert_eq!(parsed.name, "profile");
        assert_eq!(parsed.indexes, obj.indexes);
        assert_eq!(parsed.count, 77);
    }

    #[test]
    fn directory_pickle_roundtrip_and_lookup() {
        let dir = DirectoryObj {
            entries: vec![("a".into(), ObjectId(1)), ("b".into(), ObjectId(2))],
        };
        let bytes = {
            let mut w = Pickler::new();
            dir.pickle(&mut w);
            w.into_bytes()
        };
        let mut r = Unpickler::new(&bytes);
        let parsed = unpickle_directory(&mut r).unwrap();
        let parsed = parsed.as_any().downcast_ref::<DirectoryObj>().unwrap();
        assert_eq!(parsed.get("a"), Some(ObjectId(1)));
        assert_eq!(parsed.get("c"), None);
    }

    #[test]
    fn index_kind_tags_roundtrip() {
        for kind in [IndexKind::BTree, IndexKind::Hash, IndexKind::List] {
            assert_eq!(IndexKind::from_tag(kind.tag()).unwrap(), kind);
        }
        assert!(IndexKind::from_tag(9).is_err());
    }
}
