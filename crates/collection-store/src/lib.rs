//! The TDB **collection store** (paper §5): keyed access to collections of
//! objects with automatically maintained functional indexes.
//!
//! * A **collection** is a set of persistent objects sharing one or more
//!   indexes. Collections are created, looked up, and removed by name
//!   through a [`CTransaction`] (paper Fig. 5).
//! * Indexes are **functional** (§5.1.1): keys are produced by a registered
//!   pure *extractor function* applied to the object, so keys can be
//!   variable-sized or derived values — not field offsets. Index
//!   implementations: **B-tree**, **dynamic hash table** (Larson linear
//!   hashing \[20\]), and **list** (§5.2.4). Indexes can be added and removed
//!   dynamically, with uniqueness enforced.
//! * Queries — scan, exact-match, range (paper Fig. 6) — return
//!   **insensitive iterators** (§5.2.2): the result set is fixed when the
//!   query runs, writable access to collection objects is *only* available
//!   by dereferencing an iterator, and index maintenance is deferred until
//!   the iterator closes, which structurally rules out the Halloween
//!   syndrome. Updates that would break a unique index are resolved as the
//!   paper specifies: the offending objects are removed from the collection
//!   and reported in the error so the application can re-integrate them
//!   (§5.2.3).
//!
//! See `tests/collection_tests.rs` for the paper's Figure 7 scenario
//! reproduced end to end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod btree;
pub mod collection;
pub mod ctxn;
pub mod dynhash;
pub mod error;
pub mod extractor;
pub mod iterator;
pub mod key;
pub mod listindex;
pub mod meta;
pub mod read;
pub mod store;

pub use collection::Collection;
pub use ctxn::CTransaction;
pub use error::{CollectionError, Result};
pub use extractor::{ExtractorFn, ExtractorRegistry};
pub use iterator::CIter;
pub use key::Key;
pub use meta::{IndexKind, IndexSpec};
pub use read::{ProvenLookup, ReadCTransaction, ReadCollection};
pub use store::CollectionStore;

pub use object_store::{ChunkId as ObjectId, Durability, Persistent, Pickler, Unpickler};
