//! Read-only collection access over a snapshot (see
//! [`CollectionStore::begin_read`](crate::CollectionStore::begin_read)).
//!
//! A [`ReadCTransaction`] wraps an object-store
//! [`ReadTransaction`](object_store::ReadTransaction): every lookup and
//! scan runs against the pinned snapshot, takes **no** 2PL locks, and is
//! *stable by construction* — the snapshot is immutable, so iteration over
//! query results cannot observe concurrent commits, index splits, or log
//! cleaning. That is a stronger form of the paper's iterator insensitivity
//! (§5.2.2), obtained structurally instead of via deferred maintenance.

use crate::btree;
use crate::ctxn::IndexCounters;
use crate::dynhash;
use crate::error::{CollectionError, Result};
use crate::key::Key;
use crate::listindex;
use crate::meta::{CollectionObj, DirectoryObj, IndexKind, IndexMeta, DIRECTORY_ROOT};
use crate::ObjectId;
use object_store::{Persistent, ReadTransaction};
use std::ops::Bound;
use std::sync::Arc;

/// A read-only collection-store transaction pinned to a snapshot.
pub struct ReadCTransaction {
    pub(crate) rtxn: ReadTransaction,
    pub(crate) obs: Arc<IndexCounters>,
}

impl ReadCTransaction {
    pub(crate) fn new(rtxn: ReadTransaction, obs: Arc<IndexCounters>) -> Self {
        ReadCTransaction { rtxn, obs }
    }

    /// The chunk-store commit sequence this reader observes.
    pub fn commit_seq(&self) -> u64 {
        self.rtxn.commit_seq()
    }

    /// The wrapped object-store read transaction (for direct typed reads
    /// alongside collection queries).
    pub fn object_reader(&self) -> &ReadTransaction {
        &self.rtxn
    }

    /// Read a named root object id as of the snapshot.
    pub fn root(&self, name: &str) -> Option<ObjectId> {
        self.rtxn.root(name)
    }

    /// Apply `f` to a member object downcast to `T`.
    pub fn read<T: Persistent, R>(&self, oid: ObjectId, f: impl FnOnce(&T) -> R) -> Result<R> {
        self.rtxn.read(oid, f).map_err(CollectionError::from)
    }

    /// End the transaction, releasing the snapshot pin (same as dropping).
    pub fn finish(self) {}

    fn directory_id(&self) -> Result<ObjectId> {
        self.rtxn
            .root(DIRECTORY_ROOT)
            .ok_or_else(|| CollectionError::NoSuchCollection("<directory missing>".into()))
    }

    /// Names of all collections as of the snapshot.
    pub fn collection_names(&self) -> Result<Vec<String>> {
        let dir_id = self.directory_id()?;
        let mut names = self.rtxn.read::<DirectoryObj, _>(dir_id, |dir| {
            dir.entries
                .iter()
                .map(|(n, _)| n.clone())
                .collect::<Vec<_>>()
        })?;
        names.sort();
        Ok(names)
    }

    /// Handle to a collection as of the snapshot.
    pub fn read_collection(&self, name: &str) -> Result<ReadCollection<'_>> {
        let dir_id = self.directory_id()?;
        let found = self
            .rtxn
            .read::<DirectoryObj, _>(dir_id, |dir| dir.get(name))?;
        let oid = found.ok_or_else(|| CollectionError::NoSuchCollection(name.to_string()))?;
        Ok(ReadCollection {
            rt: self,
            oid,
            name: name.to_string(),
        })
    }
}

/// A read-only handle to one collection within a [`ReadCTransaction`].
///
/// Queries return materialized results (ids or `(key, id)` entries); member
/// objects are read through [`get`](ReadCollection::get) /
/// [`ReadCTransaction::read`]. There is no iterator-close maintenance step:
/// nothing can be written, and the result set is stable because the whole
/// snapshot is.
pub struct ReadCollection<'t> {
    rt: &'t ReadCTransaction,
    oid: ObjectId,
    name: String,
}

impl ReadCollection<'_> {
    /// Collection name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Object id of the collection object itself.
    pub fn id(&self) -> ObjectId {
        self.oid
    }

    fn metas(&self) -> Result<Vec<IndexMeta>> {
        Ok(self
            .rt
            .rtxn
            .read::<CollectionObj, _>(self.oid, |c| c.indexes.clone())?)
    }

    fn meta_named(&self, index: &str) -> Result<IndexMeta> {
        self.metas()?
            .into_iter()
            .find(|m| m.spec.name == index)
            .ok_or_else(|| CollectionError::NoSuchIndex(index.to_string()))
    }

    /// Names of the indexes on this collection.
    pub fn index_names(&self) -> Result<Vec<String>> {
        Ok(self.metas()?.into_iter().map(|m| m.spec.name).collect())
    }

    /// Number of member objects (counted via the first index).
    pub fn len(&self) -> Result<u64> {
        let metas = self.metas()?;
        let reader = &self.rt.rtxn;
        match metas[0].spec.kind {
            IndexKind::BTree => Ok(btree::count(reader, metas[0].root)?),
            IndexKind::Hash => Ok(dynhash::scan(reader, metas[0].root)?.len() as u64),
            IndexKind::List => Ok(listindex::scan(reader, metas[0].root)?.len() as u64),
        }
    }

    /// Whether the collection has no members.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Every `(key, id)` entry of `index`, in its natural order.
    pub fn scan(&self, index: &str) -> Result<Vec<(Key, ObjectId)>> {
        self.rt.obs.scans.inc();
        let meta = self.meta_named(index)?;
        let reader = &self.rt.rtxn;
        Ok(match meta.spec.kind {
            IndexKind::BTree => btree::scan(reader, meta.root)?,
            IndexKind::Hash => dynhash::scan(reader, meta.root)?,
            IndexKind::List => listindex::scan(reader, meta.root)?,
        })
    }

    /// Ids of members whose `index` key equals `key`.
    pub fn exact(&self, index: &str, key: &Key) -> Result<Vec<ObjectId>> {
        self.rt.obs.lookups.inc();
        let meta = self.meta_named(index)?;
        let reader = &self.rt.rtxn;
        Ok(match meta.spec.kind {
            IndexKind::BTree => btree::lookup(reader, meta.root, key)?,
            IndexKind::Hash => dynhash::lookup(reader, meta.root, key)?,
            IndexKind::List => listindex::lookup(reader, meta.root, key)?,
        })
    }

    /// Range query over an ordered (B-tree) index.
    pub fn range(
        &self,
        index: &str,
        min: Bound<&Key>,
        max: Bound<&Key>,
    ) -> Result<Vec<(Key, ObjectId)>> {
        self.rt.obs.lookups.inc();
        let meta = self.meta_named(index)?;
        match meta.spec.kind {
            IndexKind::BTree => Ok(btree::range(&self.rt.rtxn, meta.root, min, max)?),
            IndexKind::Hash | IndexKind::List => Err(CollectionError::UnsupportedQuery {
                index: index.to_string(),
                what: "range queries",
            }),
        }
    }

    /// Apply `f` to a member object downcast to `T`.
    pub fn get<T: Persistent, R>(&self, oid: ObjectId, f: impl FnOnce(&T) -> R) -> Result<R> {
        self.rt.read(oid, f)
    }

    /// Proof-carrying exact lookup: the ids whose `index` key equals
    /// `key`, together with a keyed (non-)membership proof over the whole
    /// index as of the snapshot. An empty result is **provably** empty —
    /// the proof brackets the miss between the two adjacent committed
    /// keys. Verify with
    /// [`Verifier::verify_keyed`](tdb_proof::Verifier::verify_keyed)
    /// against the store's trust anchor; the verifier returns exactly the
    /// ids in [`ProvenLookup::entries`].
    ///
    /// Works on any index kind: the proof commits the index's full entry
    /// set sorted by [`Key::encode_ordered`], regardless of how the index
    /// organizes lookups internally. Cost is a full index scan at the
    /// snapshot — this is an audit-grade read, not a fast path.
    pub fn exact_proven(&self, index: &str, key: &Key) -> Result<ProvenLookup> {
        let lo = key.encode_ordered();
        let hi = tdb_proof::key_successor(&lo);
        self.proven_lookup(index, lo, Some(hi))
    }

    /// Proof-carrying range query over an ordered (B-tree) index; see
    /// [`exact_proven`](ReadCollection::exact_proven). All [`Bound`]
    /// forms are supported — they map exactly onto the proof's half-open
    /// encoded-key range.
    pub fn range_proven(
        &self,
        index: &str,
        min: Bound<&Key>,
        max: Bound<&Key>,
    ) -> Result<ProvenLookup> {
        let meta = self.meta_named(index)?;
        if !matches!(meta.spec.kind, IndexKind::BTree) {
            return Err(CollectionError::UnsupportedQuery {
                index: index.to_string(),
                what: "range queries",
            });
        }
        let lo = match min {
            Bound::Included(k) => k.encode_ordered(),
            Bound::Excluded(k) => tdb_proof::key_successor(&k.encode_ordered()),
            Bound::Unbounded => Vec::new(),
        };
        let hi = match max {
            Bound::Included(k) => Some(tdb_proof::key_successor(&k.encode_ordered())),
            Bound::Excluded(k) => Some(k.encode_ordered()),
            Bound::Unbounded => None,
        };
        self.proven_lookup(index, lo, hi)
    }

    fn proven_lookup(&self, index: &str, lo: Vec<u8>, hi: Option<Vec<u8>>) -> Result<ProvenLookup> {
        self.rt.obs.lookups.inc();
        let meta = self.meta_named(index)?;
        let reader = &self.rt.rtxn;
        let all: Vec<(Key, ObjectId)> = match meta.spec.kind {
            IndexKind::BTree => btree::scan(reader, meta.root)?,
            IndexKind::Hash => dynhash::scan(reader, meta.root)?,
            IndexKind::List => listindex::scan(reader, meta.root)?,
        };
        let tree = tdb_proof::KeyedTree::build(
            all.iter()
                .map(|(k, id)| tdb_proof::KeyedEntry {
                    key: k.encode_ordered(),
                    id: id.0,
                })
                .collect(),
        );
        let scope = format!("{}/{}", self.name, index);
        let mut proof = tree.prove_range(&scope, &lo, hi.as_deref());
        proof.attestation = reader.keyed_attest(&scope, proof.total, &proof.root)?;
        // The matching entries, in the committed (encoded-key, id) order,
        // so they line up 1:1 with the ids the verifier returns.
        let mut entries: Vec<(Key, ObjectId)> = all
            .into_iter()
            .filter(|(k, _)| {
                let enc = k.encode_ordered();
                enc >= lo && hi.as_ref().is_none_or(|h| &enc < h)
            })
            .collect();
        entries.sort_by(|(ka, ia), (kb, ib)| ka.cmp(kb).then(ia.0.cmp(&ib.0)));
        Ok(ProvenLookup { entries, proof })
    }
}

/// The result of a proof-carrying index lookup
/// ([`ReadCollection::exact_proven`], [`ReadCollection::range_proven`]):
/// the matching entries plus the keyed proof that this is the **complete**
/// answer as of the snapshot — including the non-membership case, where
/// `entries` is empty and the proof brackets the queried range.
pub struct ProvenLookup {
    /// Matching `(key, id)` entries in committed order (sorted by the
    /// order-preserving key encoding, ties by id).
    pub entries: Vec<(Key, ObjectId)>,
    /// The self-contained proof; the snapshot's counter value and commit
    /// sequence are bound inside its attestation.
    pub proof: tdb_proof::KeyedProof,
}
