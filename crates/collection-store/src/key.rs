//! Index keys.
//!
//! The paper's index keys are arbitrary C++ classes behind a `GenericKey`
//! superclass with polymorphic comparison and hashing (§5.2.1). The Rust
//! adaptation is a closed [`Key`] value type with total ordering, a *stable*
//! hash (FNV-1a over the pickled form — never `std`'s unstable default
//! hasher, since hash buckets persist across program versions), and native
//! pickling. Functional extractors (§5.1.1) return `Key`s, so keys can be
//! variable-sized (strings, byte strings) or composite/derived values.

use object_store::{PickleError, Pickler, Unpickler};
use std::cmp::Ordering;

/// An index key value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Key {
    /// Signed integer key.
    I64(i64),
    /// Unsigned integer key.
    U64(u64),
    /// String key (ordered lexicographically by UTF-8 bytes).
    Str(String),
    /// Raw byte-string key.
    Bytes(Vec<u8>),
    /// Composite key: ordered field-by-field (lexicographic over parts).
    Composite(Vec<Key>),
}

impl Key {
    /// Convenience constructor for string keys.
    pub fn str(s: impl Into<String>) -> Key {
        Key::Str(s.into())
    }

    fn rank(&self) -> u8 {
        match self {
            Key::I64(_) => 0,
            Key::U64(_) => 1,
            Key::Str(_) => 2,
            Key::Bytes(_) => 3,
            Key::Composite(_) => 4,
        }
    }

    /// Stable FNV-1a hash of the pickled key. Used by the dynamic hash
    /// index, whose bucket assignment persists on disk.
    pub fn stable_hash(&self) -> u64 {
        let mut w = Pickler::new();
        self.pickle(&mut w);
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in w.into_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Order-preserving byte encoding: for any two keys `a`, `b`,
    /// `a < b` ⟺ `a.encode_ordered() < b.encode_ordered()`
    /// (lexicographically). Proof-carrying lookups commit an index's
    /// entries to a [`tdb_proof::KeyedTree`] sorted by these bytes, so a
    /// non-membership bracket in byte order is a bracket in `Key` order.
    ///
    /// The pickled form ([`Key::pickle`]) is **not** order-preserving —
    /// little-endian integers and length prefixes both break lexicographic
    /// order — hence this separate encoding: rank byte (matching the
    /// cross-variant ordering), then a big-endian sign-flipped integer,
    /// raw string/byte payload, or escape-terminated composite parts.
    pub fn encode_ordered(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_ordered_into(&mut out);
        out
    }

    fn encode_ordered_into(&self, out: &mut Vec<u8>) {
        out.push(self.rank());
        match self {
            // Flipping the sign bit maps i64 order onto u64 order; big
            // endian then makes byte order match numeric order.
            Key::I64(v) => out.extend_from_slice(&((*v as u64) ^ (1 << 63)).to_be_bytes()),
            Key::U64(v) => out.extend_from_slice(&v.to_be_bytes()),
            Key::Str(s) => out.extend_from_slice(s.as_bytes()),
            Key::Bytes(b) => out.extend_from_slice(b),
            Key::Composite(parts) => {
                // Each part is escaped (0x00 -> 0x00 0xFF) and terminated
                // with 0x00 0x00, so part boundaries never bleed and a
                // composite that is a strict prefix of another sorts first
                // (the terminator is below every escaped content byte).
                for p in parts {
                    let mut enc = Vec::new();
                    p.encode_ordered_into(&mut enc);
                    for byte in enc {
                        if byte == 0 {
                            out.extend_from_slice(&[0x00, 0xFF]);
                        } else {
                            out.push(byte);
                        }
                    }
                    out.extend_from_slice(&[0x00, 0x00]);
                }
            }
        }
    }

    /// Serialize into a pickler (variant tag + payload).
    pub fn pickle(&self, w: &mut Pickler) {
        match self {
            Key::I64(v) => {
                w.u8(0);
                w.i64(*v);
            }
            Key::U64(v) => {
                w.u8(1);
                w.u64(*v);
            }
            Key::Str(s) => {
                w.u8(2);
                w.string(s);
            }
            Key::Bytes(b) => {
                w.u8(3);
                w.bytes(b);
            }
            Key::Composite(parts) => {
                w.u8(4);
                w.u32(parts.len() as u32);
                for p in parts {
                    p.pickle(w);
                }
            }
        }
    }

    /// Deserialize from an unpickler.
    pub fn unpickle(r: &mut Unpickler) -> Result<Key, PickleError> {
        match r.u8()? {
            0 => Ok(Key::I64(r.i64()?)),
            1 => Ok(Key::U64(r.u64()?)),
            2 => Ok(Key::Str(r.string()?)),
            3 => Ok(Key::Bytes(r.bytes()?.to_vec())),
            4 => {
                let n = r.u32()? as usize;
                if n > 1024 {
                    return Err(PickleError(format!("implausible composite key arity {n}")));
                }
                let mut parts = Vec::with_capacity(n);
                for _ in 0..n {
                    parts.push(Key::unpickle(r)?);
                }
                Ok(Key::Composite(parts))
            }
            other => Err(PickleError(format!("unknown key tag {other}"))),
        }
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Key::I64(a), Key::I64(b)) => a.cmp(b),
            (Key::U64(a), Key::U64(b)) => a.cmp(b),
            (Key::Str(a), Key::Str(b)) => a.cmp(b),
            (Key::Bytes(a), Key::Bytes(b)) => a.cmp(b),
            (Key::Composite(a), Key::Composite(b)) => a.cmp(b),
            // Cross-variant: order by variant rank; a well-formed index
            // only ever holds one variant, but ordering stays total.
            (a, b) => a.rank().cmp(&b.rank()),
        }
    }
}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl From<i64> for Key {
    fn from(v: i64) -> Key {
        Key::I64(v)
    }
}

impl From<i32> for Key {
    fn from(v: i32) -> Key {
        Key::I64(v as i64)
    }
}

impl From<u64> for Key {
    fn from(v: u64) -> Key {
        Key::U64(v)
    }
}

impl From<u32> for Key {
    fn from(v: u32) -> Key {
        Key::U64(v as u64)
    }
}

impl From<&str> for Key {
    fn from(v: &str) -> Key {
        Key::Str(v.to_string())
    }
}

impl From<String> for Key {
    fn from(v: String) -> Key {
        Key::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_within_variants() {
        assert!(Key::I64(-5) < Key::I64(3));
        assert!(Key::U64(1) < Key::U64(2));
        assert!(Key::str("abc") < Key::str("abd"));
        assert!(Key::Bytes(vec![1]) < Key::Bytes(vec![1, 0]));
        assert!(
            Key::Composite(vec![Key::I64(1), Key::str("a")])
                < Key::Composite(vec![Key::I64(1), Key::str("b")])
        );
        assert!(Key::Composite(vec![Key::I64(1)]) < Key::Composite(vec![Key::I64(1), Key::I64(0)]));
    }

    #[test]
    fn cross_variant_ordering_is_total_and_consistent() {
        let keys = [
            Key::I64(9),
            Key::U64(1),
            Key::str("x"),
            Key::Bytes(vec![0]),
            Key::Composite(vec![]),
        ];
        for a in &keys {
            for b in &keys {
                let ab = a.cmp(b);
                let ba = b.cmp(a);
                assert_eq!(ab, ba.reverse());
            }
        }
        assert!(Key::I64(i64::MAX) < Key::U64(0), "variants ordered by rank");
    }

    #[test]
    fn pickle_roundtrip_all_variants() {
        let keys = [
            Key::I64(-42),
            Key::U64(u64::MAX),
            Key::str("héllo"),
            Key::Bytes(vec![0, 255, 3]),
            Key::Composite(vec![Key::I64(1), Key::Composite(vec![Key::str("nested")])]),
        ];
        for key in keys {
            let mut w = Pickler::new();
            key.pickle(&mut w);
            let bytes = w.into_bytes();
            let mut r = Unpickler::new(&bytes);
            assert_eq!(Key::unpickle(&mut r).unwrap(), key);
            r.finish().unwrap();
        }
    }

    #[test]
    fn unpickle_rejects_garbage() {
        let mut r = Unpickler::new(&[99]);
        assert!(Key::unpickle(&mut r).is_err());
        let mut r = Unpickler::new(&[0, 1, 2]);
        assert!(Key::unpickle(&mut r).is_err());
    }

    #[test]
    fn stable_hash_is_deterministic_and_spreads() {
        assert_eq!(Key::U64(7).stable_hash(), Key::U64(7).stable_hash());
        assert_ne!(Key::U64(7).stable_hash(), Key::U64(8).stable_hash());
        assert_ne!(Key::U64(7).stable_hash(), Key::I64(7).stable_hash());
        // Known value pins the function: changing it would corrupt every
        // existing on-disk hash index.
        assert_eq!(Key::U64(0).stable_hash(), {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in [1u8, 0, 0, 0, 0, 0, 0, 0, 0] {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            h
        });
    }

    #[test]
    fn encode_ordered_agrees_with_key_ordering() {
        // A deliberately adversarial set: sign boundaries, prefixes,
        // embedded zero bytes (the escape path), empty payloads, nesting,
        // and cross-variant pairs.
        let keys = [
            Key::I64(i64::MIN),
            Key::I64(-1),
            Key::I64(0),
            Key::I64(1),
            Key::I64(i64::MAX),
            Key::U64(0),
            Key::U64(255),
            Key::U64(256),
            Key::U64(u64::MAX),
            Key::str(""),
            Key::str("a"),
            Key::str("ab"),
            Key::str("abc"),
            Key::str("b"),
            Key::Bytes(vec![]),
            Key::Bytes(vec![0]),
            Key::Bytes(vec![0, 0]),
            Key::Bytes(vec![0, 1]),
            Key::Bytes(vec![1]),
            Key::Bytes(vec![1, 0]),
            Key::Composite(vec![]),
            Key::Composite(vec![Key::str("ab")]),
            Key::Composite(vec![Key::str("ab"), Key::I64(-7)]),
            Key::Composite(vec![Key::str("ab"), Key::I64(7)]),
            Key::Composite(vec![Key::str("abc")]),
            Key::Composite(vec![Key::Bytes(vec![0]), Key::U64(1)]),
            Key::Composite(vec![Key::Bytes(vec![0, 0])]),
            Key::Composite(vec![Key::Composite(vec![Key::str("x")])]),
        ];
        for a in &keys {
            for b in &keys {
                assert_eq!(
                    a.cmp(b),
                    a.encode_ordered().cmp(&b.encode_ordered()),
                    "order mismatch for {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn conversions() {
        assert_eq!(Key::from(3i32), Key::I64(3));
        assert_eq!(Key::from(3u32), Key::U64(3));
        assert_eq!(Key::from("s"), Key::str("s"));
    }
}
