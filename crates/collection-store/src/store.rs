//! The `CollectionStore`: the top of the TDB stack.

use crate::ctxn::{CTransaction, IndexCounters};
use crate::error::Result;
use crate::extractor::ExtractorRegistry;
use crate::meta::{register_internal_classes, DirectoryObj, DIRECTORY_ROOT};
use crate::read::ReadCTransaction;
use chunk_store::{ChunkStore, Durability, ShardedChunkStore};
use object_store::{ClassRegistry, ObjectStore, ObjectStoreConfig};
use std::sync::Arc;

/// The collection store. Owns the object store (and through it, the chunk
/// store) plus the application's extractor registry.
#[derive(Clone)]
pub struct CollectionStore {
    objects: ObjectStore,
    extractors: Arc<ExtractorRegistry>,
    obs: Arc<IndexCounters>,
}

impl CollectionStore {
    /// Create a collection store over a **fresh** chunk store. The
    /// collection store registers its internal classes (collection
    /// directory, collection objects, index nodes) into the application's
    /// class registry.
    pub fn create(
        chunks: Arc<ChunkStore>,
        classes: ClassRegistry,
        extractors: ExtractorRegistry,
        cfg: ObjectStoreConfig,
    ) -> Result<Self> {
        Self::create_sharded(
            Arc::new(ShardedChunkStore::from_single(chunks)),
            classes,
            extractors,
            cfg,
        )
    }

    /// Create a collection store over a fresh, possibly sharded chunk
    /// store.
    pub fn create_sharded(
        chunks: Arc<ShardedChunkStore>,
        mut classes: ClassRegistry,
        extractors: ExtractorRegistry,
        cfg: ObjectStoreConfig,
    ) -> Result<Self> {
        register_internal_classes(&mut classes);
        let objects = ObjectStore::create_sharded(chunks, classes, cfg)?;
        let txn = objects.begin();
        let dir = txn.insert(Box::new(DirectoryObj {
            entries: Vec::new(),
        }))?;
        txn.set_root(DIRECTORY_ROOT, dir)?;
        txn.commit(Durability::Durable)?;
        let obs = Arc::new(IndexCounters::with_registry(&objects.obs()));
        Ok(CollectionStore {
            objects,
            extractors: Arc::new(extractors),
            obs,
        })
    }

    /// Open an existing collection store.
    pub fn open(
        chunks: Arc<ChunkStore>,
        classes: ClassRegistry,
        extractors: ExtractorRegistry,
        cfg: ObjectStoreConfig,
    ) -> Result<Self> {
        Self::open_sharded(
            Arc::new(ShardedChunkStore::from_single(chunks)),
            classes,
            extractors,
            cfg,
        )
    }

    /// Open an existing collection store over a possibly sharded chunk
    /// store.
    pub fn open_sharded(
        chunks: Arc<ShardedChunkStore>,
        mut classes: ClassRegistry,
        extractors: ExtractorRegistry,
        cfg: ObjectStoreConfig,
    ) -> Result<Self> {
        register_internal_classes(&mut classes);
        let objects = ObjectStore::open_sharded(chunks, classes, cfg)?;
        let obs = Arc::new(IndexCounters::with_registry(&objects.obs()));
        Ok(CollectionStore {
            objects,
            extractors: Arc::new(extractors),
            obs,
        })
    }

    /// Start a collection-store transaction.
    pub fn begin(&self) -> CTransaction {
        CTransaction::new(
            self.objects.begin(),
            self.extractors.clone(),
            self.obs.clone(),
        )
    }

    /// Start a snapshot-isolated read-only transaction: collection lookups
    /// and scans against a pinned snapshot, with zero locks. Concurrent
    /// writers and the log cleaner do not affect what this reader sees.
    pub fn begin_read(&self) -> ReadCTransaction {
        ReadCTransaction::new(self.objects.begin_read(), self.obs.clone())
    }

    /// The underlying object store (for direct typed-object work alongside
    /// collections — e.g. registering application roots).
    pub fn object_store(&self) -> &ObjectStore {
        &self.objects
    }

    /// The underlying (sharded) chunk store (snapshots, backups, stats).
    pub fn chunk_store(&self) -> &Arc<ShardedChunkStore> {
        self.objects.chunk_store()
    }
}
