//! Collection-store transactions (paper Fig. 5).
//!
//! "Collection store applications are required to use the `CTransaction`
//! class which, unlike the `Transaction` class, does not provide methods to
//! directly create, update and delete objects" (§5.2.2, constraint 1) —
//! which is why the wrapped object-store transaction is crate-private:
//! writable references to collection objects can only be obtained by
//! dereferencing an iterator.
//!
//! Concurrency-wise a `CTransaction` is self-contained: the wrapped
//! object-store transaction carries its own chunk-level `WriteBatch`, so
//! collection mutations (objects, index nodes, directory updates) stage
//! privately and only meet other transactions at the log-tail append and
//! the shared group-commit round. A failed or aborted `CTransaction`
//! discards just its own staged writes.

use crate::collection::{self, Collection};
use crate::error::{CollectionError, Result};
use crate::extractor::ExtractorRegistry;
use crate::meta::{CollectionObj, DirectoryObj, IndexSpec, DIRECTORY_ROOT};
use crate::ObjectId;
use object_store::{Durability, Transaction};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;
use tdb_obs::{Counter, Registry};

/// Index-operation counters, registered as `index.*` in the stack's
/// observability registry. Resolved once per [`CollectionStore`] and shared
/// by every transaction, so incrementing is a single relaxed atomic add.
///
/// [`CollectionStore`]: crate::CollectionStore
pub(crate) struct IndexCounters {
    pub(crate) inserts: Counter,
    pub(crate) removes: Counter,
    pub(crate) lookups: Counter,
    pub(crate) scans: Counter,
    /// Objects processed by deferred index maintenance (§5.2.3).
    pub(crate) maintenance: Counter,
}

impl IndexCounters {
    pub(crate) fn with_registry(registry: &Registry) -> Self {
        IndexCounters {
            inserts: registry.counter("index.inserts"),
            removes: registry.counter("index.removes"),
            lookups: registry.counter("index.lookups"),
            scans: registry.counter("index.scans"),
            maintenance: registry.counter("index.maintenance"),
        }
    }
}

/// A collection-store transaction.
pub struct CTransaction {
    pub(crate) txn: Transaction,
    pub(crate) extractors: Arc<ExtractorRegistry>,
    /// Open iterators per collection (insensitivity constraint 2).
    pub(crate) iters: RefCell<HashMap<u64, usize>>,
    pub(crate) obs: Arc<IndexCounters>,
}

impl CTransaction {
    pub(crate) fn new(
        txn: Transaction,
        extractors: Arc<ExtractorRegistry>,
        obs: Arc<IndexCounters>,
    ) -> Self {
        CTransaction {
            txn,
            extractors,
            iters: RefCell::new(HashMap::new()),
            obs,
        }
    }

    /// Commit in the given durability mode.
    pub fn commit(self, durability: Durability) -> Result<()> {
        self.txn.commit(durability).map_err(CollectionError::from)
    }

    /// Deprecated bool-flavoured commit; use
    /// [`commit`](CTransaction::commit) with a [`Durability`].
    #[deprecated(note = "use commit(Durability::{Durable, Lazy}) instead")]
    pub fn commit_bool(self, durable: bool) -> Result<()> {
        self.commit(Durability::from(durable))
    }

    /// Abort the transaction.
    pub fn abort(self) {
        self.txn.abort()
    }

    fn directory_id(&self) -> Result<ObjectId> {
        self.txn
            .root(DIRECTORY_ROOT)
            .ok_or_else(|| CollectionError::NoSuchCollection("<directory missing>".into()))
    }

    pub(crate) fn lookup_collection(&self, name: &str) -> Result<Option<ObjectId>> {
        let dir_id = self.directory_id()?;
        let dir = self.txn.open_readonly::<DirectoryObj>(dir_id)?;
        let found = dir.get().get(name);
        Ok(found)
    }

    /// Create a named collection with the given indexes (at least one —
    /// paper Fig. 5's `createCollection` takes an indexer). Returns a
    /// writable handle.
    pub fn create_collection(&self, name: &str, specs: &[IndexSpec]) -> Result<Collection<'_>> {
        if specs.is_empty() {
            return Err(CollectionError::NeedsIndex(name.to_string()));
        }
        if self.lookup_collection(name)?.is_some() {
            return Err(CollectionError::CollectionExists(name.to_string()));
        }
        for (i, spec) in specs.iter().enumerate() {
            self.extractors.get(&spec.extractor)?;
            if specs[..i].iter().any(|s| s.name == spec.name) {
                return Err(CollectionError::IndexExists(spec.name.clone()));
            }
        }
        let mut indexes = Vec::with_capacity(specs.len());
        for spec in specs {
            let root = collection::create_index_root(self, spec.kind)?;
            indexes.push(crate::meta::IndexMeta {
                spec: spec.clone(),
                root,
            });
        }
        let coll_id = self.txn.insert(Box::new(CollectionObj {
            name: name.to_string(),
            indexes,
            count: 0,
        }))?;
        let dir_id = self.directory_id()?;
        {
            let dir = self.txn.open_writable::<DirectoryObj>(dir_id)?;
            dir.get_mut().entries.push((name.to_string(), coll_id));
        }
        Ok(Collection::new(self, coll_id, name.to_string(), true))
    }

    /// Read-only handle to an existing collection (paper: `readCollection`).
    pub fn read_collection(&self, name: &str) -> Result<Collection<'_>> {
        let oid = self
            .lookup_collection(name)?
            .ok_or_else(|| CollectionError::NoSuchCollection(name.to_string()))?;
        Ok(Collection::new(self, oid, name.to_string(), false))
    }

    /// Writable handle to an existing collection (paper: `writeCollection`).
    pub fn write_collection(&self, name: &str) -> Result<Collection<'_>> {
        let oid = self
            .lookup_collection(name)?
            .ok_or_else(|| CollectionError::NoSuchCollection(name.to_string()))?;
        Ok(Collection::new(self, oid, name.to_string(), true))
    }

    /// Remove a collection "along with all objects that were previously
    /// inserted into the collection" (paper Fig. 5).
    pub fn remove_collection(&self, name: &str) -> Result<()> {
        let oid = self
            .lookup_collection(name)?
            .ok_or_else(|| CollectionError::NoSuchCollection(name.to_string()))?;
        collection::destroy_collection(self, oid)?;
        let dir_id = self.directory_id()?;
        let dir = self.txn.open_writable::<DirectoryObj>(dir_id)?;
        dir.get_mut().entries.retain(|(n, _)| n != name);
        Ok(())
    }

    /// Register (or update) a named root object id (applied at commit).
    pub fn set_root(&self, name: &str, oid: ObjectId) -> Result<()> {
        self.txn.set_root(name, oid).map_err(CollectionError::from)
    }

    /// Read a named root, seeing this transaction's pending updates.
    pub fn root(&self, name: &str) -> Option<ObjectId> {
        self.txn.root(name)
    }

    /// Unregister a named root (applied at commit).
    pub fn remove_root(&self, name: &str) -> Result<()> {
        self.txn.remove_root(name).map_err(CollectionError::from)
    }

    /// Names of all collections.
    pub fn collection_names(&self) -> Result<Vec<String>> {
        let dir_id = self.directory_id()?;
        let dir = self.txn.open_readonly::<DirectoryObj>(dir_id)?;
        let mut names: Vec<String> = dir.get().entries.iter().map(|(n, _)| n.clone()).collect();
        names.sort();
        Ok(names)
    }

    // -- iterator registry (insensitivity constraint 2) -----------------

    pub(crate) fn register_iter(&self, coll: ObjectId) {
        *self.iters.borrow_mut().entry(coll.0).or_insert(0) += 1;
    }

    pub(crate) fn unregister_iter(&self, coll: ObjectId) {
        let mut iters = self.iters.borrow_mut();
        if let Some(count) = iters.get_mut(&coll.0) {
            *count -= 1;
            if *count == 0 {
                iters.remove(&coll.0);
            }
        }
    }

    pub(crate) fn open_iters_on(&self, coll: ObjectId) -> usize {
        self.iters.borrow().get(&coll.0).copied().unwrap_or(0)
    }
}
