//! # TDB — a trusted database system for Digital Rights Management
//!
//! A Rust reproduction of *TDB: A Database System for Digital Rights
//! Management* (Vingralek, Maheshwari, Shapiro; EDBT 2002 / InterTrust STAR
//! Lab TR, 2001). TDB keeps DRM state — usage meters, prepaid balances,
//! audit records, content keys — on storage the *user of the device fully
//! controls*, and still guarantees:
//!
//! * **secrecy**: every stored byte is encrypted (AES-128-CBC here; the
//!   paper used 3DES);
//! * **tamper detection**: a Merkle hash tree embedded in the log's
//!   location map, rooted in a MAC'd anchor bound to a hardware **one-way
//!   counter**, detects any modification — including replaying a complete
//!   saved copy of the database;
//! * **transactional atomicity** on a log-structured store (the log *is*
//!   the database) with durable and nondurable commits, a cleaner, and a
//!   utilization knob;
//! * **fast backups**: O(1) copy-on-write snapshots, incremental backups by
//!   pruned snapshot diffing, validated and sequence-enforced restore;
//! * **typed objects and collections**: explicit pickling, strict 2PL with
//!   timeout, an LRU object cache with no-steal pinning, functional indexes
//!   (B-tree / dynamic hash / list) maintained automatically through
//!   insensitive iterators.
//!
//! The layers are independent crates, mirroring the paper's modular
//! architecture (Fig. 1) so "applications link only with the modules they
//! require": [`tdb_platform`], [`tdb_crypto`], [`chunk_store`],
//! [`backup_store`], [`object_store`], [`collection_store`]. This crate
//! re-exports them and adds two facades: the recommended [`Db`] /
//! [`Options`] / [`Txn`] / [`ReadTxn`] API, and the layer-explicit
//! [`Database`].
//!
//! # Quickstart
//!
//! ```
//! use tdb::{Db, Durability, IndexKind, IndexSpec, Key, Options};
//! use tdb::{impl_persistent_boilerplate, Persistent, Pickler, Unpickler, PickleError};
//!
//! struct Meter { id: i64, views: i64 }
//! impl Persistent for Meter {
//!     impl_persistent_boilerplate!(0x4D45_0001);
//!     fn pickle(&self, w: &mut Pickler) { w.i64(self.id); w.i64(self.views); }
//! }
//! fn unpickle_meter(r: &mut Unpickler) -> Result<Box<dyn Persistent>, PickleError> {
//!     Ok(Box::new(Meter { id: r.i64()?, views: r.i64()? }))
//! }
//!
//! let db = Db::open(Options::in_memory()
//!     .register_class(0x4D45_0001, "Meter", unpickle_meter)
//!     .register_extractor("meter.id", |obj| {
//!         tdb::extractor_typed::<Meter>(obj, |m| Key::I64(m.id))
//!     })).unwrap();
//! let meters = db.collection::<i64, Meter>("meters");
//!
//! // Read-write transaction: strict 2PL, explicit durability.
//! let t = db.begin();
//! meters.ensure(&t, &[IndexSpec::new("by-id", "meter.id", true, IndexKind::BTree)]).unwrap();
//! meters.insert(&t, Meter { id: 1, views: 7 }).unwrap();
//! t.commit(Durability::Durable).unwrap();
//!
//! // Snapshot-isolated read: zero locks, stable against concurrent
//! // writers and the log cleaner.
//! let r = db.begin_read();
//! assert_eq!(meters.get(&r, "by-id", 1, |m| m.views).unwrap(), Some(7));
//! assert_eq!(meters.len(&r).unwrap(), 1);
//! r.finish();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;

pub mod facade;

pub use facade::{CollectionHandle, Db, Options, ReadTxn, Txn};
pub use tdb_core::{Durability, Error, ErrorKind};

pub use backup_store::{BackupError, BackupManager};
pub use chunk_store::Proven;
pub use chunk_store::{
    ChunkId, ChunkStore, ChunkStoreConfig, ChunkStoreError, RecoveryReport, SecurityMode,
    ShardedChunkStore, ShardedSnapshot, Snapshot, SnapshotDiff, StatsSnapshot,
};
pub use collection_store::{
    CIter, CTransaction, Collection, CollectionError, CollectionStore, ExtractorFn,
    ExtractorRegistry, IndexKind, IndexSpec, Key, ObjectId, ProvenLookup, ReadCTransaction,
    ReadCollection,
};
pub use object_store::{
    impl_persistent_boilerplate, ClassId, ClassRegistry, ObjectReader, ObjectStore,
    ObjectStoreConfig, ObjectStoreError, Persistent, PickleError, Pickler, ReadTransaction,
    ReadonlyRef, StoreOptions, Transaction, Unpickler, WritableRef,
};

pub use collection_store::extractor::typed as extractor_typed;

/// Platform substrates (untrusted store, secret store, one-way counter,
/// archival store, fault injection).
pub mod platform {
    pub use tdb_platform::*;
}

/// Cryptographic primitives (SHA-256, HMAC, AES-128-CBC, HMAC-DRBG).
pub mod crypto {
    pub use tdb_crypto::*;
}

/// The extracted trust layer: the store-independent [`proof::Verifier`],
/// [`proof::TrustAnchor`]s ([`Db::trust_anchor`](crate::Db::trust_anchor)),
/// chunk and keyed proofs, and their stable wire encoding. A client needs
/// only this module (crate `tdb-proof`) — not the database — to check
/// proofs offline.
pub mod proof {
    pub use tdb_proof::*;
}

/// Observability: the metrics registry, histograms, span timers, and the
/// JSON value type used for bench telemetry. Every layer of an open
/// database records into one shared [`obs::Registry`], reachable via
/// [`Database::obs`].
pub mod obs {
    pub use tdb_obs::*;
}

use tdb_platform::{ArchivalStore, OneWayCounter, SecretStore, UntrustedStore};

/// Unified error type of the facade.
#[derive(Debug)]
pub enum TdbError {
    /// Chunk store error (tamper/replay detection, I/O, space).
    Chunk(ChunkStoreError),
    /// Object store error (locks, types, pickling).
    Object(ObjectStoreError),
    /// Collection store error (indexes, uniqueness, iterators).
    Collection(CollectionError),
    /// Backup store error.
    Backup(BackupError),
}

impl std::fmt::Display for TdbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TdbError::Chunk(e) => write!(f, "{e}"),
            TdbError::Object(e) => write!(f, "{e}"),
            TdbError::Collection(e) => write!(f, "{e}"),
            TdbError::Backup(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TdbError {}

impl From<ChunkStoreError> for TdbError {
    fn from(e: ChunkStoreError) -> Self {
        TdbError::Chunk(e)
    }
}

impl From<ObjectStoreError> for TdbError {
    fn from(e: ObjectStoreError) -> Self {
        TdbError::Object(e)
    }
}

impl From<CollectionError> for TdbError {
    fn from(e: CollectionError) -> Self {
        TdbError::Collection(e)
    }
}

impl From<BackupError> for TdbError {
    fn from(e: BackupError) -> Self {
        TdbError::Backup(e)
    }
}

impl TdbError {
    /// Stable, layer-independent classification (see [`ErrorKind`]).
    /// Applications should branch on this — e.g. retry on
    /// [`ErrorKind::LockTimeout`] / [`ErrorKind::Deadlock`], refuse to open
    /// on [`ErrorKind::Tamper`] / [`ErrorKind::Replay`] — instead of
    /// matching layer-specific variants.
    pub fn kind(&self) -> ErrorKind {
        match self {
            TdbError::Chunk(e) => e.kind(),
            TdbError::Object(e) => e.kind(),
            TdbError::Collection(e) => e.kind(),
            TdbError::Backup(e) => e.kind(),
        }
    }

    /// Whether retrying the transaction is reasonable (lock timeouts and
    /// deadlock victims).
    pub fn is_retryable(&self) -> bool {
        matches!(self.kind(), ErrorKind::LockTimeout | ErrorKind::Deadlock)
    }
}

impl From<TdbError> for Error {
    fn from(e: TdbError) -> Self {
        Error::with_source(e.kind(), e)
    }
}

/// Result alias for facade operations.
pub type Result<T> = std::result::Result<T, TdbError>;

/// Top-level configuration: the chunk-store and object-store knobs.
#[derive(Clone, Debug, Default)]
pub struct DatabaseConfig {
    /// Chunk store configuration (segment size, security mode, utilization,
    /// checkpoint threshold, ...).
    pub chunk: ChunkStoreConfig,
    /// Object store configuration (locking, lock timeout, cache budget).
    pub object: ObjectStoreConfig,
}

impl DatabaseConfig {
    /// Default configuration but with security off — the paper's "TDB"
    /// (vs. "TDB-S") evaluation configuration.
    pub fn without_security() -> Self {
        let mut cfg = Self::default();
        cfg.chunk.security = SecurityMode::Off;
        cfg
    }
}

/// An open TDB database: the collection store plus handles to the layers
/// beneath it.
#[derive(Clone)]
pub struct Database {
    collections: CollectionStore,
    security: SecurityMode,
}

impl Database {
    /// Create a fresh database in `untrusted`.
    pub fn create(
        untrusted: Arc<dyn UntrustedStore>,
        secret: &dyn SecretStore,
        counter: Arc<dyn OneWayCounter>,
        classes: ClassRegistry,
        extractors: ExtractorRegistry,
        cfg: DatabaseConfig,
    ) -> Result<Self> {
        let security = cfg.chunk.security;
        let chunks = Arc::new(ShardedChunkStore::create(
            untrusted, secret, counter, cfg.chunk,
        )?);
        let collections = CollectionStore::create_sharded(chunks, classes, extractors, cfg.object)?;
        Ok(Database {
            collections,
            security,
        })
    }

    /// Open an existing database, running recovery and tamper/replay
    /// validation.
    pub fn open(
        untrusted: Arc<dyn UntrustedStore>,
        secret: &dyn SecretStore,
        counter: Arc<dyn OneWayCounter>,
        classes: ClassRegistry,
        extractors: ExtractorRegistry,
        cfg: DatabaseConfig,
    ) -> Result<Self> {
        let security = cfg.chunk.security;
        let chunks = Arc::new(ShardedChunkStore::open(
            untrusted, secret, counter, cfg.chunk,
        )?);
        let collections = CollectionStore::open_sharded(chunks, classes, extractors, cfg.object)?;
        Ok(Database {
            collections,
            security,
        })
    }

    /// Open if present, else create.
    pub fn open_or_create(
        untrusted: Arc<dyn UntrustedStore>,
        secret: &dyn SecretStore,
        counter: Arc<dyn OneWayCounter>,
        classes: ClassRegistry,
        extractors: ExtractorRegistry,
        cfg: DatabaseConfig,
    ) -> Result<Self> {
        let exists = ShardedChunkStore::database_exists(untrusted.as_ref()).unwrap_or(false);
        if exists {
            Self::open(untrusted, secret, counter, classes, extractors, cfg)
        } else {
            Self::create(untrusted, secret, counter, classes, extractors, cfg)
        }
    }

    /// Start a transaction (collections + typed object access through
    /// [`CollectionStore::object_store`]).
    pub fn begin(&self) -> CTransaction {
        self.collections.begin()
    }

    /// The collection store.
    pub fn collections(&self) -> &CollectionStore {
        &self.collections
    }

    /// The object store.
    pub fn object_store(&self) -> &ObjectStore {
        self.collections.object_store()
    }

    /// The (sharded) chunk store. At shard count 1 — the default — it is a
    /// transparent wrapper around the single underlying [`ChunkStore`],
    /// reachable via [`ShardedChunkStore::unsharded`].
    pub fn chunk_store(&self) -> &Arc<ShardedChunkStore> {
        self.collections.chunk_store()
    }

    /// Security mode the database runs in.
    pub fn security(&self) -> SecurityMode {
        self.security
    }

    /// Idle-time maintenance: checkpoint the location map (the paper defers
    /// log reorganization to idle periods, §1).
    pub fn checkpoint(&self) -> Result<()> {
        self.chunk_store().checkpoint()?;
        Ok(())
    }

    /// Idle-time maintenance: run a cleaner pass; returns segments freed.
    pub fn clean(&self) -> Result<usize> {
        Ok(self.chunk_store().clean()?)
    }

    /// Chunk-level operation counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.chunk_store().stats()
    }

    /// The observability registry shared by every layer of this database
    /// (counters, gauges, and latency histograms; see [`crate::obs`]).
    pub fn obs(&self) -> Arc<obs::Registry> {
        self.chunk_store().obs()
    }

    /// Assemble a diagnostic dump on demand: the same JSON document the
    /// stall watchdog emits (schema `tdb-diag-v1` — registered store
    /// states, in-flight operations, and the recent flight-recorder
    /// trace), with `reason` recorded inside it. Process-wide: a process
    /// holding several databases sees all of them in one dump.
    pub fn diagnostics(&self, reason: &str) -> obs::Json {
        obs::diag::collect(reason)
    }

    /// [`diagnostics`](Self::diagnostics), also written to `TDB_DIAG_DIR`
    /// (returns the path, or `None` when the variable is unset).
    pub fn diagnostics_to_dir(&self, reason: &str) -> std::io::Result<Option<std::path::PathBuf>> {
        let dump = self.diagnostics(reason);
        obs::diag::write_dump(&dump, "manual")
    }

    /// Current on-disk size of the log in bytes (Figure 11's metric).
    pub fn disk_size(&self) -> u64 {
        self.chunk_store().disk_size()
    }

    /// Current database utilization.
    pub fn utilization(&self) -> f64 {
        self.chunk_store().utilization()
    }

    /// Restore the latest backup chain from `archive` onto fresh platform
    /// substrates and open the result: device migration in one call. The
    /// untrusted store must be empty.
    #[allow(clippy::too_many_arguments)]
    pub fn restore_latest_from(
        archive: &dyn ArchivalStore,
        untrusted: Arc<dyn UntrustedStore>,
        secret: &dyn SecretStore,
        counter: Arc<dyn OneWayCounter>,
        classes: ClassRegistry,
        extractors: ExtractorRegistry,
        cfg: DatabaseConfig,
    ) -> Result<Self> {
        if cfg.chunk.shards != 1 {
            return Err(TdbError::Chunk(ChunkStoreError::ConfigMismatch(
                "restore targets an unsharded database; set shards = 1".into(),
            )));
        }
        let security = cfg.chunk.security;
        let chunks = Arc::new(ChunkStore::create(untrusted, secret, counter, cfg.chunk)?);
        BackupManager::restore_latest(archive, secret, security, &chunks)?;
        let collections = CollectionStore::open(chunks, classes, extractors, cfg.object)?;
        Ok(Database {
            collections,
            security,
        })
    }

    /// Build a backup manager writing to `archive` with keys derived from
    /// `secret` (must be the database's platform secret).
    pub fn backup_manager(
        &self,
        archive: Arc<dyn ArchivalStore>,
        secret: &dyn SecretStore,
    ) -> Result<BackupManager> {
        Ok(BackupManager::new(archive, secret, self.security)?)
    }
}
