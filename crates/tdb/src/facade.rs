//! The coherent top-level API: [`Db`], [`Options`], [`Txn`], [`ReadTxn`],
//! and typed [`CollectionHandle`]s.
//!
//! This is the recommended entry point for applications. It wraps the
//! layered stores ([`Database`] remains available for code that wants the
//! layers spelled out) behind four nouns:
//!
//! * [`Options`] — one builder for substrates (in-memory, directory, or
//!   custom), class/extractor registries, security mode, and tuning knobs
//!   ([`StoreOptions`], [`ChunkStoreConfig`]).
//! * [`Db::open`] — open-or-create from an [`Options`].
//! * [`Db::begin`] → [`Txn`] — a read-write transaction (strict 2PL),
//!   committed with an explicit [`Durability`].
//! * [`Db::begin_read`] → [`ReadTxn`] — a snapshot-isolated read-only
//!   transaction: zero locks, stable scans, never blocks or aborts writers.
//!
//! [`Db::collection`] produces a typed [`CollectionHandle<K, V>`] binding a
//! collection name to a key type `K` (convertible to [`Key`]) and a member
//! object type `V` ([`Persistent`]), so lookups and inserts are checked at
//! the facade instead of sprinkling downcasts through application code.

use crate::{
    CIter, CTransaction, ChunkStoreConfig, ClassRegistry, Collection, Database, DatabaseConfig,
    ExtractorRegistry, IndexSpec, Key, ObjectId, Persistent, ReadCTransaction, ReadCollection,
    Result, SecurityMode, StoreOptions, TdbError,
};
use chunk_store::Durability;
use std::marker::PhantomData;
use std::ops::Bound;
use std::path::PathBuf;
use std::sync::Arc;
use tdb_platform::secret::SECRET_LEN;
use tdb_platform::{
    DirStore, FileCounter, FileSecretStore, MemSecretStore, MemStore, OneWayCounter, SecretStore,
    UntrustedStore, VolatileCounter,
};

enum Substrates {
    /// Volatile in-memory substrates (tests, examples, benches).
    Memory { label: String },
    /// Directory-backed substrates: `DirStore` for the log, a secret file,
    /// and a file-backed one-way counter.
    Dir { dir: PathBuf },
    /// Caller-supplied substrates (fault injection, custom hardware).
    Custom {
        untrusted: Arc<dyn UntrustedStore>,
        secret: Box<dyn SecretStore>,
        counter: Arc<dyn OneWayCounter>,
    },
}

/// Builder for opening a [`Db`]. Collects the platform substrates, the
/// application's class and extractor registries, and every tuning knob in
/// one place with validated defaults.
pub struct Options {
    substrates: Substrates,
    classes: ClassRegistry,
    extractors: ExtractorRegistry,
    chunk: ChunkStoreConfig,
    store: StoreOptions,
}

impl Default for Options {
    fn default() -> Self {
        Options::in_memory()
    }
}

/// The pieces [`Options`] resolves into for [`Database::open_or_create`].
type OpenParts = (
    Arc<dyn UntrustedStore>,
    Box<dyn SecretStore>,
    Arc<dyn OneWayCounter>,
    ClassRegistry,
    ExtractorRegistry,
    DatabaseConfig,
);

impl Options {
    /// Volatile in-memory database (the default): `MemStore`, a secret
    /// derived from a fixed label, and a volatile one-way counter. Ideal
    /// for tests and examples; nothing survives the process.
    pub fn in_memory() -> Self {
        Options {
            substrates: Substrates::Memory {
                label: "tdb".to_string(),
            },
            classes: ClassRegistry::new(),
            extractors: ExtractorRegistry::new(),
            chunk: ChunkStoreConfig::default(),
            store: StoreOptions::new(),
        }
    }

    /// Derive the in-memory secret from `label` instead of the default
    /// (distinct labels give cryptographically unrelated databases).
    pub fn secret_label(mut self, label: impl Into<String>) -> Self {
        if let Substrates::Memory { label: l } = &mut self.substrates {
            *l = label.into();
        }
        self
    }

    /// Store the database under `dir`: the log in `DirStore`, the platform
    /// secret in `dir/secret.key` (created on first open), and the one-way
    /// counter in `dir/counter`.
    pub fn at_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.substrates = Substrates::Dir { dir: dir.into() };
        self
    }

    /// Use caller-supplied platform substrates (e.g. fault-injection
    /// wrappers or real hardware bindings).
    pub fn with_substrates(
        mut self,
        untrusted: Arc<dyn UntrustedStore>,
        secret: impl SecretStore + 'static,
        counter: Arc<dyn OneWayCounter>,
    ) -> Self {
        self.substrates = Substrates::Custom {
            untrusted,
            secret: Box::new(secret),
            counter,
        };
        self
    }

    /// Replace the class registry wholesale.
    pub fn classes(mut self, classes: ClassRegistry) -> Self {
        self.classes = classes;
        self
    }

    /// Register one persistent class (see [`ClassRegistry::register`]).
    pub fn register_class(
        mut self,
        id: crate::ClassId,
        name: &'static str,
        unpickler: object_store::UnpickleFn,
    ) -> Self {
        self.classes.register(id, name, unpickler);
        self
    }

    /// Replace the extractor registry wholesale.
    pub fn extractors(mut self, extractors: ExtractorRegistry) -> Self {
        self.extractors = extractors;
        self
    }

    /// Register one functional-index extractor.
    pub fn register_extractor(mut self, name: &str, f: crate::ExtractorFn) -> Self {
        self.extractors.register(name, f);
        self
    }

    /// Set the security mode (default: full encryption + tamper detection).
    pub fn security(mut self, mode: SecurityMode) -> Self {
        self.chunk.security = mode;
        self
    }

    /// Replace the chunk-store configuration (segment size, utilization,
    /// checkpoint threshold, ...).
    pub fn chunk_config(mut self, chunk: ChunkStoreConfig) -> Self {
        self.chunk = chunk;
        self
    }

    /// Partition the chunk store across `n` shards, each with its own log,
    /// location map, and commit pipeline, all anchored under one
    /// root-of-roots and one one-way counter (default: 1, unsharded). The
    /// count is fixed at creation; reopening with a different count fails.
    pub fn shards(mut self, n: usize) -> Self {
        self.chunk.shards = n;
        self
    }

    /// Replace the object-store tuning knobs (cache budget, shard count,
    /// lock timeout, locking on/off).
    pub fn store_options(mut self, store: StoreOptions) -> Self {
        self.store = store;
        self
    }

    /// Overlay `TDB_*` environment variables onto the store options (see
    /// [`StoreOptions::from_env`]) and the chunk configuration
    /// (`TDB_SHARDS`). Unset or unparsable variables leave current values.
    pub fn from_env(mut self) -> Self {
        self.store = self.store.from_env();
        if let Some(n) = std::env::var("TDB_SHARDS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            self.chunk.shards = n;
        }
        self
    }

    fn into_parts(self) -> Result<OpenParts> {
        let object = self.store.build().map_err(TdbError::Object)?;
        let cfg = DatabaseConfig {
            chunk: self.chunk,
            object,
        };
        let (untrusted, secret, counter): (
            Arc<dyn UntrustedStore>,
            Box<dyn SecretStore>,
            Arc<dyn OneWayCounter>,
        ) = match self.substrates {
            Substrates::Memory { label } => (
                Arc::new(MemStore::new()),
                Box::new(MemSecretStore::from_label(&label)),
                Arc::new(VolatileCounter::new()),
            ),
            Substrates::Dir { dir } => {
                let untrusted =
                    Arc::new(DirStore::new(&dir).map_err(chunk_store::ChunkStoreError::from)?);
                // First open seeds the secret file from a per-directory
                // label; it is the file's presence that carries the secret
                // afterwards, exactly like a provisioning step would.
                let seed = MemSecretStore::from_label(&format!("tdb-dir:{}", dir.display()))
                    .master_secret()
                    .map_err(chunk_store::ChunkStoreError::from)?;
                let mut initial = [0u8; SECRET_LEN];
                initial.copy_from_slice(&seed);
                let secret = FileSecretStore::open_or_init(dir.join("secret.key"), initial)
                    .map_err(chunk_store::ChunkStoreError::from)?;
                let counter = FileCounter::open(dir.join("counter"))
                    .map_err(chunk_store::ChunkStoreError::from)?;
                (untrusted, Box::new(secret), Arc::new(counter))
            }
            Substrates::Custom {
                untrusted,
                secret,
                counter,
            } => (untrusted, secret, counter),
        };
        Ok((
            untrusted,
            secret,
            counter,
            self.classes,
            self.extractors,
            cfg,
        ))
    }
}

/// An open TDB database. Cheap to clone; all clones share the same store.
#[derive(Clone)]
pub struct Db {
    inner: Database,
}

impl Db {
    /// Open the database described by `options`, creating it if it does not
    /// exist yet. Opening runs recovery plus tamper and replay validation.
    pub fn open(options: Options) -> Result<Self> {
        let (untrusted, secret, counter, classes, extractors, cfg) = options.into_parts()?;
        let inner = Database::open_or_create(
            untrusted,
            secret.as_ref(),
            counter,
            classes,
            extractors,
            cfg,
        )?;
        Ok(Db { inner })
    }

    /// Start a read-write transaction (strict 2PL, private write staging).
    pub fn begin(&self) -> Txn {
        Txn {
            inner: self.inner.collections().begin(),
        }
    }

    /// Start a snapshot-isolated read-only transaction. The returned
    /// [`ReadTxn`] observes the latest committed state, takes **no** locks,
    /// and pins its snapshot's segments against relocation by the cleaner
    /// until it is dropped or [`ReadTxn::finish`]ed.
    pub fn begin_read(&self) -> ReadTxn {
        ReadTxn {
            inner: self.inner.collections().begin_read(),
        }
    }

    /// Start a snapshot-isolated read transaction **validated for
    /// proof-carrying reads**: fails up front with a configuration error
    /// if the database runs without security (no MAC keys to attest
    /// under), so every later
    /// [`read_proven`](object_store::ReadTransaction::read_proven),
    /// [`exact_proven`](collection_store::ReadCollection::exact_proven),
    /// and [`Proven::prove`](chunk_store::Proven::prove) on this reader
    /// is guaranteed not to fail for configuration reasons.
    ///
    /// The returned [`ReadTxn`] is otherwise an ordinary reader — the
    /// default read path builds no proofs and pays nothing beyond the
    /// snapshot pin; proofs are extracted lazily, per read, on demand.
    pub fn begin_read_proven(&self) -> Result<ReadTxn> {
        if self.inner.security() != SecurityMode::Full {
            return Err(TdbError::Chunk(crate::ChunkStoreError::ConfigMismatch(
                "proof-carrying reads require SecurityMode::Full \
                     (a store created with SecurityMode::Off has no MAC keys to attest under)"
                    .into(),
            )));
        }
        Ok(self.begin_read())
    }

    /// The trust anchor clients verify this database's proofs against:
    /// the current one-way counter binding plus the MAC key(s) proofs are
    /// attested under. **Contains key material** — hand it only to
    /// parties entitled to verify. Build a
    /// [`tdb_proof::Verifier`] around it to check proofs offline.
    pub fn trust_anchor(&self) -> Result<tdb_proof::TrustAnchor> {
        Ok(self.inner.chunk_store().trust_anchor()?)
    }

    /// A typed handle to the collection `name`, keyed by `K` through its
    /// functional indexes with members of type `V`. The handle itself does
    /// no I/O — pair it with a [`Txn`] or [`ReadTxn`].
    pub fn collection<K, V>(&self, name: impl Into<String>) -> CollectionHandle<K, V>
    where
        K: Into<Key>,
        V: Persistent,
    {
        CollectionHandle {
            name: name.into(),
            _types: PhantomData,
        }
    }

    /// The layered view of this database ([`Database`]), for operations the
    /// facade does not wrap (backups, maintenance, stats, observability).
    pub fn layers(&self) -> &Database {
        &self.inner
    }
}

impl std::ops::Deref for Db {
    type Target = Database;
    fn deref(&self) -> &Database {
        &self.inner
    }
}

/// A read-write transaction. Dereferences to [`CTransaction`], so every
/// collection-store operation (create/read/write collections, roots) is
/// available directly; commit takes an explicit [`Durability`].
pub struct Txn {
    inner: CTransaction,
}

impl Txn {
    /// Commit in the given durability mode.
    pub fn commit(self, durability: Durability) -> Result<()> {
        self.inner.commit(durability).map_err(TdbError::Collection)
    }

    /// Abort, discarding all staged writes.
    pub fn abort(self) {
        self.inner.abort()
    }

    /// The wrapped collection-store transaction (by value, for APIs that
    /// consume it).
    pub fn into_inner(self) -> CTransaction {
        self.inner
    }
}

impl std::ops::Deref for Txn {
    type Target = CTransaction;
    fn deref(&self) -> &CTransaction {
        &self.inner
    }
}

/// A snapshot-isolated read-only transaction. Dereferences to
/// [`ReadCTransaction`]; dropping it releases the snapshot pin.
pub struct ReadTxn {
    inner: ReadCTransaction,
}

impl ReadTxn {
    /// The chunk-store commit sequence this reader observes.
    pub fn commit_seq(&self) -> u64 {
        self.inner.commit_seq()
    }

    /// End the transaction, releasing the snapshot pin (same as dropping).
    pub fn finish(self) {}
}

impl std::ops::Deref for ReadTxn {
    type Target = ReadCTransaction;
    fn deref(&self) -> &ReadCTransaction {
        &self.inner
    }
}

/// A typed, I/O-free binding of a collection name to a key type `K` and a
/// member type `V`. Obtained from [`Db::collection`].
pub struct CollectionHandle<K, V> {
    name: String,
    _types: PhantomData<fn() -> (K, V)>,
}

impl<K, V> Clone for CollectionHandle<K, V> {
    fn clone(&self) -> Self {
        CollectionHandle {
            name: self.name.clone(),
            _types: PhantomData,
        }
    }
}

impl<K, V> CollectionHandle<K, V>
where
    K: Into<Key>,
    V: Persistent,
{
    /// The collection name this handle binds.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Create the collection with `specs` if it does not exist yet.
    pub fn ensure(&self, txn: &Txn, specs: &[IndexSpec]) -> Result<()> {
        match txn.create_collection(&self.name, specs) {
            Ok(_) => Ok(()),
            Err(crate::CollectionError::CollectionExists(_)) => Ok(()),
            Err(e) => Err(TdbError::Collection(e)),
        }
    }

    /// Insert a member object.
    pub fn insert(&self, txn: &Txn, object: V) -> Result<ObjectId> {
        let coll = txn
            .write_collection(&self.name)
            .map_err(TdbError::Collection)?;
        coll.insert(Box::new(object)).map_err(TdbError::Collection)
    }

    /// Writable iterator-based handle within a read-write transaction.
    pub fn write<'t>(&self, txn: &'t Txn) -> Result<Collection<'t>> {
        txn.write_collection(&self.name)
            .map_err(TdbError::Collection)
    }

    /// Snapshot handle within a read-only transaction.
    pub fn read<'t>(&self, rt: &'t ReadTxn) -> Result<ReadCollection<'t>> {
        rt.read_collection(&self.name).map_err(TdbError::Collection)
    }

    /// Apply `f` to the first member whose `index` key equals `key`, as of
    /// the snapshot. Returns `None` if no member matches.
    pub fn get<R>(
        &self,
        rt: &ReadTxn,
        index: &str,
        key: K,
        f: impl FnOnce(&V) -> R,
    ) -> Result<Option<R>> {
        let coll = self.read(rt)?;
        let ids = coll
            .exact(index, &key.into())
            .map_err(TdbError::Collection)?;
        match ids.first() {
            Some(&oid) => Ok(Some(
                coll.get::<V, R>(oid, f).map_err(TdbError::Collection)?,
            )),
            None => Ok(None),
        }
    }

    /// `(key, id)` entries of `index` in its natural order, as of the
    /// snapshot.
    pub fn scan(&self, rt: &ReadTxn, index: &str) -> Result<Vec<(Key, ObjectId)>> {
        self.read(rt)?.scan(index).map_err(TdbError::Collection)
    }

    /// Range query over an ordered index, as of the snapshot.
    pub fn range(
        &self,
        rt: &ReadTxn,
        index: &str,
        min: Bound<&Key>,
        max: Bound<&Key>,
    ) -> Result<Vec<(Key, ObjectId)>> {
        self.read(rt)?
            .range(index, min, max)
            .map_err(TdbError::Collection)
    }

    /// Member count as of the snapshot.
    pub fn len(&self, rt: &ReadTxn) -> Result<u64> {
        self.read(rt)?.len().map_err(TdbError::Collection)
    }

    /// Whether the collection is empty as of the snapshot.
    pub fn is_empty(&self, rt: &ReadTxn) -> Result<bool> {
        Ok(self.len(rt)? == 0)
    }

    /// Update in place: apply `f` to every member whose `index` key equals
    /// `key`, through a writable insensitive iterator. Returns the number
    /// of members updated. Index maintenance runs when the iterator closes.
    pub fn update(
        &self,
        txn: &Txn,
        index: &str,
        key: K,
        mut f: impl FnMut(&mut V),
    ) -> Result<usize> {
        let coll = self.write(txn)?;
        let mut iter: CIter<'_> = coll
            .exact(index, &key.into())
            .map_err(TdbError::Collection)?;
        let mut updated = 0;
        while !iter.end() {
            {
                let obj = iter.write::<V>().map_err(TdbError::Collection)?;
                f(&mut obj.get_mut());
                updated += 1;
            }
            iter.next();
        }
        iter.close().map_err(TdbError::Collection)?;
        Ok(updated)
    }
}
