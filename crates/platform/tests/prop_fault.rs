//! Property tests for the fault-injection layer's torn-write semantics.
//!
//! The contract crash-recovery code relies on: when a [`FaultPlan`] armed
//! with a byte budget `B` cuts a workload, the surviving file holds exactly
//! the bytes written before the crash plus `min(B - consumed, len)` bytes
//! of the write that exhausted the budget — a prefix, never interleaved or
//! reordered — and every operation after the crash fails with
//! [`PlatformError::Crashed`].

use proptest::prelude::*;
use tdb_platform::{FaultPlan, FaultStore, MemStore, PlatformError, UntrustedStore};

proptest! {
    #[test]
    fn surviving_bytes_are_exactly_the_pre_crash_prefix(
        writes in proptest::collection::vec((1usize..64, 0u8..=255), 1..12),
        budget in 0u64..600,
    ) {
        let mem = MemStore::new();
        let store = FaultStore::new(mem.clone(), FaultPlan::crash_after_bytes(budget));
        let f = store.open("f", true).unwrap();

        // Model: append-structured writes of `len` copies of `fill`.
        let mut expected: Vec<u8> = Vec::new();
        let mut remaining = budget;
        let mut crashed = false;
        for (len, fill) in &writes {
            let data = vec![*fill; *len];
            if crashed {
                // Post-crash: the op must fail and land nothing.
                prop_assert!(matches!(
                    f.write_at(expected.len() as u64, &data).unwrap_err(),
                    PlatformError::Crashed
                ));
                continue;
            }
            let offset = expected.len() as u64;
            if (*len as u64) <= remaining {
                f.write_at(offset, &data).unwrap();
                remaining -= *len as u64;
                expected.extend_from_slice(&data);
            } else {
                // This write exhausts the budget: torn at `remaining`.
                prop_assert!(matches!(
                    f.write_at(offset, &data).unwrap_err(),
                    PlatformError::Crashed
                ));
                expected.extend_from_slice(&data[..remaining as usize]);
                crashed = true;
            }
        }

        // The underlying store holds exactly the modeled prefix.
        let survived = if expected.is_empty() && crashed {
            // A zero-budget plan can crash before the file is created.
            mem.raw("f").unwrap_or_default()
        } else {
            mem.raw("f").unwrap()
        };
        prop_assert_eq!(survived, expected);
        prop_assert_eq!(store.plan().has_crashed(), crashed);

        if crashed {
            // The whole store stays dead: reads, syncs, metadata, opens.
            prop_assert!(matches!(
                f.read_at(0, &mut [0u8; 1]).unwrap_err(),
                PlatformError::Crashed
            ));
            prop_assert!(matches!(f.sync().unwrap_err(), PlatformError::Crashed));
            prop_assert!(matches!(f.len().unwrap_err(), PlatformError::Crashed));
            prop_assert!(matches!(store.open("g", true).err(), Some(PlatformError::Crashed)));
            prop_assert!(matches!(store.list().unwrap_err(), PlatformError::Crashed));
        } else {
            // No crash: the plan passed everything through and stays alive.
            f.sync().unwrap();
            prop_assert!(store.plan().sync_count() >= 1);
        }
    }

    #[test]
    fn operation_granular_cut_matches_the_byte_fraction(
        lens in proptest::collection::vec(1usize..64, 1..10),
        target in 0usize..10,
        cut_num in 0u32..=4,
    ) {
        let target = target % lens.len();
        let store = {
            let plan = FaultPlan::crash_on_write(target as u64, cut_num, 4);
            FaultStore::new(MemStore::new(), plan)
        };
        let f = store.open("f", true).unwrap();
        let mut offset = 0u64;
        for (i, len) in lens.iter().enumerate() {
            let data = vec![0xAB; *len];
            let r = f.write_at(offset, &data);
            if i < target {
                r.unwrap();
                offset += *len as u64;
            } else {
                // The targeted write (and everything after) fails; exactly
                // len * cut_num / 4 of its bytes land.
                prop_assert!(r.is_err());
                let landed = (*len as u64) * cut_num as u64 / 4;
                prop_assert_eq!(store.inner().raw("f").unwrap().len() as u64, offset + landed);
                break;
            }
        }
        prop_assert!(store.plan().has_crashed());
    }
}
