//! Platform substrates assumed by the TDB architecture (paper §2, Figure 1,
//! dashed boxes).
//!
//! TDB expects the hosting device to provide four infrastructure modules,
//! none of which it trusts equally:
//!
//! * an **untrusted store** — file-system-like random-access storage (flash
//!   RAM, hard disk) that an attacker may arbitrarily read and modify
//!   ([`untrusted::UntrustedStore`]);
//! * an **archival store** — stream-oriented sequential storage for backups,
//!   equally untrusted ([`archival::ArchivalStore`]);
//! * a small **secret store** readable only by authorized programs (ROM /
//!   battery-backed SRAM in the paper) ([`secret::SecretStore`]);
//! * a **one-way counter** that can never be decremented, used to defeat
//!   replay of whole database states ([`counter::OneWayCounter`]).
//!
//! Each trait ships with a file-backed implementation (what the paper's own
//! evaluation used — even the hardware counter was "emulated as a file",
//! §7.2) and an in-memory implementation for tests and benches. The
//! [`fault`] module wraps any untrusted store with deterministic crash and
//! tamper injection so the upper layers' recovery and tamper-detection
//! logic can be exercised.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod archival;
pub mod counter;
pub mod error;
pub mod fault;
pub mod secret;
pub mod untrusted;

pub use archival::{ArchivalStore, DirArchive, MemArchive};
pub use counter::{FileCounter, OneWayCounter, TamperableCounter, VolatileCounter};
pub use error::{PlatformError, Result};
pub use fault::{
    apply_tamper, CrashSchedule, FaultEvent, FaultPlan, FaultStore, TamperMode, TamperReceipt,
    WriteEvent,
};
pub use secret::{FileSecretStore, MemSecretStore, SecretStore};
pub use untrusted::{DirStore, MemStore, PrefixedStore, RandomAccessFile, UntrustedStore};
