//! The untrusted store: file-system-like random-access storage.
//!
//! "We assume that the untrusted store … can be arbitrarily read or modified
//! by an attacker" (paper §2). The chunk store layers all of its encryption,
//! hashing, and logging on top of this interface, so the interface itself is
//! deliberately dumb: named byte arrays with positioned reads and writes.

use crate::error::{PlatformError, Result};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::Arc;

/// A single randomly accessible file in the untrusted store.
pub trait RandomAccessFile: Send + Sync {
    /// Read exactly `buf.len()` bytes starting at `offset`. Fails with
    /// [`PlatformError::ShortRead`] if the file is too short.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()>;

    /// Write `data` at `offset`, extending the file if necessary.
    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()>;

    /// Current length of the file in bytes.
    fn len(&self) -> Result<u64>;

    /// True if the file is empty.
    fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Truncate or extend the file to `len` bytes (extension zero-fills).
    fn set_len(&self, len: u64) -> Result<()>;

    /// Force written data to stable storage. The TDB evaluation configured
    /// log files with `WRITE_THROUGH` (§7.2); this is the portable analogue.
    fn sync(&self) -> Result<()>;
}

/// A namespace of randomly accessible files — what the paper calls the
/// untrusted store's "file-system-based interface" (§2).
pub trait UntrustedStore: Send + Sync {
    /// Open a file, creating it (empty) if `create` and it does not exist.
    fn open(&self, name: &str, create: bool) -> Result<Box<dyn RandomAccessFile>>;

    /// Whether a file with this name exists.
    fn exists(&self, name: &str) -> Result<bool>;

    /// Remove a file. Removing a missing file is an error.
    fn remove(&self, name: &str) -> Result<()>;

    /// Names of all files in the store, in unspecified order.
    fn list(&self) -> Result<Vec<String>>;

    /// Total bytes occupied across all files (the paper's "database size"
    /// measurements in Figure 11 are exactly this quantity).
    fn total_size(&self) -> Result<u64> {
        let mut total = 0;
        for name in self.list()? {
            total += self.open(&name, false)?.len()?;
        }
        Ok(total)
    }
}

// ---------------------------------------------------------------------------
// In-memory implementation
// ---------------------------------------------------------------------------

type MemFileData = Arc<RwLock<Vec<u8>>>;

/// An in-memory untrusted store for tests, benches, and simulation.
///
/// Clones share the same underlying storage, so a test can keep a handle,
/// "crash" the database object, and reopen from the same bytes — which is
/// exactly how the recovery tests simulate power failure. It also exposes
/// [`MemStore::corrupt`] so adversarial tests can flip bits the way the
/// paper's attacker would.
#[derive(Clone, Default)]
pub struct MemStore {
    files: Arc<Mutex<HashMap<String, MemFileData>>>,
}

impl MemStore {
    /// Create an empty in-memory store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Flip the bits of `len` bytes at `offset` in the named file — the
    /// attacker's primitive. Fails if the range is out of bounds.
    pub fn corrupt(&self, name: &str, offset: u64, len: usize) -> Result<()> {
        let files = self.files.lock();
        let file = files
            .get(name)
            .ok_or_else(|| PlatformError::NotFound(name.to_string()))?;
        let mut data = file.write();
        let start = offset as usize;
        if start + len > data.len() {
            return Err(PlatformError::ShortRead {
                offset,
                wanted: len,
                available: data.len().saturating_sub(start),
            });
        }
        for b in &mut data[start..start + len] {
            *b = !*b;
        }
        Ok(())
    }

    /// Byte-for-byte copy of the entire store (used by replay-attack tests:
    /// save a copy, make purchases, restore the copy).
    pub fn deep_clone(&self) -> MemStore {
        let files = self.files.lock();
        let copied: HashMap<String, MemFileData> = files
            .iter()
            .map(|(k, v)| (k.clone(), Arc::new(RwLock::new(v.read().clone()))))
            .collect();
        MemStore {
            files: Arc::new(Mutex::new(copied)),
        }
    }

    /// Replace this store's contents with those of `other` (the "replay"
    /// half of the attack above).
    pub fn restore_from(&self, other: &MemStore) {
        let src = other.files.lock();
        let copied: HashMap<String, MemFileData> = src
            .iter()
            .map(|(k, v)| (k.clone(), Arc::new(RwLock::new(v.read().clone()))))
            .collect();
        *self.files.lock() = copied;
    }

    /// Raw bytes of a file, for white-box assertions in tests.
    pub fn raw(&self, name: &str) -> Result<Vec<u8>> {
        let files = self.files.lock();
        let file = files
            .get(name)
            .ok_or_else(|| PlatformError::NotFound(name.to_string()))?;
        let data = file.read().clone();
        Ok(data)
    }
}

struct MemFile {
    data: MemFileData,
}

impl RandomAccessFile for MemFile {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        let data = self.data.read();
        let start = offset as usize;
        let end = start.checked_add(buf.len()).expect("offset overflow");
        if end > data.len() {
            return Err(PlatformError::ShortRead {
                offset,
                wanted: buf.len(),
                available: data.len().saturating_sub(start),
            });
        }
        buf.copy_from_slice(&data[start..end]);
        Ok(())
    }

    fn write_at(&self, offset: u64, bytes: &[u8]) -> Result<()> {
        let mut data = self.data.write();
        let start = offset as usize;
        let end = start + bytes.len();
        if end > data.len() {
            data.resize(end, 0);
        }
        data[start..end].copy_from_slice(bytes);
        Ok(())
    }

    fn len(&self) -> Result<u64> {
        Ok(self.data.read().len() as u64)
    }

    fn set_len(&self, len: u64) -> Result<()> {
        self.data.write().resize(len as usize, 0);
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        Ok(())
    }
}

impl UntrustedStore for MemStore {
    fn open(&self, name: &str, create: bool) -> Result<Box<dyn RandomAccessFile>> {
        let mut files = self.files.lock();
        match files.get(name) {
            Some(data) => Ok(Box::new(MemFile { data: data.clone() })),
            None if create => {
                let data: MemFileData = Arc::new(RwLock::new(Vec::new()));
                files.insert(name.to_string(), data.clone());
                Ok(Box::new(MemFile { data }))
            }
            None => Err(PlatformError::NotFound(name.to_string())),
        }
    }

    fn exists(&self, name: &str) -> Result<bool> {
        Ok(self.files.lock().contains_key(name))
    }

    fn remove(&self, name: &str) -> Result<()> {
        self.files
            .lock()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| PlatformError::NotFound(name.to_string()))
    }

    fn list(&self) -> Result<Vec<String>> {
        Ok(self.files.lock().keys().cloned().collect())
    }
}

// ---------------------------------------------------------------------------
// Name-prefixed view
// ---------------------------------------------------------------------------

/// A view of an untrusted store under a flat name prefix.
///
/// Every file name is prepended with `prefix` on the way in and stripped on
/// the way out of [`list`](UntrustedStore::list), so several independent
/// stores (e.g. the shards of a sharded chunk store) can share one backing
/// namespace without colliding. The prefix stays flat — no separators that
/// [`DirStore`] would reject — and because the wrapping happens *above* the
/// backing store, fault-injection wrappers underneath observe the prefixed
/// names and can attribute every write to its shard.
pub struct PrefixedStore {
    inner: Arc<dyn UntrustedStore>,
    prefix: String,
}

impl PrefixedStore {
    /// View `inner` under `prefix`. The prefix must be flat (no path
    /// separators) so prefixed names stay valid for every backing store.
    pub fn new(inner: Arc<dyn UntrustedStore>, prefix: impl Into<String>) -> Self {
        let prefix = prefix.into();
        assert!(
            !prefix.contains('/') && !prefix.contains('\\'),
            "prefixes must be flat"
        );
        PrefixedStore { inner, prefix }
    }

    fn full(&self, name: &str) -> String {
        format!("{}{}", self.prefix, name)
    }
}

impl UntrustedStore for PrefixedStore {
    fn open(&self, name: &str, create: bool) -> Result<Box<dyn RandomAccessFile>> {
        self.inner.open(&self.full(name), create)
    }

    fn exists(&self, name: &str) -> Result<bool> {
        self.inner.exists(&self.full(name))
    }

    fn remove(&self, name: &str) -> Result<()> {
        self.inner.remove(&self.full(name))
    }

    fn list(&self) -> Result<Vec<String>> {
        Ok(self
            .inner
            .list()?
            .into_iter()
            .filter_map(|n| n.strip_prefix(&self.prefix).map(str::to_string))
            .collect())
    }

    fn total_size(&self) -> Result<u64> {
        let mut total = 0;
        for name in self.list()? {
            total += self.open(&name, false)?.len()?;
        }
        Ok(total)
    }
}

// ---------------------------------------------------------------------------
// Directory-backed implementation
// ---------------------------------------------------------------------------

/// An untrusted store backed by a directory on the local filesystem —
/// the deployment configuration (flash card / hard disk in the paper).
pub struct DirStore {
    dir: PathBuf,
}

impl DirStore {
    /// Open (creating if needed) a store rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(DirStore { dir })
    }

    fn path_of(&self, name: &str) -> PathBuf {
        // Keep names flat; reject path traversal outright.
        assert!(
            !name.contains('/') && !name.contains('\\') && name != "." && name != "..",
            "untrusted store names must be flat"
        );
        self.dir.join(name)
    }
}

struct DirFile {
    file: Mutex<fs::File>,
}

impl RandomAccessFile for DirFile {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        let mut file = self.file.lock();
        let len = file.metadata()?.len();
        if offset + buf.len() as u64 > len {
            return Err(PlatformError::ShortRead {
                offset,
                wanted: buf.len(),
                available: len.saturating_sub(offset) as usize,
            });
        }
        file.seek(SeekFrom::Start(offset))?;
        file.read_exact(buf)?;
        Ok(())
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(offset))?;
        file.write_all(data)?;
        Ok(())
    }

    fn len(&self) -> Result<u64> {
        Ok(self.file.lock().metadata()?.len())
    }

    fn set_len(&self, len: u64) -> Result<()> {
        self.file.lock().set_len(len)?;
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        self.file.lock().sync_data()?;
        Ok(())
    }
}

impl UntrustedStore for DirStore {
    fn open(&self, name: &str, create: bool) -> Result<Box<dyn RandomAccessFile>> {
        let path = self.path_of(name);
        let file = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(create)
            .open(&path)
            .map_err(|e| {
                if e.kind() == std::io::ErrorKind::NotFound {
                    PlatformError::NotFound(name.to_string())
                } else {
                    PlatformError::Io(e)
                }
            })?;
        Ok(Box::new(DirFile {
            file: Mutex::new(file),
        }))
    }

    fn exists(&self, name: &str) -> Result<bool> {
        Ok(self.path_of(name).exists())
    }

    fn remove(&self, name: &str) -> Result<()> {
        fs::remove_file(self.path_of(name)).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                PlatformError::NotFound(name.to_string())
            } else {
                PlatformError::Io(e)
            }
        })
    }

    fn list(&self) -> Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                if let Ok(name) = entry.file_name().into_string() {
                    names.push(name);
                }
            }
        }
        Ok(names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise_store(store: &dyn UntrustedStore) {
        // Create, write, read back.
        let f = store.open("a", true).unwrap();
        f.write_at(0, b"hello").unwrap();
        f.write_at(5, b" world").unwrap();
        let mut buf = [0u8; 11];
        f.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"hello world");
        assert_eq!(f.len().unwrap(), 11);

        // Sparse write zero-fills.
        f.write_at(20, b"x").unwrap();
        let mut gap = [1u8; 9];
        f.read_at(11, &mut gap).unwrap();
        assert_eq!(gap, [0u8; 9]);

        // Short read is an error.
        let mut big = [0u8; 100];
        assert!(matches!(
            f.read_at(0, &mut big),
            Err(PlatformError::ShortRead { .. })
        ));

        // Truncate.
        f.set_len(5).unwrap();
        assert_eq!(f.len().unwrap(), 5);
        f.sync().unwrap();

        // Namespace operations.
        assert!(store.exists("a").unwrap());
        assert!(!store.exists("b").unwrap());
        assert!(matches!(
            store.open("b", false),
            Err(PlatformError::NotFound(_))
        ));
        store
            .open("b", true)
            .unwrap()
            .write_at(0, &[9; 10])
            .unwrap();
        let mut names = store.list().unwrap();
        names.sort();
        assert_eq!(names, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(store.total_size().unwrap(), 15);
        store.remove("b").unwrap();
        assert!(matches!(store.remove("b"), Err(PlatformError::NotFound(_))));
    }

    #[test]
    fn mem_store_semantics() {
        exercise_store(&MemStore::new());
    }

    #[test]
    fn prefixed_store_isolates_namespaces() {
        let backing = Arc::new(MemStore::new());
        let a = PrefixedStore::new(backing.clone(), "a--");
        let b = PrefixedStore::new(backing.clone(), "b--");
        exercise_store(&a);
        a.open("f", true).unwrap().write_at(0, b"in a").unwrap();
        assert!(!b.exists("f").unwrap());
        b.open("f", true).unwrap().write_at(0, b"in b!").unwrap();
        // The backing store sees both, under their prefixed names.
        assert!(backing.exists("a--f").unwrap());
        assert_eq!(backing.raw("b--f").unwrap(), b"in b!");
        // Each view lists only its own names, stripped.
        assert!(b.list().unwrap().contains(&"f".to_string()));
        assert!(!a.list().unwrap().contains(&"b--f".to_string()));
        assert_eq!(b.total_size().unwrap(), 5);
    }

    #[test]
    fn dir_store_semantics() {
        let dir = tempfile::tempdir().unwrap();
        exercise_store(&DirStore::new(dir.path()).unwrap());
    }

    #[test]
    fn mem_store_clones_share_state() {
        let a = MemStore::new();
        let b = a.clone();
        a.open("f", true).unwrap().write_at(0, b"shared").unwrap();
        let f = b.open("f", false).unwrap();
        let mut buf = [0u8; 6];
        f.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"shared");
    }

    #[test]
    fn mem_store_deep_clone_is_isolated() {
        let a = MemStore::new();
        a.open("f", true).unwrap().write_at(0, b"v1").unwrap();
        let snapshot = a.deep_clone();
        a.open("f", false).unwrap().write_at(0, b"v2").unwrap();
        assert_eq!(snapshot.raw("f").unwrap(), b"v1");
        assert_eq!(a.raw("f").unwrap(), b"v2");
        // Replay the old state.
        a.restore_from(&snapshot);
        assert_eq!(a.raw("f").unwrap(), b"v1");
    }

    #[test]
    fn mem_store_corrupt_flips_bits() {
        let s = MemStore::new();
        s.open("f", true)
            .unwrap()
            .write_at(0, &[0xFF, 0x00])
            .unwrap();
        s.corrupt("f", 0, 1).unwrap();
        assert_eq!(s.raw("f").unwrap(), vec![0x00, 0x00]);
        assert!(s.corrupt("f", 1, 5).is_err());
        assert!(s.corrupt("missing", 0, 1).is_err());
    }

    #[test]
    fn dir_store_persists_across_reopen() {
        let dir = tempfile::tempdir().unwrap();
        {
            let s = DirStore::new(dir.path()).unwrap();
            s.open("f", true).unwrap().write_at(0, b"durable").unwrap();
        }
        let s = DirStore::new(dir.path()).unwrap();
        let f = s.open("f", false).unwrap();
        let mut buf = [0u8; 7];
        f.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"durable");
    }

    #[test]
    #[should_panic(expected = "flat")]
    fn dir_store_rejects_path_traversal() {
        let dir = tempfile::tempdir().unwrap();
        let s = DirStore::new(dir.path()).unwrap();
        let _ = s.open("../escape", true);
    }
}
