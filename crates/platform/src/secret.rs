//! The secret store: a small trusted-read secret.
//!
//! "We assume that the platform provides a small secret store, which can be
//! read only by the database system … In most devices, the secret store can
//! be implemented in a ROM … A more secure implementation may use a
//! battery-backed SRAM that can be zeroed if physical tampering is
//! detected." (paper §2). Programs that can read it are *authorized* (§3).
//!
//! The database derives all of its keys (chunk encryption, anchor MAC,
//! backup MAC) from this one master secret via domain-separated HMAC — see
//! `tdb_crypto::derive_key`.

use crate::error::{PlatformError, Result};
use std::fs;
use std::path::PathBuf;

/// Number of bytes in the master secret.
pub const SECRET_LEN: usize = 32;

/// Read access to the platform master secret.
pub trait SecretStore: Send + Sync {
    /// Return the 32-byte master secret.
    fn master_secret(&self) -> Result<[u8; SECRET_LEN]>;
}

/// In-memory secret store: the "ROM" configuration, for embedding the secret
/// in the (authorized) program image, and for tests.
#[derive(Clone)]
pub struct MemSecretStore {
    secret: [u8; SECRET_LEN],
}

impl MemSecretStore {
    /// Hold the given secret.
    pub fn new(secret: [u8; SECRET_LEN]) -> Self {
        MemSecretStore { secret }
    }

    /// Convenience for tests: derive a secret from a short label.
    pub fn from_label(label: &str) -> Self {
        let mut secret = [0u8; SECRET_LEN];
        let bytes = label.as_bytes();
        for (i, b) in secret.iter_mut().enumerate() {
            *b = bytes[i % bytes.len().max(1)] ^ (i as u8).wrapping_mul(0x9d);
        }
        MemSecretStore { secret }
    }
}

impl SecretStore for MemSecretStore {
    fn master_secret(&self) -> Result<[u8; SECRET_LEN]> {
        Ok(self.secret)
    }
}

/// File-backed secret store. In deployment the file would live on tamper-
/// resistant media with OS access control; for this reproduction it lets the
/// examples persist a database across runs.
pub struct FileSecretStore {
    path: PathBuf,
}

impl FileSecretStore {
    /// Use the secret in `path`, creating it with `initial` if missing.
    pub fn open_or_init(path: impl Into<PathBuf>, initial: [u8; SECRET_LEN]) -> Result<Self> {
        let path = path.into();
        if !path.exists() {
            fs::write(&path, initial)?;
        }
        Ok(FileSecretStore { path })
    }
}

impl SecretStore for FileSecretStore {
    fn master_secret(&self) -> Result<[u8; SECRET_LEN]> {
        let data = fs::read(&self.path)?;
        let arr: [u8; SECRET_LEN] = data.try_into().map_err(|_| {
            PlatformError::CorruptSubstrate(format!(
                "secret store must hold exactly {SECRET_LEN} bytes"
            ))
        })?;
        Ok(arr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_secret_roundtrip() {
        let s = MemSecretStore::new([7u8; SECRET_LEN]);
        assert_eq!(s.master_secret().unwrap(), [7u8; SECRET_LEN]);
    }

    #[test]
    fn from_label_is_deterministic_and_distinct() {
        let a = MemSecretStore::from_label("device-a");
        let b = MemSecretStore::from_label("device-b");
        assert_eq!(
            a.master_secret().unwrap(),
            MemSecretStore::from_label("device-a")
                .master_secret()
                .unwrap()
        );
        assert_ne!(a.master_secret().unwrap(), b.master_secret().unwrap());
    }

    #[test]
    fn file_secret_creates_and_persists() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("secret");
        let s = FileSecretStore::open_or_init(&path, [3u8; SECRET_LEN]).unwrap();
        assert_eq!(s.master_secret().unwrap(), [3u8; SECRET_LEN]);
        // Second open does not overwrite.
        let s2 = FileSecretStore::open_or_init(&path, [9u8; SECRET_LEN]).unwrap();
        assert_eq!(s2.master_secret().unwrap(), [3u8; SECRET_LEN]);
    }

    #[test]
    fn file_secret_rejects_wrong_length() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("secret");
        fs::write(&path, b"short").unwrap();
        let s = FileSecretStore::open_or_init(&path, [0u8; SECRET_LEN]).unwrap();
        assert!(matches!(
            s.master_secret(),
            Err(PlatformError::CorruptSubstrate(_))
        ));
    }
}
