//! The archival store: stream-oriented storage for backups.
//!
//! "The archival store provides a stream-based interface to a sequential
//! storage system. A typical implementation of the backup store may stage
//! backups in the untrusted store and opportunistically migrate them to a
//! remote server." (paper §2). Like the untrusted store it is fully under
//! attacker control; the backup store validates everything it reads back.

use crate::error::{PlatformError, Result};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs;
use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::Arc;

/// A namespace of append-once byte streams.
pub trait ArchivalStore: Send + Sync {
    /// Create a new stream. Fails if the name already exists.
    fn create(&self, name: &str) -> Result<Box<dyn Write + Send>>;

    /// Open an existing stream for sequential reading.
    fn open(&self, name: &str) -> Result<Box<dyn Read + Send>>;

    /// All stream names, unordered.
    fn list(&self) -> Result<Vec<String>>;

    /// Remove a stream.
    fn remove(&self, name: &str) -> Result<()>;

    /// Whether a stream exists.
    fn exists(&self, name: &str) -> Result<bool> {
        Ok(self.list()?.iter().any(|n| n == name))
    }
}

// ---------------------------------------------------------------------------
// In-memory implementation
// ---------------------------------------------------------------------------

type SharedStream = Arc<Mutex<Vec<u8>>>;

/// In-memory archival store for tests and simulation. Clones share state.
#[derive(Clone, Default)]
pub struct MemArchive {
    streams: Arc<Mutex<HashMap<String, SharedStream>>>,
}

impl MemArchive {
    /// Create an empty archive.
    pub fn new() -> Self {
        Self::default()
    }

    /// Flip bits in a stored stream (attacker primitive for restore tests).
    pub fn corrupt(&self, name: &str, offset: usize, len: usize) -> Result<()> {
        let streams = self.streams.lock();
        let stream = streams
            .get(name)
            .ok_or_else(|| PlatformError::NotFound(name.to_string()))?;
        let mut data = stream.lock();
        if offset + len > data.len() {
            return Err(PlatformError::ShortRead {
                offset: offset as u64,
                wanted: len,
                available: data.len().saturating_sub(offset),
            });
        }
        for b in &mut data[offset..offset + len] {
            *b = !*b;
        }
        Ok(())
    }

    /// Truncate a stored stream (simulates a cut-off upload).
    pub fn truncate(&self, name: &str, len: usize) -> Result<()> {
        let streams = self.streams.lock();
        let stream = streams
            .get(name)
            .ok_or_else(|| PlatformError::NotFound(name.to_string()))?;
        stream.lock().truncate(len);
        Ok(())
    }

    /// Length of a stored stream in bytes.
    pub fn len_of(&self, name: &str) -> Result<usize> {
        let streams = self.streams.lock();
        let stream = streams
            .get(name)
            .ok_or_else(|| PlatformError::NotFound(name.to_string()))?;
        let len = stream.lock().len();
        Ok(len)
    }
}

struct MemStreamWriter {
    data: Arc<Mutex<Vec<u8>>>,
}

impl Write for MemStreamWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.data.lock().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

struct MemStreamReader {
    data: Arc<Mutex<Vec<u8>>>,
    pos: usize,
}

impl Read for MemStreamReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let data = self.data.lock();
        let available = data.len().saturating_sub(self.pos);
        let take = available.min(buf.len());
        buf[..take].copy_from_slice(&data[self.pos..self.pos + take]);
        self.pos += take;
        Ok(take)
    }
}

impl ArchivalStore for MemArchive {
    fn create(&self, name: &str) -> Result<Box<dyn Write + Send>> {
        let mut streams = self.streams.lock();
        if streams.contains_key(name) {
            return Err(PlatformError::AlreadyExists(name.to_string()));
        }
        let data = Arc::new(Mutex::new(Vec::new()));
        streams.insert(name.to_string(), data.clone());
        Ok(Box::new(MemStreamWriter { data }))
    }

    fn open(&self, name: &str) -> Result<Box<dyn Read + Send>> {
        let streams = self.streams.lock();
        let data = streams
            .get(name)
            .ok_or_else(|| PlatformError::NotFound(name.to_string()))?
            .clone();
        Ok(Box::new(MemStreamReader { data, pos: 0 }))
    }

    fn list(&self) -> Result<Vec<String>> {
        Ok(self.streams.lock().keys().cloned().collect())
    }

    fn remove(&self, name: &str) -> Result<()> {
        self.streams
            .lock()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| PlatformError::NotFound(name.to_string()))
    }
}

// ---------------------------------------------------------------------------
// Directory-backed implementation
// ---------------------------------------------------------------------------

/// Archival store backed by files in a directory — the "stage backups in the
/// untrusted store" deployment from the paper.
pub struct DirArchive {
    dir: PathBuf,
}

impl DirArchive {
    /// Open (creating if necessary) an archive rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(DirArchive { dir })
    }

    fn path_of(&self, name: &str) -> PathBuf {
        assert!(
            !name.contains('/') && !name.contains('\\') && name != "." && name != "..",
            "archival stream names must be flat"
        );
        self.dir.join(name)
    }
}

impl ArchivalStore for DirArchive {
    fn create(&self, name: &str) -> Result<Box<dyn Write + Send>> {
        let path = self.path_of(name);
        let file = fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(|e| {
                if e.kind() == std::io::ErrorKind::AlreadyExists {
                    PlatformError::AlreadyExists(name.to_string())
                } else {
                    PlatformError::Io(e)
                }
            })?;
        Ok(Box::new(std::io::BufWriter::new(file)))
    }

    fn open(&self, name: &str) -> Result<Box<dyn Read + Send>> {
        let file = fs::File::open(self.path_of(name)).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                PlatformError::NotFound(name.to_string())
            } else {
                PlatformError::Io(e)
            }
        })?;
        Ok(Box::new(std::io::BufReader::new(file)))
    }

    fn list(&self) -> Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                if let Ok(name) = entry.file_name().into_string() {
                    names.push(name);
                }
            }
        }
        Ok(names)
    }

    fn remove(&self, name: &str) -> Result<()> {
        fs::remove_file(self.path_of(name)).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                PlatformError::NotFound(name.to_string())
            } else {
                PlatformError::Io(e)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(archive: &dyn ArchivalStore) {
        let mut w = archive.create("backup.1").unwrap();
        w.write_all(b"full backup payload").unwrap();
        w.flush().unwrap();
        drop(w);

        assert!(matches!(
            archive.create("backup.1"),
            Err(PlatformError::AlreadyExists(_))
        ));
        assert!(archive.exists("backup.1").unwrap());
        assert!(!archive.exists("backup.2").unwrap());

        let mut r = archive.open("backup.1").unwrap();
        let mut out = String::new();
        r.read_to_string(&mut out).unwrap();
        assert_eq!(out, "full backup payload");

        assert!(matches!(
            archive.open("nope"),
            Err(PlatformError::NotFound(_))
        ));
        archive.remove("backup.1").unwrap();
        assert!(matches!(
            archive.remove("backup.1"),
            Err(PlatformError::NotFound(_))
        ));
    }

    #[test]
    fn mem_archive_semantics() {
        exercise(&MemArchive::new());
    }

    #[test]
    fn dir_archive_semantics() {
        let dir = tempfile::tempdir().unwrap();
        exercise(&DirArchive::new(dir.path()).unwrap());
    }

    #[test]
    fn mem_archive_corrupt_and_truncate() {
        let a = MemArchive::new();
        a.create("s").unwrap().write_all(&[0xAA; 8]).unwrap();
        assert_eq!(a.len_of("s").unwrap(), 8);
        a.corrupt("s", 0, 2).unwrap();
        let mut r = a.open("s").unwrap();
        let mut buf = Vec::new();
        r.read_to_end(&mut buf).unwrap();
        assert_eq!(&buf[..2], &[0x55, 0x55]);
        a.truncate("s", 3).unwrap();
        assert_eq!(a.len_of("s").unwrap(), 3);
    }
}
