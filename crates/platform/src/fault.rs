//! Deterministic fault injection over any untrusted store.
//!
//! Crash-consistency claims are only as good as the crash tests behind them.
//! [`FaultStore`] wraps an [`UntrustedStore`] and consults a shared
//! [`FaultPlan`] holding a [`CrashSchedule`]:
//!
//! * **byte-budget** ([`FaultPlan::crash_after_bytes`]) — after a configured
//!   number of written bytes the simulated device "loses power": the current
//!   write is truncated at the budget boundary (a torn write) and every
//!   subsequent operation fails with [`PlatformError::Crashed`];
//! * **operation-granular** ([`FaultPlan::crash_on_write`],
//!   [`FaultPlan::crash_on_sync`]) — the crash fires during the K-th write
//!   (tearing it at a configurable byte fraction, which may be 0 or the full
//!   length) or in place of the K-th `sync`.
//!
//! The plan can also **trace** every write/sync boundary it observes
//! ([`FaultPlan::set_tracing`], [`FaultPlan::take_trace`]), including the
//! pre-image bytes each write overwrote. A torture harness replays a
//! workload once with tracing on to enumerate all crash points, then sweeps
//! them; the pre-images let it mount *segment rollback* attacks (restore an
//! older version of one file) without any out-of-band snapshots — see
//! [`apply_tamper`] and [`TamperMode`] for the post-crash tamper modes
//! (bit-flip, block-swap, rollback/replay).
//!
//! Recovery tests reopen the *underlying* store, which retains exactly the
//! bytes that made it out before the cut.

use crate::error::{PlatformError, Result};
use crate::untrusted::{RandomAccessFile, UntrustedStore};
use parking_lot::Mutex;
use std::sync::Arc;

/// When the simulated power cut fires.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CrashSchedule {
    /// Never crash.
    Never,
    /// Crash once this many further bytes have been written (the budget is
    /// consumed across writes; the write that exhausts it is torn at the
    /// boundary).
    AfterBytes(u64),
    /// Crash during the `index`-th write operation (0-based, counted across
    /// all files): `cut_num / cut_den` of the write's bytes land first.
    /// `cut_num == cut_den` lets every byte land and kills the device right
    /// after — the caller still sees [`PlatformError::Crashed`] because the
    /// power was gone before the write could be acknowledged.
    OnWrite {
        /// 0-based index of the write operation to crash in.
        index: u64,
        /// Numerator of the torn-byte fraction.
        cut_num: u32,
        /// Denominator of the torn-byte fraction (must be > 0).
        cut_den: u32,
    },
    /// Crash in place of the `index`-th `sync` (0-based): the sync never
    /// reaches the device, which then stays dead.
    OnSync {
        /// 0-based index of the sync operation to crash at.
        index: u64,
    },
}

/// One observed storage operation (recorded when tracing is enabled).
#[derive(Clone, Debug)]
pub enum FaultEvent {
    /// A positioned write.
    Write(WriteEvent),
    /// A completed `sync`.
    Sync {
        /// File the sync applied to.
        file: String,
    },
    /// A `set_len` call (not a sweepable crash point; recorded so traces
    /// describe the full mutation history).
    Truncate {
        /// File that was resized.
        file: String,
        /// Length before the call.
        old_len: u64,
        /// Length requested.
        new_len: u64,
    },
}

/// Details of one traced write, with enough context to undo it exactly.
#[derive(Clone, Debug)]
pub struct WriteEvent {
    /// File written to.
    pub file: String,
    /// Byte offset of the write.
    pub offset: u64,
    /// Bytes the caller asked to write.
    pub len: u64,
    /// Bytes that actually landed (less than `len` exactly when this write
    /// was torn by the crash).
    pub written: u64,
    /// File length before the write.
    pub old_len: u64,
    /// Previous contents of the overwritten range, clamped to the old file
    /// length (shorter than `len` when the write extended the file).
    pub pre_image: Vec<u8>,
}

#[derive(Default)]
struct PlanState {
    schedule: Option<CrashSchedule>,
    crashed: bool,
    write_ops: u64,
    sync_ops: u64,
    bytes_written: u64,
    tracing: bool,
    trace: Vec<FaultEvent>,
}

impl PlanState {
    fn schedule(&self) -> &CrashSchedule {
        self.schedule.as_ref().unwrap_or(&CrashSchedule::Never)
    }
}

/// Shared crash schedule plus the event trace. Clones share state, so the
/// plan handed to a [`FaultStore`] can be rearmed and inspected from the
/// test driver.
#[derive(Clone, Default)]
pub struct FaultPlan {
    state: Arc<Mutex<PlanState>>,
}

impl FaultPlan {
    /// A plan that never crashes (can be rearmed later).
    pub fn unlimited() -> Self {
        FaultPlan::default()
    }

    /// A plan that crashes after `bytes` further written bytes.
    pub fn crash_after_bytes(bytes: u64) -> Self {
        Self::with_schedule(CrashSchedule::AfterBytes(bytes))
    }

    /// A plan that crashes during the `index`-th write (0-based), after
    /// `cut_num / cut_den` of its bytes have landed.
    pub fn crash_on_write(index: u64, cut_num: u32, cut_den: u32) -> Self {
        assert!(
            cut_den > 0,
            "torn-write fraction needs a nonzero denominator"
        );
        assert!(cut_num <= cut_den, "torn-write fraction must be ≤ 1");
        Self::with_schedule(CrashSchedule::OnWrite {
            index,
            cut_num,
            cut_den,
        })
    }

    /// A plan that crashes in place of the `index`-th sync (0-based).
    pub fn crash_on_sync(index: u64) -> Self {
        Self::with_schedule(CrashSchedule::OnSync { index })
    }

    /// A plan armed with an explicit schedule.
    pub fn with_schedule(schedule: CrashSchedule) -> Self {
        let plan = Self::unlimited();
        plan.state.lock().schedule = Some(schedule);
        plan
    }

    /// Rearm with a new byte budget and clear the crashed flag (kept for the
    /// pre-schedule API; equivalent to [`FaultPlan::rearm_with`] +
    /// [`CrashSchedule::AfterBytes`]).
    pub fn rearm(&self, bytes: u64) {
        self.rearm_with(CrashSchedule::AfterBytes(bytes));
    }

    /// Rearm with an arbitrary schedule: clears the crashed flag and resets
    /// the operation counters (so schedule indices are relative to the
    /// rearm point), but keeps any accumulated trace.
    pub fn rearm_with(&self, schedule: CrashSchedule) {
        let mut st = self.state.lock();
        st.schedule = Some(schedule);
        st.crashed = false;
        st.write_ops = 0;
        st.sync_ops = 0;
        st.bytes_written = 0;
    }

    /// Whether the simulated crash has occurred.
    pub fn has_crashed(&self) -> bool {
        self.state.lock().crashed
    }

    /// Number of completed `sync` calls (lets tests assert durability
    /// behaviour, e.g. "a nondurable commit must not sync"). A sync the
    /// crash schedule kills is *not* counted — it never reached the device.
    pub fn sync_count(&self) -> u64 {
        self.state.lock().sync_ops
    }

    /// Number of write operations observed (including a final torn one).
    pub fn write_ops(&self) -> u64 {
        self.state.lock().write_ops
    }

    /// Total bytes that actually landed on the device.
    pub fn bytes_written(&self) -> u64 {
        self.state.lock().bytes_written
    }

    /// Enable or disable event tracing. Tracing captures pre-image bytes of
    /// every write, so leave it off for workloads where memory matters.
    pub fn set_tracing(&self, on: bool) {
        self.state.lock().tracing = on;
    }

    /// Drain and return the recorded events.
    pub fn take_trace(&self) -> Vec<FaultEvent> {
        std::mem::take(&mut self.state.lock().trace)
    }

    fn check_alive(&self) -> Result<()> {
        if self.has_crashed() {
            Err(PlatformError::Crashed)
        } else {
            Ok(())
        }
    }

    /// Decide how many of `wanted` bytes this write may land, advancing the
    /// write-op counter and firing the crash if scheduled. Returns
    /// `(allowed, crashes_now)`.
    fn admit_write(&self, wanted: u64) -> (u64, bool) {
        let mut st = self.state.lock();
        let op_index = st.write_ops;
        st.write_ops += 1;
        let (allowed, crash) = match *st.schedule() {
            CrashSchedule::Never | CrashSchedule::OnSync { .. } => (wanted, false),
            CrashSchedule::AfterBytes(remaining) => {
                let allowed = remaining.min(wanted);
                (allowed, allowed < wanted)
            }
            CrashSchedule::OnWrite {
                index,
                cut_num,
                cut_den,
            } => {
                if op_index == index {
                    (wanted * cut_num as u64 / cut_den as u64, true)
                } else {
                    (wanted, false)
                }
            }
        };
        if let Some(CrashSchedule::AfterBytes(remaining)) = st.schedule.as_mut() {
            *remaining -= allowed.min(*remaining);
        }
        if crash {
            st.crashed = true;
        }
        st.bytes_written += allowed;
        (allowed, crash)
    }

    /// Decide whether the next sync proceeds, counting it if it does.
    fn admit_sync(&self) -> bool {
        let mut st = self.state.lock();
        let op_index = st.sync_ops;
        if matches!(*st.schedule(), CrashSchedule::OnSync { index } if index == op_index) {
            st.crashed = true;
            return false;
        }
        st.sync_ops += 1;
        true
    }

    fn tracing(&self) -> bool {
        self.state.lock().tracing
    }

    fn record(&self, event: FaultEvent) {
        let mut st = self.state.lock();
        if st.tracing {
            st.trace.push(event);
        }
    }
}

/// An untrusted store whose writes obey a [`FaultPlan`].
pub struct FaultStore<S> {
    inner: S,
    plan: FaultPlan,
}

impl<S: UntrustedStore> FaultStore<S> {
    /// Wrap `inner` under `plan`.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        FaultStore { inner, plan }
    }

    /// Access the underlying store (post-crash inspection / reopen).
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The plan, for rearming or assertions.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

struct FaultFile {
    name: String,
    inner: Box<dyn RandomAccessFile>,
    plan: FaultPlan,
}

impl RandomAccessFile for FaultFile {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.plan.check_alive()?;
        self.inner.read_at(offset, buf)
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        self.plan.check_alive()?;
        // Capture the pre-image before any byte lands, so the trace can undo
        // this write exactly even if it is torn.
        let pre = if self.plan.tracing() {
            let old_len = self.inner.len()?;
            let end = old_len.min(offset + data.len() as u64);
            let mut pre_image = vec![0u8; end.saturating_sub(offset) as usize];
            if !pre_image.is_empty() {
                self.inner.read_at(offset, &mut pre_image)?;
            }
            Some((old_len, pre_image))
        } else {
            None
        };
        let (allowed, crashes) = self.plan.admit_write(data.len() as u64);
        let allowed = allowed as usize;
        if allowed > 0 {
            self.inner.write_at(offset, &data[..allowed])?;
        }
        if let Some((old_len, pre_image)) = pre {
            self.plan.record(FaultEvent::Write(WriteEvent {
                file: self.name.clone(),
                offset,
                len: data.len() as u64,
                written: allowed as u64,
                old_len,
                pre_image,
            }));
        }
        if crashes || allowed < data.len() {
            return Err(PlatformError::Crashed);
        }
        Ok(())
    }

    fn len(&self) -> Result<u64> {
        self.plan.check_alive()?;
        self.inner.len()
    }

    fn set_len(&self, len: u64) -> Result<()> {
        self.plan.check_alive()?;
        if self.plan.tracing() {
            let old_len = self.inner.len()?;
            self.plan.record(FaultEvent::Truncate {
                file: self.name.clone(),
                old_len,
                new_len: len,
            });
        }
        self.inner.set_len(len)
    }

    fn sync(&self) -> Result<()> {
        self.plan.check_alive()?;
        if !self.plan.admit_sync() {
            return Err(PlatformError::Crashed);
        }
        self.plan.record(FaultEvent::Sync {
            file: self.name.clone(),
        });
        self.inner.sync()
    }
}

impl<S: UntrustedStore> UntrustedStore for FaultStore<S> {
    fn open(&self, name: &str, create: bool) -> Result<Box<dyn RandomAccessFile>> {
        self.plan.check_alive()?;
        let inner = self.inner.open(name, create)?;
        Ok(Box::new(FaultFile {
            name: name.to_string(),
            inner,
            plan: self.plan.clone(),
        }))
    }

    fn exists(&self, name: &str) -> Result<bool> {
        self.plan.check_alive()?;
        self.inner.exists(name)
    }

    fn remove(&self, name: &str) -> Result<()> {
        self.plan.check_alive()?;
        self.inner.remove(name)
    }

    fn list(&self) -> Result<Vec<String>> {
        self.plan.check_alive()?;
        self.inner.list()
    }
}

// ---------------------------------------------------------------------------
// Post-crash tamper modes
// ---------------------------------------------------------------------------

/// A deterministic post-crash tamper, applied to the surviving bytes before
/// recovery runs. `pick` values are reduced modulo whatever is applicable,
/// so any u64 (e.g. from a test seed) selects a valid target.
#[derive(Clone, Debug)]
pub enum TamperMode {
    /// Flip one byte somewhere in the written regions of the store.
    BitFlip {
        /// Selects which written byte to flip.
        pick: u64,
    },
    /// Swap two `block`-sized spans of written bytes.
    BlockSwap {
        /// Selects the first span.
        pick_a: u64,
        /// Selects the second span.
        pick_b: u64,
        /// Span length in bytes.
        block: usize,
    },
    /// Roll one file back to an earlier state of the *same run* by undoing
    /// the most recent `fraction`-th of its writes (a file-granular replay
    /// attack: the attacker restores a stale copy of a segment).
    Rollback {
        /// Selects which written file to roll back.
        pick: u64,
    },
}

/// What [`apply_tamper`] actually changed.
#[derive(Clone, Debug)]
pub struct TamperReceipt {
    /// Human-readable description of the mutation.
    pub description: String,
    /// Whether any byte actually changed (a block-swap of identical blocks
    /// or a rollback over identical pre-images mutates nothing; the harness
    /// must not count those as injected tampers).
    pub changed: bool,
}

/// Written regions per the trace: `(file, offset, landed_len)`.
fn written_regions(trace: &[FaultEvent]) -> Vec<(&str, u64, u64)> {
    trace
        .iter()
        .filter_map(|e| match e {
            FaultEvent::Write(w) if w.written > 0 => Some((w.file.as_str(), w.offset, w.written)),
            _ => None,
        })
        .collect()
}

/// Clip traced regions to bytes the store still holds. Maintenance may
/// remove or truncate a file after the traced write (freed segments,
/// `drop_excess_free`), and a tamper can only target bytes that exist at
/// apply time.
fn live_regions<'a>(
    store: &dyn UntrustedStore,
    trace: &'a [FaultEvent],
) -> Result<Vec<(&'a str, u64, u64)>> {
    let mut lens: Vec<(&'a str, u64)> = Vec::new();
    let mut out = Vec::new();
    for (file, offset, len) in written_regions(trace) {
        let flen = match lens.iter().find(|(f, _)| *f == file) {
            Some((_, l)) => *l,
            None => {
                let l = if store.exists(file)? {
                    store.open(file, false)?.len()?
                } else {
                    0
                };
                lens.push((file, l));
                l
            }
        };
        let clipped = len.min(flen.saturating_sub(offset));
        if clipped > 0 {
            out.push((file, offset, clipped));
        }
    }
    Ok(out)
}

/// Map a flat byte pick onto (region, byte-within-region).
fn pick_byte<'a>(regions: &[(&'a str, u64, u64)], pick: u64) -> Option<(&'a str, u64)> {
    let total: u64 = regions.iter().map(|(_, _, len)| len).sum();
    if total == 0 {
        return None;
    }
    let mut target = pick % total;
    for (file, offset, len) in regions {
        if target < *len {
            return Some((file, offset + target));
        }
        target -= len;
    }
    None
}

/// Apply `mode` to `store`, guided by the write `trace` of the run that
/// produced its contents. Returns `Ok(None)` when the mode is inapplicable
/// (e.g. nothing was written). The mutation is deterministic given the
/// trace and the mode's pick values.
pub fn apply_tamper(
    store: &dyn UntrustedStore,
    trace: &[FaultEvent],
    mode: &TamperMode,
) -> Result<Option<TamperReceipt>> {
    let regions = live_regions(store, trace)?;
    match mode {
        TamperMode::BitFlip { pick } => {
            let Some((file, offset)) = pick_byte(&regions, *pick) else {
                return Ok(None);
            };
            let f = store.open(file, false)?;
            let mut b = [0u8; 1];
            f.read_at(offset, &mut b)?;
            f.write_at(offset, &[b[0] ^ 0xFF])?;
            Ok(Some(TamperReceipt {
                description: format!("bit-flip {file}@{offset}"),
                changed: true,
            }))
        }
        TamperMode::BlockSwap {
            pick_a,
            pick_b,
            block,
        } => {
            let block = (*block).max(1) as u64;
            // Restrict to regions that can hold a whole block so the swap
            // stays within written bytes.
            let wide: Vec<_> = regions
                .iter()
                .copied()
                .filter(|(_, _, len)| *len >= block)
                .collect();
            let Some((file_a, start_a)) = pick_byte(&wide, *pick_a) else {
                return Ok(None);
            };
            let Some((file_b, start_b)) = pick_byte(&wide, *pick_b) else {
                return Ok(None);
            };
            // Clamp the block starts inside their regions.
            let clamp = |(file, region_off, region_len): (&str, u64, u64), start: u64| {
                let max_start = region_off + region_len - block;
                (file.to_string(), start.min(max_start))
            };
            let region_of = |file: &str, byte: u64| {
                wide.iter()
                    .copied()
                    .find(|(f, o, l)| *f == file && byte >= *o && byte < o + l)
                    .expect("picked byte lies in a region")
            };
            let (file_a, start_a) = clamp(region_of(file_a, start_a), start_a);
            let (file_b, start_b) = clamp(region_of(file_b, start_b), start_b);
            if file_a == file_b && start_a == start_b {
                return Ok(None);
            }
            let fa = store.open(&file_a, false)?;
            let fb = store.open(&file_b, false)?;
            let mut a = vec![0u8; block as usize];
            let mut b = vec![0u8; block as usize];
            fa.read_at(start_a, &mut a)?;
            fb.read_at(start_b, &mut b)?;
            let changed = a != b;
            fa.write_at(start_a, &b)?;
            fb.write_at(start_b, &a)?;
            Ok(Some(TamperReceipt {
                description: format!(
                    "block-swap {file_a}@{start_a} <-> {file_b}@{start_b} ({block}B)"
                ),
                changed,
            }))
        }
        TamperMode::Rollback { pick } => {
            // Files with at least two writes — rolling back *all* history of
            // a file is just deletion; undoing a strict suffix restores a
            // genuine earlier version.
            let mut files: Vec<&str> = Vec::new();
            for e in trace {
                if let FaultEvent::Write(w) = e {
                    if !files.contains(&w.file.as_str()) {
                        files.push(&w.file);
                    }
                }
            }
            files.retain(|f| {
                trace
                    .iter()
                    .filter(|e| matches!(e, FaultEvent::Write(w) if w.file == *f && w.written > 0))
                    .count()
                    >= 2
            });
            // A file maintenance has since removed can't be rolled back —
            // there is no current version to regress.
            let mut existing = Vec::with_capacity(files.len());
            for f in files {
                if store.exists(f)? {
                    existing.push(f);
                }
            }
            let files = existing;
            if files.is_empty() {
                return Ok(None);
            }
            let file = files[(*pick % files.len() as u64) as usize];
            let writes: Vec<&WriteEvent> = trace
                .iter()
                .filter_map(|e| match e {
                    FaultEvent::Write(w) if w.file == file => Some(w),
                    _ => None,
                })
                .collect();
            // Undo the most recent half (at least one write).
            let undo_from = writes.len() - (writes.len() / 2).max(1);
            let f = store.open(file, false)?;
            let mut changed = false;
            for w in writes[undo_from..].iter().rev() {
                if w.written == 0 {
                    continue;
                }
                let live = w.pre_image.len().min(w.written as usize);
                if live > 0 {
                    // The file may have been truncated since this write
                    // (cleaner frees); only the still-present prefix can be
                    // compared, but the whole pre-image is restored.
                    let readable = live.min(f.len()?.saturating_sub(w.offset) as usize);
                    let mut current = vec![0u8; readable];
                    if readable > 0 {
                        f.read_at(w.offset, &mut current)?;
                    }
                    if readable < live || current != w.pre_image[..readable] {
                        changed = true;
                    }
                    f.write_at(w.offset, &w.pre_image[..live])?;
                }
            }
            let old_len = writes[undo_from].old_len;
            if f.len()? != old_len {
                changed = true;
            }
            f.set_len(old_len)?;
            Ok(Some(TamperReceipt {
                description: format!(
                    "rollback {file} to before write #{undo_from} (len {old_len})"
                ),
                changed,
            }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::untrusted::MemStore;

    #[test]
    fn unlimited_plan_passes_through() {
        let mem = MemStore::new();
        let store = FaultStore::new(mem.clone(), FaultPlan::unlimited());
        let f = store.open("f", true).unwrap();
        f.write_at(0, b"abcdef").unwrap();
        f.sync().unwrap();
        assert_eq!(store.plan().sync_count(), 1);
        assert_eq!(mem.raw("f").unwrap(), b"abcdef");
    }

    #[test]
    fn crash_tears_the_write_at_budget_boundary() {
        let mem = MemStore::new();
        let store = FaultStore::new(mem.clone(), FaultPlan::crash_after_bytes(4));
        let f = store.open("f", true).unwrap();
        let err = f.write_at(0, b"abcdef").unwrap_err();
        assert!(matches!(err, PlatformError::Crashed));
        // Torn: exactly 4 bytes landed.
        assert_eq!(mem.raw("f").unwrap(), b"abcd");
        assert!(store.plan().has_crashed());
    }

    #[test]
    fn everything_fails_after_crash() {
        let mem = MemStore::new();
        let store = FaultStore::new(mem.clone(), FaultPlan::crash_after_bytes(0));
        let f = store.open("f", true).unwrap();
        assert!(f.write_at(0, b"x").is_err());
        assert!(f.read_at(0, &mut [0u8; 1]).is_err());
        assert!(f.sync().is_err());
        assert!(store.open("g", true).is_err());
        assert!(store.list().is_err());
    }

    #[test]
    fn budget_spans_multiple_writes() {
        let mem = MemStore::new();
        let store = FaultStore::new(mem.clone(), FaultPlan::crash_after_bytes(10));
        let f = store.open("f", true).unwrap();
        f.write_at(0, b"12345").unwrap();
        f.write_at(5, b"678").unwrap();
        // 2 bytes of budget left; this write tears.
        assert!(f.write_at(8, b"abcde").is_err());
        assert_eq!(mem.raw("f").unwrap(), b"12345678ab");
    }

    #[test]
    fn rearm_revives_the_device() {
        let mem = MemStore::new();
        let store = FaultStore::new(mem.clone(), FaultPlan::crash_after_bytes(0));
        // Budget 0: the first write fires the crash...
        assert!(store.open("f", true).unwrap().write_at(0, b"x").is_err());
        // ...after which even opens fail.
        assert!(store.open("f", true).is_err());
        store.plan().rearm(u64::MAX);
        store.open("f", true).unwrap().write_at(0, b"ok").unwrap();
        assert_eq!(mem.raw("f").unwrap(), b"ok");
    }

    #[test]
    fn crash_on_kth_write_tears_at_fraction() {
        let mem = MemStore::new();
        let store = FaultStore::new(mem.clone(), FaultPlan::crash_on_write(2, 1, 2));
        let f = store.open("f", true).unwrap();
        f.write_at(0, b"aaaa").unwrap(); // write 0
        f.write_at(4, b"bbbb").unwrap(); // write 1
        let err = f.write_at(8, b"cccc").unwrap_err(); // write 2: torn at 1/2
        assert!(matches!(err, PlatformError::Crashed));
        assert_eq!(mem.raw("f").unwrap(), b"aaaabbbbcc");
        assert!(store.plan().has_crashed());
    }

    #[test]
    fn crash_on_write_with_full_fraction_lands_all_bytes_but_still_dies() {
        let mem = MemStore::new();
        let store = FaultStore::new(mem.clone(), FaultPlan::crash_on_write(1, 1, 1));
        let f = store.open("f", true).unwrap();
        f.write_at(0, b"aaaa").unwrap();
        let err = f.write_at(4, b"bbbb").unwrap_err();
        assert!(matches!(err, PlatformError::Crashed));
        // All bytes landed, but the device is dead and the op errored.
        assert_eq!(mem.raw("f").unwrap(), b"aaaabbbb");
        assert!(f.read_at(0, &mut [0u8; 1]).is_err());
    }

    #[test]
    fn crash_on_write_with_zero_fraction_lands_nothing() {
        let mem = MemStore::new();
        let store = FaultStore::new(mem.clone(), FaultPlan::crash_on_write(1, 0, 1));
        let f = store.open("f", true).unwrap();
        f.write_at(0, b"aaaa").unwrap();
        assert!(f.write_at(4, b"bbbb").is_err());
        assert_eq!(mem.raw("f").unwrap(), b"aaaa");
    }

    #[test]
    fn crash_on_kth_sync_kills_before_the_sync() {
        let mem = MemStore::new();
        let store = FaultStore::new(mem.clone(), FaultPlan::crash_on_sync(1));
        let f = store.open("f", true).unwrap();
        f.write_at(0, b"x").unwrap();
        f.sync().unwrap(); // sync 0 proceeds
        f.write_at(1, b"y").unwrap();
        assert!(matches!(f.sync().unwrap_err(), PlatformError::Crashed)); // sync 1 dies
        assert_eq!(
            store.plan().sync_count(),
            1,
            "the killed sync must not count"
        );
        assert!(store.plan().has_crashed());
    }

    #[test]
    fn trace_records_write_and_sync_boundaries_with_pre_images() {
        let mem = MemStore::new();
        let store = FaultStore::new(mem.clone(), FaultPlan::unlimited());
        store.plan().set_tracing(true);
        let f = store.open("f", true).unwrap();
        f.write_at(0, b"aaaa").unwrap();
        f.sync().unwrap();
        f.write_at(2, b"BB").unwrap(); // overwrites "aa"
        let trace = store.plan().take_trace();
        assert_eq!(trace.len(), 3);
        match &trace[0] {
            FaultEvent::Write(w) => {
                assert_eq!((w.offset, w.len, w.written, w.old_len), (0, 4, 4, 0));
                assert!(w.pre_image.is_empty(), "fresh file has no pre-image");
            }
            other => panic!("expected write, got {other:?}"),
        }
        assert!(matches!(&trace[1], FaultEvent::Sync { file } if file == "f"));
        match &trace[2] {
            FaultEvent::Write(w) => {
                assert_eq!(w.pre_image, b"aa", "pre-image captures overwritten bytes");
            }
            other => panic!("expected write, got {other:?}"),
        }
    }

    #[test]
    fn torn_write_event_records_partial_landing() {
        let mem = MemStore::new();
        let store = FaultStore::new(mem.clone(), FaultPlan::crash_after_bytes(6));
        store.plan().set_tracing(true);
        let f = store.open("f", true).unwrap();
        f.write_at(0, b"aaaa").unwrap();
        assert!(f.write_at(4, b"bbbb").is_err());
        let trace = store.plan().take_trace();
        match &trace[1] {
            FaultEvent::Write(w) => assert_eq!((w.len, w.written), (4, 2)),
            other => panic!("expected write, got {other:?}"),
        }
    }

    #[test]
    fn bit_flip_tamper_changes_exactly_one_written_byte() {
        let mem = MemStore::new();
        let store = FaultStore::new(mem.clone(), FaultPlan::unlimited());
        store.plan().set_tracing(true);
        store
            .open("f", true)
            .unwrap()
            .write_at(0, &[7u8; 32])
            .unwrap();
        let trace = store.plan().take_trace();
        let receipt = apply_tamper(&mem, &trace, &TamperMode::BitFlip { pick: 11 })
            .unwrap()
            .expect("applicable");
        assert!(receipt.changed);
        let raw = mem.raw("f").unwrap();
        assert_eq!(raw.iter().filter(|&&b| b != 7).count(), 1);
    }

    #[test]
    fn rollback_tamper_restores_an_earlier_file_state() {
        let mem = MemStore::new();
        let store = FaultStore::new(mem.clone(), FaultPlan::unlimited());
        store.plan().set_tracing(true);
        let f = store.open("f", true).unwrap();
        f.write_at(0, b"version-one").unwrap();
        f.write_at(0, b"version-TWO-longer").unwrap();
        let trace = store.plan().take_trace();
        let receipt = apply_tamper(&mem, &trace, &TamperMode::Rollback { pick: 0 })
            .unwrap()
            .expect("applicable");
        assert!(receipt.changed);
        assert_eq!(mem.raw("f").unwrap(), b"version-one");
    }

    #[test]
    fn block_swap_tamper_swaps_two_spans() {
        let mem = MemStore::new();
        let store = FaultStore::new(mem.clone(), FaultPlan::unlimited());
        store.plan().set_tracing(true);
        let f = store.open("f", true).unwrap();
        f.write_at(0, &[1u8; 8]).unwrap();
        f.write_at(8, &[2u8; 8]).unwrap();
        let trace = store.plan().take_trace();
        let receipt = apply_tamper(
            &mem,
            &trace,
            &TamperMode::BlockSwap {
                pick_a: 0,
                pick_b: 8,
                block: 4,
            },
        )
        .unwrap()
        .expect("applicable");
        assert!(receipt.changed);
        let raw = mem.raw("f").unwrap();
        assert_eq!(raw.iter().filter(|&&b| b == 2).count(), 8);
        assert!(
            raw[..8].contains(&2),
            "a block of 2s moved into the first span"
        );
    }
}
