//! Deterministic fault injection over any untrusted store.
//!
//! Crash-consistency claims are only as good as the crash tests behind them.
//! [`FaultStore`] wraps an [`UntrustedStore`] and consults a shared
//! [`FaultPlan`]: after a configured number of written bytes, the simulated
//! device "loses power" — the current write is truncated at the budget
//! boundary (a torn write) and every subsequent operation fails with
//! [`PlatformError::Crashed`]. Recovery tests then reopen the *underlying*
//! store, which retains exactly the bytes that made it out before the cut.

use crate::error::{PlatformError, Result};
use crate::untrusted::{RandomAccessFile, UntrustedStore};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Shared crash schedule. `write_budget` is the number of bytes that may
/// still be written before the power cut; `u64::MAX` means "never".
#[derive(Clone)]
pub struct FaultPlan {
    write_budget: Arc<AtomicU64>,
    crashed: Arc<AtomicBool>,
    sync_counts: Arc<AtomicU64>,
}

impl FaultPlan {
    /// A plan that never crashes (budget can be lowered later).
    pub fn unlimited() -> Self {
        FaultPlan {
            write_budget: Arc::new(AtomicU64::new(u64::MAX)),
            crashed: Arc::new(AtomicBool::new(false)),
            sync_counts: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A plan that crashes after `bytes` further written bytes.
    pub fn crash_after_bytes(bytes: u64) -> Self {
        let plan = Self::unlimited();
        plan.write_budget.store(bytes, Ordering::SeqCst);
        plan
    }

    /// Rearm the plan with a new byte budget and clear the crashed flag.
    pub fn rearm(&self, bytes: u64) {
        self.write_budget.store(bytes, Ordering::SeqCst);
        self.crashed.store(false, Ordering::SeqCst);
    }

    /// Whether the simulated crash has occurred.
    pub fn has_crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    /// Number of `sync` calls observed (lets tests assert durability
    /// behaviour, e.g. "a nondurable commit must not sync").
    pub fn sync_count(&self) -> u64 {
        self.sync_counts.load(Ordering::SeqCst)
    }

    fn check_alive(&self) -> Result<()> {
        if self.has_crashed() {
            Err(PlatformError::Crashed)
        } else {
            Ok(())
        }
    }

    /// Consume up to `wanted` bytes of budget. Returns how many bytes may
    /// actually be written; if fewer than `wanted`, the crash fires after
    /// those bytes land (a torn write).
    fn consume(&self, wanted: u64) -> u64 {
        loop {
            let current = self.write_budget.load(Ordering::SeqCst);
            let allowed = current.min(wanted);
            let next = current - allowed;
            if self
                .write_budget
                .compare_exchange(current, next, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                if allowed < wanted {
                    self.crashed.store(true, Ordering::SeqCst);
                }
                return allowed;
            }
        }
    }
}

/// An untrusted store whose writes obey a [`FaultPlan`].
pub struct FaultStore<S> {
    inner: S,
    plan: FaultPlan,
}

impl<S: UntrustedStore> FaultStore<S> {
    /// Wrap `inner` under `plan`.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        FaultStore { inner, plan }
    }

    /// Access the underlying store (post-crash inspection / reopen).
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The plan, for rearming or assertions.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

struct FaultFile {
    inner: Box<dyn RandomAccessFile>,
    plan: FaultPlan,
}

impl RandomAccessFile for FaultFile {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.plan.check_alive()?;
        self.inner.read_at(offset, buf)
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        self.plan.check_alive()?;
        let allowed = self.plan.consume(data.len() as u64) as usize;
        if allowed > 0 {
            self.inner.write_at(offset, &data[..allowed])?;
        }
        if allowed < data.len() {
            return Err(PlatformError::Crashed);
        }
        Ok(())
    }

    fn len(&self) -> Result<u64> {
        self.plan.check_alive()?;
        self.inner.len()
    }

    fn set_len(&self, len: u64) -> Result<()> {
        self.plan.check_alive()?;
        self.inner.set_len(len)
    }

    fn sync(&self) -> Result<()> {
        self.plan.check_alive()?;
        self.plan.sync_counts.fetch_add(1, Ordering::SeqCst);
        self.inner.sync()
    }
}

impl<S: UntrustedStore> UntrustedStore for FaultStore<S> {
    fn open(&self, name: &str, create: bool) -> Result<Box<dyn RandomAccessFile>> {
        self.plan.check_alive()?;
        let inner = self.inner.open(name, create)?;
        Ok(Box::new(FaultFile { inner, plan: self.plan.clone() }))
    }

    fn exists(&self, name: &str) -> Result<bool> {
        self.plan.check_alive()?;
        self.inner.exists(name)
    }

    fn remove(&self, name: &str) -> Result<()> {
        self.plan.check_alive()?;
        self.inner.remove(name)
    }

    fn list(&self) -> Result<Vec<String>> {
        self.plan.check_alive()?;
        self.inner.list()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::untrusted::MemStore;

    #[test]
    fn unlimited_plan_passes_through() {
        let mem = MemStore::new();
        let store = FaultStore::new(mem.clone(), FaultPlan::unlimited());
        let f = store.open("f", true).unwrap();
        f.write_at(0, b"abcdef").unwrap();
        f.sync().unwrap();
        assert_eq!(store.plan().sync_count(), 1);
        assert_eq!(mem.raw("f").unwrap(), b"abcdef");
    }

    #[test]
    fn crash_tears_the_write_at_budget_boundary() {
        let mem = MemStore::new();
        let store = FaultStore::new(mem.clone(), FaultPlan::crash_after_bytes(4));
        let f = store.open("f", true).unwrap();
        let err = f.write_at(0, b"abcdef").unwrap_err();
        assert!(matches!(err, PlatformError::Crashed));
        // Torn: exactly 4 bytes landed.
        assert_eq!(mem.raw("f").unwrap(), b"abcd");
        assert!(store.plan().has_crashed());
    }

    #[test]
    fn everything_fails_after_crash() {
        let mem = MemStore::new();
        let store = FaultStore::new(mem.clone(), FaultPlan::crash_after_bytes(0));
        let f = store.open("f", true).unwrap();
        assert!(f.write_at(0, b"x").is_err());
        assert!(f.read_at(0, &mut [0u8; 1]).is_err());
        assert!(f.sync().is_err());
        assert!(store.open("g", true).is_err());
        assert!(store.list().is_err());
    }

    #[test]
    fn budget_spans_multiple_writes() {
        let mem = MemStore::new();
        let store = FaultStore::new(mem.clone(), FaultPlan::crash_after_bytes(10));
        let f = store.open("f", true).unwrap();
        f.write_at(0, b"12345").unwrap();
        f.write_at(5, b"678").unwrap();
        // 2 bytes of budget left; this write tears.
        assert!(f.write_at(8, b"abcde").is_err());
        assert_eq!(mem.raw("f").unwrap(), b"12345678ab");
    }

    #[test]
    fn rearm_revives_the_device() {
        let mem = MemStore::new();
        let store = FaultStore::new(mem.clone(), FaultPlan::crash_after_bytes(0));
        // Budget 0: the first write fires the crash...
        assert!(store.open("f", true).unwrap().write_at(0, b"x").is_err());
        // ...after which even opens fail.
        assert!(store.open("f", true).is_err());
        store.plan().rearm(u64::MAX);
        store.open("f", true).unwrap().write_at(0, b"ok").unwrap();
        assert_eq!(mem.raw("f").unwrap(), b"ok");
    }
}
