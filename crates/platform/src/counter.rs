//! The one-way persistent counter.
//!
//! "We assume that the platform provides … a one-way persistent counter,
//! which cannot be decremented. The one-way counter may be implemented using
//! special-purpose hardware." (paper §2, citing the Infineon Eurochip).
//!
//! The chunk store stores the counter's current value inside the MAC'd
//! trusted anchor and bumps the counter on every durable commit; an attacker
//! who replays an old copy of the whole database presents an anchor whose
//! embedded counter value is behind the hardware counter, which the store
//! reports as [`ReplayDetected`](crate::error::PlatformError) at the chunk
//! layer. The paper's own evaluation emulated the counter "as a file on the
//! same NTFS partition" (§7.2) — [`FileCounter`] reproduces exactly that.

use crate::error::{PlatformError, Result};
use parking_lot::Mutex;
use std::fs;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A persistent monotonic counter.
pub trait OneWayCounter: Send + Sync {
    /// Current value.
    fn read(&self) -> Result<u64>;

    /// Increment and return the *new* value. Must be durable before
    /// returning (hardware counters are inherently so).
    fn increment(&self) -> Result<u64>;
}

/// In-memory counter for tests and benches. Clones share state, so a
/// "reopened" database observes increments made before the reopen.
#[derive(Clone, Default)]
pub struct VolatileCounter {
    value: Arc<AtomicU64>,
}

impl VolatileCounter {
    /// Start at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start at a specific value.
    pub fn starting_at(v: u64) -> Self {
        let c = Self::new();
        c.value.store(v, Ordering::SeqCst);
        c
    }
}

impl OneWayCounter for VolatileCounter {
    fn read(&self) -> Result<u64> {
        Ok(self.value.load(Ordering::SeqCst))
    }

    fn increment(&self) -> Result<u64> {
        Ok(self.value.fetch_add(1, Ordering::SeqCst) + 1)
    }
}

/// File-backed counter emulation, as in the paper's evaluation. The value is
/// written through (`sync_data`) on every increment, matching the cost the
/// paper attributes to "increment\[ing\] the disk-based one-way counter after
/// each transaction" (§7.3).
pub struct FileCounter {
    path: PathBuf,
    cached: Mutex<u64>,
}

impl FileCounter {
    /// Open, creating at zero if missing.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self> {
        let path = path.into();
        let value = if path.exists() {
            let data = fs::read(&path)?;
            let arr: [u8; 8] = data.try_into().map_err(|_| {
                PlatformError::CorruptSubstrate("one-way counter file must be 8 bytes".into())
            })?;
            u64::from_le_bytes(arr)
        } else {
            let mut f = fs::File::create(&path)?;
            f.write_all(&0u64.to_le_bytes())?;
            f.sync_data()?;
            0
        };
        Ok(FileCounter {
            path,
            cached: Mutex::new(value),
        })
    }
}

impl OneWayCounter for FileCounter {
    fn read(&self) -> Result<u64> {
        Ok(*self.cached.lock())
    }

    fn increment(&self) -> Result<u64> {
        let mut cached = self.cached.lock();
        let new = *cached + 1;
        let mut f = fs::OpenOptions::new().write(true).open(&self.path)?;
        f.write_all(&new.to_le_bytes())?;
        f.sync_data()?;
        *cached = new;
        Ok(new)
    }
}

/// A wrapper that lets tests *violate* the one-way property — the hardware
/// attack the real counter is supposed to make impossible. Used to verify
/// that replay detection actually depends on the counter.
#[derive(Clone)]
pub struct TamperableCounter {
    value: Arc<AtomicU64>,
}

impl TamperableCounter {
    /// Start at zero.
    pub fn new() -> Self {
        TamperableCounter {
            value: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Forcibly set the counter (the violation).
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::SeqCst);
    }
}

impl Default for TamperableCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl OneWayCounter for TamperableCounter {
    fn read(&self) -> Result<u64> {
        Ok(self.value.load(Ordering::SeqCst))
    }

    fn increment(&self) -> Result<u64> {
        Ok(self.value.fetch_add(1, Ordering::SeqCst) + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volatile_counter_increments() {
        let c = VolatileCounter::new();
        assert_eq!(c.read().unwrap(), 0);
        assert_eq!(c.increment().unwrap(), 1);
        assert_eq!(c.increment().unwrap(), 2);
        assert_eq!(c.read().unwrap(), 2);
    }

    #[test]
    fn volatile_counter_clones_share() {
        let a = VolatileCounter::starting_at(10);
        let b = a.clone();
        a.increment().unwrap();
        assert_eq!(b.read().unwrap(), 11);
    }

    #[test]
    fn file_counter_persists_across_open() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("ctr");
        {
            let c = FileCounter::open(&path).unwrap();
            assert_eq!(c.read().unwrap(), 0);
            c.increment().unwrap();
            c.increment().unwrap();
        }
        let c = FileCounter::open(&path).unwrap();
        assert_eq!(c.read().unwrap(), 2);
        assert_eq!(c.increment().unwrap(), 3);
    }

    #[test]
    fn file_counter_rejects_corrupt_file() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("ctr");
        fs::write(&path, b"not 8 bytes!").unwrap();
        assert!(matches!(
            FileCounter::open(&path),
            Err(PlatformError::CorruptSubstrate(_))
        ));
    }

    #[test]
    fn tamperable_counter_can_be_rolled_back() {
        let c = TamperableCounter::new();
        c.increment().unwrap();
        c.increment().unwrap();
        c.set(0); // the attack
        assert_eq!(c.read().unwrap(), 0);
    }

    #[test]
    fn concurrent_increments_are_exact() {
        let c = VolatileCounter::new();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.increment().unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.read().unwrap(), 8000);
    }
}
