//! Error type shared by the platform substrates.

use std::fmt;

/// Result alias used throughout the platform crate.
pub type Result<T> = std::result::Result<T, PlatformError>;

/// Errors surfaced by platform substrates.
#[derive(Debug)]
pub enum PlatformError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// The named file or stream does not exist.
    NotFound(String),
    /// The named file or stream already exists and `create_new` semantics
    /// were requested.
    AlreadyExists(String),
    /// A read past the end of a file was attempted.
    ShortRead {
        /// Byte offset of the read.
        offset: u64,
        /// Bytes requested.
        wanted: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The fault-injection plan terminated the simulated device (power cut).
    /// All further operations on the faulted store fail with this error.
    Crashed,
    /// The one-way counter or secret store content is structurally invalid
    /// (e.g. wrong length) — distinct from database-level tamper detection.
    CorruptSubstrate(String),
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::Io(e) => write!(f, "I/O error: {e}"),
            PlatformError::NotFound(n) => write!(f, "not found: {n}"),
            PlatformError::AlreadyExists(n) => write!(f, "already exists: {n}"),
            PlatformError::ShortRead {
                offset,
                wanted,
                available,
            } => write!(
                f,
                "short read at offset {offset}: wanted {wanted} bytes, only {available} available"
            ),
            PlatformError::Crashed => write!(f, "simulated crash: device powered off"),
            PlatformError::CorruptSubstrate(m) => write!(f, "corrupt substrate state: {m}"),
        }
    }
}

impl std::error::Error for PlatformError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlatformError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PlatformError {
    fn from(e: std::io::Error) -> Self {
        PlatformError::Io(e)
    }
}

impl PlatformError {
    /// Stable, layer-independent classification (see [`tdb_core::ErrorKind`]).
    pub fn kind(&self) -> tdb_core::ErrorKind {
        use tdb_core::ErrorKind;
        match self {
            PlatformError::Io(_)
            | PlatformError::ShortRead { .. }
            | PlatformError::Crashed
            | PlatformError::AlreadyExists(_) => ErrorKind::Io,
            PlatformError::NotFound(_) => ErrorKind::NotFound,
            PlatformError::CorruptSubstrate(_) => ErrorKind::Tamper,
        }
    }
}

impl From<PlatformError> for tdb_core::Error {
    fn from(e: PlatformError) -> Self {
        tdb_core::Error::with_source(e.kind(), e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = PlatformError::ShortRead {
            offset: 10,
            wanted: 4,
            available: 2,
        };
        assert!(e.to_string().contains("offset 10"));
        assert!(PlatformError::Crashed.to_string().contains("crash"));
        assert!(PlatformError::NotFound("log.0".into())
            .to_string()
            .contains("log.0"));
    }

    #[test]
    fn io_error_converts_and_chains() {
        let io = std::io::Error::new(std::io::ErrorKind::PermissionDenied, "nope");
        let e: PlatformError = io.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
